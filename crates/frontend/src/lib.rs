//! # tdtm-frontend — functional simulation for TDISA
//!
//! The functional simulator plays the role SimpleScalar's functional core
//! plays for the paper's `sim-outorder`: it executes the program
//! architecturally, producing the *oracle* dynamic instruction stream —
//! program counters, effective addresses, branch outcomes and targets — that
//! the timing model in `tdtm-uarch` consumes. Timing-independent execution
//! with fixed seeds is this reproduction's stand-in for the paper's EIO
//! traces ("to ensure reproducible results for each benchmark across
//! multiple simulations").
//!
//! # Examples
//!
//! ```
//! use tdtm_isa::asm::assemble;
//! use tdtm_frontend::Cpu;
//!
//! let program = assemble(
//!     "     li  x1, 5
//!           li  x2, 0
//!      l:   add x2, x2, x1
//!           addi x1, x1, -1
//!           bne x1, x0, l
//!           out x2
//!           halt",
//! )?;
//! let mut cpu = Cpu::new(&program);
//! cpu.run_to_halt(1_000_000)?;
//! assert_eq!(cpu.output(), &[15]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cpu;
pub mod memory;

pub use cpu::{BranchOutcome, Cpu, ExecError, MemAccess, Retired};
pub use memory::Memory;
