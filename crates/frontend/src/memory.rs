//! Sparse paged byte-addressed memory.
//!
//! Pages are allocated lazily on first touch, so programs can scatter data
//! across a 64-bit address space (stack near the top, data low) without the
//! simulator paying for the gaps. Reads of untouched memory return zero,
//! matching the zero-initialized BSS semantics workloads rely on.

use std::collections::HashMap;

/// Log2 of the page size.
const PAGE_SHIFT: u32 = 12;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressed memory backed by lazily allocated 4 KiB pages.
#[derive(Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("resident_pages", &self.pages.len())
            .finish()
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian 64-bit word (no alignment requirement).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + 8 <= PAGE_SIZE {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                let b: [u8; 8] = page[offset..offset + 8].try_into().expect("8-byte slice");
                return u64::from_le_bytes(b);
            }
            if !self.pages.contains_key(&(addr >> PAGE_SHIFT)) {
                return 0;
            }
        }
        let mut b = [0u8; 8];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = self.read_u8(addr.wrapping_add(i as u64));
        }
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian 64-bit word (no alignment requirement).
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        let bytes = value.to_le_bytes();
        if offset + 8 <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[offset..offset + 8].copy_from_slice(&bytes);
        } else {
            for (i, byte) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u64), *byte);
            }
        }
    }

    /// Reads an `f64` stored at `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies `bytes` into memory starting at `base`.
    pub fn load_bytes(&mut self, base: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(base.wrapping_add(i as u64), b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0xDEAD_BEEF), 0);
        assert_eq!(m.read_u64(0xDEAD_BEEF), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn byte_round_trip() {
        let mut m = Memory::new();
        m.write_u8(5, 0xAB);
        assert_eq!(m.read_u8(5), 0xAB);
        assert_eq!(m.read_u8(6), 0);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn word_round_trip_aligned_and_unaligned() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89AB_CDEF);
        // Straddles a page boundary.
        m.write_u64(0x1FFC, u64::MAX - 3);
        assert_eq!(m.read_u64(0x1FFC), u64::MAX - 3);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn float_round_trip() {
        let mut m = Memory::new();
        m.write_f64(64, -2.75);
        assert_eq!(m.read_f64(64), -2.75);
    }

    #[test]
    fn load_bytes_bulk() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.load_bytes(0x2000 - 100, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(0x2000 - 100 + i as u64), b);
        }
    }

    #[test]
    fn sparse_pages_stay_sparse() {
        let mut m = Memory::new();
        m.write_u8(0, 1);
        m.write_u8(1 << 40, 2);
        assert_eq!(m.resident_pages(), 2);
    }
}
