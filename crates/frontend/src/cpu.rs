//! The functional (architectural) TDISA simulator.
//!
//! [`Cpu::step`] executes one instruction and returns a [`Retired`] record —
//! the oracle information the out-of-order timing model needs: the correct
//! next PC, the effective address of any memory access, and branch outcomes.

use crate::memory::Memory;
use tdtm_isa::program::{Program, STACK_BASE};
use tdtm_isa::reg::{NUM_FREGS, NUM_IREGS};
use tdtm_isa::{Inst, Op, Reg};
use std::fmt;

/// A memory access performed by a retired instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Effective virtual address.
    pub addr: u64,
    /// Access size in bytes (1 or 8).
    pub size: u8,
    /// `true` for stores.
    pub is_store: bool,
}

/// Control-flow outcome of a retired branch or jump.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchOutcome {
    /// Whether the branch was taken (always `true` for jumps).
    pub taken: bool,
    /// The target address if taken.
    pub target: u64,
}

/// One architecturally retired instruction, as consumed by the timing model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Retired {
    /// Dynamic instruction number (0-based).
    pub seq: u64,
    /// This instruction's PC.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// The architecturally correct next PC.
    pub next_pc: u64,
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Branch outcome, for control instructions.
    pub branch: Option<BranchOutcome>,
}

/// Functional execution errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// PC left the text segment.
    BadPc(u64),
    /// The instruction budget given to [`Cpu::run_to_halt`] was exhausted
    /// before `halt`.
    BudgetExhausted(u64),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadPc(pc) => write!(f, "program counter {pc:#x} outside text segment"),
            ExecError::BudgetExhausted(n) => {
                write!(f, "instruction budget of {n} exhausted before halt")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The functional TDISA machine: registers, memory, and a PC.
///
/// The program text is held behind an [`Arc`](std::sync::Arc): programs
/// are immutable once assembled, so many machines (grid cells, oracle
/// streams) can share one copy instead of deep-cloning data segments that
/// can run to megabytes.
#[derive(Clone, Debug)]
pub struct Cpu {
    program: std::sync::Arc<Program>,
    pc: u64,
    xregs: [i64; NUM_IREGS],
    fregs: [f64; NUM_FREGS],
    mem: Memory,
    halted: bool,
    retired: u64,
    output: Vec<i64>,
}

impl Cpu {
    /// Creates a CPU with `program` loaded: data segments copied into
    /// memory, the stack pointer initialized, and the PC at the entry
    /// point. Deep-clones the program; prefer
    /// [`from_shared`](Cpu::from_shared) when an `Arc` is already at hand.
    pub fn new(program: &Program) -> Cpu {
        Cpu::from_shared(std::sync::Arc::new(program.clone()))
    }

    /// [`new`](Cpu::new) without the deep program clone: the machine keeps
    /// a reference to the shared, immutable program.
    pub fn from_shared(program: std::sync::Arc<Program>) -> Cpu {
        let mut mem = Memory::new();
        for seg in &program.data {
            mem.load_bytes(seg.base, &seg.bytes);
        }
        let mut xregs = [0i64; NUM_IREGS];
        xregs[Reg::SP.index()] = STACK_BASE as i64;
        Cpu {
            pc: program.entry(),
            program,
            xregs,
            fregs: [0.0; NUM_FREGS],
            mem,
            halted: false,
            retired: 0,
            output: Vec::new(),
        }
    }

    /// Whether the program has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether functional execution can still supply retired
    /// instructions — the "source not yet drained" query behind the
    /// timing model's idle-window detection (oracle-stream exhaustion
    /// checks bottom out here).
    pub fn can_retire(&self) -> bool {
        !self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired_count(&self) -> u64 {
        self.retired
    }

    /// The current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Values emitted by `out` instructions, in order.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Read an integer register (for tests and debugging).
    pub fn xreg(&self, r: Reg) -> i64 {
        self.xregs[r.index()]
    }

    /// Read a floating-point register (for tests and debugging).
    pub fn freg(&self, r: tdtm_isa::FReg) -> f64 {
        self.fregs[r.index()]
    }

    /// The memory image (for tests and debugging).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` if the CPU is already halted.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadPc`] if the PC points outside the text
    /// segment.
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self) -> Result<Option<Retired>, ExecError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self.program.inst_at(pc).ok_or(ExecError::BadPc(pc))?;
        let mut next_pc = pc + 4;
        let mut mem_access = None;
        let mut branch = None;

        let x = |r: Reg| -> i64 { self.xregs[r.index()] };
        macro_rules! setx {
            ($r:expr, $v:expr) => {{
                let r: Reg = $r;
                if !r.is_zero() {
                    self.xregs[r.index()] = $v;
                }
            }};
        }
        macro_rules! setf {
            ($r:expr, $v:expr) => {
                self.fregs[$r.index()] = $v
            };
        }
        let f = |r: tdtm_isa::FReg| -> f64 { self.fregs[r.index()] };

        use Op::*;
        match inst.op {
            Add => setx!(inst.rd, x(inst.rs1).wrapping_add(x(inst.rs2))),
            Sub => setx!(inst.rd, x(inst.rs1).wrapping_sub(x(inst.rs2))),
            Mul => setx!(inst.rd, x(inst.rs1).wrapping_mul(x(inst.rs2))),
            Div => {
                let d = x(inst.rs2);
                setx!(inst.rd, if d == 0 { 0 } else { x(inst.rs1).wrapping_div(d) });
            }
            Rem => {
                let d = x(inst.rs2);
                setx!(inst.rd, if d == 0 { x(inst.rs1) } else { x(inst.rs1).wrapping_rem(d) });
            }
            And => setx!(inst.rd, x(inst.rs1) & x(inst.rs2)),
            Or => setx!(inst.rd, x(inst.rs1) | x(inst.rs2)),
            Xor => setx!(inst.rd, x(inst.rs1) ^ x(inst.rs2)),
            Sll => setx!(inst.rd, x(inst.rs1).wrapping_shl(x(inst.rs2) as u32 & 63)),
            Srl => setx!(inst.rd, ((x(inst.rs1) as u64) >> (x(inst.rs2) as u32 & 63)) as i64),
            Sra => setx!(inst.rd, x(inst.rs1).wrapping_shr(x(inst.rs2) as u32 & 63)),
            Slt => setx!(inst.rd, i64::from(x(inst.rs1) < x(inst.rs2))),
            Sltu => setx!(inst.rd, i64::from((x(inst.rs1) as u64) < (x(inst.rs2) as u64))),
            Addi => setx!(inst.rd, x(inst.rs1).wrapping_add(inst.imm as i64)),
            Andi => setx!(inst.rd, x(inst.rs1) & inst.imm as i64),
            Ori => setx!(inst.rd, x(inst.rs1) | inst.imm as i64),
            Xori => setx!(inst.rd, x(inst.rs1) ^ inst.imm as i64),
            Slli => setx!(inst.rd, x(inst.rs1).wrapping_shl(inst.imm as u32 & 63)),
            Srli => setx!(inst.rd, ((x(inst.rs1) as u64) >> (inst.imm as u32 & 63)) as i64),
            Srai => setx!(inst.rd, x(inst.rs1).wrapping_shr(inst.imm as u32 & 63)),
            Slti => setx!(inst.rd, i64::from(x(inst.rs1) < inst.imm as i64)),
            Lui => setx!(inst.rd, (inst.imm as i64) << 16),
            Lw => {
                let addr = (x(inst.rs1).wrapping_add(inst.imm as i64)) as u64;
                setx!(inst.rd, self.mem.read_u64(addr) as i64);
                mem_access = Some(MemAccess { addr, size: 8, is_store: false });
            }
            Sw => {
                let addr = (x(inst.rs1).wrapping_add(inst.imm as i64)) as u64;
                self.mem.write_u64(addr, x(inst.rs2) as u64);
                mem_access = Some(MemAccess { addr, size: 8, is_store: true });
            }
            Lb => {
                let addr = (x(inst.rs1).wrapping_add(inst.imm as i64)) as u64;
                setx!(inst.rd, i64::from(self.mem.read_u8(addr)));
                mem_access = Some(MemAccess { addr, size: 1, is_store: false });
            }
            Sb => {
                let addr = (x(inst.rs1).wrapping_add(inst.imm as i64)) as u64;
                self.mem.write_u8(addr, x(inst.rs2) as u8);
                mem_access = Some(MemAccess { addr, size: 1, is_store: true });
            }
            Flw => {
                let addr = (x(inst.rs1).wrapping_add(inst.imm as i64)) as u64;
                setf!(inst.fd, self.mem.read_f64(addr));
                mem_access = Some(MemAccess { addr, size: 8, is_store: false });
            }
            Fsw => {
                let addr = (x(inst.rs1).wrapping_add(inst.imm as i64)) as u64;
                self.mem.write_f64(addr, f(inst.fs2));
                mem_access = Some(MemAccess { addr, size: 8, is_store: true });
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let (a, b) = (x(inst.rs1), x(inst.rs2));
                let taken = match inst.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => a < b,
                    Bge => a >= b,
                    Bltu => (a as u64) < (b as u64),
                    _ => (a as u64) >= (b as u64),
                };
                let target = (pc as i64).wrapping_add(inst.imm as i64) as u64;
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchOutcome { taken, target });
            }
            Jal => {
                let target = (pc as i64).wrapping_add(inst.imm as i64) as u64;
                setx!(inst.rd, (pc + 4) as i64);
                next_pc = target;
                branch = Some(BranchOutcome { taken: true, target });
            }
            Jalr => {
                let target = (x(inst.rs1).wrapping_add(inst.imm as i64) as u64) & !3;
                setx!(inst.rd, (pc + 4) as i64);
                next_pc = target;
                branch = Some(BranchOutcome { taken: true, target });
            }
            Fadd => setf!(inst.fd, f(inst.fs1) + f(inst.fs2)),
            Fsub => setf!(inst.fd, f(inst.fs1) - f(inst.fs2)),
            Fmul => setf!(inst.fd, f(inst.fs1) * f(inst.fs2)),
            Fdiv => setf!(inst.fd, f(inst.fs1) / f(inst.fs2)),
            Fsqrt => setf!(inst.fd, f(inst.fs1).sqrt()),
            Fmin => setf!(inst.fd, f(inst.fs1).min(f(inst.fs2))),
            Fmax => setf!(inst.fd, f(inst.fs1).max(f(inst.fs2))),
            Fabs => setf!(inst.fd, f(inst.fs1).abs()),
            Fneg => setf!(inst.fd, -f(inst.fs1)),
            Fcvtdw => setf!(inst.fd, x(inst.rs1) as f64),
            Fcvtwd => {
                let v = f(inst.fs1);
                let int = if v.is_nan() { 0 } else { v.clamp(i64::MIN as f64, i64::MAX as f64) as i64 };
                setx!(inst.rd, int);
            }
            Feq => setx!(inst.rd, i64::from(f(inst.fs1) == f(inst.fs2))),
            Flt => setx!(inst.rd, i64::from(f(inst.fs1) < f(inst.fs2))),
            Fle => setx!(inst.rd, i64::from(f(inst.fs1) <= f(inst.fs2))),
            Fmv => setf!(inst.fd, f(inst.fs1)),
            Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Out => self.output.push(x(inst.rs1)),
            Nop => {}
        }

        let record = Retired {
            seq: self.retired,
            pc,
            inst,
            next_pc,
            mem: mem_access,
            branch,
        };
        self.retired += 1;
        self.pc = next_pc;
        Ok(Some(record))
    }

    /// Runs until `halt`, retiring at most `budget` instructions.
    ///
    /// Returns the number of instructions retired.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BudgetExhausted`] if the program does not halt
    /// within `budget` instructions, or [`ExecError::BadPc`] on a wild PC.
    pub fn run_to_halt(&mut self, budget: u64) -> Result<u64, ExecError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= budget {
                return Err(ExecError::BudgetExhausted(budget));
            }
            self.step()?;
        }
        Ok(self.retired - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_isa::asm::assemble;
    use tdtm_isa::FReg;

    fn run(src: &str) -> Cpu {
        let p = assemble(src).expect("assembles");
        let mut cpu = Cpu::new(&p);
        cpu.run_to_halt(1_000_000).expect("halts");
        cpu
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run(
            "li x1, 6
             li x2, 7
             mul x3, x1, x2
             sub x4, x3, x1
             div x5, x3, x2
             rem x6, x3, x1   # 42 % 6 = 0
             out x3
             out x4
             out x5
             out x6
             halt",
        );
        assert_eq!(cpu.output(), &[42, 36, 6, 0]);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let cpu = run(
            "li x1, 9
             div x2, x1, x0
             rem x3, x1, x0
             out x2
             out x3
             halt",
        );
        assert_eq!(cpu.output(), &[0, 9]);
    }

    #[test]
    fn x0_ignores_writes() {
        let cpu = run("addi x0, x0, 5\nout x0\nhalt");
        assert_eq!(cpu.output(), &[0]);
    }

    #[test]
    fn loads_and_stores() {
        let cpu = run(
            "        .data
             v:      .word 11, 22
                     .text
                     la x1, v
                     lw x2, 0(x1)
                     lw x3, 8(x1)
                     add x4, x2, x3
                     sw x4, 16(x1)
                     lw x5, 16(x1)
                     out x5
                     halt",
        );
        assert_eq!(cpu.output(), &[33]);
    }

    #[test]
    fn byte_accesses() {
        let cpu = run(
            "li x1, 0x300
             li x2, 0x1FF
             sb x2, 0(x1)    # stores 0xFF
             lb x3, 0(x1)
             out x3
             halt",
        );
        assert_eq!(cpu.output(), &[0xFF]);
    }

    #[test]
    fn fp_pipeline() {
        let cpu = run(
            "li x1, 9
             fcvt.d.w f1, x1
             fsqrt f2, f1
             fmul f3, f2, f2
             fcvt.w.d x2, f3
             out x2
             halt",
        );
        assert_eq!(cpu.output(), &[9]);
    }

    #[test]
    fn fp_memory_round_trip() {
        let p = assemble(
            "        .data
             c:      .double 2.5
                     .text
                     la x1, c
                     flw f1, 0(x1)
                     fadd f2, f1, f1
                     fsw f2, 8(x1)
                     flw f3, 8(x1)
                     halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(&p);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.freg(FReg::new(3)), 5.0);
    }

    #[test]
    fn call_and_return() {
        let cpu = run(
            "        li x10, 5
                     call double
                     out x10
                     halt
             double: add x10, x10, x10
                     ret",
        );
        assert_eq!(cpu.output(), &[10]);
    }

    #[test]
    fn retired_records_expose_oracle_info() {
        let p = assemble(
            "     li x1, 2
             l:   addi x1, x1, -1
                  bne x1, x0, l
                  halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(&p);
        let mut records = Vec::new();
        while !cpu.halted() {
            records.push(cpu.step().unwrap().unwrap());
        }
        // li, addi, bne(taken), addi, bne(not taken), halt
        assert_eq!(records.len(), 6);
        let taken = records[2].branch.unwrap();
        assert!(taken.taken);
        assert_eq!(taken.target, records[1].pc);
        let not_taken = records[4].branch.unwrap();
        assert!(!not_taken.taken);
        assert_eq!(records[4].next_pc, records[4].pc + 4);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[5].seq, 5);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let p = assemble("l: j l").unwrap();
        let mut cpu = Cpu::new(&p);
        assert!(matches!(cpu.run_to_halt(10), Err(ExecError::BudgetExhausted(10))));
    }

    #[test]
    fn wild_pc_reported() {
        let p = assemble("jalr x0, x0, 0x8000").unwrap();
        let mut cpu = Cpu::new(&p);
        cpu.step().unwrap();
        assert!(matches!(cpu.step(), Err(ExecError::BadPc(_))));
    }

    #[test]
    fn step_after_halt_is_none() {
        let p = assemble("halt").unwrap();
        let mut cpu = Cpu::new(&p);
        assert!(cpu.step().unwrap().is_some());
        assert!(cpu.step().unwrap().is_none());
        assert!(cpu.halted());
    }

    #[test]
    fn stack_pointer_initialized() {
        let p = assemble("halt").unwrap();
        let cpu = Cpu::new(&p);
        assert_eq!(cpu.xreg(Reg::SP), STACK_BASE as i64);
    }
}
