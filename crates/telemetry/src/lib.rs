//! # tdtm-telemetry — in-run observability for the simulator stack
//!
//! The paper's analysis lives in *inside-the-run* signals: controller
//! error and integral terms, duty-cycle transitions, per-block emergency
//! entry and exit. End-of-run aggregates (`RunReport`) cannot answer "why
//! did the controller saturate at cycle 41 000?" — this crate can. It is
//! std-only and has three independent pieces, bundled by [`Telemetry`]:
//!
//! * [`event`] — a bounded ring-buffer [`EventTrace`] of typed [`Event`]s
//!   (controller samples with P/I/D decomposition, duty-level changes,
//!   per-block emergency/stress edges, sensor reads), with JSONL and CSV
//!   export;
//! * [`registry`] — a [`MetricsRegistry`] of atomic [`Counter`]s and
//!   fixed-bin [`Histogram`]s with plain-data [`RegistrySnapshot`]s that
//!   merge deterministically (the experiment engine merges per-cell
//!   snapshots in cell order, so N-thread grids report byte-identical
//!   telemetry to 1-thread grids);
//! * [`phase`] — a [`PhaseProfile`] of scoped host-time timers (pipeline
//!   stages, thermal step, controller sample, grid cell) for attributing
//!   wall-clock cost;
//! * [`stream`] — incremental fleet observability: [`CellRecord`]s of
//!   completed experiment-grid cells fed to a [`StreamSink`] (JSONL file
//!   or in-memory) with monotone completion stamps, so a live consumer
//!   sees progress as it happens and an N-thread stream sorts back to the
//!   deterministic 1-thread replay.
//!
//! Everything here *observes* — nothing feeds back into the simulation.
//! Consumers keep instrumentation behind `Option`s so a disabled run pays
//! one branch, and an enabled run produces byte-identical simulation
//! results (only host-side timing differs).
//!
//! # Examples
//!
//! ```
//! use tdtm_telemetry::{Event, EventTrace, ThresholdKind};
//!
//! let mut trace = EventTrace::new(4, 1);
//! trace.record(Event::DutyChange { cycle: 999, core: 0, from: 1.0, to: 0.5 });
//! trace.record(Event::ThermalEdge {
//!     cycle: 1_500,
//!     core: 0,
//!     block: 3,
//!     threshold: ThresholdKind::Stress,
//!     entered: true,
//! });
//! assert_eq!(trace.len(), 2);
//! assert!(trace.to_jsonl().lines().count() == 2);
//! ```

pub mod event;
pub mod phase;
pub mod registry;
pub mod stream;

pub use event::{ControllerSample, Event, EventTrace, ThresholdKind};
pub use phase::{Phase, PhaseProfile};
pub use registry::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot};
pub use stream::{CellRecord, JsonlSink, MemorySink, StampedSink, StreamSink};

/// What to collect during a run. Everything defaults to off; a default
/// config produces a [`Telemetry`] that records nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TelemetryConfig {
    /// Event-trace ring capacity and stride; `None` disables the trace.
    pub events: Option<EventTraceConfig>,
    /// Collect the counter/histogram metrics registry.
    pub metrics: bool,
    /// Collect scoped phase timers (host wall-clock attribution).
    pub phases: bool,
}

impl TelemetryConfig {
    /// Everything on, with the given event-ring capacity and stride.
    pub fn full(capacity: usize, stride: u64) -> TelemetryConfig {
        TelemetryConfig {
            events: Some(EventTraceConfig { capacity, stride }),
            metrics: true,
            phases: true,
        }
    }

    /// Metrics and phases only (no event ring) — the cheap configuration
    /// for grid runs.
    pub fn metrics_and_phases() -> TelemetryConfig {
        TelemetryConfig { events: None, metrics: true, phases: true }
    }
}

/// Geometry of the event-trace ring buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventTraceConfig {
    /// Maximum retained events; the oldest are dropped past this.
    pub capacity: usize,
    /// Record dense per-sample events (controller samples, sensor reads)
    /// only on every `stride`-th DTM sample. Sparse edge events (duty
    /// changes, threshold crossings) are always recorded.
    pub stride: u64,
}

/// The collected telemetry of one run: whichever of the three collectors
/// the [`TelemetryConfig`] enabled.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// The typed event trace, if enabled.
    pub events: Option<EventTrace>,
    /// The metrics registry, if enabled.
    pub metrics: Option<MetricsRegistry>,
    /// The phase-timer profile, if enabled.
    pub phases: Option<PhaseProfile>,
}

impl Telemetry {
    /// Builds the collectors a config asks for. The metrics schema is
    /// domain-specific, so the caller supplies the registry constructor;
    /// it is only invoked when `config.metrics` is set.
    pub fn from_config(
        config: &TelemetryConfig,
        registry: impl FnOnce() -> MetricsRegistry,
    ) -> Telemetry {
        Telemetry {
            events: config.events.map(|e| EventTrace::new(e.capacity, e.stride)),
            metrics: if config.metrics { Some(registry()) } else { None },
            phases: if config.phases { Some(PhaseProfile::new()) } else { None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_collects_nothing() {
        let t = Telemetry::from_config(&TelemetryConfig::default(), MetricsRegistry::new);
        assert!(t.events.is_none() && t.metrics.is_none() && t.phases.is_none());
    }

    #[test]
    fn full_config_builds_all_three() {
        let t = Telemetry::from_config(&TelemetryConfig::full(64, 2), || {
            MetricsRegistry::new().with_counter("x")
        });
        assert_eq!(t.events.as_ref().unwrap().stride(), 2);
        assert_eq!(t.metrics.as_ref().unwrap().snapshot().counters.len(), 1);
        assert!(t.phases.is_some());
    }

    #[test]
    fn registry_constructor_lazy() {
        let mut built = false;
        let _ = Telemetry::from_config(&TelemetryConfig::default(), || {
            built = true;
            MetricsRegistry::new()
        });
        assert!(!built, "registry must not be built when metrics are off");
    }
}
