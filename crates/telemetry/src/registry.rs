//! Named atomic counters and fixed-bin histograms.
//!
//! A [`MetricsRegistry`] is built once with a fixed schema (registration
//! order is the schema), updated with relaxed atomics from whichever
//! thread runs the cell, and read out as a plain-data
//! [`RegistrySnapshot`]. Snapshots merge by summation, which commutes —
//! the experiment engine merges per-cell snapshots in cell order, so the
//! merged telemetry of an N-thread grid is identical to a 1-thread grid.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bin histogram over `[lo, hi]` with under/overflow bins.
///
/// Bin `i` covers `[lo + i·w, lo + (i+1)·w)` for width `w = (hi−lo)/n`;
/// the top edge `hi` is inclusive in the last bin (so a duty of exactly
/// 1.0 lands in the top bin, not in overflow). Non-finite values count as
/// overflow.
#[derive(Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Box<[AtomicU64]>,
    underflow: AtomicU64,
    overflow: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad histogram range");
        Histogram {
            lo,
            hi,
            bins: (0..bins).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: f64) {
        if !value.is_finite() || value > self.hi {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        } else if value < self.lo {
            self.underflow.fetch_add(1, Ordering::Relaxed);
        } else {
            let n = self.bins.len();
            let frac = (value - self.lo) / (self.hi - self.lo);
            let idx = ((frac * n as f64) as usize).min(n - 1);
            self.bins[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            lo: self.lo,
            hi: self.hi,
            bins: self.bins.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            underflow: self.underflow.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data histogram state: bin counts plus the range geometry.
#[derive(Clone, PartialEq, Debug)]
pub struct HistogramSnapshot {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper (inclusive) edge of the last bin.
    pub hi: f64,
    /// In-range bin counts.
    pub bins: Vec<u64>,
    /// Values below `lo`.
    pub underflow: u64,
    /// Values above `hi` (and non-finite values).
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Total recorded values, including under/overflow.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bin `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Approximate `p`-quantile (`0.0..=1.0`) as a bin midpoint;
    /// underflow counts as `lo`, overflow as `hi`. `None` when empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        for (i, &b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(self.bin_mid(i));
            }
        }
        Some(self.hi)
    }

    /// Adds another snapshot's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram geometry mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

/// A fixed-schema set of named counters and histograms.
///
/// Names are `&'static str`; registration order defines iteration and
/// snapshot order, so snapshots from registries built by the same
/// constructor always line up.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, Counter)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry; chain [`with_counter`](Self::with_counter) /
    /// [`with_histogram`](Self::with_histogram) to build the schema.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds a counter to the schema.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn with_counter(mut self, name: &'static str) -> MetricsRegistry {
        assert!(
            self.counters.iter().all(|(n, _)| *n != name),
            "duplicate counter {name:?}"
        );
        self.counters.push((name, Counter::new()));
        self
    }

    /// Adds a histogram to the schema.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or bad geometry.
    pub fn with_histogram(
        mut self,
        name: &'static str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> MetricsRegistry {
        assert!(
            self.histograms.iter().all(|(n, _)| *n != name),
            "duplicate histogram {name:?}"
        );
        self.histograms.push((name, Histogram::new(lo, hi, bins)));
        self
    }

    /// The counter registered as `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such counter exists.
    pub fn counter(&self, name: &str) -> &Counter {
        &self
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no counter {name:?}"))
            .1
    }

    /// Index of the histogram registered as `name`, for O(1) hot-loop
    /// access via [`histogram_at`](Self::histogram_at).
    ///
    /// # Panics
    ///
    /// Panics if no such histogram exists.
    pub fn histogram_index(&self, name: &str) -> usize {
        self.histograms
            .iter()
            .position(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no histogram {name:?}"))
    }

    /// The histogram at a [`histogram_index`](Self::histogram_index).
    pub fn histogram_at(&self, index: usize) -> &Histogram {
        &self.histograms[index].1
    }

    /// The histogram registered as `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such histogram exists.
    pub fn histogram(&self, name: &str) -> &Histogram {
        self.histogram_at(self.histogram_index(name))
    }

    /// A plain-data copy of every metric, in registration order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.iter().map(|(n, c)| (*n, c.get())).collect(),
            histograms: self.histograms.iter().map(|(n, h)| (*n, h.snapshot())).collect(),
        }
    }
}

/// Plain-data registry state; merges by summation, deterministically.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` per counter, in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, state)` per histogram, in registration order.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The value of counter `name`, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// The snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Adds another snapshot's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn merge_from(&mut self, other: &RegistrySnapshot) {
        assert_eq!(self.counters.len(), other.counters.len(), "counter schema mismatch");
        for ((an, av), (bn, bv)) in self.counters.iter_mut().zip(&other.counters) {
            assert_eq!(*an, *bn, "counter schema mismatch");
            *av += bv;
        }
        assert_eq!(self.histograms.len(), other.histograms.len(), "histogram schema mismatch");
        for ((an, ah), (bn, bh)) in self.histograms.iter_mut().zip(&other.histograms) {
            assert_eq!(*an, *bn, "histogram schema mismatch");
            ah.merge_from(bh);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new()
            .with_counter("cycles")
            .with_counter("samples")
            .with_histogram("temp", 100.0, 120.0, 20)
    }

    #[test]
    fn counters_accumulate() {
        let r = registry();
        r.counter("cycles").add(10);
        r.counter("cycles").inc();
        assert_eq!(r.counter("cycles").get(), 11);
        assert_eq!(r.counter("samples").get(), 0);
    }

    #[test]
    fn histogram_bins_values_with_inclusive_top_edge() {
        let h = Histogram::new(0.0, 1.0, 8);
        h.record(0.0); // bin 0
        h.record(0.99); // bin 7
        h.record(1.0); // top edge: bin 7, not overflow
        h.record(1.01); // overflow
        h.record(-0.1); // underflow
        h.record(f64::NAN); // overflow
        let s = h.snapshot();
        assert_eq!(s.bins[0], 1);
        assert_eq!(s.bins[7], 2);
        assert_eq!(s.overflow, 2);
        assert_eq!(s.underflow, 1);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn quantiles_walk_the_bins() {
        let h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..90 {
            h.record(1.5);
        }
        for _ in 0..10 {
            h.record(8.5);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(1.5));
        assert_eq!(s.quantile(0.95), Some(8.5));
        assert_eq!(Histogram::new(0.0, 1.0, 2).snapshot().quantile(0.5), None);
    }

    #[test]
    fn snapshots_merge_by_summation() {
        let a = registry();
        let b = registry();
        a.counter("cycles").add(5);
        b.counter("cycles").add(7);
        a.histogram("temp").record(105.0);
        b.histogram("temp").record(105.0);
        b.histogram("temp").record(119.9);
        let mut m = a.snapshot();
        m.merge_from(&b.snapshot());
        assert_eq!(m.counter("cycles"), 12);
        assert_eq!(m.histogram("temp").unwrap().count(), 3);
        // Merge order does not matter.
        let mut m2 = b.snapshot();
        m2.merge_from(&a.snapshot());
        assert_eq!(m, m2);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn mismatched_schemas_refuse_to_merge() {
        let mut a = registry().snapshot();
        let b = MetricsRegistry::new().with_counter("other").snapshot();
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "duplicate counter")]
    fn duplicate_names_rejected() {
        let _ = MetricsRegistry::new().with_counter("x").with_counter("x");
    }
}
