//! Scoped phase timers: where does host wall-clock time go?
//!
//! A [`PhaseProfile`] accumulates nanoseconds and call counts per
//! [`Phase`]. Hot loops usually time a whole batch with one
//! `Instant::now()` pair and deposit it via [`PhaseProfile::add`]; the
//! convenience [`PhaseProfile::time`] wraps a single closure. Phase
//! timings are host-side observations only — they never feed back into
//! the simulation, and they are intentionally excluded from determinism
//! comparisons.

use std::time::Instant;

/// The instrumented phases of a run, from pipeline stages up to whole
/// grid cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Phase {
    /// Pipeline commit stage.
    Commit,
    /// Pipeline writeback stage.
    Writeback,
    /// Pipeline issue stage.
    Issue,
    /// Pipeline dispatch stage.
    Dispatch,
    /// Pipeline decode stage.
    Decode,
    /// Pipeline fetch stage.
    Fetch,
    /// Per-cycle power accounting.
    Power,
    /// Thermal-RC model step.
    ThermalStep,
    /// DTM sensor read + controller sample + actuation.
    Controller,
    /// One whole workload×policy grid cell.
    GridCell,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 10] = [
        Phase::Commit,
        Phase::Writeback,
        Phase::Issue,
        Phase::Dispatch,
        Phase::Decode,
        Phase::Fetch,
        Phase::Power,
        Phase::ThermalStep,
        Phase::Controller,
        Phase::GridCell,
    ];

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Commit => "commit",
            Phase::Writeback => "writeback",
            Phase::Issue => "issue",
            Phase::Dispatch => "dispatch",
            Phase::Decode => "decode",
            Phase::Fetch => "fetch",
            Phase::Power => "power",
            Phase::ThermalStep => "thermal_step",
            Phase::Controller => "controller",
            Phase::GridCell => "grid_cell",
        }
    }
}

/// Accumulated host time and call counts per [`Phase`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PhaseProfile {
    nanos: [u64; 10],
    calls: [u64; 10],
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> PhaseProfile {
        PhaseProfile::default()
    }

    /// Times one closure under `phase`.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed().as_nanos() as u64, 1);
        out
    }

    /// Deposits pre-measured time: `nanos` spent across `calls`
    /// invocations of `phase`.
    pub fn add(&mut self, phase: Phase, nanos: u64, calls: u64) {
        self.nanos[phase as usize] += nanos;
        self.calls[phase as usize] += calls;
    }

    /// Total nanoseconds recorded for `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Invocations recorded for `phase`.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase as usize]
    }

    /// Sum of all phase nanoseconds. Phases may nest (a grid cell
    /// contains thermal steps), so this can exceed real elapsed time.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Adds another profile's accumulations into this one.
    pub fn merge_from(&mut self, other: &PhaseProfile) {
        for i in 0..self.nanos.len() {
            self.nanos[i] += other.nanos[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Renders a fixed-width table of the non-empty phases:
    /// label, total ms, calls, and mean ns/call.
    pub fn render_table(&self) -> String {
        let mut out = String::from("phase         total_ms      calls     ns/call\n");
        for phase in Phase::ALL {
            let (n, c) = (self.nanos(phase), self.calls(phase));
            if c == 0 && n == 0 {
                continue;
            }
            let per = if c > 0 { n as f64 / c as f64 } else { 0.0 };
            out.push_str(&format!(
                "{:<12} {:>10.3} {:>10} {:>11.1}\n",
                phase.label(),
                n as f64 / 1e6,
                c,
                per
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_nanos_and_calls() {
        let mut p = PhaseProfile::new();
        let v = p.time(Phase::ThermalStep, || 42);
        assert_eq!(v, 42);
        p.time(Phase::ThermalStep, || ());
        assert_eq!(p.calls(Phase::ThermalStep), 2);
        assert_eq!(p.calls(Phase::Fetch), 0);
    }

    #[test]
    fn add_deposits_batched_time() {
        let mut p = PhaseProfile::new();
        p.add(Phase::Fetch, 1_000, 10);
        p.add(Phase::Fetch, 500, 5);
        assert_eq!(p.nanos(Phase::Fetch), 1_500);
        assert_eq!(p.calls(Phase::Fetch), 15);
        assert_eq!(p.total_nanos(), 1_500);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = PhaseProfile::new();
        a.add(Phase::GridCell, 100, 1);
        let mut b = PhaseProfile::new();
        b.add(Phase::GridCell, 200, 1);
        b.add(Phase::Controller, 50, 2);
        a.merge_from(&b);
        assert_eq!(a.nanos(Phase::GridCell), 300);
        assert_eq!(a.calls(Phase::GridCell), 2);
        assert_eq!(a.nanos(Phase::Controller), 50);
    }

    #[test]
    fn render_table_skips_empty_phases() {
        let mut p = PhaseProfile::new();
        p.add(Phase::ThermalStep, 2_000_000, 1_000);
        let table = p.render_table();
        assert!(table.contains("thermal_step"));
        assert!(!table.contains("fetch"));
        assert!(table.lines().count() == 2);
    }
}
