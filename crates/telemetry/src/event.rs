//! Typed in-run events and the bounded ring buffer that holds them.
//!
//! Events are the signals the paper reads off its own traces: what the
//! controller computed each sample (error, P/I/D decomposition, pre- and
//! post-clamp integral, saturation), when the actuator's duty level
//! actually moved, and when each block crossed the stress or emergency
//! threshold. Every event is tagged with the core it happened on (core 0
//! on the single-core path), and two chip-level kinds cover hierarchical
//! DTM: [`Event::SupervisorCap`] records a supervisor duty-ceiling
//! decision and [`Event::Park`] a core's park/unpark transition. The ring
//! is bounded, so a trillion-cycle run with a 64 Ki ring keeps the most
//! recent window instead of eating the heap; dropped events are counted,
//! never silently lost.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// One controller invocation's internals, as recorded per block per DTM
/// sample (mirrors `tdtm_control::pid::PidSample`, plus the block index).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ControllerSample {
    /// Thermal block this controller instance watches.
    pub block: usize,
    /// Input error `setpoint − T_sensed` (K).
    pub error: f64,
    /// Proportional term `Kp·e`.
    pub p_term: f64,
    /// Integral term `Ki·∫e` (post-clamp).
    pub i_term: f64,
    /// Derivative term `Kd·de/dt`.
    pub d_term: f64,
    /// Accumulated integral before the anti-windup clamps were applied.
    pub integral_pre_clamp: f64,
    /// Accumulated integral after clamping (the retained state).
    pub integral: f64,
    /// Clamped controller output (the actuator command).
    pub output: f64,
    /// Whether the raw output exceeded the actuator range this sample.
    pub saturated: bool,
}

/// Which threshold a [`Event::ThermalEdge`] crossed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThresholdKind {
    /// The hard emergency threshold (the paper's 111 °C).
    Emergency,
    /// The stress threshold (emergency − 1 K).
    Stress,
}

impl ThresholdKind {
    /// Stable label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            ThresholdKind::Emergency => "emergency",
            ThresholdKind::Stress => "stress",
        }
    }
}

/// A typed in-run event, stamped with the absolute simulation cycle
/// (warmup cycles included — cycle numbers match the simulator's own)
/// and the core it happened on (0 on the single-core path).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Event {
    /// One per-block controller invocation (strided).
    Controller {
        /// Simulation cycle of the DTM sample.
        cycle: u64,
        /// Core whose policy sampled.
        core: usize,
        /// The controller internals.
        sample: ControllerSample,
    },
    /// The applied fetch-duty level changed.
    DutyChange {
        /// Cycle the new command was applied.
        cycle: u64,
        /// Core whose actuator moved.
        core: usize,
        /// Previous duty level.
        from: f64,
        /// New duty level.
        to: f64,
    },
    /// A block crossed the stress or emergency threshold (either way).
    ThermalEdge {
        /// Cycle of the crossing.
        cycle: u64,
        /// Core the block belongs to.
        core: usize,
        /// Block index.
        block: usize,
        /// Which threshold.
        threshold: ThresholdKind,
        /// `true` on entry (got hotter than the threshold), `false` on exit.
        entered: bool,
    },
    /// One sensor reading fed to the policy (strided).
    SensorRead {
        /// Cycle of the DTM sample.
        cycle: u64,
        /// Core whose sensor was read.
        core: usize,
        /// Block index.
        block: usize,
        /// The (possibly noisy/quantized) sensed temperature (°C).
        reading: f64,
    },
    /// The chip supervisor lowered a core's duty ceiling below 1.0
    /// (hierarchical DTM; one event per capped core per interval).
    SupervisorCap {
        /// Cycle of the DTM sample the cap was decided on.
        cycle: u64,
        /// The capped core.
        core: usize,
        /// The core's hottest sensed temperature that triggered the cap
        /// (°C).
        hottest: f64,
        /// The duty ceiling imposed on the core's command.
        cap: f64,
    },
    /// A core parked (hit its stop condition and froze) or unparked.
    Park {
        /// Cycle of the transition.
        cycle: u64,
        /// The core.
        core: usize,
        /// `true` when the core parked, `false` when it resumed.
        parked: bool,
    },
}

impl Event {
    /// Stable kind tag used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Controller { .. } => "controller",
            Event::DutyChange { .. } => "duty_change",
            Event::ThermalEdge { .. } => "thermal_edge",
            Event::SensorRead { .. } => "sensor_read",
            Event::SupervisorCap { .. } => "supervisor_cap",
            Event::Park { .. } => "park",
        }
    }

    /// The simulation cycle the event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::Controller { cycle, .. }
            | Event::DutyChange { cycle, .. }
            | Event::ThermalEdge { cycle, .. }
            | Event::SensorRead { cycle, .. }
            | Event::SupervisorCap { cycle, .. }
            | Event::Park { cycle, .. } => cycle,
        }
    }

    /// The core the event is tagged with (0 on the single-core path).
    pub fn core(&self) -> usize {
        match *self {
            Event::Controller { core, .. }
            | Event::DutyChange { core, .. }
            | Event::ThermalEdge { core, .. }
            | Event::SensorRead { core, .. }
            | Event::SupervisorCap { core, .. }
            | Event::Park { core, .. } => core,
        }
    }

    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"kind\":\"{}\",\"cycle\":{},\"core\":{}",
            self.kind(),
            self.cycle(),
            self.core()
        );
        match *self {
            Event::Controller { sample: c, .. } => {
                let _ = write!(
                    s,
                    ",\"block\":{},\"error\":{},\"p_term\":{},\"i_term\":{},\"d_term\":{},\
                     \"integral_pre_clamp\":{},\"integral\":{},\"output\":{},\"saturated\":{}",
                    c.block,
                    json_f64(c.error),
                    json_f64(c.p_term),
                    json_f64(c.i_term),
                    json_f64(c.d_term),
                    json_f64(c.integral_pre_clamp),
                    json_f64(c.integral),
                    json_f64(c.output),
                    c.saturated,
                );
            }
            Event::DutyChange { from, to, .. } => {
                let _ = write!(s, ",\"from\":{},\"to\":{}", json_f64(from), json_f64(to));
            }
            Event::ThermalEdge { block, threshold, entered, .. } => {
                let _ = write!(
                    s,
                    ",\"block\":{},\"threshold\":\"{}\",\"entered\":{}",
                    block,
                    threshold.label(),
                    entered
                );
            }
            Event::SensorRead { block, reading, .. } => {
                let _ = write!(s, ",\"block\":{},\"reading\":{}", block, json_f64(reading));
            }
            Event::SupervisorCap { hottest, cap, .. } => {
                let _ = write!(s, ",\"hottest\":{},\"cap\":{}", json_f64(hottest), json_f64(cap));
            }
            Event::Park { parked, .. } => {
                let _ = write!(s, ",\"parked\":{parked}");
            }
        }
        s.push('}');
        s
    }

    /// One CSV row matching [`EventTrace::CSV_HEADER`]; absent fields are
    /// empty cells. Supervisor caps put the triggering temperature in the
    /// `reading` column (it is a sensed temperature) and the ceiling in
    /// `cap`.
    pub fn to_csv_row(&self) -> String {
        // kind,cycle,core,block,error,p_term,i_term,d_term,
        // integral_pre_clamp,integral,output,saturated,duty_from,duty_to,
        // threshold,entered,reading,cap,parked
        let mut cells: [String; 19] = std::array::from_fn(|_| String::new());
        cells[0] = self.kind().to_string();
        cells[1] = self.cycle().to_string();
        cells[2] = self.core().to_string();
        match *self {
            Event::Controller { sample: c, .. } => {
                cells[3] = c.block.to_string();
                cells[4] = c.error.to_string();
                cells[5] = c.p_term.to_string();
                cells[6] = c.i_term.to_string();
                cells[7] = c.d_term.to_string();
                cells[8] = c.integral_pre_clamp.to_string();
                cells[9] = c.integral.to_string();
                cells[10] = c.output.to_string();
                cells[11] = c.saturated.to_string();
            }
            Event::DutyChange { from, to, .. } => {
                cells[12] = from.to_string();
                cells[13] = to.to_string();
            }
            Event::ThermalEdge { block, threshold, entered, .. } => {
                cells[3] = block.to_string();
                cells[14] = threshold.label().to_string();
                cells[15] = entered.to_string();
            }
            Event::SensorRead { block, reading, .. } => {
                cells[3] = block.to_string();
                cells[16] = reading.to_string();
            }
            Event::SupervisorCap { hottest, cap, .. } => {
                cells[16] = hottest.to_string();
                cells[17] = cap.to_string();
            }
            Event::Park { parked, .. } => {
                cells[18] = parked.to_string();
            }
        }
        cells.join(",")
    }
}

/// JSON-safe float formatting (JSON has no NaN/Infinity literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A bounded ring buffer of [`Event`]s with a sampling stride for the
/// dense event kinds.
///
/// The ring keeps the most recent `capacity` events; older ones are
/// dropped (and counted in [`dropped`](EventTrace::dropped)) — the recent
/// window is what post-mortem controller analysis needs.
#[derive(Clone, Debug)]
pub struct EventTrace {
    capacity: usize,
    stride: u64,
    events: VecDeque<Event>,
    recorded: u64,
    dropped: u64,
}

impl EventTrace {
    /// Header row for [`to_csv`](EventTrace::to_csv).
    pub const CSV_HEADER: &'static str = "kind,cycle,core,block,error,p_term,i_term,d_term,\
         integral_pre_clamp,integral,output,saturated,duty_from,duty_to,threshold,entered,\
         reading,cap,parked";

    /// Creates an empty trace retaining at most `capacity` events and
    /// sampling dense events every `stride`-th DTM sample.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `stride` is zero.
    pub fn new(capacity: usize, stride: u64) -> EventTrace {
        assert!(capacity > 0, "event ring needs nonzero capacity");
        assert!(stride > 0, "event stride must be nonzero");
        EventTrace {
            capacity,
            stride,
            events: VecDeque::with_capacity(capacity.min(4096)),
            recorded: 0,
            dropped: 0,
        }
    }

    /// The configured stride for dense events.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Whether dense events are due on the `index`-th DTM sample
    /// (0-based): every `stride`-th sample.
    pub fn sample_due(&self, index: u64) -> bool {
        index.is_multiple_of(self.stride)
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events as JSON Lines (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// The retained events as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_csv_row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller_event(cycle: u64) -> Event {
        Event::Controller {
            cycle,
            core: 0,
            sample: ControllerSample {
                block: 5,
                error: -0.25,
                p_term: -1.4,
                i_term: 0.9,
                d_term: 0.0,
                integral_pre_clamp: 0.3,
                integral: 0.125,
                output: 0.0,
                saturated: true,
            },
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = EventTrace::new(3, 1);
        for c in 0..5 {
            t.record(Event::DutyChange { cycle: c, core: 0, from: 1.0, to: 0.5 });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<u64> = t.iter().map(Event::cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn stride_gates_dense_samples() {
        let t = EventTrace::new(8, 4);
        assert!(t.sample_due(0));
        assert!(!t.sample_due(1));
        assert!(!t.sample_due(3));
        assert!(t.sample_due(4));
        assert!(t.sample_due(8));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = EventTrace::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = EventTrace::new(8, 0);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let mut t = EventTrace::new(8, 1);
        t.record(controller_event(1000));
        t.record(Event::ThermalEdge {
            cycle: 1200,
            core: 1,
            block: 3,
            threshold: ThresholdKind::Emergency,
            entered: true,
        });
        t.record(Event::SensorRead { cycle: 2000, core: 0, block: 0, reading: 108.5 });
        t.record(Event::SupervisorCap { cycle: 3000, core: 2, hottest: 111.25, cap: 0.5 });
        t.record(Event::Park { cycle: 4000, core: 3, parked: true });
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            // Balanced quotes and no raw NaN tokens.
            assert_eq!(line.matches('"').count() % 2, 0);
            assert!(!line.contains("NaN"));
        }
        assert!(lines[0].contains("\"kind\":\"controller\""));
        assert!(lines[0].contains("\"core\":0"));
        assert!(lines[0].contains("\"saturated\":true"));
        assert!(lines[1].contains("\"threshold\":\"emergency\""));
        assert!(lines[1].contains("\"core\":1"));
        assert!(lines[2].contains("\"reading\":108.5"));
        assert!(lines[3].contains("\"kind\":\"supervisor_cap\""));
        assert!(lines[3].contains("\"hottest\":111.25"));
        assert!(lines[3].contains("\"cap\":0.5"));
        assert!(lines[4].contains("\"kind\":\"park\""));
        assert!(lines[4].contains("\"parked\":true"));
    }

    #[test]
    fn nonfinite_floats_export_as_null() {
        let e = Event::SensorRead { cycle: 1, core: 0, block: 0, reading: f64::NEG_INFINITY };
        assert!(e.to_json().contains("\"reading\":null"));
    }

    #[test]
    fn csv_rows_match_header_width() {
        let mut t = EventTrace::new(8, 1);
        t.record(controller_event(10));
        t.record(Event::DutyChange { cycle: 20, core: 1, from: 1.0, to: 0.875 });
        t.record(Event::SupervisorCap { cycle: 30, core: 2, hottest: 110.5, cap: 0.75 });
        t.record(Event::Park { cycle: 40, core: 3, parked: false });
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let w = header.split(',').count();
        assert_eq!(w, 19);
        for row in lines {
            assert_eq!(row.split(',').count(), w, "row: {row}");
        }
        assert!(csv.contains("duty_change,20,1,,,,,,,,,,1,0.875,,,,,"));
        assert!(csv.contains("supervisor_cap,30,2,,,,,,,,,,,,,,110.5,0.75,"));
        assert!(csv.contains("park,40,3,,,,,,,,,,,,,,,,false"));
    }
}
