//! Incremental fleet observability: per-cell stream records and sinks.
//!
//! A long experiment grid is opaque until it finishes — this module makes
//! progress observable *while it runs*. As each cell completes, the engine
//! builds a [`CellRecord`] (identity, deterministic run results, a merged
//! metric snapshot, and host wall time) and emits it to a [`StreamSink`]:
//! [`JsonlSink`] appends one JSON object per line to a writer (tailable
//! with standard tools), [`MemorySink`] retains records in memory for
//! tests and in-process consumers.
//!
//! ## Ordering contract
//!
//! Records are emitted in *completion* order, which under N worker
//! threads is nondeterministic. [`StampedSink`] therefore assigns each
//! record a monotone `seq` **under the same lock that serializes the
//! emit**, so the stream's physical order always matches its `seq` order.
//! The deterministic replay guarantee is: sort any N-thread stream by
//! cell `index` and its deterministic fields (everything except `seq`,
//! `wall_seconds`, and `elapsed_seconds`; see
//! [`CellRecord::deterministic_eq`]) are byte-identical to a 1-thread
//! run's stream, which completes cells in index order already. Pinned by
//! `tests/observability.rs`.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One completed experiment-grid cell, as streamed to a [`StreamSink`].
///
/// Plain data only (no simulator types): the record is the wire format,
/// so it must be constructible from a parsed JSONL line alone.
///
/// `seq`, `wall_seconds`, and `elapsed_seconds` are host-side and
/// **nondeterministic** across thread counts; every other field is a
/// deterministic function of the cell's configuration.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CellRecord {
    /// Monotone completion stamp (0-based) assigned at emit time.
    pub seq: u64,
    /// The cell's index in grid order (workload-major).
    pub index: usize,
    /// Human-readable cell label, e.g. `gcc/pid`.
    pub label: String,
    /// Workload (benchmark) name.
    pub bench: String,
    /// DTM policy name.
    pub policy: String,
    /// Simulation variant, e.g. `single` or `chip4+sup`.
    pub variant: String,
    /// Host wall-clock seconds the cell took (nondeterministic).
    pub wall_seconds: f64,
    /// Host wall-clock seconds from grid start to this record's emission,
    /// stamped by [`StampedSink`] under the emit lock — monotone
    /// nondecreasing along the stream, so the last record's value is the
    /// grid's total wall time (nondeterministic). `0.0` when the stream
    /// predates the field or was built without a stamping sink.
    pub elapsed_seconds: f64,
    /// Thermal solver steps taken.
    pub thermal_steps: u64,
    /// Instructions committed.
    pub committed: u64,
    /// DTM controller samples taken.
    pub dtm_samples: u64,
    /// Committed instructions per simulated cycle.
    pub ipc: f64,
    /// Cycles any block spent above the emergency threshold (chip-wide
    /// for multicore cells).
    pub emergency_cycles: u64,
    /// Cycles any block spent above the stress threshold.
    pub stress_cycles: u64,
    /// Name of the block with the highest peak temperature.
    pub hottest_block: String,
    /// That block's peak temperature (°C).
    pub hottest_temp_c: f64,
    /// Merged per-cell counter snapshot, in registry (schema) order.
    pub metrics: Vec<(String, u64)>,
    /// Result-cache provenance: `None` when the grid ran without a cache
    /// (the field is omitted from JSON, keeping legacy streams
    /// byte-identical), `Some(false)` for a freshly simulated cell, and
    /// `Some(true)` for a cell replayed from the content-addressed cache.
    /// Host-side provenance, not simulation output — excluded from
    /// [`deterministic_eq`](CellRecord::deterministic_eq).
    pub cached: Option<bool>,
}

impl CellRecord {
    /// Compares the deterministic fields only — everything except `seq`,
    /// `wall_seconds`, and `elapsed_seconds`, which are host-side and
    /// vary across thread counts and machines. This is the equality the
    /// stream-determinism pin uses; see the module docs for the contract.
    pub fn deterministic_eq(&self, other: &CellRecord) -> bool {
        self.index == other.index
            && self.label == other.label
            && self.bench == other.bench
            && self.policy == other.policy
            && self.variant == other.variant
            && self.thermal_steps == other.thermal_steps
            && self.committed == other.committed
            && self.dtm_samples == other.dtm_samples
            && self.ipc.to_bits() == other.ipc.to_bits()
            && self.emergency_cycles == other.emergency_cycles
            && self.stress_cycles == other.stress_cycles
            && self.hottest_block == other.hottest_block
            && self.hottest_temp_c.to_bits() == other.hottest_temp_c.to_bits()
            && self.metrics == other.metrics
    }

    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"seq\":{},\"index\":{},\"label\":{},\"bench\":{},\"policy\":{},\"variant\":{},\
             \"wall_seconds\":{},\"elapsed_seconds\":{},\"thermal_steps\":{},\"committed\":{},\"dtm_samples\":{},\
             \"ipc\":{},\"emergency_cycles\":{},\"stress_cycles\":{},\"hottest_block\":{},\
             \"hottest_temp_c\":{}",
            self.seq,
            self.index,
            json_str(&self.label),
            json_str(&self.bench),
            json_str(&self.policy),
            json_str(&self.variant),
            json_f64(self.wall_seconds),
            json_f64(self.elapsed_seconds),
            self.thermal_steps,
            self.committed,
            self.dtm_samples,
            json_f64(self.ipc),
            self.emergency_cycles,
            self.stress_cycles,
            json_str(&self.hottest_block),
            json_f64(self.hottest_temp_c),
        );
        // Emitted only when a cache was in play: cache-off streams stay
        // byte-identical to streams written before the field existed.
        if let Some(cached) = self.cached {
            let _ = write!(s, ",\"cached\":{cached}");
        }
        s.push_str(",\"metrics\":{");
        for (i, (name, count)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{}", json_str(name), count);
        }
        s.push_str("}}");
        s
    }

    /// Parses one JSON object produced by [`to_json`](CellRecord::to_json).
    ///
    /// Unknown keys are ignored (forward compatibility); missing keys keep
    /// their [`Default`] value. Errors on malformed JSON or a field of the
    /// wrong type.
    pub fn from_json(line: &str) -> Result<CellRecord, String> {
        CellRecord::from_value(&json::parse(line)?)
    }

    /// Builds a record from an already-parsed [`json::Value`] — the hook
    /// for container formats that embed a record inside a larger object
    /// (e.g. the result cache's on-disk artifact entries). Same rules as
    /// [`from_json`](CellRecord::from_json).
    pub fn from_value(value: &json::Value) -> Result<CellRecord, String> {
        let obj = value.as_object().ok_or("top level is not an object")?;
        let mut r = CellRecord::default();
        for (key, v) in obj {
            match key.as_str() {
                "seq" => r.seq = v.as_u64().ok_or("seq: not a u64")?,
                "index" => r.index = v.as_u64().ok_or("index: not a u64")? as usize,
                "label" => r.label = v.as_str().ok_or("label: not a string")?.to_string(),
                "bench" => r.bench = v.as_str().ok_or("bench: not a string")?.to_string(),
                "policy" => r.policy = v.as_str().ok_or("policy: not a string")?.to_string(),
                "variant" => r.variant = v.as_str().ok_or("variant: not a string")?.to_string(),
                "wall_seconds" => r.wall_seconds = v.as_f64().ok_or("wall_seconds: not a number")?,
                "elapsed_seconds" => {
                    r.elapsed_seconds = v.as_f64().ok_or("elapsed_seconds: not a number")?
                }
                "thermal_steps" => {
                    r.thermal_steps = v.as_u64().ok_or("thermal_steps: not a u64")?
                }
                "committed" => r.committed = v.as_u64().ok_or("committed: not a u64")?,
                "dtm_samples" => r.dtm_samples = v.as_u64().ok_or("dtm_samples: not a u64")?,
                "ipc" => r.ipc = v.as_f64().ok_or("ipc: not a number")?,
                "emergency_cycles" => {
                    r.emergency_cycles = v.as_u64().ok_or("emergency_cycles: not a u64")?
                }
                "stress_cycles" => {
                    r.stress_cycles = v.as_u64().ok_or("stress_cycles: not a u64")?
                }
                "hottest_block" => {
                    r.hottest_block = v.as_str().ok_or("hottest_block: not a string")?.to_string()
                }
                "hottest_temp_c" => {
                    r.hottest_temp_c = v.as_f64().ok_or("hottest_temp_c: not a number")?
                }
                "cached" => r.cached = Some(v.as_bool().ok_or("cached: not a bool")?),
                "metrics" => {
                    let m = v.as_object().ok_or("metrics: not an object")?;
                    r.metrics = m
                        .iter()
                        .map(|(name, count)| {
                            count
                                .as_u64()
                                .map(|c| (name.clone(), c))
                                .ok_or_else(|| format!("metrics.{name}: not a u64"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                _ => {} // forward compatibility
            }
        }
        Ok(r)
    }

    /// Parses a whole JSONL stream (blank lines skipped), in file order.
    pub fn parse_jsonl(text: &str) -> Result<Vec<CellRecord>, String> {
        text.lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| {
                CellRecord::from_json(l).map_err(|e| format!("line {}: {e}", i + 1))
            })
            .collect()
    }
}

/// JSON string literal with the escapes our labels can contain. Public so
/// other crates' artifact serializers (e.g. the result cache in
/// `tdtm-core`) share one escaping convention with the stream format.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON-safe float formatting (JSON has no NaN/Infinity literals).
/// Finite values use Rust's shortest round-trip rendering, so parsing the
/// emitted literal recovers the exact bit pattern; non-finite values
/// become `null`, which [`json::Value::as_f64`] reads back as NaN.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal recursive-descent parser for the JSON subset this crate emits:
/// objects, arrays, strings, numbers, booleans, null. No external
/// dependencies — the workspace is std-only and offline. Public so other
/// crates' artifact formats (e.g. the `tdtm-core` result cache and the
/// compact-model store) can parse without a second JSON implementation.
pub mod json {
    /// Parsed JSON value (subset; arrays are accepted but only as opaque
    /// nesting — the stream format does not use them).
    #[derive(Clone, PartialEq, Debug)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The object's key/value pairs, in source order.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        /// The array's items, in source order.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The string's contents.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// A boolean literal.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// A number; `null` reads as NaN (the emit side writes non-finite
        /// floats as `null`).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                // to_json writes non-finite floats as null.
                Value::Null => Some(f64::NAN),
                _ => None,
            }
        }

        /// A non-negative integer that fits a `u64` exactly.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    /// Parses one complete JSON value; trailing input is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos).map(Value::Str),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}", pos = *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}", pos = *pos));
            }
            *pos += 1;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are valid).
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

/// A consumer of completed-cell records. Implementations must be [`Send`]
/// so one sink (behind [`StampedSink`]'s lock) can serve all grid worker
/// threads.
pub trait StreamSink: Send {
    /// Accepts one completed cell. Called in completion order with the
    /// record's `seq` already assigned.
    fn emit(&mut self, record: &CellRecord);
}

/// Retains every emitted record in memory (tests, in-process consumers).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Emitted records, in emit (= `seq`) order.
    pub records: Vec<CellRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }
}

impl StreamSink for MemorySink {
    fn emit(&mut self, record: &CellRecord) {
        self.records.push(record.clone());
    }
}

/// Appends one JSON object per line to a writer, flushing after each
/// record so a tailing consumer sees cells as they complete.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and streams records into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink { writer: BufWriter::new(File::create(path)?) })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Streams records into an arbitrary writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer }
    }

    /// Consumes the sink and returns the writer (e.g. to inspect an
    /// in-memory `Vec<u8>` buffer).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> StreamSink for JsonlSink<W> {
    fn emit(&mut self, record: &CellRecord) {
        // Stream sinks are observability, not ground truth: an I/O error
        // must not abort the science run, so it is reported and the run
        // continues (matching how figure binaries treat stdout).
        if let Err(e) = writeln!(self.writer, "{}", record.to_json()).and_then(|()| self.writer.flush())
        {
            eprintln!("stream sink write failed: {e}");
        }
    }
}

/// Serializes concurrent emits and assigns each record its monotone
/// `seq` stamp *under the same lock*, so the sink's physical order always
/// equals `seq` order even when N worker threads race to emit. The same
/// lock stamps `elapsed_seconds` (time since the sink was created, i.e.
/// grid start), which is therefore monotone nondecreasing along the
/// stream.
pub struct StampedSink<'a> {
    inner: Mutex<StampState<'a>>,
    started: std::time::Instant,
}

struct StampState<'a> {
    next: u64,
    sink: &'a mut dyn StreamSink,
}

impl<'a> StampedSink<'a> {
    /// Wraps a sink; stamps start at 0 and the elapsed clock starts now.
    pub fn new(sink: &'a mut dyn StreamSink) -> StampedSink<'a> {
        StampedSink {
            inner: Mutex::new(StampState { next: 0, sink }),
            started: std::time::Instant::now(),
        }
    }

    /// Stamps `record.seq` and `record.elapsed_seconds` and forwards the
    /// record to the wrapped sink, atomically. Returns the assigned stamp.
    pub fn emit(&self, record: &mut CellRecord) -> u64 {
        let mut st = self.inner.lock().expect("stream sink lock poisoned");
        record.seq = st.next;
        record.elapsed_seconds = self.started.elapsed().as_secs_f64();
        st.next += 1;
        st.sink.emit(record);
        record.seq
    }

    /// Number of records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.inner.lock().expect("stream sink lock poisoned").next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(index: usize) -> CellRecord {
        CellRecord {
            seq: 0,
            index,
            label: format!("gcc/pid#{index}"),
            bench: "gcc".to_string(),
            policy: "pid".to_string(),
            variant: "single".to_string(),
            wall_seconds: 0.25,
            elapsed_seconds: 0.75,
            thermal_steps: 1200,
            committed: 120_000,
            dtm_samples: 12,
            ipc: 0.8125,
            emergency_cycles: 40,
            stress_cycles: 380,
            hottest_block: "IntReg".to_string(),
            hottest_temp_c: 112.625,
            metrics: vec![("sim_runs".to_string(), 1), ("cycles".to_string(), 147_692)],
            cached: None,
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = sample(3);
        let parsed = CellRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn roundtrip_with_escapes_and_nonfinite() {
        let mut r = sample(0);
        r.label = "odd \"label\"\\with\nescapes".to_string();
        r.wall_seconds = f64::NAN; // non-finite → null → NaN
        let parsed = CellRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.label, r.label);
        assert!(parsed.wall_seconds.is_nan());
        assert!(parsed.deterministic_eq(&r), "NaN wall time must not break det-eq");
    }

    #[test]
    fn deterministic_eq_ignores_seq_and_wall() {
        let a = sample(1);
        let mut b = sample(1);
        b.seq = 99;
        b.wall_seconds = 123.0;
        b.elapsed_seconds = 456.0;
        assert!(a.deterministic_eq(&b));
        assert_ne!(a, b, "full equality still sees the host-side fields");
        b.committed += 1;
        assert!(!a.deterministic_eq(&b));
    }

    #[test]
    fn cached_field_is_omitted_when_none_and_roundtrips_when_some() {
        let r = sample(2);
        assert!(!r.to_json().contains("\"cached\""), "None must keep legacy wire format");
        assert_eq!(CellRecord::from_json(&r.to_json()).unwrap().cached, None);
        for flag in [false, true] {
            let mut c = sample(2);
            c.cached = Some(flag);
            let line = c.to_json();
            assert!(line.contains(&format!("\"cached\":{flag}")), "line: {line}");
            let parsed = CellRecord::from_json(&line).unwrap();
            assert_eq!(parsed, c);
        }
    }

    #[test]
    fn deterministic_eq_ignores_cache_provenance() {
        let a = sample(4);
        let mut b = sample(4);
        b.cached = Some(true);
        assert!(a.deterministic_eq(&b), "a cache hit replays the same deterministic cell");
        assert_ne!(a, b, "full equality still sees provenance");
    }

    #[test]
    fn unknown_keys_ignored_and_missing_keys_default() {
        let r =
            CellRecord::from_json("{\"index\":7,\"future_field\":\"x\",\"metrics\":{}}").unwrap();
        assert_eq!(r.index, 7);
        assert_eq!(r.committed, 0);
        assert!(r.metrics.is_empty());
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let text = format!("{}\nnot json\n", sample(0).to_json());
        let err = CellRecord::parse_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "err: {err}");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record_and_parses_back() {
        let mut sink = JsonlSink::new(Vec::new());
        for i in 0..3 {
            let mut r = sample(i);
            r.seq = i as u64;
            sink.emit(&r);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let parsed = CellRecord::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[2].index, 2);
    }

    #[test]
    fn stamped_sink_orders_seq_with_physical_order() {
        let mut mem = MemorySink::new();
        {
            let stamped = StampedSink::new(&mut mem);
            // Emit out of index order, as a racing pool would.
            for index in [2usize, 0, 1] {
                let mut r = sample(index);
                stamped.emit(&mut r);
            }
            assert_eq!(stamped.emitted(), 3);
        }
        let seqs: Vec<u64> = mem.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "physical order == seq order");
        let mut sorted = mem.records.clone();
        sorted.sort_by_key(|r| r.index);
        assert_eq!(sorted[0].index, 0);
    }

    #[test]
    fn stamped_sink_is_shareable_across_threads() {
        let mut mem = MemorySink::new();
        {
            let stamped = StampedSink::new(&mut mem);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let stamped = &stamped;
                    scope.spawn(move || {
                        for i in 0..8 {
                            let mut r = sample(t * 8 + i);
                            stamped.emit(&mut r);
                        }
                    });
                }
            });
        }
        assert_eq!(mem.records.len(), 32);
        let seqs: Vec<u64> = mem.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..32).collect::<Vec<u64>>());
        let mut indices: Vec<usize> = mem.records.iter().map(|r| r.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..32).collect::<Vec<usize>>());
    }
}
