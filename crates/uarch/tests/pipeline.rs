//! Timing-behavior integration tests for the out-of-order core: these pin
//! the microarchitectural effects the paper's evaluation relies on
//! (mispredict penalties through the deepened front end, memory-latency
//! exposure, per-structure activity attribution).

use tdtm_isa::asm::assemble;
use tdtm_isa::Program;
use tdtm_uarch::{Block, Core, CoreConfig, CoreControl};

fn run(cfg: CoreConfig, src: &str) -> Core {
    let p = assemble(src).expect("assembles");
    run_program(cfg, &p)
}

fn run_program(cfg: CoreConfig, p: &Program) -> Core {
    let mut core = Core::new(cfg, p);
    for _ in 0..5_000_000 {
        if core.finished() {
            return core;
        }
        core.cycle();
    }
    panic!("program did not finish: {}", core.debug_snapshot());
}

/// A loop whose branch is effectively random (LCG bit 13).
fn mispredicting_loop(iters: u32) -> String {
    format!(
        "     li x1, {iters}
              li x5, 12345
              li x8, 1103515245
         l:   mul x5, x5, x8
              addi x5, x5, 12345
              andi x6, x5, 8192
              beq x6, x0, skip
              addi x7, x7, 1
         skip: addi x1, x1, -1
              bne x1, x0, l
              halt"
    )
}

#[test]
fn deeper_frontend_raises_mispredict_cost() {
    let src = mispredicting_loop(4000);
    let shallow_cfg = CoreConfig { frontend_depth: 1, ..CoreConfig::alpha21264_like() };
    let deep_cfg = CoreConfig { frontend_depth: 10, ..CoreConfig::alpha21264_like() };
    let shallow = run(shallow_cfg, &src);
    let deep = run(deep_cfg, &src);
    assert!(
        deep.stats().cycles as f64 > shallow.stats().cycles as f64 * 1.05,
        "the paper added rename stages precisely because they lengthen branch resolution: \
         shallow {} vs deep {}",
        shallow.stats().cycles,
        deep.stats().cycles
    );
    // Roughly similar recovery counts (same program, same predictor).
    let r1 = shallow.stats().recoveries as f64;
    let r2 = deep.stats().recoveries as f64;
    assert!((r1 - r2).abs() / r1 < 0.3, "recoveries {r1} vs {r2}");
}

#[test]
fn memory_latency_parameters_are_visible() {
    // A dependent pointer-increment chase across 8 KB pages: all loads
    // miss L1 and TLB entries churn.
    let src = "        li x1, 0x400000
                       li x2, 800
                  l:   lw x3, 0(x1)
                       add x1, x1, x3
                       addi x1, x1, 8192
                       addi x2, x2, -1
                       bne x2, x0, l
                       halt";
    let near = CoreConfig { mem_latency: 20, ..CoreConfig::alpha21264_like() };
    let far = CoreConfig { mem_latency: 400, ..CoreConfig::alpha21264_like() };
    let fast = run(near, src);
    let slow = run(far, src);
    assert!(
        slow.stats().cycles > fast.stats().cycles * 3,
        "memory latency must dominate a dependent miss chain: {} vs {}",
        slow.stats().cycles,
        fast.stats().cycles
    );
}

#[test]
fn tlb_miss_penalty_applies() {
    let src = "        li x1, 0x400000
                       li x2, 2000
                  l:   lw x3, 0(x1)
                       addi x1, x1, 4096   # new page every load
                       addi x2, x2, -1
                       bne x2, x0, l
                       halt";
    let no_penalty = CoreConfig { tlb_miss_penalty: 0, ..CoreConfig::alpha21264_like() };
    let heavy = CoreConfig { tlb_miss_penalty: 200, ..CoreConfig::alpha21264_like() };
    let fast = run(no_penalty, src);
    let slow = run(heavy, src);
    // The penalties overlap across the two memory ports and the window,
    // so the visible cost is far below 2000 × 200 serial cycles — but a
    // >2x slowdown must remain.
    assert!(
        slow.stats().cycles > fast.stats().cycles * 2,
        "TLB miss penalty must be visible: {} vs {}",
        slow.stats().cycles,
        fast.stats().cycles
    );
}

#[test]
fn activity_attribution_tracks_workload_character() {
    let int_src = "     li x1, 20000
                   l:   addi x2, x2, 1
                        xor  x3, x3, x2
                        add  x4, x4, x3
                        addi x1, x1, -1
                        bne x1, x0, l
                        halt";
    let fp_src = "      li x1, 20000
                        fcvt.d.w f1, x1
                        fcvt.d.w f2, x1
                        fcvt.d.w f3, x1
                   l:   fadd f1, f2, f3
                        fmul f2, f3, f1
                        fadd f3, f1, f2
                        addi x1, x1, -1
                        bne x1, x0, l
                        halt";
    let mut totals = Vec::new();
    for src in [int_src, fp_src] {
        let p = assemble(src).unwrap();
        let mut core = Core::new(CoreConfig::alpha21264_like(), &p);
        let mut int_acc = 0u64;
        let mut fp_acc = 0u64;
        while !core.finished() {
            let a = core.cycle();
            int_acc += u64::from(a[Block::IntExec]);
            fp_acc += u64::from(a[Block::FpExec]);
        }
        totals.push((int_acc, fp_acc));
    }
    let (int_int, int_fp) = totals[0];
    let (fp_int, fp_fp) = totals[1];
    assert!(int_int > 10 * int_fp.max(1), "int kernel: {int_int} int vs {int_fp} fp");
    assert!(fp_fp > fp_int / 2, "fp kernel: {fp_fp} fp vs {fp_int} int");
    assert!(fp_fp > 10 * int_fp.max(1), "fp kernel uses the FP cluster far more");
}

#[test]
fn fetch_width_limit_throttles() {
    let src = "     li x1, 20000
               l:   addi x2, x2, 1
                    addi x3, x3, 1
                    addi x4, x4, 1
                    addi x1, x1, -1
                    bne x1, x0, l
                    halt";
    let p = assemble(src).unwrap();
    let mut full = Core::new(CoreConfig::alpha21264_like(), &p);
    while !full.finished() {
        full.cycle();
    }
    let mut narrow = Core::new(CoreConfig::alpha21264_like(), &p);
    narrow.set_control(CoreControl { fetch_width_limit: Some(1), ..CoreControl::default() });
    let mut guard = 0;
    while !narrow.finished() {
        narrow.cycle();
        guard += 1;
        assert!(guard < 5_000_000);
    }
    // Full width fetches the 5-instruction body in two groups (fetch
    // stops at the taken loop branch), so the ideal ratio is ~2.5x, not
    // the naive 4x.
    assert!(
        narrow.stats().cycles as f64 > full.stats().cycles as f64 * 2.0,
        "width-1 fetch must throttle a 4-wide machine: {} vs {}",
        narrow.stats().cycles,
        full.stats().cycles
    );
}

#[test]
fn smaller_window_hurts_memory_parallelism() {
    // Independent misses: a big window overlaps them, a tiny one cannot.
    let src = "        li x1, 0x800000
                       li x2, 3000
                  l:   lw x3, 0(x1)
                       lw x4, 8192(x1)
                       lw x5, 16384(x1)
                       lw x6, 24576(x1)
                       addi x1, x1, 32768
                       addi x2, x2, -1
                       bne x2, x0, l
                       halt";
    let big = CoreConfig::alpha21264_like();
    let small = CoreConfig { ruu_size: 8, lsq_size: 4, ..CoreConfig::alpha21264_like() };
    let wide = run(big, src);
    let tiny = run(small, src);
    assert!(
        tiny.stats().cycles as f64 > wide.stats().cycles as f64 * 1.5,
        "an 8-entry window cannot overlap misses: {} vs {}",
        tiny.stats().cycles,
        wide.stats().cycles
    );
}

#[test]
fn store_load_forwarding_beats_cache_round_trip() {
    // Same-address store→load pairs: with forwarding these are fast even
    // though the line may be L1-resident anyway; verify forwards counted.
    let src = "        li x1, 0x200000
                       li x2, 5000
                  l:   sw x2, 0(x1)
                       lw x3, 0(x1)
                       add x4, x4, x3
                       addi x2, x2, -1
                       bne x2, x0, l
                       halt";
    let core = run(CoreConfig::alpha21264_like(), src);
    assert!(
        core.stats().forwards > 4000,
        "most loads should forward from the preceding store, got {}",
        core.stats().forwards
    );
}

#[test]
fn icache_misses_stall_fetch_for_big_code() {
    // A long straight-line body (larger than L1I) looped a few times.
    let mut body = String::from("     li x1, 30\nl:\n");
    for i in 0..20_000 {
        body.push_str(&format!("      addi x{}, x{}, 1\n", 2 + (i % 8), 2 + (i % 8)));
    }
    body.push_str("      addi x1, x1, -1\n      bne x1, x0, l\n      halt\n");
    let core = run(CoreConfig::alpha21264_like(), &body);
    // 20K insts × 4B = 80 KB of code > 64 KB L1I: every iteration
    // re-misses some lines.
    assert!(
        core.stats().icache_misses > 4_000,
        "code footprint exceeds L1I, got {} misses",
        core.stats().icache_misses
    );
    let ipc = core.stats().ipc();
    assert!(ipc < 3.0, "fetch stalls must cap IPC, got {ipc}");
}

#[test]
fn wrong_path_consumes_fetch_but_never_commits() {
    let src = mispredicting_loop(3000);
    let core = run(CoreConfig::alpha21264_like(), &src);
    let s = core.stats();
    assert!(s.wrong_path_fetched > 3000, "wrong path fetched: {}", s.wrong_path_fetched);
    // Committed = architectural count: exactly what the functional CPU
    // would retire. (li×3 + halt + iterations × body)
    assert!(s.committed < s.fetched, "speculation fetches more than commits");
    assert_eq!(
        s.committed,
        {
            let p = assemble(&src).unwrap();
            let mut cpu = tdtm_frontend::Cpu::new(&p);
            cpu.run_to_halt(10_000_000).unwrap()
        },
        "timing model must commit the architectural stream exactly"
    );
}
