//! Instruction supply for the timing model: the oracle (correct-path)
//! stream from the functional simulator, and the synthetic wrong-path
//! generator used between a mispredicted fetch and the branch's
//! resolution.

use tdtm_frontend::{Cpu, ExecError, Retired};
use tdtm_prng::Rng;
use tdtm_isa::{FReg, Inst, Op, Program, Reg};

/// Buffered access to the functional simulator's retired-instruction
/// stream, indexed by dynamic instruction number.
///
/// The timing model's fetch stage reads ahead of commit, so the stream
/// keeps a sliding window `[base, base+len)` of records; `trim` releases
/// records older than the oldest in-flight instruction.
#[derive(Debug)]
pub struct OracleStream {
    cpu: Cpu,
    buf: std::collections::VecDeque<Retired>,
    base: u64,
    done: bool,
}

impl OracleStream {
    /// Creates a stream over a freshly loaded program (deep-clones it;
    /// prefer [`from_shared`](OracleStream::from_shared) when an `Arc` is
    /// already at hand).
    pub fn new(program: &Program) -> OracleStream {
        OracleStream::from_shared(std::sync::Arc::new(program.clone()))
    }

    /// Creates a stream over a shared, immutable program without cloning
    /// its text or data segments.
    pub fn from_shared(program: std::sync::Arc<Program>) -> OracleStream {
        OracleStream {
            cpu: Cpu::from_shared(program),
            buf: std::collections::VecDeque::new(),
            base: 0,
            done: false,
        }
    }

    /// The record with dynamic index `idx`, executing the functional
    /// simulator forward as needed. Returns `None` once the program has
    /// halted before `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has already been trimmed, or if the program takes a
    /// wild PC (a workload bug, not a simulator condition).
    pub fn get(&mut self, idx: u64) -> Option<&Retired> {
        assert!(idx >= self.base, "index {idx} already trimmed (base {})", self.base);
        while !self.done && self.base + self.buf.len() as u64 <= idx {
            match self.cpu.step() {
                Ok(Some(r)) => self.buf.push_back(r),
                Ok(None) => self.done = true,
                Err(ExecError::BadPc(pc)) => panic!("workload escaped text segment at {pc:#x}"),
                Err(e) => panic!("functional execution failed: {e}"),
            }
        }
        let off = (idx - self.base) as usize;
        self.buf.get(off)
    }

    /// Whether the program has halted (no records at or past `idx` will
    /// appear once `get` returns `None`).
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Whether a record with dynamic index `idx` exists, executing the
    /// functional simulator forward as needed — the fetch-supply half of
    /// the timing model's idle-window probe ("will the oracle ever feed
    /// this fetch index"). Exactly [`get`](OracleStream::get)`.is_some()`,
    /// with the same buffering side effects fetch itself would have.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has already been trimmed.
    pub fn has_record(&mut self, idx: u64) -> bool {
        self.get(idx).is_some()
    }

    /// Fast-forwards the functional machine past the first `n`
    /// instructions without buffering them — the stand-in for the paper's
    /// "skip the first 2 billion instructions" warmup. Returns how many
    /// instructions were actually skipped (fewer if the program halts).
    ///
    /// # Panics
    ///
    /// Panics if records have already been buffered or the program takes a
    /// wild PC.
    pub fn skip(&mut self, n: u64) -> u64 {
        assert!(self.buf.is_empty() && self.base == 0, "skip before any reads");
        let mut skipped = 0;
        while skipped < n && !self.done {
            match self.cpu.step() {
                Ok(Some(_)) => skipped += 1,
                Ok(None) => self.done = true,
                Err(e) => panic!("functional execution failed during skip: {e}"),
            }
        }
        self.base = skipped;
        skipped
    }

    /// Releases records with index `< min_idx`.
    pub fn trim(&mut self, min_idx: u64) {
        while self.base < min_idx && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// Output values the program has emitted so far.
    pub fn output(&self) -> &[i64] {
        self.cpu.output()
    }
}

/// Deterministic generator of plausible wrong-path instructions.
///
/// Real wrong paths execute whatever bytes live at the mispredicted
/// target; their first-order effect on DTM is that fetch, decode, the
/// window, and the functional units stay busy until the branch resolves.
/// The generator produces a representative mix (ALU, loads near recently
/// touched addresses, stores, not-taken branches, FP) from a fixed seed so
/// runs remain reproducible.
#[derive(Clone, Debug)]
pub struct WrongPathGenerator {
    rng: Rng,
    recent_addrs: [u64; 16],
    cursor: usize,
}

impl WrongPathGenerator {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> WrongPathGenerator {
        WrongPathGenerator {
            rng: Rng::new(seed),
            recent_addrs: [0x10_0000; 16],
            cursor: 0,
        }
    }

    /// Records a committed-path data address, biasing wrong-path loads
    /// toward the program's working set.
    pub fn observe_addr(&mut self, addr: u64) {
        self.recent_addrs[self.cursor] = addr;
        self.cursor = (self.cursor + 1) % self.recent_addrs.len();
    }

    /// Produces the next synthetic instruction and, for memory ops, its
    /// synthetic effective address.
    pub fn next_inst(&mut self) -> (Inst, Option<u64>) {
        let r = |rng: &mut Rng| Reg::new(rng.range_i64(1, 32) as u8);
        let f = |rng: &mut Rng| FReg::new(rng.range_i64(0, 32) as u8);
        let roll = self.rng.range_i64(0, 100);
        if roll < 40 {
            let ops = [Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Slt, Op::Addi, Op::Slli];
            let op = ops[self.rng.index(ops.len())];
            (
                Inst {
                    op,
                    rd: r(&mut self.rng),
                    rs1: r(&mut self.rng),
                    rs2: r(&mut self.rng),
                    imm: self.rng.range_i64(-64, 64) as i32,
                    ..Inst::default()
                },
                None,
            )
        } else if roll < 60 {
            let addr = self.synthetic_addr();
            (
                Inst {
                    op: Op::Lw,
                    rd: r(&mut self.rng),
                    rs1: r(&mut self.rng),
                    ..Inst::default()
                },
                Some(addr),
            )
        } else if roll < 70 {
            let addr = self.synthetic_addr();
            (
                Inst {
                    op: Op::Sw,
                    rs1: r(&mut self.rng),
                    rs2: r(&mut self.rng),
                    ..Inst::default()
                },
                Some(addr),
            )
        } else if roll < 85 {
            (
                Inst {
                    op: Op::Beq,
                    rs1: r(&mut self.rng),
                    rs2: r(&mut self.rng),
                    imm: self.rng.range_i64(-32, 32) as i32 * 4,
                    ..Inst::default()
                },
                None,
            )
        } else {
            let ops = [Op::Fadd, Op::Fmul, Op::Fsub];
            let op = ops[self.rng.index(ops.len())];
            (
                Inst {
                    op,
                    fd: f(&mut self.rng),
                    fs1: f(&mut self.rng),
                    fs2: f(&mut self.rng),
                    ..Inst::default()
                },
                None,
            )
        }
    }

    fn synthetic_addr(&mut self) -> u64 {
        let base = self.recent_addrs[self.rng.index(self.recent_addrs.len())];
        let offset = self.rng.range_i64(-256, 256);
        (base as i64 + offset * 8).max(0x1000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_isa::asm::assemble;

    fn program() -> Program {
        assemble(
            "     li x1, 4
             l:   addi x2, x2, 1
                  addi x1, x1, -1
                  bne x1, x0, l
                  halt",
        )
        .unwrap()
    }

    #[test]
    fn stream_is_indexable_and_ends() {
        let p = program();
        let mut s = OracleStream::new(&p);
        assert_eq!(s.get(0).unwrap().seq, 0);
        assert_eq!(s.get(5).unwrap().seq, 5);
        assert_eq!(s.get(1).unwrap().seq, 1, "backwards reads within window");
        // li + 4*(addi,addi,bne) + halt = 14 records (0..=13).
        assert!(s.get(13).is_some());
        assert!(s.get(14).is_none());
        assert!(s.finished());
    }

    #[test]
    fn trim_releases_old_records() {
        let p = program();
        let mut s = OracleStream::new(&p);
        s.get(10);
        s.trim(8);
        assert_eq!(s.get(8).unwrap().seq, 8);
    }

    #[test]
    #[should_panic(expected = "already trimmed")]
    fn reading_trimmed_index_panics() {
        let p = program();
        let mut s = OracleStream::new(&p);
        s.get(10);
        s.trim(8);
        let _ = s.get(3);
    }

    #[test]
    fn wrong_path_generator_is_deterministic() {
        let mut a = WrongPathGenerator::new(42);
        let mut b = WrongPathGenerator::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
        let mut c = WrongPathGenerator::new(43);
        let differs = (0..100).any(|_| a.next_inst() != c.next_inst());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn wrong_path_mix_is_plausible() {
        let mut g = WrongPathGenerator::new(7);
        g.observe_addr(0x20_0000);
        let mut loads = 0;
        let mut branches = 0;
        let mut wild_addrs = 0;
        for _ in 0..1000 {
            let (inst, addr) = g.next_inst();
            match inst.op {
                Op::Lw => {
                    loads += 1;
                    let a = addr.expect("loads have addresses");
                    if a.abs_diff(0x20_0000) > 1 << 20 && a.abs_diff(0x10_0000) > 1 << 20 {
                        wild_addrs += 1;
                    }
                }
                Op::Beq => branches += 1,
                _ => {}
            }
        }
        assert!((100..350).contains(&loads), "loads {loads}");
        assert!((50..300).contains(&branches), "branches {branches}");
        assert_eq!(wild_addrs, 0, "wrong-path loads stay near the working set");
    }
}
