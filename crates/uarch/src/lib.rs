//! # tdtm-uarch — cycle-level out-of-order core timing model
//!
//! The stand-in for SimpleScalar 3.0's `sim-outorder` as extended by the
//! paper: an Alpha-21264-like out-of-order core (paper Table 2) with
//!
//! * a register-update-unit (RUU) window and load/store queue;
//! * the paper's three extra rename/enqueue stages between decode and
//!   issue ("necessary to properly account for branch-resolution latencies
//!   and extra mis-speculated execution");
//! * a hybrid branch predictor (bimodal + GAg chosen by a bimodal-style
//!   chooser), BTB and return-address stack, with speculative history
//!   update and repair after mispredictions;
//! * two-level caches and TLBs;
//! * per-cycle, per-structure access counts ([`Activity`]) feeding the
//!   Wattch-style power model;
//! * the DTM actuators: duty-cycled fetch gating (toggling), fetch-width
//!   throttling, and speculation control ([`CoreControl`]).
//!
//! The timing model is execution-driven on the correct path — the
//! functional frontend supplies the oracle stream — with synthesized
//! wrong-path instructions injected between a mispredicted fetch and the
//! branch's resolution, so mis-speculation consumes fetch bandwidth,
//! window slots, functional units, and power, as in `sim-outorder`.
//!
//! # Examples
//!
//! ```
//! use tdtm_isa::asm::assemble;
//! use tdtm_uarch::{Core, CoreConfig};
//!
//! let program = assemble(
//!     "     li x1, 200
//!      l:   addi x2, x2, 7
//!           mul  x3, x2, x2
//!           addi x1, x1, -1
//!           bne  x1, x0, l
//!           halt",
//! )?;
//! let mut core = Core::new(CoreConfig::alpha21264_like(), &program);
//! while !core.finished() {
//!     core.cycle();
//! }
//! let ipc = core.stats().committed as f64 / core.stats().cycles as f64;
//! assert!(ipc > 1.0, "tight ALU loop should sustain >1 IPC, got {ipc}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod activity;
pub mod bpred;
pub mod cache;
pub mod config;
pub mod core;
pub mod stream;
pub mod toggle;

pub use crate::core::{Core, CoreControl, CoreStats, IdleKind, STAGE_NAMES};
pub use activity::{Activity, Block, NUM_BLOCKS};
pub use config::CoreConfig;
pub use toggle::FetchGate;
