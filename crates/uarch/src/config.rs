//! Core configuration (the paper's Table 2).

/// Cache geometry and latency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: usize,
    /// Associativity (ways).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent or not a power of two.
    pub fn sets(&self) -> usize {
        assert!(self.size.is_multiple_of(self.assoc * self.line), "inconsistent cache geometry");
        let sets = self.size / (self.assoc * self.line);
        assert!(sets.is_power_of_two() && self.line.is_power_of_two(), "sizes must be powers of two");
        sets
    }
}

/// Branch-predictor configuration (the hybrid predictor of Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BpredConfig {
    /// Bimodal table entries (2-bit counters).
    pub bimod_entries: usize,
    /// GAg pattern-history-table entries (2-bit counters).
    pub gag_entries: usize,
    /// Global history bits for the GAg component.
    pub history_bits: u32,
    /// Chooser table entries (2-bit counters, bimodal-style indexing).
    pub chooser_entries: usize,
    /// BTB sets.
    pub btb_sets: usize,
    /// BTB associativity.
    pub btb_assoc: usize,
    /// Return-address-stack entries.
    pub ras_entries: usize,
}

/// Full core configuration, mirroring the paper's Table 2.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CoreConfig {
    /// Instructions fetched per cycle (one I-cache access of fetch-width
    /// granularity per cycle, per the paper's fetch-model fix).
    pub fetch_width: usize,
    /// Fetch queue (IFQ) entries.
    pub ifq_size: usize,
    /// Pipeline stages between fetch and dispatch: decode plus the paper's
    /// three extra rename/enqueue stages.
    pub frontend_depth: u64,
    /// Instructions dispatched (renamed into the RUU) per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// RUU (instruction window) entries.
    pub ruu_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Integer ALUs.
    pub int_alu_count: usize,
    /// Integer multiplier/dividers.
    pub int_mult_count: usize,
    /// Floating-point adders.
    pub fp_alu_count: usize,
    /// Floating-point multiplier/dividers.
    pub fp_mult_count: usize,
    /// Cache ports to the L1 D-cache.
    pub mem_ports: usize,
    /// Latencies per functional-unit class.
    pub lat_int_mul: u64,
    /// Integer divide latency.
    pub lat_int_div: u64,
    /// FP add/compare latency.
    pub lat_fp_add: u64,
    /// FP multiply latency.
    pub lat_fp_mul: u64,
    /// FP divide/sqrt latency.
    pub lat_fp_div: u64,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
    /// TLB entries (fully associative), both I and D.
    pub tlb_entries: usize,
    /// TLB miss penalty in cycles.
    pub tlb_miss_penalty: u64,
    /// Page size for TLB indexing (bytes).
    pub page_size: u64,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// Clock frequency in Hz (1.5 GHz in the paper).
    pub clock_hz: f64,
}

impl CoreConfig {
    /// The paper's simulated configuration (Table 2): an approximation of
    /// the Alpha 21264 with an 80-entry RUU, 40-entry LSQ, 6-wide issue,
    /// 64 KB 2-way L1s, 2 MB 4-way L2, hybrid 4K/4K/4K predictor with
    /// 12-bit global history, 1 K-entry 2-way BTB and a 32-entry RAS,
    /// clocked at 1.5 GHz.
    pub fn alpha21264_like() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            ifq_size: 16,
            frontend_depth: 4, // decode + 3 extra rename/enqueue stages
            decode_width: 6,
            issue_width: 6,
            commit_width: 6,
            ruu_size: 80,
            lsq_size: 40,
            int_alu_count: 4,
            int_mult_count: 1,
            fp_alu_count: 2,
            fp_mult_count: 1,
            mem_ports: 2,
            lat_int_mul: 3,
            lat_int_div: 20,
            lat_fp_add: 2,
            lat_fp_mul: 4,
            lat_fp_div: 12,
            l1i: CacheConfig { size: 64 * 1024, assoc: 2, line: 32, latency: 1 },
            l1d: CacheConfig { size: 64 * 1024, assoc: 2, line: 32, latency: 1 },
            l2: CacheConfig { size: 2 * 1024 * 1024, assoc: 4, line: 32, latency: 11 },
            mem_latency: 100,
            tlb_entries: 128,
            tlb_miss_penalty: 30,
            page_size: 4096,
            bpred: BpredConfig {
                bimod_entries: 4096,
                gag_entries: 4096,
                history_bits: 12,
                chooser_entries: 4096,
                btb_sets: 512,
                btb_assoc: 2,
                ras_entries: 32,
            },
            clock_hz: 1.5e9,
        }
    }

    /// Seconds per clock cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.clock_hz
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::alpha21264_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let c = CoreConfig::alpha21264_like();
        assert_eq!(c.ruu_size, 80);
        assert_eq!(c.lsq_size, 40);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.l1d.sets(), 1024); // 64KB / (2 × 32B)
        assert_eq!(c.l2.sets(), 16384); // 2MB / (4 × 32B)
        assert_eq!(c.bpred.btb_sets * c.bpred.btb_assoc, 1024);
        assert!((c.cycle_time() - 667e-12).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn bad_geometry_rejected() {
        let c = CacheConfig { size: 3000, assoc: 2, line: 30, latency: 1 };
        // 3000/(2*30) = 50 sets: divides evenly but is not a power of two.
        let _ = c.sets();
    }
}
