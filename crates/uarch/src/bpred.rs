//! The hybrid branch predictor of Table 2: a bimodal-style chooser selects
//! between a 4K-entry bimodal predictor and a GAg predictor with 12-bit
//! global history, backed by a 2-way BTB and a return-address stack.
//!
//! As in the paper ("the branch predictor is updated speculatively and
//! repaired after a misprediction"), the global history register is updated
//! with the *predicted* direction at fetch time; each prediction carries a
//! checkpoint that [`HybridPredictor::repair`] uses to restore and correct
//! the history when the branch resolves mispredicted. Counter tables, BTB,
//! and RAS bookkeeping are updated at commit.

use crate::config::BpredConfig;
use tdtm_isa::{Inst, Op, OpClass, Reg};

/// Two-bit saturating counter helpers.
fn counter_taken(c: u8) -> bool {
    c >= 2
}

fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// What the predictor said at fetch time, carried with the instruction so
/// commit can update the chooser and repair can restore history.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Prediction {
    /// Final predicted direction (for jumps, always taken).
    pub taken: bool,
    /// Predicted target if `taken` (None when the BTB/RAS could not supply
    /// one — the front end then falls through and will mispredict if the
    /// branch is taken).
    pub target: Option<u64>,
    /// The bimodal component's direction.
    pub bimod_taken: bool,
    /// The GAg component's direction.
    pub gag_taken: bool,
    /// History checkpoint for repair.
    pub checkpoint: Checkpoint,
}

/// State snapshot for misprediction repair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// Global history before this branch's speculative update.
    pub history: u32,
    /// RAS top-of-stack index before this instruction.
    pub ras_top: usize,
}

#[derive(Clone, Copy, Default)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
    lru: u64,
}

/// The hybrid predictor with BTB and RAS.
#[derive(Clone)]
pub struct HybridPredictor {
    cfg: BpredConfig,
    bimod: Vec<u8>,
    gag: Vec<u8>,
    chooser: Vec<u8>,
    history: u32,
    history_mask: u32,
    btb: Vec<BtbEntry>,
    ras: Vec<u64>,
    ras_top: usize,
    clock: u64,
    /// Statistics: (lookups, conditional branches seen at commit,
    /// mispredicted conditional branches).
    pub lookups: u64,
    /// Conditional branches committed.
    pub cond_branches: u64,
    /// Conditional branches whose committed outcome differed from the
    /// recorded prediction.
    pub cond_mispredicts: u64,
}

impl std::fmt::Debug for HybridPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridPredictor")
            .field("history", &self.history)
            .field("lookups", &self.lookups)
            .field("cond_branches", &self.cond_branches)
            .field("cond_mispredicts", &self.cond_mispredicts)
            .finish()
    }
}

impl HybridPredictor {
    /// Creates a predictor with all counters weakly not-taken and an empty
    /// BTB/RAS.
    ///
    /// # Panics
    ///
    /// Panics if any table size is zero or `history_bits` exceeds the GAg
    /// index width.
    pub fn new(cfg: BpredConfig) -> HybridPredictor {
        assert!(cfg.bimod_entries > 0 && cfg.gag_entries > 0 && cfg.chooser_entries > 0);
        assert!(cfg.btb_sets > 0 && cfg.btb_assoc > 0 && cfg.ras_entries > 0);
        assert!(
            (1usize << cfg.history_bits) <= cfg.gag_entries,
            "history must index within the GAg table"
        );
        HybridPredictor {
            bimod: vec![1; cfg.bimod_entries],
            gag: vec![1; cfg.gag_entries],
            chooser: vec![1; cfg.chooser_entries],
            history: 0,
            history_mask: (1u32 << cfg.history_bits) - 1,
            btb: vec![BtbEntry::default(); cfg.btb_sets * cfg.btb_assoc],
            ras: vec![0; cfg.ras_entries],
            ras_top: 0,
            clock: 0,
            lookups: 0,
            cond_branches: 0,
            cond_mispredicts: 0,
            cfg,
        }
    }

    fn bimod_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.bimod_entries - 1)
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.chooser_entries - 1)
    }

    fn gag_index(&self) -> usize {
        (self.history as usize) & (self.cfg.gag_entries - 1)
    }

    /// Whether `inst` is a call (pushes the RAS).
    fn is_call(inst: &Inst) -> bool {
        matches!(inst.op, Op::Jal | Op::Jalr) && inst.rd == Reg::RA
    }

    /// Whether `inst` is a return (pops the RAS).
    fn is_return(inst: &Inst) -> bool {
        inst.op == Op::Jalr && inst.rs1 == Reg::RA && inst.rd == Reg::ZERO
    }

    /// Predicts a control instruction fetched at `pc` and speculatively
    /// updates the global history (conditional branches only).
    pub fn predict(&mut self, pc: u64, inst: &Inst) -> Prediction {
        self.lookups += 1;
        self.clock += 1;
        let checkpoint = Checkpoint { history: self.history, ras_top: self.ras_top };

        match inst.op.class() {
            OpClass::Branch => {
                let bimod_taken = counter_taken(self.bimod[self.bimod_index(pc)]);
                let gag_taken = counter_taken(self.gag[self.gag_index()]);
                let use_gag = counter_taken(self.chooser[self.chooser_index(pc)]);
                let taken = if use_gag { gag_taken } else { bimod_taken };
                // Conditional-branch targets come from the immediate via
                // fetch-stage predecode; the BTB is still probed (power).
                let target = if taken {
                    Some((pc as i64).wrapping_add(inst.imm as i64) as u64)
                } else {
                    None
                };
                self.history = ((self.history << 1) | u32::from(taken)) & self.history_mask;
                Prediction { taken, target, bimod_taken, gag_taken, checkpoint }
            }
            OpClass::Jump => {
                let target = if Self::is_return(inst) {
                    Some(self.ras_pop())
                } else if inst.op == Op::Jal {
                    if Self::is_call(inst) {
                        self.ras_push(pc + 4);
                    }
                    Some((pc as i64).wrapping_add(inst.imm as i64) as u64)
                } else {
                    // Indirect jump: BTB or nothing.
                    if Self::is_call(inst) {
                        self.ras_push(pc + 4);
                    }
                    self.btb_lookup(pc)
                };
                Prediction { taken: true, target, bimod_taken: true, gag_taken: true, checkpoint }
            }
            _ => Prediction {
                taken: false,
                target: None,
                bimod_taken: false,
                gag_taken: false,
                checkpoint,
            },
        }
    }

    /// Repairs speculative state after `pc`'s branch resolved with
    /// `actual_taken`: history is restored from the checkpoint and the
    /// correct outcome shifted in; the RAS top is restored.
    pub fn repair(&mut self, inst: &Inst, checkpoint: Checkpoint, actual_taken: bool) {
        self.ras_top = checkpoint.ras_top;
        if inst.op.class() == OpClass::Branch {
            self.history =
                ((checkpoint.history << 1) | u32::from(actual_taken)) & self.history_mask;
        }
    }

    /// Commit-time update: trains counters, chooser, and BTB with the
    /// architectural outcome.
    pub fn commit(&mut self, pc: u64, inst: &Inst, pred: &Prediction, taken: bool, target: u64) {
        match inst.op.class() {
            OpClass::Branch => {
                self.cond_branches += 1;
                if pred.taken != taken {
                    self.cond_mispredicts += 1;
                }
                let bi = self.bimod_index(pc);
                self.bimod[bi] = counter_update(self.bimod[bi], taken);
                // GAg is trained at the history the prediction used.
                let gi = (pred.checkpoint.history as usize) & (self.cfg.gag_entries - 1);
                self.gag[gi] = counter_update(self.gag[gi], taken);
                // Chooser trains toward whichever component was right,
                // only when they disagree.
                if pred.bimod_taken != pred.gag_taken {
                    let ci = self.chooser_index(pc);
                    let gag_right = pred.gag_taken == taken;
                    self.chooser[ci] = counter_update(self.chooser[ci], gag_right);
                }
                if taken {
                    self.btb_insert(pc, target);
                }
            }
            OpClass::Jump
                if inst.op == Op::Jalr && !Self::is_return(inst) => {
                    self.btb_insert(pc, target);
                }
            _ => {}
        }
    }

    fn btb_set(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.btb_sets - 1)
    }

    fn btb_lookup(&self, pc: u64) -> Option<u64> {
        let set = self.btb_set(pc);
        let ways = &self.btb[set * self.cfg.btb_assoc..(set + 1) * self.cfg.btb_assoc];
        ways.iter()
            .find(|e| e.valid && e.tag == pc)
            .map(|e| e.target)
    }

    fn btb_insert(&mut self, pc: u64, target: u64) {
        self.clock += 1;
        let clock = self.clock;
        let set = self.btb_set(pc);
        let assoc = self.cfg.btb_assoc;
        let ways = &mut self.btb[set * assoc..(set + 1) * assoc];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == pc) {
            e.target = target;
            e.lru = clock;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("assoc > 0");
        *victim = BtbEntry { tag: pc, target, valid: true, lru: clock };
    }

    fn ras_push(&mut self, return_addr: u64) {
        self.ras_top = (self.ras_top + 1) % self.ras.len();
        self.ras[self.ras_top] = return_addr;
    }

    fn ras_pop(&mut self) -> u64 {
        let v = self.ras[self.ras_top];
        self.ras_top = (self.ras_top + self.ras.len() - 1) % self.ras.len();
        v
    }

    /// Conditional-branch direction accuracy observed at commit.
    pub fn accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use tdtm_isa::Reg;

    fn predictor() -> HybridPredictor {
        HybridPredictor::new(CoreConfig::alpha21264_like().bpred)
    }

    fn branch(imm: i32) -> Inst {
        Inst { op: Op::Bne, rs1: Reg::new(1), rs2: Reg::new(2), imm, ..Inst::default() }
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut p = predictor();
        let pc = 0x1000;
        let b = branch(-16);
        let mut last = None;
        for _ in 0..20 {
            let pred = p.predict(pc, &b);
            if !pred.taken {
                p.repair(&b, pred.checkpoint, true);
            }
            p.commit(pc, &b, &pred, true, pc - 16);
            last = Some(pred);
        }
        let final_pred = last.unwrap();
        assert!(final_pred.taken, "predictor should have learned taken");
        let fresh = p.predict(pc, &b);
        assert!(fresh.taken);
        assert_eq!(fresh.target, Some(pc - 16));
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // T,N,T,N... is unlearnable for bimodal but trivial for GAg.
        let mut p = predictor();
        let pc = 0x2000;
        let b = branch(8);
        let mut correct_tail = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            let pred = p.predict(pc, &b);
            if pred.taken != taken {
                p.repair(&b, pred.checkpoint, taken);
            }
            p.commit(pc, &b, &pred, taken, pc + 8);
            if i >= 350 && pred.taken == taken {
                correct_tail += 1;
            }
        }
        assert!(
            correct_tail >= 45,
            "hybrid should converge on alternating pattern, got {correct_tail}/50"
        );
        assert!(p.accuracy() > 0.5);
    }

    #[test]
    fn chooser_learns_which_component_to_trust() {
        // Two branches at different PCs: one biased (bimodal's home turf),
        // one alternating (GAg's). After training, both predict well —
        // which requires the chooser to pick differently per PC.
        let mut p = predictor();
        let biased_pc = 0x4000;
        let alternating_pc = 0x8000;
        let b = branch(16);
        for i in 0..600u32 {
            // Interleave so the global history is shared, as in real code.
            for (pc, taken) in [(biased_pc, true), (alternating_pc, i % 2 == 0)] {
                let pred = p.predict(pc, &b);
                if pred.taken != taken {
                    p.repair(&b, pred.checkpoint, taken);
                }
                p.commit(pc, &b, &pred, taken, pc + 16);
            }
        }
        let mut correct = 0;
        for i in 0..100u32 {
            for (pc, taken) in [(biased_pc, true), (alternating_pc, i % 2 == 0)] {
                let pred = p.predict(pc, &b);
                if pred.taken == taken {
                    correct += 1;
                }
                if pred.taken != taken {
                    p.repair(&b, pred.checkpoint, taken);
                }
                p.commit(pc, &b, &pred, taken, pc + 16);
            }
        }
        assert!(correct >= 170, "hybrid should serve both patterns, got {correct}/200");
    }

    #[test]
    fn repair_restores_history() {
        let mut p = predictor();
        let b = branch(4);
        let before = p.history;
        let pred = p.predict(0x100, &b);
        assert_eq!(pred.checkpoint.history, before);
        // Suppose it predicted X but actual is !X.
        p.repair(&b, pred.checkpoint, !pred.taken);
        assert_eq!(p.history & 1, u32::from(!pred.taken));
        assert_eq!(p.history >> 1, before & (p.history_mask >> 1));
    }

    #[test]
    fn ras_matches_calls_and_returns() {
        let mut p = predictor();
        let call = Inst { op: Op::Jal, rd: Reg::RA, imm: 0x100, ..Inst::default() };
        let ret = Inst { op: Op::Jalr, rd: Reg::ZERO, rs1: Reg::RA, ..Inst::default() };
        p.predict(0x1000, &call); // pushes 0x1004
        p.predict(0x3000, &call); // pushes 0x3004
        let r1 = p.predict(0x5000, &ret);
        assert_eq!(r1.target, Some(0x3004));
        let r2 = p.predict(0x6000, &ret);
        assert_eq!(r2.target, Some(0x1004));
    }

    #[test]
    fn ras_checkpoint_restores_across_squash() {
        let mut p = predictor();
        let call = Inst { op: Op::Jal, rd: Reg::RA, imm: 0x100, ..Inst::default() };
        let ret = Inst { op: Op::Jalr, rd: Reg::ZERO, rs1: Reg::RA, ..Inst::default() };
        p.predict(0x1000, &call); // correct path pushes 0x1004
        let b = branch(64);
        let pred = p.predict(0x2000, &b);
        // Wrong path: a call and a return corrupt the RAS.
        p.predict(0x9000, &call);
        p.predict(0x9100, &ret);
        // Branch resolves; repair restores RAS top.
        p.repair(&b, pred.checkpoint, !pred.taken);
        let r = p.predict(0x2004, &ret);
        assert_eq!(r.target, Some(0x1004), "RAS should be repaired after squash");
    }

    #[test]
    fn direct_jump_targets_come_from_predecode() {
        let mut p = predictor();
        let j = Inst { op: Op::Jal, rd: Reg::ZERO, imm: 0x40, ..Inst::default() };
        let pred = p.predict(0x800, &j);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(0x840));
    }

    #[test]
    fn indirect_jump_uses_btb_after_training() {
        let mut p = predictor();
        let jr = Inst { op: Op::Jalr, rd: Reg::ZERO, rs1: Reg::new(5), ..Inst::default() };
        let first = p.predict(0x700, &jr);
        assert_eq!(first.target, None, "cold BTB cannot predict indirect target");
        p.commit(0x700, &jr, &first, true, 0xABC0);
        let second = p.predict(0x700, &jr);
        assert_eq!(second.target, Some(0xABC0));
    }

    #[test]
    fn non_control_instructions_predict_not_taken() {
        let mut p = predictor();
        let add = Inst { op: Op::Add, ..Inst::default() };
        let pred = p.predict(0x100, &add);
        assert!(!pred.taken);
        assert_eq!(pred.target, None);
    }
}
