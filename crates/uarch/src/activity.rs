//! Per-cycle, per-structure activity counts.
//!
//! The paper's methodology ("first the SimpleScalar pipeline model
//! determines the activity of each structure; then Wattch computes power
//! dissipation for each of them") requires the timing model to expose how
//! many times each structure was accessed in each cycle. [`Activity`] is
//! that interface: the core resets it at the top of every cycle and bumps
//! counters as pipeline events occur; the power model reads it at the end
//! of the cycle.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A power-relevant hardware structure.
///
/// The first seven are the structures the paper models *thermally*
/// (Table 3); the rest contribute to chip-wide power (and could be given
/// thermal nodes too — the models are generic over block count).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(usize)]
pub enum Block {
    /// Load/store queue.
    Lsq,
    /// Instruction window / RUU (includes physical registers for
    /// uncommitted instructions, as in SimpleScalar's RUU).
    Window,
    /// Architectural register file.
    Regfile,
    /// Branch predictor (including BTB and return-address stack).
    Bpred,
    /// L1 data cache.
    Dcache,
    /// Integer execution units.
    IntExec,
    /// Floating-point execution units.
    FpExec,
    /// L1 instruction cache.
    Icache,
    /// Unified L2 cache.
    L2,
    /// Instruction TLB.
    Itlb,
    /// Data TLB.
    Dtlb,
    /// Rename/decode logic.
    Rename,
    /// Result/bypass buses.
    ResultBus,
}

/// Number of distinct [`Block`]s.
pub const NUM_BLOCKS: usize = 13;

/// The blocks the paper tracks temperature for (Table 3), in table order.
pub const THERMAL_BLOCKS: [Block; 7] = [
    Block::Lsq,
    Block::Window,
    Block::Regfile,
    Block::Bpred,
    Block::Dcache,
    Block::IntExec,
    Block::FpExec,
];

impl Block {
    /// All blocks, in index order.
    pub fn all() -> [Block; NUM_BLOCKS] {
        use Block::*;
        [
            Lsq, Window, Regfile, Bpred, Dcache, IntExec, FpExec, Icache, L2, Itlb, Dtlb,
            Rename, ResultBus,
        ]
    }

    /// Stable index in `0..NUM_BLOCKS`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        use Block::*;
        match self {
            Lsq => "LSQ",
            Window => "window",
            Regfile => "regfile",
            Bpred => "bpred",
            Dcache => "D-cache",
            IntExec => "IntALU",
            FpExec => "FPALU",
            Icache => "I-cache",
            L2 => "L2",
            Itlb => "ITLB",
            Dtlb => "DTLB",
            Rename => "rename",
            ResultBus => "resultbus",
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cycle access counts, indexed by [`Block`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Activity {
    counts: [u32; NUM_BLOCKS],
}

impl Activity {
    /// All-zero activity.
    pub fn new() -> Activity {
        Activity::default()
    }

    /// Resets every counter to zero (start of cycle).
    pub fn clear(&mut self) {
        self.counts = [0; NUM_BLOCKS];
    }

    /// Increments a block's counter by one.
    pub fn bump(&mut self, block: Block) {
        self.counts[block.index()] += 1;
    }

    /// Increments a block's counter by `n`.
    pub fn add(&mut self, block: Block, n: u32) {
        self.counts[block.index()] += n;
    }

    /// Total accesses across all blocks this cycle.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Raw counts slice, indexed by [`Block::index`].
    pub fn counts(&self) -> &[u32; NUM_BLOCKS] {
        &self.counts
    }
}

impl Index<Block> for Activity {
    type Output = u32;
    fn index(&self, b: Block) -> &u32 {
        &self.counts[b.index()]
    }
}

impl IndexMut<Block> for Activity {
    fn index_mut(&mut self, b: Block) -> &mut u32 {
        &mut self.counts[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let all = Block::all();
        assert_eq!(all.len(), NUM_BLOCKS);
        for (i, b) in all.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn thermal_blocks_are_the_papers_seven() {
        assert_eq!(THERMAL_BLOCKS.len(), 7);
        let names: Vec<&str> = THERMAL_BLOCKS.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["LSQ", "window", "regfile", "bpred", "D-cache", "IntALU", "FPALU"]);
    }

    #[test]
    fn bump_and_clear() {
        let mut a = Activity::new();
        a.bump(Block::Bpred);
        a.bump(Block::Bpred);
        a.add(Block::Dcache, 3);
        assert_eq!(a[Block::Bpred], 2);
        assert_eq!(a[Block::Dcache], 3);
        assert_eq!(a.total(), 5);
        a.clear();
        assert_eq!(a.total(), 0);
    }
}
