//! Set-associative caches and TLBs for the memory hierarchy of Table 2.

use crate::config::CacheConfig;

/// Result of one cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim was evicted (write-back traffic).
    pub writeback: bool,
}

#[derive(Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A write-back, write-allocate set-associative cache with LRU replacement.
#[derive(Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    clock: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("accesses", &self.accesses)
            .field("misses", &self.misses)
            .finish()
    }
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            lines: vec![Line::default(); sets * cfg.assoc],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The configured hit latency.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Miss ratio so far (0 when unused).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line as u64) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / (self.cfg.line as u64 * self.sets as u64)
    }

    /// Performs an access (read or write) to `addr`, allocating on miss.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.accesses += 1;
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let assoc = self.cfg.assoc;
        let ways = &mut self.lines[set * assoc..(set + 1) * assoc];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            line.dirty |= is_write;
            return CacheOutcome { hit: true, writeback: false };
        }

        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("assoc > 0");
        let writeback = victim.valid && victim.dirty;
        *victim = Line { tag, valid: true, dirty: is_write, lru: clock };
        CacheOutcome { hit: false, writeback }
    }

    /// Probes without updating state (for tests/inspection).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lines[set * self.cfg.assoc..(set + 1) * self.cfg.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

/// A fully associative TLB with LRU replacement.
#[derive(Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, last_use)
    capacity: usize,
    page_shift: u32,
    clock: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl std::fmt::Debug for Tlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tlb")
            .field("accesses", &self.accesses)
            .field("misses", &self.misses)
            .finish()
    }
}

impl Tlb {
    /// Creates a TLB with `capacity` entries over pages of `page_size`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity > 0` and `page_size` is a power of two.
    pub fn new(capacity: usize, page_size: u64) -> Tlb {
        assert!(capacity > 0, "TLB needs capacity");
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_shift: page_size.trailing_zeros(),
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Translates `addr`; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let vpn = addr >> self.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            e.1 = self.clock;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.clock));
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig { size: 256, assoc: 2, line: 32, latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x11F, false).hit, "same 32B line");
        assert!(!c.access(0x120, false).hit, "next line");
        assert_eq!(c.misses, 2);
        assert_eq!(c.accesses, 4);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache(); // 4 sets, 2 ways
        // Three lines mapping to set 0: addresses 0, 128, 256.
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // refresh 0's recency
        c.access(256, false); // evicts 128
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.access(0, true); // dirty
        c.access(128, false);
        let out = c.access(256, false); // evicts dirty 0
        assert!(out.writeback);
        let out2 = c.access(0, false); // evicts clean 128
        assert!(!out2.writeback);
    }

    #[test]
    fn table2_l1_geometry_behaves() {
        let mut c = Cache::new(CacheConfig { size: 64 * 1024, assoc: 2, line: 32, latency: 1 });
        // Sequential walk over 32 KB touches each line once: all cold
        // misses, then all hits on the second pass.
        for addr in (0..32 * 1024u64).step_by(32) {
            assert!(!c.access(addr, false).hit);
        }
        for addr in (0..32 * 1024u64).step_by(32) {
            assert!(c.access(addr, false).hit);
        }
        assert_eq!(c.miss_ratio(), 0.5);
    }

    #[test]
    fn tlb_hits_within_page_and_lru_evicts() {
        let mut t = Tlb::new(2, 4096);
        assert!(!t.access(0x0000));
        assert!(t.access(0x0FFF), "same page");
        assert!(!t.access(0x1000));
        assert!(t.access(0x0800), "page 0 refreshed");
        assert!(!t.access(0x2000)); // evicts page 1 (LRU)
        assert!(t.access(0x0800));
        assert!(!t.access(0x1400), "page 1 was evicted");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn tlb_rejects_bad_page_size() {
        let _ = Tlb::new(4, 1000);
    }
}
