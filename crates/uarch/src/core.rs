//! The out-of-order core: fetch (with DTM actuators), decode/rename,
//! RUU/LSQ dispatch, issue, execute, writeback (with misprediction
//! recovery), and in-order commit.
//!
//! Structure follows SimpleScalar's `sim-outorder` with the paper's
//! modifications: a deeper front end (three extra rename/enqueue stages),
//! one I-cache access of fetch-width granularity per cycle, and the
//! fetch-toggling / throttling / speculation-control hooks that DTM
//! policies drive.

use crate::activity::{Activity, Block};
use crate::bpred::{HybridPredictor, Prediction};
use crate::cache::{Cache, Tlb};
use crate::config::CoreConfig;
use crate::stream::{OracleStream, WrongPathGenerator};
use crate::toggle::FetchGate;
use tdtm_frontend::Retired;
use tdtm_isa::{Inst, Op, OpClass, Program};
use std::collections::VecDeque;

/// DTM actuator settings, applied by policies between samples.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CoreControl {
    /// Fetch duty cycle in `[0, 1]` (1 = unrestricted, 0 = toggle1's full
    /// stop, 0.5 = toggle2).
    pub fetch_duty: f64,
    /// Fetch-width cap (throttling); `None` = full width.
    pub fetch_width_limit: Option<usize>,
    /// Stall fetch while more than this many unresolved branches are in
    /// flight (speculation control); `None` = off.
    pub max_unresolved_branches: Option<usize>,
}

impl Default for CoreControl {
    fn default() -> CoreControl {
        CoreControl { fetch_duty: 1.0, fetch_width_limit: None, max_unresolved_branches: None }
    }
}

/// Aggregate execution statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Correct-path instructions committed.
    pub committed: u64,
    /// All micro-ops fetched (correct + wrong path).
    pub fetched: u64,
    /// Wrong-path micro-ops fetched.
    pub wrong_path_fetched: u64,
    /// Micro-ops dispatched into the window.
    pub dispatched: u64,
    /// Micro-ops issued to functional units.
    pub issued: u64,
    /// Mispredictions recovered.
    pub recoveries: u64,
    /// Cycles fetch was blocked by the DTM gate.
    pub gated_cycles: u64,
    /// Cycles fetch was stalled by speculation control.
    pub spec_control_stalls: u64,
    /// L1 I-cache misses.
    pub icache_misses: u64,
    /// L1 D-cache misses.
    pub dcache_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Store-to-load forwards.
    pub forwards: u64,
    /// Sum of per-cycle RUU occupancy (divide by `cycles` for the mean).
    pub ruu_occupancy_sum: u64,
    /// Sum of per-cycle LSQ occupancy.
    pub lsq_occupancy_sum: u64,
}

impl CoreStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mean instruction-window (RUU) occupancy.
    pub fn avg_ruu_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ruu_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean load/store-queue occupancy.
    pub fn avg_lsq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.lsq_occupancy_sum as f64 / self.cycles as f64
        }
    }
}

/// A fetched micro-op flowing down the pipeline.
#[derive(Clone, Debug)]
struct Uop {
    inst: Inst,
    pc: u64,
    wrong_path: bool,
    /// Oracle index for correct-path uops.
    oracle_idx: Option<u64>,
    /// Effective address for memory ops (oracle or synthetic).
    mem_addr: Option<u64>,
    /// Architectural branch outcome (correct path only).
    actual_taken: bool,
    actual_target: u64,
    pred: Option<Prediction>,
    will_mispredict: bool,
}

#[derive(Clone, Debug)]
struct RuuEntry {
    seq: u64,
    uop: Uop,
    class: OpClass,
    /// Producing seq numbers this entry still waits on.
    deps: [Option<u64>; 2],
    issued: bool,
    completed: bool,
    complete_cycle: u64,
    /// Destination architectural register (0..31 int, 32..63 fp).
    dest: Option<usize>,
}

impl RuuEntry {
    fn ready(&self) -> bool {
        self.deps[0].is_none() && self.deps[1].is_none()
    }

    fn is_control(&self) -> bool {
        matches!(self.class, OpClass::Branch | OpClass::Jump)
    }
}

#[derive(Clone, Copy, Debug)]
struct LsqEntry {
    seq: u64,
    is_store: bool,
    addr: u64,
    /// Address considered known once the op has issued (address
    /// generation); loads may not bypass earlier stores before that.
    addr_known: bool,
}

#[derive(Clone, Copy, Debug)]
enum FetchSource {
    /// Fetching the correct path; the next oracle index to fetch.
    OnPath(u64),
    /// Fetching a synthesized wrong path; resume here after recovery.
    WrongPath { resume_idx: u64, pc: u64 },
}

/// Why a provably-idle window is idle — the annotation skip tracing
/// attaches to fast-forwarded windows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IdleKind {
    /// Fetch is held off (duty gate closed, width capped to zero, or the
    /// oracle exhausted) and the window ends when the gate next opens
    /// with fetch supply available.
    Gated,
    /// The pipeline is drained down to in-flight long-latency operations
    /// whose completion cycles are already known.
    Drained,
}

/// The cycle-level out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    control: CoreControl,
    gate: FetchGate,

    oracle: OracleStream,
    wrong_path: WrongPathGenerator,
    fetch_source: FetchSource,
    fetch_stall_until: u64,

    ifq: VecDeque<Uop>,
    /// (cycle at which the uop reaches dispatch, uop).
    frontend: VecDeque<(u64, Uop)>,
    ruu: VecDeque<RuuEntry>,
    lsq: VecDeque<LsqEntry>,
    /// Arch-reg (0..63) to producing seq.
    rename_map: [Option<u64>; 64],
    next_seq: u64,
    unresolved_branches: usize,

    bpred: HybridPredictor,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,

    cycle: u64,
    activity: Activity,
    stats: CoreStats,
    halted_seen: bool,
    /// Writeback's per-cycle completion scratch `(ruu index, seq)`,
    /// hoisted to a field so the cycle loop never heap-allocates.
    wb_completed: Vec<(usize, u64)>,
    /// Writeback's per-cycle wakeup scratch (seqs that became ready),
    /// hoisted for the same reason.
    wb_woken: Vec<u64>,
    /// Issue-select ready list: seqs of RUU entries that are ready (no
    /// outstanding deps) and not yet issued, ascending. Maintained
    /// incrementally — dispatch adds born-ready entries, writeback adds
    /// entries whose last dep cleared, issue removes what it issues, and
    /// recovery drops squashed seqs — so the select loop visits only
    /// actual candidates instead of rescanning the window every cycle.
    /// The candidate *order* (oldest first) matches the scan it replaced,
    /// so issue selection and unit allocation are bit-identical.
    ready_unissued: Vec<u64>,

    /// When set, each pipeline stage is wrapped in a host timer and the
    /// accumulated nanoseconds land in `stage_nanos`. Off by default — the
    /// untimed path has no `Instant` calls at all.
    stage_profiling: bool,
    /// Accumulated host nanoseconds per stage, in [`STAGE_NAMES`] order.
    stage_nanos: [u64; 6],
}

/// Stage names matching the `stage_nanos` accumulator order.
pub const STAGE_NAMES: [&str; 6] =
    ["commit", "writeback", "issue", "dispatch", "decode", "fetch"];

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cycle", &self.cycle)
            .field("committed", &self.stats.committed)
            .field("ruu_occupancy", &self.ruu.len())
            .finish()
    }
}

impl Core {
    /// Creates a core that fast-forwards the first `skip` instructions
    /// functionally (no timing, no cache/predictor warmup) and starts
    /// cycle-level simulation there — the analogue of the paper's
    /// skip-then-simulate methodology.
    pub fn with_skip(cfg: CoreConfig, program: &Program, skip: u64) -> Core {
        Core::with_skip_shared(cfg, std::sync::Arc::new(program.clone()), skip)
    }

    /// [`with_skip`](Core::with_skip) over a shared, immutable program —
    /// no deep clone of the text or data segments.
    pub fn with_skip_shared(cfg: CoreConfig, program: std::sync::Arc<Program>, skip: u64) -> Core {
        let mut core = Core::from_shared(cfg, program);
        if skip > 0 {
            let skipped = core.oracle.skip(skip);
            core.fetch_source = FetchSource::OnPath(skipped);
        }
        core
    }

    /// Creates a core executing `program` from its entry point
    /// (deep-clones it; prefer [`from_shared`](Core::from_shared) when an
    /// `Arc` is already at hand).
    pub fn new(cfg: CoreConfig, program: &Program) -> Core {
        Core::from_shared(cfg, std::sync::Arc::new(program.clone()))
    }

    /// [`new`](Core::new) over a shared, immutable program.
    pub fn from_shared(cfg: CoreConfig, program: std::sync::Arc<Program>) -> Core {
        Core {
            control: CoreControl::default(),
            gate: FetchGate::open(),
            oracle: OracleStream::from_shared(program),
            wrong_path: WrongPathGenerator::new(0x7D7D_0001),
            fetch_source: FetchSource::OnPath(0),
            fetch_stall_until: 0,
            ifq: VecDeque::with_capacity(cfg.ifq_size),
            frontend: VecDeque::new(),
            ruu: VecDeque::with_capacity(cfg.ruu_size),
            lsq: VecDeque::with_capacity(cfg.lsq_size),
            rename_map: [None; 64],
            next_seq: 0,
            unresolved_branches: 0,
            bpred: HybridPredictor::new(cfg.bpred),
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.tlb_entries, cfg.page_size),
            dtlb: Tlb::new(cfg.tlb_entries, cfg.page_size),
            cycle: 0,
            activity: Activity::new(),
            stats: CoreStats::default(),
            halted_seen: false,
            wb_completed: Vec::new(),
            wb_woken: Vec::new(),
            ready_unissued: Vec::with_capacity(cfg.ruu_size),
            stage_profiling: false,
            stage_nanos: [0; 6],
            cfg,
        }
    }

    /// Enables or disables per-stage host timing (see [`STAGE_NAMES`]).
    pub fn set_stage_profiling(&mut self, on: bool) {
        self.stage_profiling = on;
    }

    /// Accumulated host nanoseconds per stage, in [`STAGE_NAMES`] order.
    /// All zeros unless [`set_stage_profiling`](Self::set_stage_profiling)
    /// was turned on.
    pub fn stage_nanos(&self) -> [u64; 6] {
        self.stage_nanos
    }

    /// Applies DTM actuator settings.
    pub fn set_control(&mut self, control: CoreControl) {
        self.control = control;
        self.gate.set_duty(control.fetch_duty);
    }

    /// The current actuator settings.
    pub fn control(&self) -> CoreControl {
        self.control
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The branch predictor (for accuracy reporting).
    pub fn bpred(&self) -> &HybridPredictor {
        &self.bpred
    }

    /// Cache miss statistics: (L1I, L1D, L2) miss ratios.
    pub fn cache_miss_ratios(&self) -> (f64, f64, f64) {
        (self.l1i.miss_ratio(), self.l1d.miss_ratio(), self.l2.miss_ratio())
    }

    /// Whether the program has halted and the pipeline fully drained.
    pub fn finished(&self) -> bool {
        self.halted_seen
            && self.ruu.is_empty()
            && self.frontend.is_empty()
            && self.ifq.is_empty()
    }

    /// Values the program has written with `out`.
    pub fn output(&self) -> &[i64] {
        self.oracle.output()
    }

    /// A human-readable snapshot of pipeline state (debugging aid).
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cycle={} ruu={} lsq={} ifq={} fe={} unresolved={} src={:?} stall_until={}",
            self.cycle,
            self.ruu.len(),
            self.lsq.len(),
            self.ifq.len(),
            self.frontend.len(),
            self.unresolved_branches,
            self.fetch_source,
            self.fetch_stall_until
        );
        for e in self.ruu.iter().take(8) {
            let _ = writeln!(
                s,
                "  seq={} {:?} {} wp={} deps={:?} issued={} done={} at={} mp={}",
                e.seq,
                e.class,
                e.uop.inst,
                e.uop.wrong_path,
                e.deps,
                e.issued,
                e.completed,
                e.complete_cycle,
                e.uop.will_mispredict
            );
        }
        for l in self.lsq.iter().take(8) {
            let _ = writeln!(s, "  lsq seq={} store={} known={} addr={:#x}", l.seq, l.is_store, l.addr_known, l.addr);
        }
        s
    }

    /// Advances one clock cycle and returns the cycle's per-structure
    /// activity.
    pub fn cycle(&mut self) -> &Activity {
        self.activity.clear();
        if self.stage_profiling {
            self.cycle_stages_timed();
        } else {
            self.commit();
            self.writeback();
            self.issue();
            self.dispatch();
            self.decode();
            self.fetch();
        }
        self.stats.ruu_occupancy_sum += self.ruu.len() as u64;
        self.stats.lsq_occupancy_sum += self.lsq.len() as u64;
        self.cycle += 1;
        self.stats.cycles += 1;
        &self.activity
    }

    /// Cheap pre-probe for [`idle_window`](Core::idle_window): whether the
    /// current cycle *could* start a provably-idle window. A `false`
    /// result is definitive; a `true` result still needs the full window
    /// walk.
    #[inline]
    pub fn maybe_idle(&self) -> bool {
        self.ifq.is_empty()
            && self.frontend.is_empty()
            && self.ready_unissued.is_empty()
            && self.control.max_unresolved_branches.is_none()
    }

    /// Detects a provably-idle window starting at the current cycle: a
    /// run of cycles over which [`cycle`](Core::cycle) would do no work
    /// beyond duty-gate bookkeeping — no fetch, decode, dispatch, issue,
    /// writeback, or commit, and an all-zero [`Activity`]. Returns the
    /// window length (clamped to `horizon`) and why it is idle, or
    /// `None` if the next cycle may do work.
    ///
    /// The window is bounded by the two events that can wake the
    /// pipeline. The *drain* bound is the earliest `complete_cycle` of
    /// an in-flight (issued, uncompleted) RUU entry — writeback fires
    /// the cycle it is reached. The *fetch* bound is the first cycle at
    /// which the duty gate opens while fetch has both supply (an oracle
    /// record, or any wrong-path cycle) and nonzero width; the gate is
    /// simulated on a copy, and only advanced for real when the caller
    /// commits via [`skip_idle`](Core::skip_idle). Preconditions for any
    /// window: IFQ, rename pipe, and ready-unissued list empty (so no
    /// stage has queued work), window head not yet committable, and
    /// speculation control off (its stall counter is not modeled here).
    ///
    /// Takes `&mut self` because checking fetch supply may run the
    /// functional oracle forward — deterministic and cached, exactly as
    /// fetch itself would have.
    pub fn idle_window(&mut self, horizon: u64) -> Option<(u64, IdleKind)> {
        if horizon == 0 || !self.maybe_idle() {
            return None;
        }
        if self.ruu.front().is_some_and(|e| e.completed) {
            return None; // commit would retire it this cycle
        }
        let mut drain_wake = u64::MAX;
        for e in &self.ruu {
            if e.issued && !e.completed && e.complete_cycle < drain_wake {
                drain_wake = e.complete_cycle;
            }
        }
        if drain_wake <= self.cycle {
            return None; // a completion lands this cycle
        }
        let bound = self.cycle.saturating_add(horizon).min(drain_wake);
        let fetchable = self.effective_fetch_width() > 0
            && self.cfg.ifq_size > 0
            && match self.fetch_source {
                FetchSource::OnPath(idx) => self.oracle.has_record(idx),
                FetchSource::WrongPath { .. } => true,
            };
        let mut fetch_wake = u64::MAX;
        if fetchable {
            let mut gate = self.gate;
            let mut c = self.cycle;
            while c < bound {
                if c >= self.fetch_stall_until && gate.tick() {
                    fetch_wake = c;
                    break;
                }
                c += 1;
            }
        }
        let end = bound.min(fetch_wake);
        let len = end - self.cycle;
        if len == 0 {
            return None;
        }
        let kind = if end == fetch_wake {
            IdleKind::Gated
        } else if end == drain_wake {
            IdleKind::Drained
        } else if fetchable {
            IdleKind::Gated // horizon-capped with the gate still closed
        } else {
            IdleKind::Drained // horizon-capped with no fetch supply
        };
        Some((len, kind))
    }

    /// Fast-forwards `cycles` provably-idle cycles, replicating exactly
    /// what [`cycle`](Core::cycle) would have mutated over the window:
    /// the duty gate ticks on every non-stalled cycle (closed ticks
    /// count as gated), the occupancy sums fold as `cycles × current
    /// occupancy` (nothing enters or leaves the queues while idle), and
    /// the cycle counters advance. The per-cycle [`Activity`] of every
    /// skipped cycle is all-zero by construction. The caller must have
    /// validated the window with [`idle_window`](Core::idle_window).
    pub fn skip_idle(&mut self, cycles: u64) {
        debug_assert!(self.maybe_idle(), "skip_idle outside a validated idle window");
        for c in self.cycle..self.cycle + cycles {
            if c >= self.fetch_stall_until && !self.gate.tick() {
                self.stats.gated_cycles += 1;
            }
        }
        self.stats.ruu_occupancy_sum += cycles * self.ruu.len() as u64;
        self.stats.lsq_occupancy_sum += cycles * self.lsq.len() as u64;
        self.cycle += cycles;
        self.stats.cycles += cycles;
    }

    /// The fetch width after DTM throttling.
    fn effective_fetch_width(&self) -> usize {
        self.control
            .fetch_width_limit
            .map_or(self.cfg.fetch_width, |l| l.min(self.cfg.fetch_width))
    }

    /// The stage sequence of [`cycle`](Self::cycle) with each stage under
    /// a host timer. Kept as a separate body so the untimed path carries
    /// no `Instant` overhead.
    fn cycle_stages_timed(&mut self) {
        use std::time::Instant;
        let mut mark = Instant::now();
        self.commit();
        let mut now = Instant::now();
        self.stage_nanos[0] += (now - mark).as_nanos() as u64;
        mark = now;
        self.writeback();
        now = Instant::now();
        self.stage_nanos[1] += (now - mark).as_nanos() as u64;
        mark = now;
        self.issue();
        now = Instant::now();
        self.stage_nanos[2] += (now - mark).as_nanos() as u64;
        mark = now;
        self.dispatch();
        now = Instant::now();
        self.stage_nanos[3] += (now - mark).as_nanos() as u64;
        mark = now;
        self.decode();
        now = Instant::now();
        self.stage_nanos[4] += (now - mark).as_nanos() as u64;
        mark = now;
        self.fetch();
        self.stage_nanos[5] += mark.elapsed().as_nanos() as u64;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        let mut n = 0;
        while n < self.cfg.commit_width {
            let Some(front) = self.ruu.front() else { break };
            if !front.completed {
                break;
            }
            let entry = self.ruu.pop_front().expect("checked front");
            debug_assert!(!entry.uop.wrong_path, "wrong-path uop survived to commit");
            self.activity.bump(Block::Window);

            if entry.dest.is_some() {
                self.activity.bump(Block::Regfile);
            }
            if let Some(dest) = entry.dest {
                if self.rename_map[dest] == Some(entry.seq) {
                    self.rename_map[dest] = None;
                }
            }

            match entry.class {
                OpClass::Store => {
                    let addr = entry.uop.mem_addr.expect("stores have addresses");
                    self.activity.bump(Block::Dcache);
                    self.activity.bump(Block::Dtlb);
                    self.dtlb.access(addr);
                    let out = self.l1d.access(addr, true);
                    if !out.hit {
                        self.stats.dcache_misses += 1;
                        self.activity.bump(Block::L2);
                        if !self.l2.access(addr, true).hit {
                            self.stats.l2_misses += 1;
                        }
                    }
                    self.lsq_remove(entry.seq);
                    self.wrong_path.observe_addr(addr);
                }
                OpClass::Load => {
                    self.lsq_remove(entry.seq);
                    if let Some(addr) = entry.uop.mem_addr {
                        self.wrong_path.observe_addr(addr);
                    }
                }
                OpClass::Branch | OpClass::Jump => {
                    self.activity.bump(Block::Bpred);
                    if let Some(pred) = &entry.uop.pred {
                        self.bpred.commit(
                            entry.uop.pc,
                            &entry.uop.inst,
                            pred,
                            entry.uop.actual_taken,
                            entry.uop.actual_target,
                        );
                    }
                }
                _ => {}
            }

            if entry.uop.inst.op == Op::Halt {
                self.halted_seen = true;
            }
            if let Some(idx) = entry.uop.oracle_idx {
                self.oracle.trim(idx);
            }
            self.stats.committed += 1;
            n += 1;
        }
    }

    // ------------------------------------------------------------------
    // Writeback / completion / recovery
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        // Collect completions for this cycle into a persistent buffer
        // (reused across cycles — the cycle loop never heap-allocates).
        let mut completed = std::mem::take(&mut self.wb_completed);
        completed.clear();
        let mut recovery: Option<usize> = None;
        for (i, e) in self.ruu.iter_mut().enumerate() {
            if e.issued && !e.completed && e.complete_cycle <= self.cycle {
                e.completed = true;
                completed.push((i, e.seq));
                if e.is_control() {
                    self.unresolved_branches = self.unresolved_branches.saturating_sub(1);
                    if e.uop.will_mispredict && recovery.is_none() {
                        recovery = Some(i);
                    }
                }
            }
        }

        // Broadcast results: wake dependents. Dependences always point at
        // older (smaller-seq) producers, so only entries *behind* the
        // earliest completing one can be waiting on any of this cycle's
        // results. One pass over that suffix matches each sleeping dep
        // against the completion set (seqs ascending — collected in RUU
        // order), instead of rescanning the window per completing uop.
        for _ in &completed {
            self.activity.bump(Block::ResultBus);
            self.activity.bump(Block::Window);
        }
        if let (Some(&(first_idx, first_seq)), Some(&(_, last_seq))) =
            (completed.first(), completed.last())
        {
            let mut woken = std::mem::take(&mut self.wb_woken);
            woken.clear();
            for e in self.ruu.range_mut(first_idx + 1..) {
                let mut cleared = false;
                for d in e.deps.iter_mut() {
                    if let Some(v) = *d {
                        if v >= first_seq
                            && v <= last_seq
                            && completed.binary_search_by_key(&v, |&(_, s)| s).is_ok()
                        {
                            *d = None;
                            cleared = true;
                        }
                    }
                }
                // A cleared dep means the entry was not ready before this
                // cycle, so it cannot already be on the ready list.
                if cleared && !e.issued && e.ready() {
                    woken.push(e.seq);
                }
            }
            for &seq in &woken {
                let pos = self.ready_unissued.partition_point(|&s| s < seq);
                self.ready_unissued.insert(pos, seq);
            }
            self.wb_woken = woken;
        }
        self.wb_completed = completed;

        if let Some(idx) = recovery {
            self.recover(idx);
        }
    }

    /// Squashes everything younger than the mispredicted branch at RUU
    /// index `idx` and redirects fetch to the correct path.
    fn recover(&mut self, idx: usize) {
        let branch_seq = self.ruu[idx].seq;
        let (inst, ckpt, actual_taken, resume_idx) = {
            let e = &self.ruu[idx];
            (
                e.uop.inst,
                e.uop.pred.as_ref().expect("mispredicted branch has prediction").checkpoint,
                e.uop.actual_taken,
                e.uop.oracle_idx.expect("correct-path branch").checked_add(1).expect("seq"),
            )
        };

        while self.ruu.back().is_some_and(|e| e.seq > branch_seq) {
            self.ruu.pop_back();
        }
        while self.lsq.back().is_some_and(|e| e.seq > branch_seq) {
            self.lsq.pop_back();
        }
        self.ifq.clear();
        self.frontend.clear();

        // Rebuild the rename map from surviving entries.
        self.rename_map = [None; 64];
        for e in &self.ruu {
            if let Some(dest) = e.dest {
                self.rename_map[dest] = Some(e.seq);
            }
        }
        self.unresolved_branches = self.ruu.iter().filter(|e| e.is_control() && !e.completed).count();

        self.bpred.repair(&inst, ckpt, actual_taken);
        self.fetch_source = FetchSource::OnPath(resume_idx);
        self.fetch_stall_until = self.cycle + 1;
        self.stats.recoveries += 1;
        // RUU sequence numbers must stay contiguous (dependence lookups
        // index by `seq - front.seq`): recycle the squashed numbers.
        self.next_seq = branch_seq + 1;
        // Squashed entries leave the ready list too — the recycled seqs
        // will name fresh entries that must earn their own readiness.
        self.ready_unissued.retain(|&s| s <= branch_seq);
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        if self.ready_unissued.is_empty() {
            return;
        }
        let mut issued = 0;
        let mut int_alu = self.cfg.int_alu_count;
        let mut int_mult = self.cfg.int_mult_count;
        let mut fp_alu = self.cfg.fp_alu_count;
        let mut fp_mult = self.cfg.fp_mult_count;
        let mut mem_ports = self.cfg.mem_ports;

        let front_seq =
            self.ruu.front().expect("a ready entry implies a nonempty window").seq;

        // Oldest-first over the ready candidates only. Entries that fail
        // to issue (no free unit, LSQ-blocked load, or past the issue
        // width) are kept, in order, for next cycle.
        let mut ready = std::mem::take(&mut self.ready_unissued);
        let mut kept = 0;
        for r in 0..ready.len() {
            let seq = ready[r];
            if issued >= self.cfg.issue_width {
                ready[kept] = seq;
                kept += 1;
                continue;
            }
            let i = (seq - front_seq) as usize;
            debug_assert!(self.ruu[i].ready() && !self.ruu[i].issued);
            let class = self.ruu[i].class;
            let latency = match class {
                OpClass::IntAlu | OpClass::Branch | OpClass::Jump | OpClass::System => {
                    if int_alu == 0 {
                        None
                    } else {
                        int_alu -= 1;
                        self.activity.bump(Block::IntExec);
                        Some(1)
                    }
                }
                OpClass::IntMul => {
                    if int_mult == 0 {
                        None
                    } else {
                        int_mult -= 1;
                        self.activity.bump(Block::IntExec);
                        Some(self.cfg.lat_int_mul)
                    }
                }
                OpClass::IntDiv => {
                    if int_mult == 0 {
                        None
                    } else {
                        int_mult -= 1;
                        self.activity.bump(Block::IntExec);
                        Some(self.cfg.lat_int_div)
                    }
                }
                OpClass::FpAdd => {
                    if fp_alu == 0 {
                        None
                    } else {
                        fp_alu -= 1;
                        self.activity.bump(Block::FpExec);
                        Some(self.cfg.lat_fp_add)
                    }
                }
                OpClass::FpMul => {
                    if fp_mult == 0 {
                        None
                    } else {
                        fp_mult -= 1;
                        self.activity.bump(Block::FpExec);
                        Some(self.cfg.lat_fp_mul)
                    }
                }
                OpClass::FpDiv => {
                    if fp_mult == 0 {
                        None
                    } else {
                        fp_mult -= 1;
                        self.activity.bump(Block::FpExec);
                        Some(self.cfg.lat_fp_div)
                    }
                }
                OpClass::Store => {
                    if mem_ports == 0 {
                        None
                    } else {
                        mem_ports -= 1;
                        // Address generation; the cache write happens at commit.
                        self.activity.bump(Block::IntExec);
                        self.lsq_mark_addr_known(seq);
                        Some(1)
                    }
                }
                OpClass::Load => {
                    if mem_ports == 0 {
                        None
                    } else {
                        match self.try_issue_load(i, front_seq) {
                            Some(lat) => {
                                mem_ports -= 1;
                                Some(lat)
                            }
                            None => None,
                        }
                    }
                }
            };
            let Some(latency) = latency else {
                ready[kept] = seq;
                kept += 1;
                continue;
            };

            let e = &mut self.ruu[i];
            e.issued = true;
            e.complete_cycle = self.cycle + latency;
            self.activity.bump(Block::Window);
            issued += 1;
            self.stats.issued += 1;
        }
        ready.truncate(kept);
        self.ready_unissued = ready;
    }

    /// Checks LSQ ordering constraints for the load at RUU index `i` and
    /// performs the cache access if it may issue. Returns the load
    /// latency, or `None` if it must wait.
    fn try_issue_load(&mut self, ruu_idx: usize, _front_seq: u64) -> Option<u64> {
        let seq = self.ruu[ruu_idx].seq;
        let addr = self.ruu[ruu_idx].uop.mem_addr.expect("loads have addresses");

        let mut forward = false;
        for e in self.lsq.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            if !e.is_store {
                continue;
            }
            if !e.addr_known {
                // Conservative: an earlier store with unknown address
                // blocks the load.
                return None;
            }
            if e.addr >> 3 == addr >> 3 {
                forward = true;
                break;
            }
        }

        // The LSQ CAM search is charged once per successfully issued load
        // (a blocked load does not re-search every cycle).
        self.activity.bump(Block::Lsq);
        if forward {
            self.stats.forwards += 1;
            return Some(1);
        }

        self.activity.bump(Block::Dcache);
        self.activity.bump(Block::Dtlb);
        let mut lat = self.l1d.latency();
        if !self.dtlb.access(addr) {
            lat += self.cfg.tlb_miss_penalty;
        }
        let out = self.l1d.access(addr, false);
        if !out.hit {
            self.stats.dcache_misses += 1;
            self.activity.bump(Block::L2);
            lat += self.l2.latency();
            if !self.l2.access(addr, false).hit {
                self.stats.l2_misses += 1;
                lat += self.cfg.mem_latency;
            }
        }
        Some(lat)
    }

    fn lsq_mark_addr_known(&mut self, seq: u64) {
        if let Some(e) = self.lsq.iter_mut().find(|e| e.seq == seq) {
            e.addr_known = true;
        }
    }

    fn lsq_remove(&mut self, seq: u64) {
        if let Some(pos) = self.lsq.iter().position(|e| e.seq == seq) {
            self.lsq.remove(pos);
            self.activity.bump(Block::Lsq);
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename into RUU/LSQ)
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.decode_width {
            let Some(&(ready_at, _)) = self.frontend.front().map(|(c, u)| (c, u)).as_ref() else {
                break;
            };
            if *ready_at > self.cycle {
                break;
            }
            if self.ruu.len() >= self.cfg.ruu_size {
                break;
            }
            let is_mem = matches!(
                self.frontend.front().expect("checked").1.inst.op.class(),
                OpClass::Load | OpClass::Store
            );
            if is_mem && self.lsq.len() >= self.cfg.lsq_size {
                break;
            }
            let (_, uop) = self.frontend.pop_front().expect("checked");
            self.dispatch_one(uop);
            n += 1;
        }
    }

    fn dispatch_one(&mut self, uop: Uop) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let inst = uop.inst;
        let class = inst.op.class();

        // Resolve register dependences through the rename map.
        let mut deps: [Option<u64>; 2] = [None, None];
        let mut di = 0;
        let mut regfile_reads = 0u32;
        let front = self.ruu.front().map(|e| e.seq).unwrap_or(seq);
        let mut add_src = |arch: usize, this: &mut Core| {
            match this.rename_map[arch] {
                Some(producer) => {
                    let idx = (producer - front) as usize;
                    if this.ruu.get(idx).map(|e| !e.completed).unwrap_or(false) {
                        if di < 2 {
                            deps[di] = Some(producer);
                            di += 1;
                        }
                    } else {
                        regfile_reads += 1;
                    }
                }
                None => regfile_reads += 1,
            }
        };
        for r in inst.int_sources() {
            add_src(r.index(), self);
        }
        for r in inst.fp_sources() {
            add_src(32 + r.index(), self);
        }

        self.activity.add(Block::Regfile, regfile_reads);
        self.activity.bump(Block::Window);

        let dest = inst
            .int_dest()
            .map(|r| r.index())
            .or_else(|| inst.fp_dest().map(|r| 32 + r.index()));
        if let Some(d) = dest {
            self.rename_map[d] = Some(seq);
        }

        if matches!(class, OpClass::Load | OpClass::Store) {
            self.activity.bump(Block::Lsq);
            self.lsq.push_back(LsqEntry {
                seq,
                is_store: class == OpClass::Store,
                addr: uop.mem_addr.unwrap_or(0),
                addr_known: false,
            });
        }
        if matches!(class, OpClass::Branch | OpClass::Jump) {
            self.unresolved_branches += 1;
        }

        let born_ready = deps[0].is_none() && deps[1].is_none();
        self.ruu.push_back(RuuEntry {
            seq,
            uop,
            class,
            deps,
            issued: false,
            completed: false,
            complete_cycle: 0,
            dest,
        });
        if born_ready {
            // `seq` exceeds every live seq, so a push keeps the list sorted.
            debug_assert!(self.ready_unissued.last().is_none_or(|&s| s < seq));
            self.ready_unissued.push(seq);
        }
        self.stats.dispatched += 1;
    }

    // ------------------------------------------------------------------
    // Decode: IFQ -> frontend pipe
    // ------------------------------------------------------------------

    fn decode(&mut self) {
        // The rename pipe holds at most decode_width uops per stage.
        let capacity = self.cfg.decode_width * (self.cfg.frontend_depth as usize + 1);
        let mut n = 0;
        while n < self.cfg.decode_width && self.frontend.len() < capacity {
            let Some(uop) = self.ifq.pop_front() else { break };
            self.activity.bump(Block::Rename);
            self.frontend.push_back((self.cycle + self.cfg.frontend_depth, uop));
            n += 1;
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if self.cycle < self.fetch_stall_until {
            return;
        }
        if !self.gate.tick() {
            self.stats.gated_cycles += 1;
            return;
        }
        if let Some(limit) = self.control.max_unresolved_branches {
            if self.unresolved_branches > limit {
                self.stats.spec_control_stalls += 1;
                return;
            }
        }

        let width = self.effective_fetch_width();
        if width == 0 || self.ifq.len() >= self.cfg.ifq_size {
            return;
        }

        // One I-cache (and I-TLB) access of fetch-width granularity.
        let fetch_pc = match self.fetch_source {
            FetchSource::OnPath(idx) => match self.oracle.get(idx) {
                Some(r) => r.pc,
                None => return, // program exhausted
            },
            FetchSource::WrongPath { pc, .. } => pc,
        };
        self.activity.bump(Block::Icache);
        self.activity.bump(Block::Itlb);
        let mut stall = 0;
        if !self.itlb.access(fetch_pc) {
            stall += self.cfg.tlb_miss_penalty;
        }
        let out = self.l1i.access(fetch_pc, false);
        if !out.hit {
            self.stats.icache_misses += 1;
            self.activity.bump(Block::L2);
            stall += self.l2.latency();
            if !self.l2.access(fetch_pc, false).hit {
                self.stats.l2_misses += 1;
                stall += self.cfg.mem_latency;
            }
        }
        if stall > 0 {
            self.fetch_stall_until = self.cycle + stall;
            return;
        }

        self.activity.bump(Block::Bpred); // per-group predictor/BTB probe
        for _ in 0..width {
            if self.ifq.len() >= self.cfg.ifq_size {
                break;
            }
            match self.fetch_source {
                FetchSource::OnPath(idx) => {
                    let Some(r) = self.oracle.get(idx).copied() else { break };
                    let stop = self.fetch_correct_path(idx, &r);
                    if stop {
                        break;
                    }
                }
                FetchSource::WrongPath { resume_idx, pc } => {
                    self.fetch_wrong_path(resume_idx, pc);
                }
            }
        }
    }

    /// Fetches one correct-path instruction; returns `true` if the fetch
    /// group must stop (taken branch or redirect).
    fn fetch_correct_path(&mut self, idx: u64, r: &Retired) -> bool {
        let mut uop = Uop {
            inst: r.inst,
            pc: r.pc,
            wrong_path: false,
            oracle_idx: Some(idx),
            mem_addr: r.mem.map(|m| m.addr),
            actual_taken: r.branch.map(|b| b.taken).unwrap_or(false),
            actual_target: r.next_pc,
            pred: None,
            will_mispredict: false,
        };

        let mut stop = false;
        if r.inst.op.is_control() {
            self.activity.bump(Block::Bpred);
            let pred = self.bpred.predict(r.pc, &r.inst);
            let pred_taken = pred.taken && pred.target.is_some();
            let pred_next = if pred_taken {
                pred.target.expect("checked")
            } else {
                r.pc + 4
            };
            let mispredict = pred_next != r.next_pc;
            uop.pred = Some(pred);
            uop.will_mispredict = mispredict;
            if mispredict {
                self.fetch_source = FetchSource::WrongPath { resume_idx: idx + 1, pc: pred_next };
                stop = true; // redirect (even a wrong one) ends the group
            } else {
                self.fetch_source = FetchSource::OnPath(idx + 1);
                stop = pred_taken; // fetch stops at a taken branch
            }
        } else {
            self.fetch_source = FetchSource::OnPath(idx + 1);
        }

        self.ifq.push_back(uop);
        self.stats.fetched += 1;
        stop
    }

    fn fetch_wrong_path(&mut self, resume_idx: u64, pc: u64) {
        let (inst, addr) = self.wrong_path.next_inst();
        if inst.op.is_control() {
            self.activity.bump(Block::Bpred);
            // Pollutes speculative history/RAS exactly like a real wrong
            // path; repaired at recovery via the mispredicted branch's
            // checkpoint.
            let _ = self.bpred.predict(pc, &inst);
        }
        let uop = Uop {
            inst,
            pc,
            wrong_path: true,
            oracle_idx: None,
            mem_addr: addr,
            actual_taken: false,
            actual_target: 0,
            pred: None,
            will_mispredict: false,
        };
        self.fetch_source = FetchSource::WrongPath { resume_idx, pc: pc + 4 };
        self.ifq.push_back(uop);
        self.stats.fetched += 1;
        self.stats.wrong_path_fetched += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_isa::asm::assemble;

    fn run_to_completion(src: &str) -> Core {
        let p = assemble(src).expect("assembles");
        let mut core = Core::new(CoreConfig::alpha21264_like(), &p);
        for _ in 0..2_000_000 {
            if core.finished() {
                return core;
            }
            core.cycle();
        }
        panic!("program did not finish; committed={}", core.stats().committed);
    }

    #[test]
    fn straight_line_code_commits_everything() {
        let core = run_to_completion(
            "addi x1, x0, 1
             addi x2, x0, 2
             add  x3, x1, x2
             out  x3
             halt",
        );
        assert_eq!(core.stats().committed, 5);
        assert_eq!(core.output(), &[3]);
    }

    #[test]
    fn tight_loop_reaches_superscalar_ipc() {
        let core = run_to_completion(
            "     li x1, 5000
             l:   addi x2, x2, 1
                  addi x3, x3, 2
                  addi x4, x4, 3
                  addi x1, x1, -1
                  bne  x1, x0, l
                  halt",
        );
        let ipc = core.stats().ipc();
        assert!(ipc > 1.5, "independent ALU loop should exceed 1.5 IPC, got {ipc}");
        assert!(core.bpred().accuracy() > 0.99, "loop branch is highly predictable");
    }

    #[test]
    fn dependent_chain_is_serialized() {
        // A multiply chain can't beat 1/lat IPC.
        let core = run_to_completion(
            "     li x1, 2000
                  li x2, 3
             l:   mul x2, x2, x2
                  addi x1, x1, -1
                  bne x1, x0, l
                  halt",
        );
        let ipc = core.stats().ipc();
        assert!(ipc < 1.5, "3-cycle dependent multiplies bound IPC, got {ipc}");
    }

    #[test]
    fn loads_and_stores_flow_through_lsq() {
        let core = run_to_completion(
            "        .data
             buf:    .zero 800
                     .text
                     la  x1, buf
                     li  x2, 100
             fill:   sw  x2, 0(x1)
                     lw  x3, 0(x1)       # forwarded from the store
                     add x4, x4, x3
                     addi x1, x1, 8
                     addi x2, x2, -1
                     bne x2, x0, fill
                     halt",
        );
        assert!(core.stats().forwards > 50, "store-to-load forwarding expected");
        assert_eq!(core.stats().committed, 3 + 100 * 6);
    }

    #[test]
    fn mispredictions_trigger_recovery_and_wrong_path_fetch() {
        // Data-dependent unpredictable branch pattern: bit 13 of an LCG.
        let core = run_to_completion(
            "     li x1, 3000
                  li x5, 12345
                  li x8, 1103515245
             l:   mul x5, x5, x8
                  addi x5, x5, 12345
                  andi x6, x5, 8192
                  beq x6, x0, skip
                  addi x7, x7, 1
             skip: addi x1, x1, -1
                  bne x1, x0, l
                  halt",
        );
        assert!(core.stats().recoveries > 100, "expected recoveries, got {}", core.stats().recoveries);
        assert!(core.stats().wrong_path_fetched > 0);
        let acc = core.bpred().accuracy();
        assert!(acc < 0.999, "pattern should not be perfectly predictable: {acc}");
    }

    #[test]
    fn fetch_gating_slows_execution_proportionally() {
        let src = "     li x1, 3000
                   l:   addi x2, x2, 1
                        addi x3, x3, 1
                        addi x1, x1, -1
                        bne  x1, x0, l
                        halt";
        let p = assemble(src).unwrap();
        let mut free = Core::new(CoreConfig::alpha21264_like(), &p);
        while !free.finished() {
            free.cycle();
        }
        let mut gated = Core::new(CoreConfig::alpha21264_like(), &p);
        gated.set_control(CoreControl { fetch_duty: 0.25, ..CoreControl::default() });
        while !gated.finished() {
            gated.cycle();
            assert!(gated.stats().cycles < 10_000_000, "gated run must still finish");
        }
        let slowdown = gated.stats().cycles as f64 / free.stats().cycles as f64;
        assert!(
            slowdown > 2.0,
            "quarter-duty fetch should slow this fetch-bound loop >2x, got {slowdown}"
        );
        assert!(gated.stats().gated_cycles > gated.stats().cycles / 2);
    }

    #[test]
    fn zero_duty_stops_fetch_entirely() {
        let p = assemble("l: j l").unwrap();
        let mut core = Core::new(CoreConfig::alpha21264_like(), &p);
        // Let the pipeline fill, then gate fully.
        for _ in 0..100 {
            core.cycle();
        }
        core.set_control(CoreControl { fetch_duty: 0.0, ..CoreControl::default() });
        let fetched_before = core.stats().fetched;
        for _ in 0..1000 {
            core.cycle();
        }
        assert_eq!(core.stats().fetched, fetched_before, "toggle1 stops all fetch");
    }

    #[test]
    fn speculation_control_limits_unresolved_branches() {
        let src = "     li x1, 2000
                   l:   addi x2, x2, 1
                        addi x1, x1, -1
                        bne  x1, x0, l
                        halt";
        let p = assemble(src).unwrap();
        let mut limited = Core::new(CoreConfig::alpha21264_like(), &p);
        limited.set_control(CoreControl {
            max_unresolved_branches: Some(1),
            ..CoreControl::default()
        });
        while !limited.finished() {
            limited.cycle();
        }
        assert!(limited.stats().spec_control_stalls > 0);
        let mut free = Core::new(CoreConfig::alpha21264_like(), &p);
        while !free.finished() {
            free.cycle();
        }
        assert!(limited.stats().cycles >= free.stats().cycles);
    }

    #[test]
    fn activity_counters_track_pipeline_events() {
        let p = assemble(
            "     li x1, 50
             l:   addi x2, x2, 1
                  addi x1, x1, -1
                  bne x1, x0, l
                  halt",
        )
        .unwrap();
        let mut core = Core::new(CoreConfig::alpha21264_like(), &p);
        let mut saw_icache = false;
        let mut saw_window = false;
        let mut saw_int = false;
        while !core.finished() {
            let a = core.cycle();
            saw_icache |= a[Block::Icache] > 0;
            saw_window |= a[Block::Window] > 0;
            saw_int |= a[Block::IntExec] > 0;
        }
        assert!(saw_icache && saw_window && saw_int);
    }

    #[test]
    fn skip_fast_forwards_functional_state() {
        let src = "     li x1, 1000
                   l:   addi x5, x5, 1
                        addi x1, x1, -1
                        bne  x1, x0, l
                        out  x5
                        halt";
        let p = assemble(src).unwrap();
        // Skip most of the loop; the timed region still produces the
        // architecturally correct output.
        let mut core = Core::with_skip(CoreConfig::alpha21264_like(), &p, 2_500);
        while !core.finished() {
            core.cycle();
        }
        assert_eq!(core.output(), &[1000]);
        assert!(
            core.stats().committed < 600,
            "only the tail should be timed, committed {}",
            core.stats().committed
        );
    }

    #[test]
    fn program_output_matches_functional_semantics() {
        // The timing model must not change architectural results.
        let core = run_to_completion(
            "     li x1, 10
                  li x2, 0
             l:   add x2, x2, x1
                  addi x1, x1, -1
                  bne x1, x0, l
                  out x2
                  halt",
        );
        assert_eq!(core.output(), &[55]);
    }

    /// The idle-window contract, end to end: a core that fast-forwards
    /// every detected window must be indistinguishable — stats, cycle
    /// counter, gated-cycle counter, occupancy sums, architectural
    /// output — from one ticking cycle by cycle, and every skipped cycle
    /// must have been a zero-activity cycle on the reference.
    #[test]
    fn idle_window_skip_is_indistinguishable_from_ticking() {
        let src = "     li x1, 400
                   l:   addi x2, x2, 1
                        addi x3, x3, 1
                        addi x1, x1, -1
                        bne  x1, x0, l
                        halt";
        let p = assemble(src).unwrap();
        for duty in [0.125, 0.25, 0.5] {
            let mut reference = Core::new(CoreConfig::alpha21264_like(), &p);
            let mut skipping = Core::new(CoreConfig::alpha21264_like(), &p);
            let control = CoreControl { fetch_duty: duty, ..CoreControl::default() };
            reference.set_control(control);
            skipping.set_control(control);
            let mut windows = 0u64;
            let mut guard = 0u64;
            while !skipping.finished() {
                guard += 1;
                assert!(guard < 1_000_000, "duty {duty}: run did not finish");
                if let Some((k, _)) = skipping.idle_window(256) {
                    for _ in 0..k {
                        let a = reference.cycle();
                        assert_eq!(a.total(), 0, "duty {duty}: skipped cycle had activity");
                    }
                    skipping.skip_idle(k);
                    windows += 1;
                } else {
                    reference.cycle();
                    skipping.cycle();
                }
                assert_eq!(reference.stats(), skipping.stats(), "duty {duty}");
            }
            assert!(windows > 0, "duty {duty}: gated loop should expose idle windows");
            assert!(reference.finished(), "lockstep twins finish together");
            assert_eq!(reference.output(), skipping.output());
            assert!(skipping.stats().gated_cycles > 0);
        }
    }

    #[test]
    fn drained_miss_chains_expose_idle_windows_at_full_duty() {
        // Pointer-chase of cold misses: the pipeline drains down to one
        // in-flight load whose completion cycle is known, so windows are
        // detected even with the fetch gate wide open (the stall comes
        // from the I-cache-miss fetch stall + drained window).
        let p = assemble(
            "        li x1, 0x200000
                     li x2, 300
             l:      lw x3, 0(x1)
                     lw x4, 0(x3)        # depends on the missing load
                     addi x1, x1, 8192
                     addi x2, x2, -1
                     bne x2, x0, l
                     halt",
        )
        .unwrap();
        let mut reference = Core::new(CoreConfig::alpha21264_like(), &p);
        let mut skipping = Core::new(CoreConfig::alpha21264_like(), &p);
        let mut drained = 0u64;
        let mut guard = 0u64;
        while !skipping.finished() {
            guard += 1;
            assert!(guard < 2_000_000, "run did not finish");
            if let Some((k, kind)) = skipping.idle_window(256) {
                for _ in 0..k {
                    let a = reference.cycle();
                    assert_eq!(a.total(), 0, "skipped cycle had activity");
                }
                skipping.skip_idle(k);
                if kind == IdleKind::Drained {
                    drained += 1;
                }
            } else {
                reference.cycle();
                skipping.cycle();
            }
        }
        assert_eq!(reference.stats(), skipping.stats());
        assert!(drained > 0, "miss-bound chase should expose drained windows");
    }

    #[test]
    fn memory_latency_shows_up_for_cold_misses() {
        // Pointer-chase across 8 KB-spaced lines: every load is a cold
        // L1 (and mostly L2) miss and each depends on the previous one.
        let core = run_to_completion(
            "        li x1, 0x200000
                     li x2, 500
             l:      lw x3, 0(x1)        # cold miss chain
                     addi x1, x1, 8192
                     addi x2, x2, -1
                     bne x2, x0, l
                     halt",
        );
        let ipc = core.stats().ipc();
        assert!(ipc < 1.0, "miss-bound chase should be slow, got {ipc}");
        assert!(core.stats().dcache_misses > 400);
    }
}
