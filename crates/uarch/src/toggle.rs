//! The fetch-toggling actuator.
//!
//! The paper's DTM response vehicle: "every N cycles, instruction fetch is
//! disabled" — generalized, for the control-theoretic policies, to a duty
//! cycle with "eight discrete values distributed evenly across the range
//! from 0% to 100%". [`FetchGate`] turns a duty fraction into a per-cycle
//! enable bit with a credit accumulator, so a duty of `5/8` fetches on
//! exactly 5 of every 8 cycles, evenly spread.

/// Duty-cycled fetch gate.
#[derive(Clone, Copy, Debug)]
pub struct FetchGate {
    duty: f64,
    credit: f64,
}

impl FetchGate {
    /// A fully open gate (fetch every cycle).
    pub fn open() -> FetchGate {
        FetchGate { duty: 1.0, credit: 0.0 }
    }

    /// Creates a gate with the given duty fraction, clamped to `[0, 1]`.
    pub fn with_duty(duty: f64) -> FetchGate {
        let mut g = FetchGate::open();
        g.set_duty(duty);
        g
    }

    /// The current duty fraction.
    pub fn duty(&self) -> f64 {
        self.duty
    }

    /// Sets the duty fraction (clamped to `[0, 1]`). `1.0` is unrestricted
    /// fetch; `0.5` is the paper's toggle2; `0.0` is toggle1's full stop.
    pub fn set_duty(&mut self, duty: f64) {
        self.duty = duty.clamp(0.0, 1.0);
        if self.duty >= 1.0 {
            self.credit = 0.0;
        }
    }

    /// Advances one cycle; returns whether fetch is enabled this cycle.
    pub fn tick(&mut self) -> bool {
        if self.duty >= 1.0 {
            return true;
        }
        self.credit += self.duty;
        if self.credit >= 1.0 - 1e-12 {
            self.credit -= 1.0;
            true
        } else {
            false
        }
    }
}

impl Default for FetchGate {
    fn default() -> FetchGate {
        FetchGate::open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_of(duty: f64, cycles: usize) -> usize {
        let mut g = FetchGate::with_duty(duty);
        (0..cycles).filter(|_| g.tick()).count()
    }

    #[test]
    fn full_duty_always_fetches() {
        assert_eq!(enabled_of(1.0, 1000), 1000);
    }

    #[test]
    fn zero_duty_never_fetches() {
        assert_eq!(enabled_of(0.0, 1000), 0);
    }

    #[test]
    fn toggle2_is_every_other_cycle() {
        let mut g = FetchGate::with_duty(0.5);
        let pattern: Vec<bool> = (0..8).map(|_| g.tick()).collect();
        assert_eq!(pattern.iter().filter(|&&b| b).count(), 4);
        // Evenly interleaved, not clustered.
        assert!(pattern.windows(2).all(|w| w[0] != w[1]), "{pattern:?}");
    }

    #[test]
    fn eighth_steps_hit_exact_rates() {
        for k in 0..=8 {
            let duty = k as f64 / 8.0;
            assert_eq!(enabled_of(duty, 800), k * 100, "duty {k}/8");
        }
    }

    #[test]
    fn duty_changes_take_effect() {
        let mut g = FetchGate::with_duty(0.0);
        assert!(!g.tick());
        g.set_duty(1.0);
        assert!(g.tick());
        g.set_duty(0.25);
        let got = (0..400).filter(|_| g.tick()).count();
        assert_eq!(got, 100);
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(FetchGate::with_duty(7.0).duty(), 1.0);
        assert_eq!(FetchGate::with_duty(-3.0).duty(), 0.0);
    }
}
