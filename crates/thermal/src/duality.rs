//! The thermal-electrical duality (paper Table 1).
//!
//! | Thermal quantity            | unit  | Electrical quantity      | unit |
//! |-----------------------------|-------|--------------------------|------|
//! | Heat flow, power `P`        | W     | Current flow `I`         | A    |
//! | Temperature difference `ΔT` | K     | Voltage `V`              | V    |
//! | Thermal resistance `Rth`    | K/W   | Electrical resistance    | Ω    |
//! | Thermal mass `Cth`          | J/K   | Electrical capacitance   | F    |
//! | Thermal RC constant `τ`     | s     | Electrical RC constant   | s    |
//!
//! The newtypes here make the duality explicit and keep units straight in
//! the derivation code; the hot simulation loops use plain `f64` arrays for
//! speed, converting at the boundary.

use std::fmt;
use std::ops::{Add, Div, Mul};

/// A thermal resistance in kelvin per watt.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct ThermalResistance(pub f64);

/// A thermal capacitance (thermal mass) in joules per kelvin.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct ThermalCapacitance(pub f64);

/// A heat flow in watts.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct HeatFlow(pub f64);

/// A temperature difference in kelvin.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct TempDelta(pub f64);

/// A thermal time constant in seconds.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct TimeConstant(pub f64);

impl ThermalResistance {
    /// Series composition: resistances add.
    pub fn series(self, other: ThermalResistance) -> ThermalResistance {
        ThermalResistance(self.0 + other.0)
    }

    /// Parallel composition: `R1·R2/(R1+R2)`.
    ///
    /// The paper's simplification rule — "large thermal resistors in
    /// parallel with smaller ones can safely be ignored" — follows from
    /// this: as one branch grows, the composite tends to the smaller one.
    pub fn parallel(self, other: ThermalResistance) -> ThermalResistance {
        ThermalResistance(self.0 * other.0 / (self.0 + other.0))
    }
}

/// Thermal Ohm's law: `ΔT = P · Rth`.
impl Mul<ThermalResistance> for HeatFlow {
    type Output = TempDelta;
    fn mul(self, r: ThermalResistance) -> TempDelta {
        TempDelta(self.0 * r.0)
    }
}

/// `τ = R · C`.
impl Mul<ThermalCapacitance> for ThermalResistance {
    type Output = TimeConstant;
    fn mul(self, c: ThermalCapacitance) -> TimeConstant {
        TimeConstant(self.0 * c.0)
    }
}

/// Heat flow through a resistance driven by a temperature difference:
/// `P = ΔT / Rth`.
impl Div<ThermalResistance> for TempDelta {
    type Output = HeatFlow;
    fn div(self, r: ThermalResistance) -> HeatFlow {
        HeatFlow(self.0 / r.0)
    }
}

impl Add for TempDelta {
    type Output = TempDelta;
    fn add(self, o: TempDelta) -> TempDelta {
        TempDelta(self.0 + o.0)
    }
}

impl fmt::Display for ThermalResistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} K/W", self.0)
    }
}

impl fmt::Display for ThermalCapacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} J/K", self.0)
    }
}

impl fmt::Display for TimeConstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Section 4.1 worked steady-state example: 25 W through
    /// 1 K/W die-to-case plus 1 K/W heatsink above 27 C ambient gives
    /// 25·2 + 27 = 77 C.
    #[test]
    fn paper_steady_state_example() {
        let r = ThermalResistance(1.0).series(ThermalResistance(1.0));
        let dt = HeatFlow(25.0) * r;
        assert_eq!(dt.0 + 27.0, 77.0);
    }

    /// The paper's Section 4.1 dynamic example: a 60 J/K heatsink behind
    /// ~2 K/W gives a time constant on the order of a minute.
    #[test]
    fn paper_time_constant_example() {
        let tau = ThermalResistance(2.0) * ThermalCapacitance(60.0);
        assert!(tau.0 >= 60.0 && tau.0 <= 180.0, "tau = {tau}");
    }

    #[test]
    fn parallel_dominated_by_smaller() {
        let small = ThermalResistance(1.0);
        let large = ThermalResistance(1000.0);
        let combined = small.parallel(large);
        assert!((combined.0 - 1.0).abs() < 0.01, "large parallel R is ignorable");
    }

    #[test]
    fn ohms_law_inverse() {
        let p = TempDelta(10.0) / ThermalResistance(2.0);
        assert_eq!(p.0, 5.0);
    }
}
