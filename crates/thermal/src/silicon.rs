//! Derivation of per-block thermal R and C from material properties
//! (paper Section 4.3).
//!
//! The paper derives, for a die of thickness `t`:
//!
//! * block normal resistance `R_nor = ρ · t / A` (vertical conduction from
//!   the block into the heat spreader),
//! * block capacitance `C_block = c_v · t · A`,
//! * tangential resistance `R_tan = ρ/(2πt) · ln(r_o/r_i)` (radial
//!   conduction between neighboring blocks, integrating thermal Ohm's law
//!   over annuli), which comes out orders of magnitude larger than `R_nor`
//!   and is therefore dropped from the simplified model.
//!
//! Note `R_nor · C_block = ρ · c_v · t²` is independent of block area: all
//! blocks share one time constant, in the tens of microseconds — squarely
//! inside the band the paper's Table 3 reports (tens to hundreds of
//! microseconds) and orders of magnitude below the heatsink's ~minute-scale
//! constant, which justifies holding the heatsink temperature constant over
//! short intervals.
//!
//! ## Effective vs. bulk constants
//!
//! Bulk silicon at ~100 C has `ρ ≈ 0.01 K·m/W` and `c_v ≈ 1.6e6 J/(m³·K)`.
//! Pure one-dimensional vertical conduction through a 0.1 mm wafer with
//! those values yields per-block ΔT of well under 1 K at realistic power
//! densities, which cannot reproduce the localized-hot-spot behavior (and
//! Table 3 values) the paper reports. The paper's lumped values necessarily
//! fold in spreading resistance and the die-to-spreader interface. We follow
//! suit with *effective* constants — `ρ_eff = 0.06 K·m/W`,
//! `c_v_eff = 1.4e5 J/(m³·K)` — chosen so that (a) per-block R lands at
//! 0.6–2.4 K/W for the paper's Table 3 areas, (b) the common block time
//! constant is 84 µs (the table's band), and (c) peak power densities of
//! ~1.5 W/mm² produce the ~10 K local swings the paper observes. The bulk
//! constants remain available as [`SiliconProperties::bulk`] and are used
//! for the `R_tan >> R_nor` demonstration, which holds for either set.

use crate::duality::{ThermalCapacitance, ThermalResistance, TimeConstant};

/// Material/geometry constants for deriving lumped thermal elements.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SiliconProperties {
    /// Thermal resistivity in K·m/W, at [`REFERENCE_TEMP`].
    pub resistivity: f64,
    /// Volumetric heat capacity in J/(m³·K), at [`REFERENCE_TEMP`].
    pub volumetric_heat_capacity: f64,
    /// Die (thinned-wafer) thickness in meters.
    pub thickness: f64,
}

/// Temperature at which the tabulated properties hold (C).
pub const REFERENCE_TEMP: f64 = 100.0;

/// Fractional increase in silicon thermal resistivity per kelvin around
/// the reference temperature (bulk silicon's conductivity falls roughly
/// as T^-1.3; linearized near 100 C this is ~0.4%/K).
pub const RESISTIVITY_TEMP_COEFF: f64 = 0.004;

/// Fractional increase in volumetric heat capacity per kelvin near the
/// reference temperature (~0.04%/K — nearly flat).
pub const HEAT_CAPACITY_TEMP_COEFF: f64 = 0.0004;

impl SiliconProperties {
    /// The effective constants used for the paper reproduction (see module
    /// docs): ρ_eff = 0.06 K·m/W, c_v_eff = 1.4e5 J/(m³·K), t = 0.1 mm.
    pub fn effective() -> SiliconProperties {
        SiliconProperties {
            resistivity: 0.06,
            volumetric_heat_capacity: 1.4e5,
            thickness: 1.0e-4,
        }
    }

    /// Bulk silicon constants at ~100 C: ρ ≈ 0.01 K·m/W,
    /// c_v ≈ 1.6e6 J/(m³·K), t = 0.1 mm.
    pub fn bulk() -> SiliconProperties {
        SiliconProperties {
            resistivity: 0.01,
            volumetric_heat_capacity: 1.6e6,
            thickness: 1.0e-4,
        }
    }

    /// Block normal thermal resistance `R_nor = ρ·t/A` for a block of
    /// `area` m².
    ///
    /// # Panics
    ///
    /// Panics if `area` is not positive.
    pub fn r_normal(&self, area: f64) -> ThermalResistance {
        assert!(area > 0.0, "block area must be positive");
        ThermalResistance(self.resistivity * self.thickness / area)
    }

    /// Block thermal capacitance `C = c_v·t·A` for a block of `area` m².
    ///
    /// # Panics
    ///
    /// Panics if `area` is not positive.
    pub fn c_block(&self, area: f64) -> ThermalCapacitance {
        assert!(area > 0.0, "block area must be positive");
        ThermalCapacitance(self.volumetric_heat_capacity * self.thickness * area)
    }

    /// The (area-independent) block time constant `τ = ρ·c_v·t²`.
    pub fn block_time_constant(&self) -> TimeConstant {
        TimeConstant(self.resistivity * self.volumetric_heat_capacity * self.thickness.powi(2))
    }

    /// Tangential (block-to-block, lateral) thermal resistance.
    ///
    /// Integrating thermal Ohm's law `dR = ρ·dr / (2π·r·t)` over annuli of
    /// radius `r` from `r_inner` to `r_outer` (paper Eq. 4) gives
    /// `R_tan = ρ/(2πt) · ln(r_outer/r_inner)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < r_inner < r_outer`.
    pub fn r_tangential(&self, r_inner: f64, r_outer: f64) -> ThermalResistance {
        assert!(r_inner > 0.0 && r_outer > r_inner, "need 0 < r_inner < r_outer");
        ThermalResistance(
            self.resistivity / (2.0 * std::f64::consts::PI * self.thickness)
                * (r_outer / r_inner).ln(),
        )
    }

    /// Convenience: tangential resistance between the center of a square
    /// block of `area` and its edge, using `r_inner` = one wafer thickness.
    pub fn r_tangential_for_block(&self, area: f64) -> ThermalResistance {
        let r_outer = (area / std::f64::consts::PI).sqrt();
        self.r_tangential(self.thickness, r_outer)
    }

    /// Thermal resistivity adjusted to temperature `temp` (C), using the
    /// linearized coefficient. The paper notes this variation exists and
    /// argues it is small enough to ignore; see the tests.
    pub fn resistivity_at(&self, temp: f64) -> f64 {
        self.resistivity * (1.0 + RESISTIVITY_TEMP_COEFF * (temp - REFERENCE_TEMP))
    }

    /// Volumetric heat capacity adjusted to temperature `temp` (C).
    pub fn heat_capacity_at(&self, temp: f64) -> f64 {
        self.volumetric_heat_capacity
            * (1.0 + HEAT_CAPACITY_TEMP_COEFF * (temp - REFERENCE_TEMP))
    }

    /// Block normal resistance at an explicit operating temperature.
    ///
    /// # Panics
    ///
    /// Panics if `area` is not positive.
    pub fn r_normal_at(&self, area: f64, temp: f64) -> ThermalResistance {
        assert!(area > 0.0, "block area must be positive");
        ThermalResistance(self.resistivity_at(temp) * self.thickness / area)
    }
}

impl Default for SiliconProperties {
    fn default() -> SiliconProperties {
        SiliconProperties::effective()
    }
}

/// The seven architectural structures the paper models thermally, with the
/// Table 3 areas (m²).
pub const TABLE3_AREAS: [(&str, f64); 7] = [
    ("LSQ", 5.0e-6),
    ("inst. window", 9.0e-6),
    ("regfile", 2.5e-6),
    ("bpred", 3.5e-6),
    ("D-cache", 1.0e-5),
    ("int exec. unit", 5.0e-6),
    ("FP exec. unit", 5.0e-6),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rc_in_paper_band() {
        let si = SiliconProperties::effective();
        for &(name, area) in &TABLE3_AREAS {
            let r = si.r_normal(area);
            let c = si.c_block(area);
            let tau = r * c;
            assert!(
                (1e-5..=2e-4).contains(&tau.0),
                "{name}: tau {} outside tens-to-hundreds-of-us band",
                tau.0
            );
            assert!(
                (0.3..=3.0).contains(&r.0),
                "{name}: R {} outside plausible per-block range",
                r.0
            );
        }
    }

    #[test]
    fn time_constant_is_area_independent() {
        let si = SiliconProperties::effective();
        let t1 = si.r_normal(1e-6).0 * si.c_block(1e-6).0;
        let t2 = si.r_normal(9e-6).0 * si.c_block(9e-6).0;
        assert!((t1 - t2).abs() < 1e-12);
        assert!((t1 - si.block_time_constant().0).abs() < 1e-12);
    }

    #[test]
    fn effective_block_tau_is_84us() {
        let tau = SiliconProperties::effective().block_time_constant();
        assert!((tau.0 - 8.4e-5).abs() < 1e-7, "tau = {}", tau.0);
    }

    /// The paper's key simplification: tangential resistance is orders of
    /// magnitude larger than normal resistance, for every Table 3 block.
    #[test]
    fn tangential_dwarfs_normal() {
        for si in [SiliconProperties::effective(), SiliconProperties::bulk()] {
            for &(name, area) in &TABLE3_AREAS {
                let rn = si.r_normal(area).0;
                let rt = si.r_tangential_for_block(area).0;
                assert!(
                    rt / rn > 50.0,
                    "{name}: R_tan/R_nor = {:.1} should be >> 1",
                    rt / rn
                );
            }
        }
    }

    #[test]
    fn bigger_blocks_conduct_better_but_store_more() {
        let si = SiliconProperties::effective();
        assert!(si.r_normal(1e-5).0 < si.r_normal(1e-6).0);
        assert!(si.c_block(1e-5).0 > si.c_block(1e-6).0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_rejected() {
        let _ = SiliconProperties::effective().r_normal(0.0);
    }

    /// The paper: "Both the thermal capacitance and thermal resistance for
    /// silicon are variable with temperature, but the variation is small."
    /// Quantified: across the whole DTM operating band (heatsink 103 C to
    /// emergency 111 C) R moves by ~3% and C by well under 1% — both far
    /// below the factor-of-several effects DTM manages.
    #[test]
    fn temperature_variation_is_small_over_the_dtm_band() {
        let si = SiliconProperties::effective();
        for &(name, area) in &TABLE3_AREAS {
            let r_cool = si.r_normal_at(area, 103.0).0;
            let r_hot = si.r_normal_at(area, 111.0).0;
            let swing = (r_hot - r_cool) / r_cool;
            assert!(swing > 0.0, "{name}: hotter silicon conducts worse");
            assert!(swing < 0.05, "{name}: R swing {swing:.3} should be a few percent");
        }
        let c_swing = (si.heat_capacity_at(111.0) - si.heat_capacity_at(103.0))
            / si.heat_capacity_at(103.0);
        assert!(c_swing.abs() < 0.01, "C variation is negligible: {c_swing:.4}");
    }

    #[test]
    fn reference_temperature_is_the_fixed_point() {
        let si = SiliconProperties::effective();
        assert_eq!(si.resistivity_at(REFERENCE_TEMP), si.resistivity);
        assert_eq!(si.heat_capacity_at(REFERENCE_TEMP), si.volumetric_heat_capacity);
        assert_eq!(si.r_normal_at(5e-6, REFERENCE_TEMP).0, si.r_normal(5e-6).0);
    }
}
