//! A general lumped thermal-RC network (the "full model" of Figure 3B).
//!
//! Nodes carry a thermal capacitance and a temperature; resistive edges
//! connect nodes to each other and to the fixed-temperature ambient. Power
//! sources inject heat at nodes. Integration is explicit (forward Euler),
//! which is accurate and stable as long as the step is well below the
//! smallest RC product in the network; [`RcNetwork::max_stable_dt`] reports
//! that bound.
//!
//! This model is used to *validate* the paper's simplifications: build the
//! full network (blocks + tangential resistances + dynamic heatsink) and
//! check that the reduced per-block model of [`crate::block_model`] tracks
//! it closely over short horizons.

use crate::{Celsius, Watts};

/// Identifier for a node in an [`RcNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub(crate) usize);

#[derive(Clone, Debug)]
struct Node {
    capacitance: f64,
    temp: f64,
    power: f64,
    /// Fixed-temperature (infinite thermal mass) node.
    fixed: bool,
}

#[derive(Clone, Copy, Debug)]
struct Edge {
    a: usize,
    /// `usize::MAX` denotes the ambient reference.
    b: usize,
    conductance: f64,
}

const AMBIENT: usize = usize::MAX;

/// A lumped thermal-RC network with a fixed-temperature ambient reference.
#[derive(Clone, Debug)]
pub struct RcNetwork {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    ambient: Celsius,
    time: f64,
}

impl RcNetwork {
    /// Creates an empty network with the given ambient temperature.
    pub fn new(ambient: Celsius) -> RcNetwork {
        RcNetwork { nodes: Vec::new(), edges: Vec::new(), ambient, time: 0.0 }
    }

    /// Adds a node with thermal capacitance `capacitance` (J/K) starting at
    /// `initial` degrees.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance` is not positive.
    pub fn add_node(&mut self, capacitance: f64, initial: Celsius) -> NodeId {
        assert!(capacitance > 0.0, "capacitance must be positive");
        self.nodes.push(Node { capacitance, temp: initial, power: 0.0, fixed: false });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a fixed-temperature node (infinite thermal mass), e.g. a
    /// heatsink held constant over short horizons.
    pub fn add_fixed_node(&mut self, temp: Celsius) -> NodeId {
        self.nodes.push(Node { capacitance: 1.0, temp, power: 0.0, fixed: true });
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two nodes with a thermal resistance `r` (K/W).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive.
    pub fn connect(&mut self, a: NodeId, b: NodeId, r: f64) {
        assert!(r > 0.0, "resistance must be positive");
        self.edges.push(Edge { a: a.0, b: b.0, conductance: 1.0 / r });
    }

    /// Connects a node to the ambient reference through resistance `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive.
    pub fn connect_to_ambient(&mut self, a: NodeId, r: f64) {
        assert!(r > 0.0, "resistance must be positive");
        self.edges.push(Edge { a: a.0, b: AMBIENT, conductance: 1.0 / r });
    }

    /// Sets the heat injected at `node` (W). Replaces any previous value.
    pub fn set_power(&mut self, node: NodeId, power: Watts) {
        self.nodes[node.0].power = power;
    }

    /// Current temperature of `node`.
    pub fn temperature(&self, node: NodeId) -> Celsius {
        self.nodes[node.0].temp
    }

    /// Overrides the temperature of `node` (e.g. to set initial conditions).
    pub fn set_temperature(&mut self, node: NodeId, temp: Celsius) {
        self.nodes[node.0].temp = temp;
    }

    /// Simulated time elapsed (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The ambient reference temperature.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Whether `node` is a fixed-temperature node.
    pub fn is_fixed(&self, node: NodeId) -> bool {
        self.nodes[node.0].fixed
    }

    /// Thermal capacitance of `node` (J/K).
    pub fn capacitance(&self, node: NodeId) -> f64 {
        self.nodes[node.0].capacitance
    }

    /// Heat currently injected at `node` (W).
    pub fn power(&self, node: NodeId) -> Watts {
        self.nodes[node.0].power
    }

    /// All node ids, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// All resistive edges as `(a, b, conductance)`; `b` is `None` for
    /// edges to the ambient reference. Exposed for model-extraction
    /// passes ([`crate::reduction`]).
    pub fn edge_list(&self) -> impl Iterator<Item = (NodeId, Option<NodeId>, f64)> + '_ {
        self.edges.iter().map(|e| {
            let b = if e.b == AMBIENT { None } else { Some(NodeId(e.b)) };
            (NodeId(e.a), b, e.conductance)
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The largest forward-Euler step that keeps every node's update
    /// contraction stable (`dt < C_i / Σg_i`), with a 2x safety margin.
    ///
    /// Degenerate networks impose no bound and return `INFINITY`: an
    /// empty network, a fixed-only network, and free nodes with no
    /// edges at all (their Euler update `T += dt·P/C` has no
    /// contraction to destabilize). [`RcNetwork::run`] clamps with
    /// `min`, so an infinite bound simply leaves the caller's `dt`
    /// untouched.
    pub fn max_stable_dt(&self) -> f64 {
        let mut total_g = vec![0.0f64; self.nodes.len()];
        for e in &self.edges {
            total_g[e.a] += e.conductance;
            if e.b != AMBIENT {
                total_g[e.b] += e.conductance;
            }
        }
        self.nodes
            .iter()
            .zip(&total_g)
            .filter(|(n, &g)| !n.fixed && g > 0.0)
            .map(|(n, &g)| n.capacitance / g)
            .fold(f64::INFINITY, f64::min)
            / 2.0
    }

    /// Advances the network by `dt` seconds with one forward-Euler step.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        // Net heat inflow per node.
        let mut inflow: Vec<f64> = self.nodes.iter().map(|n| n.power).collect();
        for e in &self.edges {
            let tb = if e.b == AMBIENT { self.ambient } else { self.nodes[e.b].temp };
            let q = (self.nodes[e.a].temp - tb) * e.conductance;
            inflow[e.a] -= q;
            if e.b != AMBIENT {
                inflow[e.b] += q;
            }
        }
        for (n, q) in self.nodes.iter_mut().zip(&inflow) {
            if !n.fixed {
                n.temp += dt * q / n.capacitance;
            }
        }
        self.time += dt;
    }

    /// Runs for `duration` seconds using steps of at most `dt`
    /// (clamped to the stability bound).
    ///
    /// The horizon is honored exactly: when `duration` is not an integer
    /// multiple of the (clamped) step, the last step is shortened so that
    /// [`RcNetwork::time`] advances by exactly `duration` rather than
    /// overshooting to the next step boundary.
    pub fn run(&mut self, duration: f64, dt: f64) {
        if duration <= 0.0 {
            return;
        }
        let dt = dt.min(self.max_stable_dt());
        let start = self.time;
        let steps = (duration / dt).ceil().max(1.0) as u64;
        for _ in 0..steps.saturating_sub(1) {
            self.step(dt);
        }
        // Final (possibly partial) step: exactly the remaining interval,
        // guarding against a zero/negative remainder from accumulated
        // floating-point drift.
        let remaining = start + duration - self.time;
        if remaining > 0.0 {
            self.step(remaining);
        }
        // Pin the clock to the requested horizon so repeated `run` calls
        // cannot accumulate rounding drift.
        self.time = start + duration;
    }

    /// Solves directly for the steady-state temperatures (Gauss-Seidel on
    /// the conductance system `G·T = P + g_amb·T_amb`), without
    /// integrating the dynamics. Fixed nodes keep their set temperature.
    ///
    /// Returns one temperature per node, or `None` if the iteration fails
    /// to converge (e.g. a floating node with no path to any temperature
    /// reference has no unique steady state).
    pub fn steady_state(&self) -> Option<Vec<f64>> {
        let n = self.nodes.len();
        let mut temps: Vec<f64> = self.nodes.iter().map(|nd| nd.temp).collect();
        // Precompute adjacency: per node, (other, conductance) pairs plus
        // conductance to ambient.
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut g_amb = vec![0.0f64; n];
        for e in &self.edges {
            if e.b == AMBIENT {
                g_amb[e.a] += e.conductance;
            } else {
                adj[e.a].push((e.b, e.conductance));
                adj[e.b].push((e.a, e.conductance));
            }
        }
        let mut worst = f64::INFINITY;
        for _ in 0..100_000 {
            worst = 0.0;
            for i in 0..n {
                if self.nodes[i].fixed {
                    continue;
                }
                let mut g_total = g_amb[i];
                let mut inflow = self.nodes[i].power + g_amb[i] * self.ambient;
                for &(j, g) in &adj[i] {
                    g_total += g;
                    inflow += g * temps[j];
                }
                if g_total == 0.0 {
                    return None; // isolated node: no steady state
                }
                let new = inflow / g_total;
                worst = worst.max((new - temps[i]).abs());
                temps[i] = new;
            }
            if worst < 1e-10 {
                return Some(temps);
            }
        }
        if worst < 1e-6 {
            Some(temps)
        } else {
            None
        }
    }

    /// Steady-state check: total power injected equals total power flowing
    /// to ambient/fixed nodes, within `tol` watts.
    pub fn is_settled(&self, tol: f64) -> bool {
        let mut inflow: Vec<f64> = self.nodes.iter().map(|n| n.power).collect();
        for e in &self.edges {
            let tb = if e.b == AMBIENT { self.ambient } else { self.nodes[e.b].temp };
            let q = (self.nodes[e.a].temp - tb) * e.conductance;
            inflow[e.a] -= q;
            if e.b != AMBIENT {
                inflow[e.b] += q;
            }
        }
        self.nodes
            .iter()
            .zip(&inflow)
            .all(|(n, &q)| n.fixed || q.abs() < tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single RC to ambient: analytic step response
    /// `T(t) = T_amb + P·R·(1 - e^{-t/RC})`.
    #[test]
    fn single_rc_matches_analytic_step_response() {
        let (r, c, p, amb) = (2.0, 0.5, 10.0, 27.0);
        let mut net = RcNetwork::new(amb);
        let n = net.add_node(c, amb);
        net.connect_to_ambient(n, r);
        net.set_power(n, p);
        let dt = 1e-4;
        let tau = r * c;
        for k in 1..=10_000 {
            net.step(dt);
            let t = k as f64 * dt;
            let expect = amb + p * r * (1.0 - (-t / tau).exp());
            assert!(
                (net.temperature(n) - expect).abs() < 0.05,
                "t={t}: {} vs {expect}",
                net.temperature(n)
            );
        }
    }

    #[test]
    fn paper_package_example_settles_at_77c() {
        let mut net = RcNetwork::new(27.0);
        let die = net.add_node(0.5, 27.0);
        let sink = net.add_node(60.0, 27.0);
        net.connect(die, sink, 1.0);
        net.connect_to_ambient(sink, 1.0);
        net.set_power(die, 25.0);
        net.run(1_000.0, 0.01);
        assert!((net.temperature(die) - 77.0).abs() < 0.1, "die = {}", net.temperature(die));
        assert!((net.temperature(sink) - 52.0).abs() < 0.1, "sink = {}", net.temperature(sink));
        assert!(net.is_settled(0.01));
    }

    #[test]
    fn fixed_node_holds_temperature() {
        let mut net = RcNetwork::new(27.0);
        let sink = net.add_fixed_node(100.0);
        let blk = net.add_node(7e-5, 100.0);
        net.connect(blk, sink, 1.2);
        net.set_power(blk, 5.0);
        net.run(0.01, 1e-6);
        assert_eq!(net.temperature(sink), 100.0);
        assert!((net.temperature(blk) - 106.0).abs() < 0.05);
    }

    #[test]
    fn heat_flows_from_hot_to_cold() {
        let mut net = RcNetwork::new(27.0);
        let a = net.add_node(1.0, 80.0);
        let b = net.add_node(1.0, 20.0);
        net.connect(a, b, 1.0);
        net.run(20.0, 1e-3);
        // No path to ambient: both approach the mean.
        assert!((net.temperature(a) - 50.0).abs() < 0.1);
        assert!((net.temperature(b) - 50.0).abs() < 0.1);
    }

    #[test]
    fn stability_bound_is_respected() {
        let mut net = RcNetwork::new(27.0);
        let n = net.add_node(1e-4, 27.0);
        net.connect_to_ambient(n, 1.0);
        let bound = net.max_stable_dt();
        assert!(bound <= 1e-4 / 2.0 + 1e-12);
        net.set_power(n, 3.0);
        net.run(0.01, 1.0); // dt clamped internally
        assert!((net.temperature(n) - 30.0).abs() < 0.05);
    }

    #[test]
    fn energy_conservation_without_ambient() {
        // Closed system: capacitance-weighted mean temperature is invariant.
        let mut net = RcNetwork::new(0.0);
        let a = net.add_node(2.0, 90.0);
        let b = net.add_node(1.0, 30.0);
        let c = net.add_node(3.0, 50.0);
        net.connect(a, b, 0.7);
        net.connect(b, c, 1.3);
        net.connect(a, c, 2.9);
        let mean0 = (2.0 * 90.0 + 30.0 + 3.0 * 50.0) / 6.0;
        net.run(5.0, 1e-3);
        let mean1 = (2.0 * net.temperature(a) + net.temperature(b) + 3.0 * net.temperature(c)) / 6.0;
        assert!((mean0 - mean1).abs() < 1e-6);
    }

    #[test]
    fn steady_state_solver_matches_integration() {
        let mut net = RcNetwork::new(27.0);
        let die = net.add_node(0.5, 27.0);
        let sink = net.add_node(60.0, 27.0);
        net.connect(die, sink, 1.0);
        net.connect_to_ambient(sink, 1.0);
        net.set_power(die, 25.0);
        let ss = net.steady_state().expect("converges");
        assert!((ss[0] - 77.0).abs() < 1e-6, "die ss {}", ss[0]);
        assert!((ss[1] - 52.0).abs() < 1e-6, "sink ss {}", ss[1]);
        // And the dynamics land there.
        net.run(1_000.0, 0.01);
        assert!((net.temperature(die) - ss[0]).abs() < 0.1);
    }

    #[test]
    fn steady_state_respects_fixed_nodes() {
        let mut net = RcNetwork::new(27.0);
        let sink = net.add_fixed_node(103.0);
        let a = net.add_node(1e-4, 20.0);
        let b = net.add_node(2e-4, 20.0);
        net.connect(a, sink, 2.0);
        net.connect(a, b, 1.0);
        net.set_power(a, 3.0);
        let ss = net.steady_state().expect("converges");
        assert_eq!(ss[0], 103.0, "fixed node pinned");
        // b has no own path to a reference: it equilibrates with a.
        assert!((ss[2] - ss[1]).abs() < 1e-8);
        // a: 3 W through 2 K/W above 103 C (no net flow to b).
        assert!((ss[1] - 109.0).abs() < 1e-6, "a ss {}", ss[1]);
    }

    #[test]
    fn steady_state_detects_isolated_nodes() {
        let mut net = RcNetwork::new(27.0);
        let _lonely = net.add_node(1.0, 50.0);
        assert!(net.steady_state().is_none());
    }

    /// Degenerate-input audit (regression pins): networks with nothing
    /// to integrate must answer consistently instead of dividing by
    /// zero, spinning, or panicking.
    #[test]
    fn degenerate_networks_have_consistent_answers() {
        // Empty network: no stability bound, a trivially converged
        // (empty) steady state, and `run` is a harmless clock advance.
        let mut empty = RcNetwork::new(27.0);
        assert_eq!(empty.max_stable_dt(), f64::INFINITY);
        assert_eq!(empty.steady_state(), Some(Vec::new()));
        empty.run(1.0, 0.1);
        assert_eq!(empty.time(), 1.0);
        assert!(empty.is_settled(1e-12));

        // Fixed-only network: every temperature is pinned, so there is
        // no bound to respect and the steady state is immediate.
        let mut fixed_only = RcNetwork::new(27.0);
        let a = fixed_only.add_fixed_node(103.0);
        let b = fixed_only.add_fixed_node(45.0);
        fixed_only.connect(a, b, 1.0);
        assert_eq!(fixed_only.max_stable_dt(), f64::INFINITY);
        assert_eq!(fixed_only.steady_state(), Some(vec![103.0, 45.0]));
        fixed_only.run(10.0, 1e-3);
        assert_eq!(fixed_only.temperature(a), 103.0, "fixed nodes never move");
        assert_eq!(fixed_only.temperature(b), 45.0);

        // An edgeless free node is a pure integrator: it bounds nothing
        // (its Euler update has no contraction), heats linearly under
        // power, and has no steady state.
        let mut lonely = RcNetwork::new(27.0);
        let n = lonely.add_node(0.5, 30.0);
        lonely.set_power(n, 2.0);
        assert_eq!(lonely.max_stable_dt(), f64::INFINITY);
        lonely.run(10.0, 0.1);
        assert!((lonely.temperature(n) - 70.0).abs() < 1e-9, "2 W / 0.5 J/K for 10 s = +40 K");
        assert!(lonely.steady_state().is_none());

        // A free node whose only neighbors are fixed still has a unique
        // steady state (the references pin it).
        let mut pinned = RcNetwork::new(27.0);
        let sink = pinned.add_fixed_node(103.0);
        let die = pinned.add_node(1e-4, 20.0);
        pinned.connect(die, sink, 2.0);
        pinned.set_power(die, 5.0);
        let ss = pinned.steady_state().expect("fixed neighbor is a reference");
        assert!((ss[1] - 113.0).abs() < 1e-9, "5 W x 2 K/W above 103 C");
    }

    /// The zero/negative-parameter guards: non-positive (or NaN)
    /// capacitances, resistances, and steps are construction errors,
    /// not silent divisions by zero.
    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_is_rejected() {
        RcNetwork::new(27.0).add_node(0.0, 27.0);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn nan_capacitance_is_rejected() {
        RcNetwork::new(27.0).add_node(f64::NAN, 27.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_is_rejected() {
        let mut net = RcNetwork::new(27.0);
        let n = net.add_node(1.0, 27.0);
        net.connect_to_ambient(n, 0.0);
    }

    /// Regression: `run(1.0, 0.3)` used to take `ceil(1.0/0.3) = 4` full
    /// 0.3 s steps and leave `time()` at 1.2 s. The horizon must be exact.
    #[test]
    fn run_lands_exactly_on_the_requested_horizon() {
        let mut net = RcNetwork::new(27.0);
        let n = net.add_node(10.0, 27.0);
        net.connect_to_ambient(n, 1.0);
        net.set_power(n, 5.0);
        net.run(1.0, 0.3);
        assert_eq!(net.time(), 1.0, "partial final step honors the horizon");

        // Repeated uneven runs must not accumulate *step* drift: the clock
        // is the exact sum of the requested durations (0.1 has no exact
        // binary representation, hence the epsilon on the literal).
        for _ in 0..7 {
            net.run(0.1, 0.03);
        }
        assert!((net.time() - 1.7).abs() < 1e-12, "time = {}", net.time());

        // And the trajectory still matches the analytic response at the
        // (now exact) horizon: tau = 10 s, so T = 27 + 5·(1 - e^{-1.7/10}).
        let expect = 27.0 + 5.0 * (1.0 - (-1.7f64 / 10.0).exp());
        assert!((net.temperature(n) - expect).abs() < 0.01, "T = {}", net.temperature(n));
    }

    /// An evenly-dividing duration takes only full steps (the pre-fix
    /// behavior), and a non-positive duration is a no-op.
    #[test]
    fn run_edge_cases() {
        let mut net = RcNetwork::new(27.0);
        let n = net.add_node(1.0, 40.0);
        net.connect_to_ambient(n, 2.0);
        net.run(1.0, 0.25);
        assert_eq!(net.time(), 1.0);
        let t_before = net.temperature(n);
        net.run(0.0, 0.25);
        assert_eq!(net.time(), 1.0, "zero duration is a no-op");
        assert_eq!(net.temperature(n), t_before);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_resistance_rejected() {
        let mut net = RcNetwork::new(27.0);
        let n = net.add_node(1.0, 27.0);
        net.connect_to_ambient(n, 0.0);
    }
}
