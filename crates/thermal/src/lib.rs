//! # tdtm-thermal — lumped thermal-RC modeling at functional-block granularity
//!
//! This crate implements the thermal-modeling contribution of the paper
//! (Section 4): the duality between heat flow and electrical circuits, the
//! derivation of per-block thermal resistances and capacitances from silicon
//! material properties, and three models at different fidelities:
//!
//! * [`network::RcNetwork`] — a general lumped RC network (the "full model"
//!   of Figure 3B, with tangential inter-block resistances and explicit
//!   heatsink dynamics);
//! * [`block_model::BlockModel`] — the paper's simplified model (Figure 3C,
//!   Eq. 5): each block connects through its normal resistance to a
//!   constant-temperature heatsink node. This is the model the paper runs
//!   cycle-by-cycle inside the simulator;
//! * [`chipwide::ChipWideModel`] — the TEMPEST-style single-die-node model
//!   used by prior work, kept for the localized-vs-chip-wide comparison;
//! * [`boxcar::BoxcarProxy`] — the Brooks & Martonosi power-moving-average
//!   *proxy* for temperature, reproduced so Tables 9 and 10 (missed
//!   emergencies / false triggers) can be regenerated.
//!
//! # Examples
//!
//! The worked example from the paper's Section 4.1 (25 W through 2 K/W above
//! a 27 C ambient settles at 77 C):
//!
//! ```
//! use tdtm_thermal::network::RcNetwork;
//!
//! let mut net = RcNetwork::new(27.0);
//! let die = net.add_node(0.5, 27.0);      // small die capacitance
//! let sink = net.add_node(60.0, 27.0);    // 60 J/K heatsink
//! net.connect(die, sink, 1.0);            // die-to-case 1 K/W
//! net.connect_to_ambient(sink, 1.0);      // sink-to-ambient 1 K/W
//! net.set_power(die, 25.0);
//! net.run(5_000.0, 0.01);                 // let it settle
//! assert!((net.temperature(die) - 77.0).abs() < 0.1);
//! ```

pub mod batch;
pub mod block_model;
pub mod boxcar;
pub mod chipwide;
pub mod comparison;
pub mod duality;
pub mod floorplan;
pub mod modelcache;
pub mod multicore;
pub mod network;
pub mod reduction;
pub mod silicon;

pub use batch::ThermalBatch;
pub use block_model::{BlockModel, BlockParams};
pub use multicore::{CoupledChip, CouplingEdge, MulticoreFloorplan};
pub use modelcache::{network_fingerprint, ModelCache};
pub use reduction::CompactModel;
pub use boxcar::BoxcarProxy;
pub use chipwide::ChipWideModel;
pub use silicon::SiliconProperties;

/// Temperature in degrees Celsius.
///
/// The models work in Celsius throughout (differences are in kelvin, which
/// is the same unit size); absolute-zero correctness is not needed at
/// packaging temperatures.
pub type Celsius = f64;

/// Thermal watts.
pub type Watts = f64;
