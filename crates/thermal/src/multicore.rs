//! N-core generalization of the per-block thermal model.
//!
//! The paper models one 21264-like core, but its full lumped model
//! (Figure 3B) already supports arbitrary networks. This module scales
//! the validated reduction out to a chip: [`MulticoreFloorplan`]
//! replicates the Table 3 per-block RC models once per core and joins
//! neighboring cores through tangential resistances (Section 4.3's
//! `R_tan` formula, the same element the single-core reduction measures
//! and drops — across cores it is the *only* lateral heat path, so it
//! stays).
//!
//! Two fidelities share one topology:
//!
//! * [`CoupledChip`] — the hot-path kernel: per-core exact-decay
//!   [`BlockModel`] steps plus an operator-splitting coupling term.
//!   Each step first computes every inter-core flow
//!   `q = (T_a - T_b)·g` from the *pre-step* temperatures, then steps
//!   every core with the flow folded into its block powers. With no
//!   coupling edges the step degenerates to the plain single-core
//!   kernel, bit for bit.
//! * [`MulticoreFloorplan::build_reference`] — the same chip as a full
//!   forward-Euler [`RcNetwork`], used by the property tests to pin the
//!   splitting kernel within tolerance.
//!
//! Heterogeneity (Bhat et al., arXiv:2003.11081, analyze DTM stability
//! across thermally heterogeneous cores) is modeled as a per-core scale
//! on the normal resistances: core `k` of `N` gets `R · (1 + h·k/(N-1))`,
//! i.e. later cores have a worse conduction path to the heat spreader
//! (farther from its center), so they run hotter at equal power.

use crate::block_model::{table3_blocks, BlockModel, BlockParams};
use crate::network::{NodeId, RcNetwork};
use crate::silicon::SiliconProperties;
use crate::{Celsius, Watts};

/// A tangential heat path between the same functional block of two cores.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CouplingEdge {
    /// First core index.
    pub core_a: usize,
    /// Second core index.
    pub core_b: usize,
    /// Block index within each core.
    pub block: usize,
    /// Thermal conductance of the path, W/K.
    pub conductance: f64,
}

impl CouplingEdge {
    /// Heat flow from `core_a` to `core_b` (W) at the given endpoint
    /// temperatures — the same expression the [`RcNetwork`] Euler step
    /// uses for a resistive edge.
    pub fn flow(&self, t_a: Celsius, t_b: Celsius) -> Watts {
        (t_a - t_b) * self.conductance
    }
}

/// Declarative description of an N-core chip: replicated per-core block
/// parameters plus the inter-core coupling topology.
#[derive(Clone, PartialEq, Debug)]
pub struct MulticoreFloorplan {
    cores: usize,
    coupling: f64,
    heterogeneity: f64,
    blocks: Vec<BlockParams>,
    silicon: SiliconProperties,
}

impl MulticoreFloorplan {
    /// An `cores`-core chip of Table 3 cores in a linear chain.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> MulticoreFloorplan {
        MulticoreFloorplan::with_blocks(cores, table3_blocks())
    }

    /// An `cores`-core chip replicating the given per-core block set.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `blocks` is empty.
    pub fn with_blocks(cores: usize, blocks: Vec<BlockParams>) -> MulticoreFloorplan {
        assert!(cores > 0, "need at least one core");
        assert!(!blocks.is_empty(), "need at least one block per core");
        MulticoreFloorplan {
            cores,
            coupling: 1.0,
            heterogeneity: 0.0,
            blocks,
            silicon: SiliconProperties::effective(),
        }
    }

    /// Sets the coupling-strength multiplier on every inter-core
    /// conductance. `1.0` is the physical tangential value; `0.0`
    /// disconnects the cores entirely.
    ///
    /// # Panics
    ///
    /// Panics if `coupling` is negative or non-finite.
    pub fn coupling(mut self, coupling: f64) -> MulticoreFloorplan {
        assert!(coupling.is_finite() && coupling >= 0.0, "coupling must be >= 0");
        self.coupling = coupling;
        self
    }

    /// Sets the heterogeneity factor `h`: core `k` of `N` gets its normal
    /// resistances scaled by `1 + h·k/(N-1)` (core 0 always keeps the
    /// nominal parameters). `0.0` makes the chip homogeneous.
    ///
    /// # Panics
    ///
    /// Panics if `h` is negative or non-finite.
    pub fn heterogeneity(mut self, h: f64) -> MulticoreFloorplan {
        assert!(h.is_finite() && h >= 0.0, "heterogeneity must be >= 0");
        self.heterogeneity = h;
        self
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Blocks per core.
    pub fn blocks_per_core(&self) -> usize {
        self.blocks.len()
    }

    /// The normal-resistance scale applied to core `k`.
    pub fn core_scale(&self, k: usize) -> f64 {
        assert!(k < self.cores, "core index out of range");
        if self.cores == 1 {
            1.0
        } else {
            1.0 + self.heterogeneity * k as f64 / (self.cores - 1) as f64
        }
    }

    /// The block parameters of core `k` (normal R scaled by the core's
    /// heterogeneity factor; capacitances and names unchanged, so core 0
    /// of any chip is exactly the single-core parameter set).
    pub fn core_params(&self, k: usize) -> Vec<BlockParams> {
        let scale = self.core_scale(k);
        self.blocks
            .iter()
            .map(|b| BlockParams { r: b.r * scale, ..b.clone() })
            .collect()
    }

    /// The inter-core coupling edges: adjacent cores in the chain are
    /// joined block-by-block through the tangential resistance of the
    /// block's area (two half-paths in series, as in
    /// [`crate::floorplan::FloorplanBuilder`]), scaled by the coupling
    /// multiplier. Zero coupling yields no edges.
    pub fn edges(&self) -> Vec<CouplingEdge> {
        let mut edges = Vec::new();
        if self.coupling == 0.0 {
            return edges;
        }
        for k in 1..self.cores {
            for (i, b) in self.blocks.iter().enumerate() {
                let r_tan = self.silicon.r_tangential_for_block(b.area).0;
                edges.push(CouplingEdge {
                    core_a: k - 1,
                    core_b: k,
                    block: i,
                    conductance: self.coupling / r_tan,
                });
            }
        }
        edges
    }

    /// Builds one exact-decay [`BlockModel`] per core, every block at the
    /// heatsink temperature.
    pub fn build_models(&self, heatsink: Celsius, dt: f64) -> Vec<BlockModel> {
        (0..self.cores)
            .map(|k| BlockModel::new(self.core_params(k), heatsink, dt))
            .collect()
    }

    /// Builds the hot-path coupled kernel.
    pub fn build_chip(&self, heatsink: Celsius, dt: f64) -> CoupledChip {
        CoupledChip::new(self.build_models(heatsink, dt), self.edges())
    }

    /// Builds the same chip as a full [`RcNetwork`]: a fixed-temperature
    /// heatsink node (the reduction's constant-heatsink assumption), one
    /// node per block per core through its (scaled) normal resistance,
    /// and the coupling edges as explicit resistances.
    pub fn build_reference(&self, heatsink: Celsius) -> MulticoreReference {
        let mut network = RcNetwork::new(heatsink);
        let sink = network.add_fixed_node(heatsink);
        let nodes: Vec<Vec<NodeId>> = (0..self.cores)
            .map(|k| {
                self.core_params(k)
                    .iter()
                    .map(|b| {
                        let n = network.add_node(b.c, heatsink);
                        network.connect(n, sink, b.r);
                        n
                    })
                    .collect()
            })
            .collect();
        for e in self.edges() {
            network.connect(
                nodes[e.core_a][e.block],
                nodes[e.core_b][e.block],
                1.0 / e.conductance,
            );
        }
        MulticoreReference { network, heatsink: sink, nodes }
    }
}

/// The full-model rendering of a [`MulticoreFloorplan`], with handles to
/// its nodes.
#[derive(Debug)]
pub struct MulticoreReference {
    /// The network itself.
    pub network: RcNetwork,
    /// The fixed-temperature heatsink node.
    pub heatsink: NodeId,
    /// `nodes[core][block]` — one node per block per core.
    pub nodes: Vec<Vec<NodeId>>,
}

/// The coupled multicore kernel: per-core exact-decay block models plus
/// an operator-splitting inter-core coupling term.
#[derive(Clone, Debug)]
pub struct CoupledChip {
    cores: Vec<BlockModel>,
    edges: Vec<CouplingEdge>,
    /// Scratch: per-core net coupling inflow, W (recomputed each step).
    flows: Vec<Vec<f64>>,
    /// Scratch: one core's effective block powers for the step.
    heat: Vec<f64>,
}

impl CoupledChip {
    /// Assembles a chip from per-core models and coupling edges.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty, cores disagree on block count, or an
    /// edge references an out-of-range core/block or has a non-positive
    /// conductance.
    pub fn new(cores: Vec<BlockModel>, edges: Vec<CouplingEdge>) -> CoupledChip {
        assert!(!cores.is_empty(), "need at least one core");
        let blocks = cores[0].len();
        assert!(cores.iter().all(|c| c.len() == blocks), "cores must agree on block count");
        for e in &edges {
            assert!(
                e.core_a < cores.len() && e.core_b < cores.len() && e.block < blocks,
                "coupling edge out of range"
            );
            assert!(e.conductance > 0.0, "conductance must be positive");
        }
        let flows = vec![vec![0.0; blocks]; cores.len()];
        CoupledChip { cores, edges, flows, heat: vec![0.0; blocks] }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// The per-core block models.
    pub fn core_models(&self) -> &[BlockModel] {
        &self.cores
    }

    /// Mutable access to one core's model (e.g. to retime its `dt` under
    /// frequency scaling, or to set initial temperatures).
    pub fn core_mut(&mut self, k: usize) -> &mut BlockModel {
        &mut self.cores[k]
    }

    /// The coupling edges.
    pub fn edges(&self) -> &[CouplingEdge] {
        &self.edges
    }

    /// Block temperatures of core `k`.
    pub fn temperatures(&self, k: usize) -> &[Celsius] {
        self.cores[k].temperatures()
    }

    /// The chip-wide hottest block: `(core, block, temperature)`.
    pub fn hottest(&self) -> (usize, usize, Celsius) {
        let mut best = (0, 0, f64::NEG_INFINITY);
        for (k, core) in self.cores.iter().enumerate() {
            let (b, t) = core.hottest();
            if t > best.2 {
                best = (k, b, t);
            }
        }
        best
    }

    /// The net coupling inflow (W) computed for core `k` by the last
    /// [`step`](CoupledChip::step) (all zeros before the first step).
    pub fn last_flows(&self, k: usize) -> &[Watts] {
        &self.flows[k]
    }

    /// Advances every core one step under `powers[core][block]` watts.
    ///
    /// Operator splitting: inter-core flows are evaluated from the
    /// pre-step temperatures of *all* cores first, then each core takes
    /// its exact-decay step with the flow held constant — the same
    /// constant-power-over-the-step treatment the single-core kernel
    /// applies to dynamic power. With no coupling edges each core steps
    /// on its raw powers (bit-identical to an uncoupled [`BlockModel`]).
    ///
    /// # Panics
    ///
    /// Panics if `powers` does not hold one slice per core of one power
    /// per block.
    pub fn step(&mut self, powers: &[Vec<Watts>]) {
        self.step_inner(powers, None);
    }

    /// [`step`](CoupledChip::step) with a per-core activity mask: inactive
    /// (parked) cores do not step — their temperatures freeze — but they
    /// still participate in the flow evaluation, acting as thermal
    /// reservoirs for their neighbors. With every core active this is
    /// exactly [`step`](CoupledChip::step).
    ///
    /// # Panics
    ///
    /// Panics if `active` does not hold one flag per core, or on any
    /// [`step`](CoupledChip::step) shape violation.
    pub fn step_masked(&mut self, powers: &[Vec<Watts>], active: &[bool]) {
        assert_eq!(active.len(), self.cores.len(), "one active flag per core");
        self.step_inner(powers, Some(active));
    }

    fn step_inner(&mut self, powers: &[Vec<Watts>], active: Option<&[bool]>) {
        assert_eq!(powers.len(), self.cores.len(), "one power set per core");
        let live = |k: usize| active.is_none_or(|a| a[k]);
        if self.edges.is_empty() {
            for (k, (core, p)) in self.cores.iter_mut().zip(powers).enumerate() {
                if live(k) {
                    core.step(p);
                }
            }
            return;
        }
        for f in &mut self.flows {
            f.fill(0.0);
        }
        for e in &self.edges {
            let q = e.flow(
                self.cores[e.core_a].temperatures()[e.block],
                self.cores[e.core_b].temperatures()[e.block],
            );
            self.flows[e.core_a][e.block] -= q;
            self.flows[e.core_b][e.block] += q;
        }
        for (k, core) in self.cores.iter_mut().enumerate() {
            if !live(k) {
                continue;
            }
            for (h, (&p, &f)) in self.heat.iter_mut().zip(powers[k].iter().zip(&self.flows[k])) {
                *h = p + f;
            }
            core.step(&self.heat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_zero_keeps_the_nominal_parameters() {
        let plan = MulticoreFloorplan::new(4).heterogeneity(0.3);
        assert_eq!(plan.core_params(0), table3_blocks(), "core 0 is the single-core set");
        let single = MulticoreFloorplan::new(1).heterogeneity(0.3);
        assert_eq!(single.core_params(0), table3_blocks());
        // Later cores conduct worse, monotonically.
        for k in 1..4 {
            assert!(plan.core_scale(k) > plan.core_scale(k - 1));
            for (hot, base) in plan.core_params(k).iter().zip(table3_blocks()) {
                assert!(hot.r > base.r);
                assert_eq!(hot.c, base.c, "heterogeneity scales R only");
            }
        }
    }

    #[test]
    fn edge_topology_is_a_block_wise_chain() {
        let plan = MulticoreFloorplan::new(3);
        let edges = plan.edges();
        assert_eq!(edges.len(), 2 * 7, "two adjacent pairs x 7 blocks");
        for e in &edges {
            assert_eq!(e.core_b, e.core_a + 1);
            assert!(e.conductance > 0.0);
        }
        // Coupling strength scales conductance linearly; zero disconnects.
        let strong = MulticoreFloorplan::new(3).coupling(2.0).edges();
        assert_eq!(strong[0].conductance, 2.0 * edges[0].conductance);
        assert!(MulticoreFloorplan::new(3).coupling(0.0).edges().is_empty());
        assert!(MulticoreFloorplan::new(1).edges().is_empty(), "one core has no neighbors");
    }

    #[test]
    fn coupling_is_much_weaker_than_the_heatsink_path() {
        // Sanity on magnitudes: the tangential path must be a perturbation
        // (R_tan >> R_nor), or the single-core reduction would be invalid.
        let plan = MulticoreFloorplan::new(2);
        for e in plan.edges() {
            let r_nor = plan.core_params(0)[e.block].r;
            assert!(1.0 / e.conductance > 50.0 * r_nor, "block {}", e.block);
        }
    }

    #[test]
    fn uncoupled_chip_steps_bit_identically_to_lone_models() {
        // The N=1 / zero-coupling degenerate case must be *exactly* the
        // single-core kernel — this is what lets the simulator keep its
        // fused fast path.
        let dt = 1.0 / 1.5e9;
        let plan = MulticoreFloorplan::new(2).coupling(0.0);
        let mut chip = plan.build_chip(103.0, dt);
        let mut lone = plan.build_models(103.0, dt);
        let powers = vec![
            vec![2.0, 6.0, 3.0, 2.5, 5.0, 6.5, 1.0],
            vec![1.0, 2.0, 7.0, 0.5, 3.0, 4.5, 2.0],
        ];
        for _ in 0..5_000 {
            chip.step(&powers);
            for (m, p) in lone.iter_mut().zip(&powers) {
                m.step(p);
            }
        }
        for (k, model) in lone.iter().enumerate() {
            assert_eq!(chip.temperatures(k), model.temperatures(), "core {k}");
        }
    }

    #[test]
    fn hot_neighbor_raises_a_cold_core() {
        // The tentpole's observable: heat leaks across the die. Core 1
        // burns 8 W in every block; idle core 0 must end warmer with
        // coupling than without, and the effect grows with coupling
        // strength.
        let dt = 1e-6;
        let peak_core0 = |coupling: f64| -> f64 {
            let mut chip = MulticoreFloorplan::new(2).coupling(coupling).build_chip(103.0, dt);
            let powers = vec![vec![0.0; 7], vec![8.0; 7]];
            for _ in 0..2_000 {
                // ~24 block time constants: effectively steady state.
                chip.step(&powers);
            }
            chip.temperatures(0).iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        };
        let isolated = peak_core0(0.0);
        let coupled = peak_core0(1.0);
        let strong = peak_core0(4.0);
        assert_eq!(isolated, 103.0, "no coupling: idle core stays at the heatsink");
        assert!(coupled > isolated + 1e-3, "coupling leaks heat: {coupled} vs {isolated}");
        assert!(strong > coupled + 1e-3, "stronger coupling leaks more: {strong} vs {coupled}");
    }

    #[test]
    fn heterogeneous_cores_run_hotter_at_equal_power() {
        let dt = 1e-6;
        let mut chip =
            MulticoreFloorplan::new(3).coupling(0.0).heterogeneity(0.4).build_chip(103.0, dt);
        let powers = vec![vec![4.0; 7]; 3];
        for _ in 0..2_000 {
            chip.step(&powers);
        }
        let peak = |k: usize| -> f64 {
            chip.temperatures(k).iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(peak(1) > peak(0) + 0.1);
        assert!(peak(2) > peak(1) + 0.1);
    }

    /// The ISSUE's required property: the splitting kernel must track a
    /// reference [`RcNetwork`] integration of the *same* topology within
    /// tolerance, across random chip shapes, couplings, and powers.
    #[test]
    fn property_coupled_step_tracks_the_reference_network()  {
        tdtm_prng::cases(8, 0x0C0A_51ED, |rng| {
            let cores = 2 + rng.index(3); // 2..=4
            let coupling = 0.5 + rng.next_f64() * 3.5;
            let h = rng.next_f64() * 0.3;
            let plan = MulticoreFloorplan::new(cores).coupling(coupling).heterogeneity(h);
            let heatsink = 103.0;
            let dt = 1e-7;
            let mut chip = plan.build_chip(heatsink, dt);
            let mut reference = plan.build_reference(heatsink);
            assert!(dt < reference.network.max_stable_dt(), "test dt must be Euler-stable");

            let powers: Vec<Vec<f64>> = (0..cores)
                .map(|_| (0..7).map(|_| rng.next_f64() * 8.0).collect())
                .collect();
            for (k, core_nodes) in reference.nodes.iter().enumerate() {
                for (i, &n) in core_nodes.iter().enumerate() {
                    reference.network.set_power(n, powers[k][i]);
                }
            }

            // ~3.5 block time constants: covers transient and near-steady.
            for _ in 0..3_000 {
                chip.step(&powers);
                reference.network.step(dt);
            }
            for (k, core_nodes) in reference.nodes.iter().enumerate() {
                for (i, &n) in core_nodes.iter().enumerate() {
                    let kernel = chip.temperatures(k)[i];
                    let full = reference.network.temperature(n);
                    assert!(
                        (kernel - full).abs() < 0.1,
                        "core {k} block {i}: kernel {kernel} vs reference {full} \
                         (cores={cores}, coupling={coupling:.2}, h={h:.2})"
                    );
                }
            }
        });
    }

    #[test]
    fn per_core_dt_retiming_is_respected() {
        // Frequency scaling retimes one core's dt without touching its
        // neighbors: the retimed core must integrate at its own rate.
        let dt = 1e-6;
        let mut chip = MulticoreFloorplan::new(2).coupling(0.0).build_chip(103.0, dt);
        chip.core_mut(1).set_dt(2.0 * dt);
        let powers = vec![vec![5.0; 7]; 2];
        for _ in 0..10 {
            chip.step(&powers);
        }
        // Same power, same params, but core 1 advanced twice the time:
        // it is strictly closer to steady state (warmer).
        assert!(chip.temperatures(1)[0] > chip.temperatures(0)[0]);
    }

    #[test]
    fn masked_step_freezes_parked_cores_but_keeps_them_as_reservoirs() {
        let dt = 1e-6;
        let powers = vec![vec![0.0; 7], vec![8.0; 7]];
        // Uncoupled: the parked hot core freezes exactly where it parked.
        let mut chip = MulticoreFloorplan::new(2).coupling(0.0).build_chip(103.0, dt);
        for _ in 0..500 {
            chip.step(&powers);
        }
        let frozen = chip.temperatures(1).to_vec();
        for _ in 0..500 {
            chip.step_masked(&powers, &[true, false]);
        }
        assert_eq!(chip.temperatures(1), &frozen[..], "parked core holds its temperature");

        // Coupled: the frozen hot core still leaks heat into its active
        // idle neighbor.
        let mut chip = MulticoreFloorplan::new(2).coupling(4.0).build_chip(103.0, dt);
        for _ in 0..2_000 {
            chip.step(&powers);
        }
        let frozen = chip.temperatures(1).to_vec();
        let before = chip.temperatures(0)[0];
        for _ in 0..2_000 {
            chip.step_masked(&vec![vec![0.0; 7]; 2], &[true, false]);
        }
        assert_eq!(chip.temperatures(1), &frozen[..]);
        assert!(
            chip.temperatures(0)[0] > 103.0 && before > 103.0,
            "reservoir keeps the neighbor above the heatsink"
        );

        // All-active mask is exactly the unmasked step.
        let mut a = MulticoreFloorplan::new(2).build_chip(103.0, dt);
        let mut b = a.clone();
        for _ in 0..100 {
            a.step(&powers);
            b.step_masked(&powers, &[true, true]);
        }
        assert_eq!(a.temperatures(0), b.temperatures(0));
        assert_eq!(a.temperatures(1), b.temperatures(1));
    }

    #[test]
    #[should_panic(expected = "one power set per core")]
    fn power_shape_checked() {
        let mut chip = MulticoreFloorplan::new(2).build_chip(103.0, 1e-6);
        chip.step(&[vec![0.0; 7]]);
    }
}
