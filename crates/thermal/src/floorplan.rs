//! Floorplan-level construction of the full lumped model (Figure 3B).
//!
//! [`FloorplanBuilder`] assembles an [`RcNetwork`] from block parameters:
//! every block gets its normal resistance to a shared heatsink node,
//! tangential resistances connect declared neighbors, and the heatsink
//! connects to ambient through the package resistance. This is the
//! "detailed lumped thermal model" that [`crate::block_model`] is the
//! validated reduction of.

use crate::block_model::BlockParams;
use crate::network::{NodeId, RcNetwork};
use crate::silicon::SiliconProperties;
use crate::Celsius;

/// Builder for the full Figure 3B thermal network.
#[derive(Clone, Debug)]
pub struct FloorplanBuilder {
    blocks: Vec<BlockParams>,
    neighbors: Vec<(usize, usize)>,
    silicon: SiliconProperties,
    ambient: Celsius,
    heatsink_capacitance: f64,
    heatsink_resistance: f64,
    initial: Celsius,
}

/// The constructed network plus handles to its nodes.
#[derive(Debug)]
pub struct Floorplan {
    /// The network itself.
    pub network: RcNetwork,
    /// One node per block, in input order.
    pub block_nodes: Vec<NodeId>,
    /// The heatsink node.
    pub heatsink: NodeId,
}

impl FloorplanBuilder {
    /// Starts a floorplan over the given blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<BlockParams>) -> FloorplanBuilder {
        assert!(!blocks.is_empty(), "need at least one block");
        FloorplanBuilder {
            blocks,
            neighbors: Vec::new(),
            silicon: SiliconProperties::effective(),
            ambient: 27.0,
            heatsink_capacitance: 350.0,
            heatsink_resistance: 0.34,
            initial: 27.0,
        }
    }

    /// Declares two blocks adjacent (adds a tangential resistance).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or self-adjacency.
    pub fn adjacent(mut self, a: usize, b: usize) -> FloorplanBuilder {
        assert!(a < self.blocks.len() && b < self.blocks.len() && a != b, "bad adjacency");
        self.neighbors.push((a, b));
        self
    }

    /// Declares the blocks adjacent in a chain (a simple default layout).
    pub fn chain(mut self) -> FloorplanBuilder {
        for i in 1..self.blocks.len() {
            self.neighbors.push((i - 1, i));
        }
        self
    }

    /// Sets the material properties used for tangential resistances.
    pub fn silicon(mut self, si: SiliconProperties) -> FloorplanBuilder {
        self.silicon = si;
        self
    }

    /// Sets the heatsink package: capacitance (J/K) and sink-to-ambient
    /// resistance (K/W).
    ///
    /// # Panics
    ///
    /// Panics on non-positive values.
    pub fn heatsink(mut self, capacitance: f64, resistance: f64) -> FloorplanBuilder {
        assert!(capacitance > 0.0 && resistance > 0.0, "heatsink parameters must be positive");
        self.heatsink_capacitance = capacitance;
        self.heatsink_resistance = resistance;
        self
    }

    /// Sets the ambient temperature and the initial temperature of every
    /// node.
    pub fn temperatures(mut self, ambient: Celsius, initial: Celsius) -> FloorplanBuilder {
        self.ambient = ambient;
        self.initial = initial;
        self
    }

    /// Builds the network.
    pub fn build(self) -> Floorplan {
        let mut network = RcNetwork::new(self.ambient);
        let heatsink = network.add_node(self.heatsink_capacitance, self.initial);
        network.connect_to_ambient(heatsink, self.heatsink_resistance);
        let block_nodes: Vec<NodeId> = self
            .blocks
            .iter()
            .map(|b| {
                let n = network.add_node(b.c, self.initial);
                network.connect(n, heatsink, b.r);
                n
            })
            .collect();
        for &(a, b) in &self.neighbors {
            // Tangential resistance between block centers: model as two
            // half-paths in series, one per block.
            let r = self.silicon.r_tangential_for_block(self.blocks[a].area).0 / 2.0
                + self.silicon.r_tangential_for_block(self.blocks[b].area).0 / 2.0;
            network.connect(block_nodes[a], block_nodes[b], r);
        }
        Floorplan { network, block_nodes, heatsink }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_model::{table3_blocks, BlockModel};

    fn plan() -> Floorplan {
        FloorplanBuilder::new(table3_blocks())
            .chain()
            .temperatures(27.0, 103.0)
            .build()
    }

    #[test]
    fn builds_the_expected_topology() {
        let fp = plan();
        assert_eq!(fp.block_nodes.len(), 7);
        assert_eq!(fp.network.len(), 8, "7 blocks + heatsink");
    }

    #[test]
    fn steady_state_is_close_to_the_reduced_model() {
        let mut fp = FloorplanBuilder::new(table3_blocks())
            .chain()
            .temperatures(27.0, 103.0)
            .build();
        // Hold the heatsink near its operating point by injecting its
        // equilibrium power (it would otherwise cool toward ambient).
        let powers = [2.0, 6.0, 3.0, 2.5, 5.0, 6.5, 1.0];
        let total: f64 = powers.iter().sum();
        fp.network.set_power(fp.heatsink, (103.0 - 27.0) / 0.34 - total);
        for (n, p) in fp.block_nodes.iter().zip(powers) {
            fp.network.set_power(*n, p);
        }
        let ss = fp.network.steady_state().expect("converges");

        // Node creation order: heatsink first (index 0), then blocks.
        let reduced = BlockModel::new(table3_blocks(), 103.0, 1e-6);
        for i in 0..fp.block_nodes.len() {
            let full = ss[i + 1];
            let simple = reduced.steady_state(i, powers[i]);
            assert!(
                (full - simple).abs() < 0.5,
                "block {i}: full {full:.3} vs reduced {simple:.3}"
            );
        }
    }

    #[test]
    fn tangential_coupling_pulls_neighbors_together() {
        // Two blocks, one heated: with adjacency the cold one ends warmer
        // than without.
        let blocks = vec![table3_blocks()[0].clone(), table3_blocks()[1].clone()];
        let heated = |adjacent: bool| -> f64 {
            let builder = FloorplanBuilder::new(blocks.clone()).temperatures(27.0, 103.0);
            let builder = if adjacent { builder.adjacent(0, 1) } else { builder };
            let mut fp = builder.build();
            fp.network.set_power(fp.heatsink, (103.0 - 27.0) / 0.34);
            fp.network.set_power(fp.block_nodes[0], 8.0);
            let ss = fp.network.steady_state().expect("converges");
            ss[2] // block 1's node (heatsink=0, block0=1, block1=2)
        };
        let coupled = heated(true);
        let isolated = heated(false);
        assert!(
            coupled > isolated + 1e-6,
            "adjacency should leak heat: {coupled} vs {isolated}"
        );
    }
}
