//! Boxcar (moving-average) power proxies for temperature.
//!
//! Brooks & Martonosi's DTM work — the paper's baseline — did not model
//! temperature at all: it used a boxcar average of per-cycle power
//! dissipation over the last `W` cycles (10 K in their work; the paper also
//! evaluates 500 K) as a *proxy*, triggering DTM when the average crosses a
//! power threshold. Section 6 of the paper quantifies how badly this proxy
//! tracks real (RC-modeled) temperature; [`crate::comparison`] counts the
//! missed emergencies and false triggers for Tables 9 and 10.

use crate::Watts;
use std::collections::VecDeque;

/// A boxcar (sliding-window) average of a per-cycle power signal.
///
/// Until the window has filled, the average is over the samples seen so
/// far. The running sum is recomputed from scratch periodically to bound
/// floating-point drift over billion-cycle runs.
#[derive(Clone, Debug)]
pub struct BoxcarProxy {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
    pushes_since_rebuild: usize,
}

/// How many pushes between exact rebuilds of the running sum.
const REBUILD_INTERVAL: usize = 1 << 20;

impl BoxcarProxy {
    /// Creates a proxy with the given window length in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> BoxcarProxy {
        assert!(window > 0, "window must be nonzero");
        BoxcarProxy {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
            pushes_since_rebuild: 0,
        }
    }

    /// The window length in cycles.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Pushes one cycle's power sample.
    pub fn push(&mut self, power: Watts) {
        if self.buf.len() == self.window {
            self.sum -= self.buf.pop_front().expect("nonempty at capacity");
        }
        self.buf.push_back(power);
        self.sum += power;
        self.pushes_since_rebuild += 1;
        if self.pushes_since_rebuild >= REBUILD_INTERVAL {
            self.sum = self.buf.iter().sum();
            self.pushes_since_rebuild = 0;
        }
    }

    /// The current boxcar average (0 before any sample).
    pub fn average(&self) -> Watts {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Whether the average exceeds `threshold` watts — the chip-wide
    /// trigger rule (Brooks & Martonosi used 24 W trigger / 25 W emergency
    /// at their scale; the paper's configuration uses 47 W).
    pub fn triggered(&self, threshold: Watts) -> bool {
        self.average() > threshold
    }

    /// Per-structure trigger rule: the average power implies a steady-state
    /// temperature estimate `T_hs + avg·R`; trigger when that estimate
    /// crosses `threshold` degrees. (The paper ties the per-structure
    /// average power readings to the thermal model via
    /// `avg ≥ (threshold − T_hs)/R`.)
    pub fn triggered_thermal(&self, r: f64, heatsink: f64, threshold: f64) -> bool {
        self.average() * r + heatsink > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_partial_window() {
        let mut b = BoxcarProxy::new(4);
        assert_eq!(b.average(), 0.0);
        b.push(2.0);
        b.push(4.0);
        assert_eq!(b.average(), 3.0);
    }

    #[test]
    fn window_slides() {
        let mut b = BoxcarProxy::new(3);
        for p in [1.0, 2.0, 3.0, 10.0] {
            b.push(p);
        }
        assert!((b.average() - 5.0).abs() < 1e-12); // (2+3+10)/3
    }

    #[test]
    fn trigger_thresholds() {
        let mut b = BoxcarProxy::new(2);
        b.push(46.0);
        b.push(50.0);
        assert!(b.triggered(47.0));
        assert!(!b.triggered(48.5));
    }

    #[test]
    fn thermal_trigger_uses_structure_r() {
        let mut b = BoxcarProxy::new(1);
        b.push(5.0);
        // 5 W through 2 K/W above a 100 C heatsink = 110 C estimate.
        assert!(b.triggered_thermal(2.0, 100.0, 109.0));
        assert!(!b.triggered_thermal(2.0, 100.0, 110.5));
    }

    #[test]
    fn boxcar_cannot_see_fast_exponentials() {
        // The paper's criticism: a short burst barely moves a long boxcar
        // even though a small RC node heats substantially.
        let mut long = BoxcarProxy::new(500_000);
        for _ in 0..400_000 {
            long.push(0.5);
        }
        for _ in 0..20_000 {
            long.push(8.0); // intense 20 K-cycle burst
        }
        // Burst is 1/25 of the window content: average stays low.
        assert!(long.average() < 1.1, "avg = {}", long.average());
    }

    #[test]
    fn drift_rebuild_keeps_sum_accurate() {
        let mut b = BoxcarProxy::new(8);
        for i in 0..(REBUILD_INTERVAL + 100) {
            b.push((i % 7) as f64 * 0.1 + 1e-3);
        }
        let exact: f64 = b.buf.iter().sum::<f64>() / 8.0;
        assert!((b.average() - exact).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_window_rejected() {
        let _ = BoxcarProxy::new(0);
    }
}
