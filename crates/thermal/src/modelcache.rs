//! # Compact-model artifact cache — pay the eigendecomposition once
//!
//! [`CompactModel::extract`](crate::CompactModel::extract) runs a dense
//! Jacobi eigensolver over the free-node Laplacian — O(n³) per sweep —
//! yet in a fleet sweep every cell of an experiment grid extracts the
//! *same* model: the floorplan (and therefore the RC network) is shared
//! across workloads, policies, and variants. This module memoizes
//! extraction behind a content-addressed key so the decomposition is
//! paid once per distinct (network, tolerance) pair and replayed from
//! cache everywhere else.
//!
//! ## Keying
//!
//! [`network_fingerprint`] folds everything extraction reads out of an
//! [`RcNetwork`] into a 128-bit FNV-1a fingerprint: the ambient
//! reference, every node's fixed flag / capacitance / temperature /
//! power, and every resistive edge `(a, b, conductance)` in insertion
//! order. Floats are canonicalized the same way the result cache in
//! `tdtm-core` canonicalizes them — every NaN payload collapses to one
//! key, while `-0.0` and `+0.0` stay distinct (they are distinct inputs
//! to the solver). The cache key is `(network fingerprint, tol bits)`:
//! the tolerance participates because it decides how many modes
//! truncation keeps.
//!
//! ## Tiers and invalidation
//!
//! [`ModelCache`] holds an in-memory map and, optionally, a disk tier
//! (one `cm-<fingerprint>-<tolbits>.json` file per entry, serialized
//! via [`CompactModel::to_json`](crate::CompactModel::to_json)). Keys
//! are content: there is no invalidation protocol, because a different
//! network or tolerance *is* a different key. Corrupt, truncated, or
//! schema-drifted disk entries parse as misses and are overwritten by
//! the recomputation; an unwritable directory degrades to memory-only
//! with a single warning. The domain tag below is versioned — bump it
//! to deliberately orphan old entries if the canonical encoding ever
//! changes.
//!
//! The process-wide entry point
//! [`CompactModel::extract_cached`](crate::CompactModel::extract_cached)
//! follows the same environment convention as the result cache in
//! `tdtm-core`: `TDTM_CACHE=0` (or `off`) disables it entirely, and
//! `TDTM_CACHE_DIR` adds the disk tier so warm repeats across process
//! restarts skip extraction too.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tdtm_prng::Fnv128;

use crate::network::RcNetwork;
use crate::reduction::CompactModel;

/// Versioned domain tag folded into every network fingerprint. Bumping
/// the version deliberately invalidates all previously stored entries.
const DOMAIN: &[u8] = b"tdtm/rcnet/v1\0";

/// Content fingerprint of everything [`CompactModel::extract`] reads
/// out of `net`: ambient, per-node state (fixed flag, capacitance,
/// temperature, power), and the resistive edge list in insertion
/// order. NaNs collapse to one canonical key; `-0.0` and `+0.0` hash
/// differently (they are distinct solver inputs). The elapsed
/// simulation time is deliberately excluded — extraction never reads
/// it.
pub fn network_fingerprint(net: &RcNetwork) -> u128 {
    let mut h = Fnv128::new();
    h.write(DOMAIN);
    h.write_f64(net.ambient());
    h.write_u64(net.len() as u64);
    for id in net.node_ids() {
        h.write(&[u8::from(net.is_fixed(id))]);
        h.write_f64(net.capacitance(id));
        h.write_f64(net.temperature(id));
        h.write_f64(net.power(id));
    }
    for (a, b, conductance) in net.edge_list() {
        h.write_u64(a.0 as u64);
        // Ambient edges get a sentinel index no real node can hold.
        h.write_u64(b.map_or(u64::MAX, |b| b.0 as u64));
        h.write_f64(conductance);
    }
    h.finish()
}

/// Two-tier memoization store for extracted [`CompactModel`]s, keyed by
/// `(network fingerprint, tolerance bits)`. See the module docs for the
/// keying and invalidation rules. Shared across threads by reference;
/// all methods take `&self`.
pub struct ModelCache {
    mem: Mutex<HashMap<(u128, u64), Arc<CompactModel>>>,
    disk: Option<PathBuf>,
    disk_failed: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelCache {
    /// A memory-only cache (entries live as long as the value).
    pub fn in_memory() -> ModelCache {
        ModelCache {
            mem: Mutex::new(HashMap::new()),
            disk: None,
            disk_failed: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir` (created if missing). If the directory
    /// cannot be created or written, prints one warning and degrades to
    /// memory-only — an unusable cache dir must never fail extraction.
    pub fn with_disk(dir: impl Into<PathBuf>) -> ModelCache {
        let dir = dir.into();
        let probe = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            let p = dir.join(format!(".probe.cm.{}", std::process::id()));
            std::fs::write(&p, b"ok")?;
            std::fs::remove_file(&p)
        })();
        match probe {
            Ok(()) => {
                let mut cache = ModelCache::in_memory();
                cache.disk = Some(dir);
                cache
            }
            Err(e) => {
                eprintln!(
                    "compact-model cache: cache dir {} is unusable ({e}); \
                     continuing in-memory only",
                    dir.display()
                );
                ModelCache::in_memory()
            }
        }
    }

    /// Whether the disk tier is active.
    pub fn has_disk_tier(&self) -> bool {
        self.disk.is_some() && !self.disk_failed.load(Ordering::Relaxed)
    }

    /// Extractions served from cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Extractions actually computed since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the compact model for `(net, tol)`, extracting and
    /// storing it on first use. Extraction errors (non-positive `tol`,
    /// eigensolver failure) propagate uncached — errors are not
    /// memoized.
    pub fn get_or_extract(
        &self,
        net: &RcNetwork,
        tol: f64,
    ) -> Result<Arc<CompactModel>, String> {
        if !tol.is_finite() || tol <= 0.0 {
            // Reject before fingerprinting so a NaN tolerance cannot
            // reach the (NaN-canonicalizing) key.
            return CompactModel::extract(net, tol).map(Arc::new);
        }
        let key = (network_fingerprint(net), tol.to_bits());
        if let Some(model) = self.mem.lock().expect("model cache lock poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(model));
        }
        if let Some(model) = self.disk_lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let model = Arc::new(model);
            self.mem
                .lock()
                .expect("model cache lock poisoned")
                .insert(key, Arc::clone(&model));
            return Ok(model);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let model = Arc::new(CompactModel::extract(net, tol)?);
        self.disk_store(key, &model);
        self.mem
            .lock()
            .expect("model cache lock poisoned")
            .insert(key, Arc::clone(&model));
        Ok(model)
    }

    fn entry_path(&self, key: (u128, u64)) -> Option<PathBuf> {
        Some(self.disk.as_ref()?.join(format!("cm-{:032x}-{:016x}.json", key.0, key.1)))
    }

    fn disk_lookup(&self, key: (u128, u64)) -> Option<CompactModel> {
        let text = std::fs::read_to_string(self.entry_path(key)?).ok()?;
        // Any parse failure — truncation, garbage, schema drift — is a
        // miss; the recomputation overwrites the bad entry.
        let model = CompactModel::from_json(&text).ok()?;
        // Defensive: an entry whose recorded tolerance disagrees with
        // its file name was written by something else entirely.
        (model.tolerance().to_bits() == key.1).then_some(model)
    }

    fn disk_store(&self, key: (u128, u64), model: &CompactModel) {
        let Some(path) = self.entry_path(key) else { return };
        if self.disk_failed.load(Ordering::Relaxed) {
            return;
        }
        // Write-then-rename so a concurrent reader never sees a
        // truncated entry.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = std::fs::write(&tmp, model.to_json())
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            if !self.disk_failed.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "compact-model cache: disk tier write failed ({e}); \
                     continuing in-memory only"
                );
            }
        }
    }
}

/// The process-wide cache [`CompactModel::extract_cached`] uses:
/// `None` when `TDTM_CACHE=0`/`off`, disk-backed when `TDTM_CACHE_DIR`
/// is set, in-memory otherwise. Resolved once per process.
pub fn global() -> Option<&'static ModelCache> {
    static GLOBAL: OnceLock<Option<ModelCache>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let enabled = !matches!(
                std::env::var("TDTM_CACHE").ok().as_deref().map(str::trim),
                Some("0") | Some("off")
            );
            if !enabled {
                return None;
            }
            match std::env::var("TDTM_CACHE_DIR") {
                Ok(dir) if !dir.trim().is_empty() => Some(ModelCache::with_disk(dir.trim())),
                _ => Some(ModelCache::in_memory()),
            }
        })
        .as_ref()
}

impl CompactModel {
    /// Like [`extract`](CompactModel::extract), but memoized through the
    /// process-wide [`ModelCache`] so the eigendecomposition is paid
    /// once per distinct `(network, tol)` pair. With `TDTM_CACHE=0` this
    /// is exactly `extract`; with `TDTM_CACHE_DIR` set, warm repeats
    /// across process restarts skip extraction too. The returned model
    /// is an owned clone — stepping it does not perturb the cached
    /// copy.
    pub fn extract_cached(net: &RcNetwork, tol: f64) -> Result<CompactModel, String> {
        match global() {
            Some(cache) => cache.get_or_extract(net, tol).map(|m| (*m).clone()),
            None => CompactModel::extract(net, tol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section 4.1 worked example topology, with enough distinct
    /// parameters that single-field perturbations are visible.
    fn sample_net() -> RcNetwork {
        let mut net = RcNetwork::new(27.0);
        let die = net.add_node(0.5, 31.0);
        let spreader = net.add_node(8.0, 29.0);
        let sink = net.add_node(60.0, 27.5);
        let case = net.add_fixed_node(45.0);
        net.connect(die, spreader, 2.5);
        net.connect(spreader, sink, 1.25);
        net.connect(die, case, 0.125);
        net.connect_to_ambient(sink, 1.0);
        net.set_power(die, 25.0);
        net.set_power(spreader, 0.5);
        net
    }

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tdtm-modelcache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_stable_across_identical_builds() {
        assert_eq!(network_fingerprint(&sample_net()), network_fingerprint(&sample_net()));
    }

    #[test]
    fn fingerprint_separates_every_extraction_input() {
        let base = network_fingerprint(&sample_net());
        let nodes: Vec<_> = sample_net().node_ids().collect();
        let (die, case) = (nodes[0], nodes[3]);

        let mut control = sample_net();
        control.set_temperature(die, 31.0); // no-op overwrite
        assert_eq!(network_fingerprint(&control), base, "control perturbation");

        let mut capacitance = RcNetwork::new(27.0);
        {
            // Rebuild with only the die capacitance changed.
            let d = capacitance.add_node(0.5 + 1e-9, 31.0);
            let sp = capacitance.add_node(8.0, 29.0);
            let sk = capacitance.add_node(60.0, 27.5);
            let ca = capacitance.add_fixed_node(45.0);
            capacitance.connect(d, sp, 2.5);
            capacitance.connect(sp, sk, 1.25);
            capacitance.connect(d, ca, 0.125);
            capacitance.connect_to_ambient(sk, 1.0);
            capacitance.set_power(d, 25.0);
            capacitance.set_power(sp, 0.5);
        }
        assert_ne!(network_fingerprint(&capacitance), base, "capacitance");

        let mut ambient = RcNetwork::new(27.5);
        {
            // Rebuild with only the ambient changed.
            let d = ambient.add_node(0.5, 31.0);
            let sp = ambient.add_node(8.0, 29.0);
            let sk = ambient.add_node(60.0, 27.5);
            let ca = ambient.add_fixed_node(45.0);
            ambient.connect(d, sp, 2.5);
            ambient.connect(sp, sk, 1.25);
            ambient.connect(d, ca, 0.125);
            ambient.connect_to_ambient(sk, 1.0);
            ambient.set_power(d, 25.0);
            ambient.set_power(sp, 0.5);
        }
        assert_ne!(network_fingerprint(&ambient), base, "ambient");

        let mut temp = sample_net();
        temp.set_temperature(die, 31.0 + 1e-12);
        assert_ne!(network_fingerprint(&temp), base, "free-node temperature");

        let mut fixed_temp = sample_net();
        fixed_temp.set_temperature(case, 45.5);
        assert_ne!(network_fingerprint(&fixed_temp), base, "fixed-node temperature");

        let mut power = sample_net();
        power.set_power(die, 25.0 + 1e-9);
        assert_ne!(network_fingerprint(&power), base, "power");

        let mut extra_edge = sample_net();
        extra_edge.connect_to_ambient(die, 100.0);
        assert_ne!(network_fingerprint(&extra_edge), base, "edge list");

        let mut conductance = RcNetwork::new(27.0);
        {
            // Rebuild with only one edge conductance changed.
            let d = conductance.add_node(0.5, 31.0);
            let sp = conductance.add_node(8.0, 29.0);
            let sk = conductance.add_node(60.0, 27.5);
            let ca = conductance.add_fixed_node(45.0);
            conductance.connect(d, sp, 2.5 + 1e-9);
            conductance.connect(sp, sk, 1.25);
            conductance.connect(d, ca, 0.125);
            conductance.connect_to_ambient(sk, 1.0);
            conductance.set_power(d, 25.0);
            conductance.set_power(sp, 0.5);
        }
        assert_ne!(network_fingerprint(&conductance), base, "conductance");
    }

    #[test]
    fn fingerprint_canonicalizes_nan_but_not_signed_zero() {
        let mut a = sample_net();
        let mut b = sample_net();
        let die = a.node_ids().next().unwrap();
        a.set_power(die, f64::NAN);
        b.set_power(die, f64::from_bits(f64::NAN.to_bits() ^ 1)); // different payload
        assert_eq!(
            network_fingerprint(&a),
            network_fingerprint(&b),
            "NaN payloads must collapse to one key"
        );

        let mut pos = sample_net();
        let mut neg = sample_net();
        pos.set_power(die, 0.0);
        neg.set_power(die, -0.0);
        assert_ne!(
            network_fingerprint(&pos),
            network_fingerprint(&neg),
            "-0.0 and +0.0 are distinct solver inputs"
        );
    }

    #[test]
    fn cached_extraction_is_byte_identical_to_fresh() {
        let net = sample_net();
        let cache = ModelCache::in_memory();
        let fresh = CompactModel::extract(&net, 1e-6).unwrap();
        let first = cache.get_or_extract(&net, 1e-6).unwrap();
        let second = cache.get_or_extract(&net, 1e-6).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(fresh.to_json(), first.to_json());
        assert_eq!(fresh.to_json(), second.to_json());
        assert!(Arc::ptr_eq(&first, &second), "memory tier returns the shared entry");

        // A different tolerance is a different key, not a hit.
        let loose = cache.get_or_extract(&net, 5.0).unwrap();
        assert_eq!(cache.misses(), 2);
        assert!(loose.order() <= first.order());
    }

    #[test]
    fn extract_cached_matches_extract() {
        // Process-wide entry point (whatever the ambient env says, both
        // paths must produce byte-identical serializations).
        let net = sample_net();
        let fresh = CompactModel::extract(&net, 1e-6).unwrap();
        let cached = CompactModel::extract_cached(&net, 1e-6).unwrap();
        assert_eq!(fresh.to_json(), cached.to_json());
        // Errors propagate uncached.
        assert!(CompactModel::extract_cached(&net, -1.0).is_err());
        assert!(CompactModel::extract_cached(&net, f64::NAN).is_err());
    }

    #[test]
    fn disk_tier_survives_process_boundaries_and_corruption() {
        let dir = test_dir("disk");
        let net = sample_net();
        let reference = CompactModel::extract(&net, 1e-6).unwrap().to_json();

        let writer = ModelCache::with_disk(&dir);
        assert!(writer.has_disk_tier());
        writer.get_or_extract(&net, 1e-6).unwrap();
        assert_eq!(writer.misses(), 1);
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name().unwrap().to_str().unwrap().starts_with("cm-")
            })
            .expect("one cm- entry on disk");

        // A fresh cache on the same dir models a new process: disk hit,
        // no extraction.
        let reader = ModelCache::with_disk(&dir);
        let warm = reader.get_or_extract(&net, 1e-6).unwrap();
        assert_eq!((reader.hits(), reader.misses()), (1, 0));
        assert_eq!(warm.to_json(), reference);

        // Corrupt entries are misses → recompute + overwrite, never a
        // panic. Exercise truncation, garbage, empty, and schema drift.
        for bad in [
            &reference[..reference.len() / 2],
            "{not json",
            "",
            "{\"v\":1,\"wrong\":\"schema\"}",
        ] {
            std::fs::write(&entry, bad).unwrap();
            let recover = ModelCache::with_disk(&dir);
            let again = recover.get_or_extract(&net, 1e-6).unwrap();
            assert_eq!((recover.hits(), recover.misses()), (0, 1), "entry: {bad:.20}");
            assert_eq!(again.to_json(), reference);
            let rewritten = std::fs::read_to_string(&entry).unwrap();
            assert_eq!(rewritten, reference, "recomputation overwrites the bad entry");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_disk_dir_degrades_to_memory_only() {
        let dir = test_dir("notdir");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain-file");
        std::fs::write(&file, b"x").unwrap();
        // Using a regular file as the cache dir fails the probe.
        let cache = ModelCache::with_disk(&file);
        assert!(!cache.has_disk_tier());
        let net = sample_net();
        let a = cache.get_or_extract(&net, 1e-6).unwrap();
        let b = cache.get_or_extract(&net, 1e-6).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
