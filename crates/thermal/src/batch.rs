//! Batched SoA stepping of many independent block models.
//!
//! A fleet experiment steps hundreds of [`BlockModel`]s — one per grid
//! cell (or one per uncoupled core of a [`CoupledChip`]) — every cycle.
//! Stepping them one object at a time walks scattered heap allocations
//! and re-loads per-model scalars for every handful of blocks.
//! [`ThermalBatch`] packs the models' per-block state into contiguous
//! structure-of-arrays fields (temperatures, decay factors, resistances)
//! so one [`step_batch`](ThermalBatch::step_batch) sweep advances every
//! lane with dense, vectorizable inner loops.
//!
//! The batch is a *bit-exact* re-arrangement, not an approximation: each
//! lane replicates [`BlockModel::step_scaled`]'s per-block operation
//! order exactly (pinned by property tests), so a run stepped through a
//! batch produces byte-identical trajectories to one stepped through the
//! individual models.
//!
//! Lanes are identified by index. Finished cells are retired with
//! [`remove_lane`](ThermalBatch::remove_lane) (swap-remove compaction),
//! keeping the sweep dense as the fleet drains.

use crate::block_model::BlockModel;
use crate::multicore::CoupledChip;
use crate::{Celsius, Watts};

/// A structure-of-arrays pack of many equally-shaped block models.
///
/// Every lane holds `width` blocks. Per-block fields are stored
/// lane-major: lane `l`'s blocks occupy `l*width .. (l+1)*width` of each
/// field array (and of the caller's flat power buffer).
#[derive(Clone, Debug, Default)]
pub struct ThermalBatch {
    /// Blocks per lane.
    width: usize,
    /// Block temperatures, lane-major.
    temps: Vec<f64>,
    /// Precomputed per-block decay factors `e^{-dt/RC}`, lane-major.
    decay: Vec<f64>,
    /// Per-block normal resistance to the heatsink, lane-major.
    r: Vec<f64>,
    /// Per-block RC product, lane-major (for decay refresh on retiming).
    rc: Vec<f64>,
    /// Per-lane heatsink temperature.
    heatsink: Vec<f64>,
    /// Per-lane integration step (seconds).
    dt: Vec<f64>,
}

impl ThermalBatch {
    /// Creates an empty batch of models with `width` blocks each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> ThermalBatch {
        assert!(width > 0, "need at least one block per lane");
        ThermalBatch { width, ..ThermalBatch::default() }
    }

    /// Blocks per lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of packed lanes.
    pub fn lanes(&self) -> usize {
        self.heatsink.len()
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.heatsink.is_empty()
    }

    /// Packs a model's state into a new lane and returns its index. The
    /// decay factors are *copied* from the model (via
    /// [`BlockModel::decay_factors`]), not recomputed, so the lane steps
    /// with exactly the factors the model would have used.
    ///
    /// # Panics
    ///
    /// Panics if the model's block count differs from the batch width.
    pub fn push(&mut self, model: &BlockModel) -> usize {
        assert_eq!(model.len(), self.width, "model width must match the batch");
        let lane = self.lanes();
        self.temps.extend_from_slice(model.temperatures());
        self.decay.extend_from_slice(model.decay_factors());
        for p in model.params() {
            self.r.push(p.r);
            self.rc.push(p.r * p.c);
        }
        self.heatsink.push(model.heatsink());
        self.dt.push(model.dt());
        lane
    }

    /// Packs every core of an *uncoupled* chip, one lane per core, and
    /// returns the first lane index (cores occupy consecutive lanes).
    /// With no coupling edges, [`CoupledChip::step`] degenerates to
    /// independent per-core steps, which is exactly what the batch
    /// replicates; a coupled chip cannot be batched this way.
    ///
    /// # Panics
    ///
    /// Panics if the chip has coupling edges or its cores' block count
    /// differs from the batch width.
    pub fn push_chip_cores(&mut self, chip: &CoupledChip) -> usize {
        assert!(
            chip.edges().is_empty(),
            "only uncoupled chips batch as independent lanes"
        );
        let first = self.lanes();
        for core in chip.core_models() {
            self.push(core);
        }
        first
    }

    /// Advances every lane one step with the fused scale-and-step update
    /// of [`BlockModel::step_scaled`]: block `i` of lane `l` reads
    /// `powers[l*width + i]`, multiplies it by `scales[l]` (writing the
    /// effective watts back), and takes the exact constant-power decay
    /// step. Per-lane results are bit-identical to calling
    /// `step_scaled` on the corresponding models.
    ///
    /// # Panics
    ///
    /// Panics if `powers` is not `lanes*width` long or `scales` is not
    /// one per lane.
    pub fn step_batch(&mut self, powers: &mut [Watts], scales: &[f64]) {
        let lanes = self.lanes();
        assert_eq!(powers.len(), lanes * self.width, "one power per block per lane");
        assert_eq!(scales.len(), lanes, "one scale per lane");
        for (l, &scale) in scales.iter().enumerate() {
            let base = l * self.width;
            let span = base..base + self.width;
            let heatsink = self.heatsink[l];
            let temps = &mut self.temps[span.clone()];
            let lane_powers = &mut powers[span.clone()];
            let r = &self.r[span.clone()];
            let decay = &self.decay[span];
            for ((temp, power), (&r, &decay)) in
                temps.iter_mut().zip(lane_powers).zip(r.iter().zip(decay))
            {
                let p = *power * scale;
                *power = p;
                let t_ss = heatsink + p * r;
                *temp = t_ss + (*temp - t_ss) * decay;
            }
        }
    }

    /// Advances one lane `cycles` steps under constant, already-scaled
    /// per-block powers, calling `observe` with the lane's post-step
    /// temperatures after every cycle — the lane-wise analogue of
    /// [`BlockModel::step_gap_observed`](crate::BlockModel::step_gap_observed),
    /// for a lane fast-forwarding across a provably-idle window while
    /// the rest of the batch keeps lockstep rounds.
    ///
    /// Bit-identical to `cycles` [`step_batch`](ThermalBatch::step_batch)
    /// sweeps whose staged powers and scale produce the same effective
    /// watts for this lane (pinned by a property test): with the
    /// effective watts constant, each block's steady state is the same
    /// bits every cycle, so it hoists out of the loop while the
    /// recurrence keeps `step_batch`'s arithmetic order. Other lanes are
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `N` differs from the width.
    pub fn step_lane_gap<const N: usize>(
        &mut self,
        lane: usize,
        powers: &[Watts; N],
        cycles: u64,
        mut observe: impl FnMut(&[Celsius; N]),
    ) {
        let ThermalBatch { width, temps, decay, r, heatsink, .. } = self;
        assert_eq!(N, *width, "one power per block");
        let base = lane * N;
        let heatsink = heatsink[lane];
        let temps: &mut [f64; N] =
            (&mut temps[base..base + N]).try_into().expect("lane temperature span");
        let r: &[f64; N] = (&r[base..base + N]).try_into().expect("lane resistance span");
        let decay: &[f64; N] = (&decay[base..base + N]).try_into().expect("lane decay span");
        let mut t_ss = [0.0f64; N];
        for i in 0..N {
            t_ss[i] = heatsink + powers[i] * r[i];
        }
        for _ in 0..cycles {
            for i in 0..N {
                temps[i] = t_ss[i] + (temps[i] - t_ss[i]) * decay[i];
            }
            observe(temps);
        }
    }

    /// Retimes one lane's integration step (e.g. under frequency
    /// scaling), recomputing its decay factors exactly as
    /// [`BlockModel::set_dt`] would.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive or `lane` is out of range.
    pub fn set_lane_dt(&mut self, lane: usize, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        self.dt[lane] = dt;
        let base = lane * self.width;
        for i in base..base + self.width {
            self.decay[i] = (-dt / self.rc[i]).exp();
        }
    }

    /// One lane's integration step in seconds.
    pub fn lane_dt(&self, lane: usize) -> f64 {
        self.dt[lane]
    }

    /// Initializes one lane's blocks to their steady-state temperatures
    /// under the given powers, exactly as [`BlockModel::warm_start`].
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the batch width or `lane`
    /// is out of range.
    pub fn warm_start_lane(&mut self, lane: usize, powers: &[Watts]) {
        assert_eq!(powers.len(), self.width, "one power per block");
        let base = lane * self.width;
        let heatsink = self.heatsink[lane];
        for (i, &power) in powers.iter().enumerate() {
            self.temps[base + i] = heatsink + power * self.r[base + i];
        }
    }

    /// Overrides one block temperature of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` or `block` is out of range.
    pub fn set_temperature(&mut self, lane: usize, block: usize, temp: Celsius) {
        assert!(block < self.width, "block index out of range");
        self.temps[lane * self.width + block] = temp;
    }

    /// One lane's block temperatures, in block order.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn temperatures(&self, lane: usize) -> &[Celsius] {
        &self.temps[lane * self.width..(lane + 1) * self.width]
    }

    /// One lane's block temperatures as a fixed-arity array reference,
    /// mirroring [`BlockModel::temperatures_fixed`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `N` differs from the width.
    pub fn temperatures_fixed<const N: usize>(&self, lane: usize) -> &[Celsius; N] {
        self.temperatures(lane).try_into().expect("fixed-arity temperature read")
    }

    /// The index and temperature of one lane's hottest block, with
    /// [`BlockModel::hottest`]'s exact tie-breaking (first block wins).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn hottest(&self, lane: usize) -> (usize, Celsius) {
        let temps = self.temperatures(lane);
        let mut best = (0, temps[0]);
        for (i, &t) in temps.iter().enumerate() {
            if t > best.1 {
                best = (i, t);
            }
        }
        best
    }

    /// Writes one lane's temperatures back into a model (the inverse of
    /// [`push`](ThermalBatch::push) for the mutable state; parameters
    /// are the caller's responsibility to keep matched).
    ///
    /// # Panics
    ///
    /// Panics if the model's block count differs from the batch width or
    /// `lane` is out of range.
    pub fn scatter_to(&self, lane: usize, model: &mut BlockModel) {
        assert_eq!(model.len(), self.width, "model width must match the batch");
        for (i, &t) in self.temperatures(lane).iter().enumerate() {
            model.set_temperature(i, t);
        }
    }

    /// Writes consecutive lanes (starting at `first`) back into an
    /// uncoupled chip's cores, the inverse of
    /// [`push_chip_cores`](ThermalBatch::push_chip_cores).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn scatter_chip_cores(&self, first: usize, chip: &mut CoupledChip) {
        for k in 0..chip.cores() {
            self.scatter_to(first + k, chip.core_mut(k));
        }
    }

    /// Retires a lane by swap-remove: the last lane moves into `lane`'s
    /// slot (all field arrays compacted in lockstep) and the batch
    /// shrinks by one. Returns the index of the lane that moved (the old
    /// last lane), or `None` if `lane` was the last. Lane indices above
    /// the removed one are invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn remove_lane(&mut self, lane: usize) -> Option<usize> {
        let last = self.lanes() - 1;
        assert!(lane <= last, "lane index out of range");
        let (a, b) = (lane * self.width, last * self.width);
        for i in 0..self.width {
            self.temps.swap(a + i, b + i);
            self.decay.swap(a + i, b + i);
            self.r.swap(a + i, b + i);
            self.rc.swap(a + i, b + i);
        }
        self.temps.truncate(b);
        self.decay.truncate(b);
        self.r.truncate(b);
        self.rc.truncate(b);
        self.heatsink.swap_remove(lane);
        self.dt.swap_remove(lane);
        (lane != last).then_some(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_model::BlockParams;
    use crate::multicore::MulticoreFloorplan;

    const W: usize = 7;

    /// A randomized 7-block model with random R/C/temperature state —
    /// the same generator shape the block-model kernel tests use.
    fn random_model(rng: &mut tdtm_prng::Rng) -> BlockModel {
        let params: Vec<BlockParams> = (0..W)
            .map(|i| BlockParams {
                name: format!("b{i}"),
                area: 1e-6,
                r: 0.1 + rng.next_f64() * 30.0,
                c: 1e-8 + rng.next_f64() * 1e-4,
            })
            .collect();
        let heatsink = 20.0 + rng.next_f64() * 90.0;
        let dt = 10f64.powf(rng.next_f64() * 8.0 - 10.0);
        let mut m = BlockModel::new(params, heatsink, dt);
        for i in 0..W {
            m.set_temperature(i, heatsink - 5.0 + rng.next_f64() * 60.0);
        }
        m
    }

    fn random_powers(rng: &mut tdtm_prng::Rng) -> [f64; W] {
        std::array::from_fn(|_| rng.next_f64() * 40.0)
    }

    /// The tentpole's pin: packing N heterogeneous models, stepping the
    /// batch, and reading lanes back must be bit-identical to stepping
    /// each model individually through `step_scaled` — across random
    /// parameters, powers, per-lane scales, and written-back watts.
    #[test]
    fn property_step_batch_matches_individual_models_bitwise() {
        tdtm_prng::cases(40, 0x50A_BA7C, |rng| {
            let n = 1 + rng.index(12);
            let mut models: Vec<BlockModel> = (0..n).map(|_| random_model(rng)).collect();
            let mut batch = ThermalBatch::new(W);
            for m in &models {
                assert_eq!(batch.push(m), batch.lanes() - 1);
            }
            for _ in 0..20 {
                let mut flat = vec![0.0f64; n * W];
                let mut scales = vec![0.0f64; n];
                let mut expect_flat = vec![0.0f64; n * W];
                for l in 0..n {
                    let powers = random_powers(rng);
                    flat[l * W..(l + 1) * W].copy_from_slice(&powers);
                    scales[l] = 0.2 + rng.next_f64() * 1.3;
                    let mut fused = powers;
                    models[l].step_scaled(&mut fused, scales[l]);
                    expect_flat[l * W..(l + 1) * W].copy_from_slice(&fused);
                }
                batch.step_batch(&mut flat, &scales);
                assert_eq!(flat, expect_flat, "written-back effective watts");
                for (l, m) in models.iter().enumerate() {
                    assert_eq!(batch.temperatures(l), m.temperatures(), "lane {l}");
                    assert_eq!(batch.hottest(l), m.hottest(), "lane {l} hottest");
                }
            }
        });
    }

    #[test]
    fn property_retiming_and_warm_start_match_the_model() {
        tdtm_prng::cases(40, 0x0D7_0D70, |rng| {
            let mut model = random_model(rng);
            let mut batch = ThermalBatch::new(W);
            let lane = batch.push(&model);
            assert_eq!(batch.lane_dt(lane), model.dt());

            let powers = random_powers(rng);
            model.warm_start(&powers);
            batch.warm_start_lane(lane, &powers);
            assert_eq!(batch.temperatures(lane), model.temperatures());

            let dt = 10f64.powf(rng.next_f64() * 8.0 - 10.0);
            model.set_dt(dt);
            batch.set_lane_dt(lane, dt);
            let mut a = powers;
            let mut b = powers;
            model.step_scaled(&mut a, 1.1);
            batch.step_batch(&mut b, &[1.1]);
            assert_eq!(batch.temperatures(lane), model.temperatures());
            assert_eq!(a, b);
        });
    }

    /// The gap kernel's pin: fast-forwarding one lane under constant
    /// effective watts must reproduce, bit for bit, the per-cycle
    /// snapshots and final state that lane would have had under repeated
    /// `step_batch` sweeps staging the same powers and scale each cycle.
    #[test]
    fn property_step_lane_gap_matches_repeated_step_batch_bitwise() {
        tdtm_prng::cases(40, 0x6A9_BA7C, |rng| {
            let models: Vec<BlockModel> = (0..3).map(|_| random_model(rng)).collect();
            let mut reference = ThermalBatch::new(W);
            let mut gapped = ThermalBatch::new(W);
            for m in &models {
                reference.push(m);
                gapped.push(m);
            }
            let lane = rng.index(3);
            let base_powers = random_powers(rng);
            let scale = 0.2 + rng.next_f64() * 1.3;
            let cycles = 1 + (rng.next_f64() * 30.0) as u64;

            // Reference: full sweeps, every lane staged with the same
            // constant powers; snapshot the gap lane each cycle.
            let mut snapshots = Vec::new();
            for _ in 0..cycles {
                let mut flat = vec![0.0f64; 3 * W];
                for l in 0..3 {
                    flat[l * W..(l + 1) * W].copy_from_slice(&base_powers);
                }
                reference.step_batch(&mut flat, &[scale; 3]);
                snapshots.push(*reference.temperatures_fixed::<W>(lane));
            }

            // Gap path: pre-scale once (the bits `step_batch` writes
            // back) and fold the lane across the window.
            let scaled: [f64; W] = std::array::from_fn(|i| base_powers[i] * scale);
            let mut observed = Vec::new();
            gapped.step_lane_gap(lane, &scaled, cycles, |t: &[f64; W]| observed.push(*t));
            assert_eq!(snapshots, observed);
            assert_eq!(reference.temperatures(lane), gapped.temperatures(lane));
            // Other lanes were untouched by the gap.
            for l in (0..3).filter(|&l| l != lane) {
                assert_eq!(gapped.temperatures(l), models[l].temperatures(), "lane {l}");
            }
        });
    }

    #[test]
    fn scatter_restores_a_model_exactly() {
        let mut rng = tdtm_prng::Rng::new(0x5CA_77E2);
        let mut model = random_model(&mut rng);
        let mut batch = ThermalBatch::new(W);
        let lane = batch.push(&model);
        let mut flat: Vec<f64> = random_powers(&mut rng).to_vec();
        batch.step_batch(&mut flat, &[1.0]);
        assert_ne!(batch.temperatures(lane), model.temperatures());
        batch.scatter_to(lane, &mut model);
        assert_eq!(batch.temperatures(lane), model.temperatures());
    }

    #[test]
    fn swap_remove_compacts_and_keeps_survivors_intact() {
        let mut rng = tdtm_prng::Rng::new(0xC0_47AC7);
        let models: Vec<BlockModel> = (0..4).map(|_| random_model(&mut rng)).collect();
        let mut batch = ThermalBatch::new(W);
        for m in &models {
            batch.push(m);
        }
        // Remove lane 1: lane 3 moves into its slot.
        assert_eq!(batch.remove_lane(1), Some(3));
        assert_eq!(batch.lanes(), 3);
        assert_eq!(batch.temperatures(0), models[0].temperatures());
        assert_eq!(batch.temperatures(1), models[3].temperatures());
        assert_eq!(batch.temperatures(2), models[2].temperatures());
        assert_eq!(batch.lane_dt(1), models[3].dt());
        // Survivors still step exactly as their source models.
        let mut m0 = models[0].clone();
        let mut flat = vec![3.0f64; 3 * W];
        let mut p0 = [3.0f64; W];
        batch.step_batch(&mut flat, &[1.0, 1.0, 1.0]);
        m0.step_scaled(&mut p0, 1.0);
        assert_eq!(batch.temperatures(0), m0.temperatures());
        // Removing the last lane moves nothing.
        assert_eq!(batch.remove_lane(2), None);
        assert_eq!(batch.lanes(), 2);
    }

    #[test]
    fn uncoupled_chip_round_trips_through_the_batch() {
        let dt = 1.0 / 1.5e9;
        let plan = MulticoreFloorplan::new(3).coupling(0.0).heterogeneity(0.2);
        let mut chip = plan.build_chip(103.0, dt);
        let mut batched = chip.clone();
        let mut batch = ThermalBatch::new(W);
        let first = batch.push_chip_cores(&batched);
        assert_eq!(first, 0);
        assert_eq!(batch.lanes(), 3);

        let powers: Vec<Vec<f64>> =
            (0..3).map(|k| (0..W).map(|i| (k * W + i) as f64 * 0.3).collect()).collect();
        let mut flat: Vec<f64> = powers.iter().flatten().copied().collect();
        for _ in 0..2_000 {
            chip.step(&powers);
            // Unit scale writes back the same watts, so `flat` is stable.
            batch.step_batch(&mut flat, &[1.0; 3]);
        }
        batch.scatter_chip_cores(first, &mut batched);
        for k in 0..3 {
            assert_eq!(batched.temperatures(k), chip.temperatures(k), "core {k}");
        }
    }

    #[test]
    fn temperatures_fixed_views_the_same_state() {
        let mut rng = tdtm_prng::Rng::new(0xF1_EDF1);
        let model = random_model(&mut rng);
        let mut batch = ThermalBatch::new(W);
        let lane = batch.push(&model);
        let fixed: &[f64; W] = batch.temperatures_fixed(lane);
        assert_eq!(&fixed[..], batch.temperatures(lane));
    }

    #[test]
    #[should_panic(expected = "model width must match the batch")]
    fn width_mismatch_is_rejected() {
        let mut rng = tdtm_prng::Rng::new(1);
        let model = random_model(&mut rng);
        let mut batch = ThermalBatch::new(3);
        batch.push(&model);
    }

    #[test]
    #[should_panic(expected = "only uncoupled chips batch")]
    fn coupled_chip_is_rejected() {
        let chip = MulticoreFloorplan::new(2).build_chip(103.0, 1e-6);
        let mut batch = ThermalBatch::new(W);
        batch.push_chip_cores(&chip);
    }
}
