//! Chip-wide (TEMPEST-style) thermal model: the whole die as one RC node
//! behind a heatsink node.
//!
//! This is the granularity prior work (Dhodapkar et al.'s TEMPEST) modeled,
//! and the paper's Section 6 foil: because its time constant is on the order
//! of a minute while per-block constants are tens of microseconds, a
//! chip-wide model misses essentially all localized thermal emergencies.

use crate::{Celsius, Watts};

/// Parameters for the two-node chip + heatsink model.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChipWideParams {
    /// Die-to-heatsink (junction-to-case + spreader) resistance, K/W.
    pub r_die_sink: f64,
    /// Heatsink-to-ambient resistance, K/W.
    pub r_sink_ambient: f64,
    /// Die thermal capacitance, J/K.
    pub c_die: f64,
    /// Heatsink thermal capacitance, J/K.
    pub c_sink: f64,
}

impl ChipWideParams {
    /// The reproduction defaults: total R = 0.34 K/W (the value the paper
    /// uses for chip-wide average temperature) split evenly between the two
    /// stages, and capacitances giving the ~1 minute chip time constant the
    /// paper quotes.
    pub fn paper_defaults() -> ChipWideParams {
        ChipWideParams { r_die_sink: 0.17, r_sink_ambient: 0.17, c_die: 2.0, c_sink: 350.0 }
    }

    /// Total die-to-ambient resistance.
    pub fn r_total(&self) -> f64 {
        self.r_die_sink + self.r_sink_ambient
    }

    /// The dominant (heatsink) time constant, seconds.
    pub fn dominant_time_constant(&self) -> f64 {
        self.c_sink * self.r_sink_ambient
    }
}

impl Default for ChipWideParams {
    fn default() -> ChipWideParams {
        ChipWideParams::paper_defaults()
    }
}

/// Two-node chip-wide thermal model.
#[derive(Clone, Copy, Debug)]
pub struct ChipWideModel {
    params: ChipWideParams,
    ambient: Celsius,
    t_die: Celsius,
    t_sink: Celsius,
}

impl ChipWideModel {
    /// Creates the model with both nodes at `ambient`.
    pub fn new(params: ChipWideParams, ambient: Celsius) -> ChipWideModel {
        ChipWideModel { params, ambient, t_die: ambient, t_sink: ambient }
    }

    /// Die temperature.
    pub fn die_temperature(&self) -> Celsius {
        self.t_die
    }

    /// Heatsink temperature.
    pub fn sink_temperature(&self) -> Celsius {
        self.t_sink
    }

    /// Sets both node temperatures (e.g. warmed-up initial conditions).
    pub fn set_temperatures(&mut self, die: Celsius, sink: Celsius) {
        self.t_die = die;
        self.t_sink = sink;
    }

    /// Steady-state die temperature under constant `power`.
    pub fn steady_state(&self, power: Watts) -> Celsius {
        self.ambient + power * self.params.r_total()
    }

    /// Advances `dt` seconds with total chip power `power` (forward Euler;
    /// callers stepping at cycle granularity are far below the stability
    /// bound of this slow system).
    pub fn step(&mut self, power: Watts, dt: f64) {
        let q_die_sink = (self.t_die - self.t_sink) / self.params.r_die_sink;
        let q_sink_amb = (self.t_sink - self.ambient) / self.params.r_sink_ambient;
        self.t_die += dt * (power - q_die_sink) / self.params.c_die;
        self.t_sink += dt * (q_die_sink - q_sink_amb) / self.params.c_sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settles_at_analytic_steady_state() {
        let mut m = ChipWideModel::new(ChipWideParams::paper_defaults(), 27.0);
        let p = 40.0;
        // dominant tau ~ 60 s; run 10 minutes at 10 ms steps.
        for _ in 0..60_000 {
            m.step(p, 0.01);
        }
        let expect = m.steady_state(p);
        assert!((m.die_temperature() - expect).abs() < 0.1, "{} vs {expect}", m.die_temperature());
        assert!(m.sink_temperature() < m.die_temperature());
    }

    #[test]
    fn paper_defaults_have_minute_scale_time_constant() {
        let p = ChipWideParams::paper_defaults();
        let tau = p.dominant_time_constant();
        assert!((30.0..=120.0).contains(&tau), "tau = {tau}");
        assert!((p.r_total() - 0.34).abs() < 1e-12);
    }

    #[test]
    fn chip_barely_moves_over_program_scale_horizons() {
        // Section 6's point: over the ~10 ms horizon of a simulated
        // program, chip-wide temperature rises by only a tiny fraction of
        // the per-block swings.
        let mut m = ChipWideModel::new(ChipWideParams::paper_defaults(), 27.0);
        m.set_temperatures(60.0, 59.0);
        let before = m.die_temperature();
        for _ in 0..10_000 {
            m.step(80.0, 1e-6); // 10 ms of heavy power
        }
        let rise = m.die_temperature() - before;
        assert!(rise < 0.5, "chip-wide rise {rise} should be small over 10 ms");
        assert!(rise > 0.0);
    }
}
