//! Agreement accounting between a reference thermal model and a proxy
//! (Tables 9 and 10 of the paper).
//!
//! Each cycle, both the RC reference model and a proxy (boxcar average,
//! chip-wide model, ...) either flag a thermal emergency or not. The paper
//! reports, per benchmark and per structure, how many *true* emergency
//! cycles the proxy fails to observe ("missed emergencies") and how many
//! trigger cycles it reports that are not real ("false triggers").

/// Per-signal agreement counts between a reference and a proxy detector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AgreementCounts {
    /// Cycles where both flagged an emergency.
    pub both: u64,
    /// Cycles where the reference flagged and the proxy did not
    /// (missed emergencies).
    pub missed: u64,
    /// Cycles where the proxy flagged and the reference did not
    /// (false triggers).
    pub false_triggers: u64,
    /// Cycles where neither flagged.
    pub neither: u64,
}

impl AgreementCounts {
    /// Creates zeroed counts.
    pub fn new() -> AgreementCounts {
        AgreementCounts::default()
    }

    /// Records one cycle's verdicts.
    pub fn record(&mut self, reference_hot: bool, proxy_hot: bool) {
        match (reference_hot, proxy_hot) {
            (true, true) => self.both += 1,
            (true, false) => self.missed += 1,
            (false, true) => self.false_triggers += 1,
            (false, false) => self.neither += 1,
        }
    }

    /// Total cycles recorded.
    pub fn total(&self) -> u64 {
        self.both + self.missed + self.false_triggers + self.neither
    }

    /// True emergency cycles according to the reference.
    pub fn reference_emergencies(&self) -> u64 {
        self.both + self.missed
    }

    /// Fraction of true emergency cycles the proxy missed (0 if there were
    /// none).
    pub fn miss_rate(&self) -> f64 {
        let re = self.reference_emergencies();
        if re == 0 {
            0.0
        } else {
            self.missed as f64 / re as f64
        }
    }

    /// False-trigger cycles as a fraction of all cycles.
    pub fn false_trigger_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.false_triggers as f64 / t as f64
        }
    }

    /// Missed-emergency cycles as a fraction of all cycles (the unit
    /// Tables 9 and 10 report).
    pub fn miss_cycle_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.missed as f64 / t as f64
        }
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &AgreementCounts) {
        self.both += other.both;
        self.missed += other.missed;
        self.false_triggers += other.false_triggers;
        self.neither += other.neither;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_all_quadrants() {
        let mut c = AgreementCounts::new();
        c.record(true, true);
        c.record(true, false);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!(c.both, 1);
        assert_eq!(c.missed, 2);
        assert_eq!(c.false_triggers, 1);
        assert_eq!(c.neither, 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.reference_emergencies(), 3);
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.false_trigger_rate() - 0.2).abs() < 1e-12);
        assert!((c.miss_cycle_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_have_zero_rates() {
        let c = AgreementCounts::new();
        assert_eq!(c.miss_rate(), 0.0);
        assert_eq!(c.false_trigger_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AgreementCounts::new();
        a.record(true, true);
        let mut b = AgreementCounts::new();
        b.record(false, true);
        b.record(true, false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.false_triggers, 1);
        assert_eq!(a.missed, 1);
    }
}
