//! The paper's simplified per-block thermal model (Figure 3C / Eq. 5).
//!
//! Each functional block `i` is a single RC node: capacitance `C_i`,
//! resistance `R_i` to a heatsink node held at constant temperature (its
//! time constant is orders of magnitude longer than the blocks', so it is
//! effectively a temperature source over the horizons simulated here).
//!
//! The paper integrates with the forward-Euler difference equation (Eq. 5):
//!
//! ```text
//! T[i] += dt/C[i] * ( P[i] - (T[i] - T_heatsink)/R[i] )
//! ```
//!
//! [`BlockModel::step`] instead uses the *exact* update for a constant
//! power over the step,
//!
//! ```text
//! T[i] = T_ss + (T[i] - T_ss)·e^{-dt/R·C},   T_ss = T_heatsink + P·R
//! ```
//!
//! whose decay factor is precomputed once per block (the step `dt` — one
//! clock cycle — is fixed). At `dt/τ ≈ 667ps/84µs ≈ 8e-6` the two stay
//! within microkelvins over tens of thousands of steps (see tests), so this
//! is a free accuracy upgrade at coarse steps; Euler
//! stepping remains available as [`BlockModel::step_euler`] for the
//! fidelity ablation.

use crate::silicon::SiliconProperties;
use crate::{Celsius, Watts};

/// Thermal parameters of one functional block.
#[derive(Clone, PartialEq, Debug)]
pub struct BlockParams {
    /// Block name (reporting only).
    pub name: String,
    /// Block area in m² (reporting only; R and C are what the model uses).
    pub area: f64,
    /// Normal thermal resistance to the heatsink node, K/W.
    pub r: f64,
    /// Block thermal capacitance, J/K.
    pub c: f64,
}

impl BlockParams {
    /// Derives parameters for a block of `area` m² from material
    /// properties (Section 4.3 formulas).
    pub fn from_area(name: impl Into<String>, area: f64, si: &SiliconProperties) -> BlockParams {
        BlockParams {
            name: name.into(),
            area,
            r: si.r_normal(area).0,
            c: si.c_block(area).0,
        }
    }

    /// The block's RC time constant in seconds.
    pub fn time_constant(&self) -> f64 {
        self.r * self.c
    }
}

/// The simplified localized thermal model: independent RC blocks over a
/// constant-temperature heatsink.
#[derive(Clone, Debug)]
pub struct BlockModel {
    params: Vec<BlockParams>,
    temps: Vec<f64>,
    heatsink: Celsius,
    dt: f64,
    /// Precomputed `e^{-dt/RC}` per block for the exact step.
    decay: Vec<f64>,
}

impl BlockModel {
    /// Creates a model with every block initialized to the heatsink
    /// temperature and a fixed integration step `dt` (seconds) — one clock
    /// cycle in the paper's usage.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty, `dt` is not positive, or any block has
    /// non-positive R or C.
    pub fn new(params: Vec<BlockParams>, heatsink: Celsius, dt: f64) -> BlockModel {
        assert!(!params.is_empty(), "need at least one block");
        assert!(dt > 0.0, "dt must be positive");
        for p in &params {
            assert!(p.r > 0.0 && p.c > 0.0, "block {} must have positive R and C", p.name);
        }
        let temps = vec![heatsink; params.len()];
        let decay = params.iter().map(|p| (-dt / (p.r * p.c)).exp()).collect();
        BlockModel { params, temps, heatsink, dt, decay }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the model has no blocks (never true for a constructed model).
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The block parameters.
    pub fn params(&self) -> &[BlockParams] {
        &self.params
    }

    /// Current block temperatures, in block order.
    pub fn temperatures(&self) -> &[Celsius] {
        &self.temps
    }

    /// The heatsink temperature.
    pub fn heatsink(&self) -> Celsius {
        self.heatsink
    }

    /// Integration step in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The precomputed per-block decay factors `e^{-dt/RC}`, in block
    /// order. Exposed so batch steppers ([`crate::batch::ThermalBatch`])
    /// can pack the *exact* factors this model would use — recomputing
    /// them from R and C would be bit-identical today, but copying removes
    /// the coupling between the two code paths entirely.
    pub fn decay_factors(&self) -> &[f64] {
        &self.decay
    }

    /// Changes the heatsink temperature (e.g. to model long-term drift
    /// between experiments).
    pub fn set_heatsink(&mut self, heatsink: Celsius) {
        self.heatsink = heatsink;
    }

    /// Changes the integration step (e.g. when frequency scaling changes
    /// the cycle time), preserving temperatures.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn set_dt(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        self.dt = dt;
        self.decay = self.params.iter().map(|p| (-dt / (p.r * p.c)).exp()).collect();
    }

    /// Initializes every block to its steady-state temperature under the
    /// given powers (a warmed-up starting condition).
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the number of blocks.
    pub fn warm_start(&mut self, powers: &[Watts]) {
        assert_eq!(powers.len(), self.params.len(), "one power per block");
        for (temp, (&power, p)) in self.temps.iter_mut().zip(powers.iter().zip(&self.params)) {
            *temp = self.heatsink + power * p.r;
        }
    }

    /// Overrides a block temperature (initial conditions in tests).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn set_temperature(&mut self, block: usize, temp: Celsius) {
        self.temps[block] = temp;
    }

    /// Advances one step with the exact constant-power update.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the number of blocks.
    pub fn step(&mut self, powers: &[Watts]) {
        assert_eq!(powers.len(), self.params.len(), "one power per block");
        for ((temp, &power), (p, &decay)) in self
            .temps
            .iter_mut()
            .zip(powers)
            .zip(self.params.iter().zip(&self.decay))
        {
            let t_ss = self.heatsink + power * p.r;
            *temp = t_ss + (*temp - t_ss) * decay;
        }
    }

    /// Advances one step with the exact constant-power update through a
    /// fixed-arity kernel: the block count is a compile-time constant, so
    /// the loop unrolls with no bounds checks. Bit-identical to
    /// [`step`](BlockModel::step) (pinned by property tests).
    ///
    /// # Panics
    ///
    /// Panics if the model does not have exactly `N` blocks.
    pub fn step_fixed<const N: usize>(&mut self, powers: &[Watts; N]) {
        let BlockModel { params, temps, heatsink, decay, .. } = self;
        let temps: &mut [f64; N] = temps.as_mut_slice().try_into().expect("one power per block");
        let decay: &[f64; N] = decay.as_slice().try_into().expect("one decay per block");
        let params: &[BlockParams] = params;
        assert_eq!(params.len(), N, "one power per block");
        for i in 0..N {
            let t_ss = *heatsink + powers[i] * params[i].r;
            temps[i] = t_ss + (temps[i] - t_ss) * decay[i];
        }
    }

    /// Fused V/f-scale + exact-decay pass: multiplies each block power by
    /// `scale` (writing the effective watts back into `powers`) and
    /// advances the temperatures one exact step, in a single loop over the
    /// blocks. Bit-identical to scaling `powers` first and then calling
    /// [`step`](BlockModel::step): each block's update reads only its own
    /// power and temperature, so per-block fusion does not reorder any
    /// floating-point operation.
    ///
    /// # Panics
    ///
    /// Panics if the model does not have exactly `N` blocks.
    pub fn step_scaled<const N: usize>(&mut self, powers: &mut [Watts; N], scale: f64) {
        let BlockModel { params, temps, heatsink, decay, .. } = self;
        let temps: &mut [f64; N] = temps.as_mut_slice().try_into().expect("one power per block");
        let decay: &[f64; N] = decay.as_slice().try_into().expect("one decay per block");
        assert_eq!(params.len(), N, "one power per block");
        for i in 0..N {
            let p = powers[i] * scale;
            powers[i] = p;
            let t_ss = *heatsink + p * params[i].r;
            temps[i] = t_ss + (temps[i] - t_ss) * decay[i];
        }
    }

    /// Fused V/f-scale + extra-power + exact-decay pass, the leakage
    /// variant of [`step_scaled`](BlockModel::step_scaled): block `i`'s
    /// power becomes `powers[i] * scale + extra(i, T_i)` where `T_i` is
    /// the block's temperature *before* the step (the leakage feedback
    /// convention), each extra watt is also accumulated into `total`, and
    /// the effective per-block watts are written back into `powers`.
    /// Bit-identical to the three-pass reference (scale loop, leakage
    /// loop, [`step`](BlockModel::step)) as long as the caller's reference
    /// accumulates `total` in block order, because per-block fusion
    /// reorders no floating-point operation.
    ///
    /// # Panics
    ///
    /// Panics if the model does not have exactly `N` blocks.
    pub fn step_fused<const N: usize>(
        &mut self,
        powers: &mut [Watts; N],
        scale: f64,
        total: &mut f64,
        mut extra: impl FnMut(usize, Celsius) -> Watts,
    ) {
        let BlockModel { params, temps, heatsink, decay, .. } = self;
        let temps: &mut [f64; N] = temps.as_mut_slice().try_into().expect("one power per block");
        let decay: &[f64; N] = decay.as_slice().try_into().expect("one decay per block");
        assert_eq!(params.len(), N, "one power per block");
        for i in 0..N {
            let mut p = powers[i] * scale;
            let lp = extra(i, temps[i]);
            p += lp;
            *total += lp;
            powers[i] = p;
            let t_ss = *heatsink + p * params[i].r;
            temps[i] = t_ss + (temps[i] - t_ss) * decay[i];
        }
    }

    /// Advances `cycles` steps under constant per-block powers.
    ///
    /// Bit-identical to calling [`step_fixed`](BlockModel::step_fixed)
    /// `cycles` times with the same `powers` (pinned by property tests):
    /// the steady states `T_ss = T_heatsink + P·R` are hoisted out of the
    /// cycle loop, which is safe because `step_fixed` recomputes them from
    /// the same operand bits every cycle, and the per-cycle recurrence
    /// `T ← T_ss + (T − T_ss)·d` is kept in the one-step arithmetic
    /// order. This is the gap-fold kernel behind idle-window skipping:
    /// power is constant across a provably-idle gap, so the thermal state
    /// advances without any pipeline or power-model work.
    ///
    /// # Panics
    ///
    /// Panics if the model does not have exactly `N` blocks.
    pub fn step_gap_fixed<const N: usize>(&mut self, powers: &[Watts; N], cycles: u64) {
        let BlockModel { params, temps, heatsink, decay, .. } = self;
        let temps: &mut [f64; N] = temps.as_mut_slice().try_into().expect("one power per block");
        let decay: &[f64; N] = decay.as_slice().try_into().expect("one decay per block");
        assert_eq!(params.len(), N, "one power per block");
        let mut t_ss = [0.0f64; N];
        for i in 0..N {
            t_ss[i] = *heatsink + powers[i] * params[i].r;
        }
        for _ in 0..cycles {
            for i in 0..N {
                temps[i] = t_ss[i] + (temps[i] - t_ss[i]) * decay[i];
            }
        }
    }

    /// Like [`step_gap_fixed`](BlockModel::step_gap_fixed), but calls
    /// `observe` with the post-step temperatures after every cycle of the
    /// gap — the counted-gap kernel: a caller folding an idle window
    /// inside a measured region still records every cycle's temperatures
    /// into its accumulators, so reports stay byte-identical with the
    /// cycle-by-cycle loop.
    ///
    /// # Panics
    ///
    /// Panics if the model does not have exactly `N` blocks.
    pub fn step_gap_observed<const N: usize>(
        &mut self,
        powers: &[Watts; N],
        cycles: u64,
        mut observe: impl FnMut(&[Celsius; N]),
    ) {
        let BlockModel { params, temps, heatsink, decay, .. } = self;
        let temps: &mut [f64; N] = temps.as_mut_slice().try_into().expect("one power per block");
        let decay: &[f64; N] = decay.as_slice().try_into().expect("one decay per block");
        assert_eq!(params.len(), N, "one power per block");
        let mut t_ss = [0.0f64; N];
        for i in 0..N {
            t_ss[i] = *heatsink + powers[i] * params[i].r;
        }
        for _ in 0..cycles {
            for i in 0..N {
                temps[i] = t_ss[i] + (temps[i] - t_ss[i]) * decay[i];
            }
            observe(temps);
        }
    }

    /// Advances `cycles` steps under constant per-block powers in closed
    /// form: `T ← T_ss + (T − T_ss)·d^k` with the gap decay computed by
    /// `pow` instead of `k` multiplications.
    ///
    /// **Not** bit-identical to the iterated kernels — `pow` rounds
    /// differently than a product chain — but accurate to within a few
    /// ulps of the excess over steady state (pinned by a tolerance
    /// property test), and O(1) in the gap length. Callers that guarantee
    /// byte-identical reports must only use this for cycles outside every
    /// measured window, and only behind an explicit opt-in.
    ///
    /// # Panics
    ///
    /// Panics if the model does not have exactly `N` blocks.
    pub fn step_gap_closed<const N: usize>(&mut self, powers: &[Watts; N], cycles: u64) {
        if cycles == 0 {
            return;
        }
        let BlockModel { params, temps, heatsink, decay, .. } = self;
        let temps: &mut [f64; N] = temps.as_mut_slice().try_into().expect("one power per block");
        let decay: &[f64; N] = decay.as_slice().try_into().expect("one decay per block");
        assert_eq!(params.len(), N, "one power per block");
        for i in 0..N {
            let t_ss = *heatsink + powers[i] * params[i].r;
            let gap_decay = decay[i].powf(cycles as f64);
            temps[i] = t_ss + (temps[i] - t_ss) * gap_decay;
        }
    }

    /// Current block temperatures as a fixed-arity array reference.
    ///
    /// # Panics
    ///
    /// Panics if the model does not have exactly `N` blocks.
    pub fn temperatures_fixed<const N: usize>(&self) -> &[Celsius; N] {
        self.temps.as_slice().try_into().expect("fixed-arity temperature read")
    }

    /// Advances one step with the paper's forward-Euler difference
    /// equation (Eq. 5). Kept for the integration-fidelity ablation.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the number of blocks.
    pub fn step_euler(&mut self, powers: &[Watts]) {
        assert_eq!(powers.len(), self.params.len(), "one power per block");
        for ((temp, &power), p) in self.temps.iter_mut().zip(powers).zip(&self.params) {
            *temp += self.dt / p.c * (power - (*temp - self.heatsink) / p.r);
        }
    }

    /// The index and temperature of the hottest block.
    pub fn hottest(&self) -> (usize, Celsius) {
        let mut best = (0, self.temps[0]);
        for (i, &t) in self.temps.iter().enumerate() {
            if t > best.1 {
                best = (i, t);
            }
        }
        best
    }

    /// Steady-state temperature a block would reach under constant power.
    pub fn steady_state(&self, block: usize, power: Watts) -> Celsius {
        self.heatsink + power * self.params[block].r
    }

    /// Whether any block exceeds `threshold`.
    pub fn any_above(&self, threshold: Celsius) -> bool {
        self.temps.iter().any(|&t| t > threshold)
    }
}

/// Builds the paper's Table 3 block set (LSQ, instruction window, register
/// file, branch predictor, D-cache, integer and FP execution units) with
/// parameters derived from the default effective silicon properties.
pub fn table3_blocks() -> Vec<BlockParams> {
    let si = SiliconProperties::effective();
    crate::silicon::TABLE3_AREAS
        .iter()
        .map(|&(name, area)| BlockParams::from_area(name, area, &si))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0 / 1.5e9; // one 1.5 GHz cycle

    fn two_block_model() -> BlockModel {
        let si = SiliconProperties::effective();
        BlockModel::new(
            vec![
                BlockParams::from_area("a", 5.0e-6, &si),
                BlockParams::from_area("b", 2.5e-6, &si),
            ],
            100.0,
            DT,
        )
    }

    #[test]
    fn starts_at_heatsink_temperature() {
        let m = two_block_model();
        assert!(m.temperatures().iter().all(|&t| t == 100.0));
    }

    #[test]
    fn converges_to_steady_state() {
        let mut m = two_block_model();
        let powers = [6.0, 3.0];
        // Run ~10 time constants at a coarser step for speed.
        let tau = m.params()[0].time_constant();
        let mut coarse = BlockModel::new(m.params().to_vec(), 100.0, tau / 100.0);
        for _ in 0..1000 {
            coarse.step(&powers);
        }
        for (i, &p) in powers.iter().enumerate() {
            let expect = m.steady_state(i, p);
            assert!(
                (coarse.temperatures()[i] - expect).abs() < 1e-3,
                "block {i}: {} vs {expect}",
                coarse.temperatures()[i]
            );
        }
        m.step(&powers); // the fine-step model at least moves the right way
        assert!(m.temperatures()[0] > 100.0);
    }

    #[test]
    fn exact_and_euler_agree_at_cycle_granularity() {
        let mut exact = two_block_model();
        let mut euler = two_block_model();
        let powers = [7.0, 2.0];
        for _ in 0..10_000 {
            exact.step(&powers);
            euler.step_euler(&powers);
        }
        for i in 0..2 {
            let d = (exact.temperatures()[i] - euler.temperatures()[i]).abs();
            assert!(d < 1e-4, "divergence {d} too large");
        }
    }

    #[test]
    fn exact_step_is_exact_against_closed_form() {
        let si = SiliconProperties::effective();
        let p = BlockParams::from_area("x", 5.0e-6, &si);
        let (r, c) = (p.r, p.c);
        let tau = r * c;
        let big_dt = tau / 3.0; // far too coarse for Euler, fine for exact
        let mut m = BlockModel::new(vec![p], 100.0, big_dt);
        let power = 5.0;
        for k in 1..=30 {
            m.step(&[power]);
            let t = k as f64 * big_dt;
            let expect = 100.0 + power * r * (1.0 - (-t / tau).exp());
            assert!(
                (m.temperatures()[0] - expect).abs() < 1e-9,
                "k={k}: {} vs {expect}",
                m.temperatures()[0]
            );
        }
    }

    #[test]
    fn cooling_decays_toward_heatsink() {
        let mut m = two_block_model();
        m.set_temperature(0, 112.0);
        let tau = m.params()[0].time_constant();
        let mut coarse = BlockModel::new(m.params().to_vec(), 100.0, tau);
        coarse.set_temperature(0, 112.0);
        coarse.step(&[0.0, 0.0]);
        // After one tau, the excess should have decayed by e.
        let excess = coarse.temperatures()[0] - 100.0;
        assert!((excess - 12.0 / std::f64::consts::E).abs() < 1e-9);
    }

    #[test]
    fn hottest_block_reported() {
        let mut m = two_block_model();
        m.set_temperature(1, 108.0);
        assert_eq!(m.hottest(), (1, 108.0));
    }

    #[test]
    fn localized_heating_is_much_faster_than_chip_wide() {
        // Core claim of Section 4: block taus are orders of magnitude
        // below the chip+heatsink tau.
        let blocks = table3_blocks();
        let chip_tau = 0.34 * 180.0; // chip-wide R=0.34 K/W, C≈180 J/K → ~1 min
        for b in &blocks {
            assert!(
                chip_tau / b.time_constant() > 1e4,
                "{}: block tau {} not << chip tau {chip_tau}",
                b.name,
                b.time_constant()
            );
        }
    }

    #[test]
    fn table3_has_seven_blocks() {
        let blocks = table3_blocks();
        assert_eq!(blocks.len(), 7);
        assert!(blocks.iter().any(|b| b.name == "bpred"));
    }

    #[test]
    #[should_panic(expected = "one power per block")]
    fn power_vector_length_checked() {
        let mut m = two_block_model();
        m.step(&[1.0]);
    }

    #[test]
    fn set_dt_recomputes_the_precomputed_decay() {
        // Regression guard for the V/f-scaling path: `step` uses a decay
        // factor precomputed from dt, so a `set_dt` that forgot to refresh
        // it would silently keep integrating at the old cycle time. A
        // model re-timed via `set_dt` must step bit-identically to one
        // constructed at the new dt.
        let powers = [6.0, 3.0];
        let slow_dt = 2.5 * DT; // e.g. frequency scaled down to 0.4x
        let mut retimed = two_block_model();
        for _ in 0..100 {
            retimed.step(&powers);
        }
        let mut fresh = BlockModel::new(retimed.params().to_vec(), 100.0, slow_dt);
        for (i, &t) in retimed.temperatures().to_vec().iter().enumerate() {
            fresh.set_temperature(i, t);
        }
        retimed.set_dt(slow_dt);
        assert_eq!(retimed.dt(), slow_dt);
        for _ in 0..100 {
            retimed.step(&powers);
            fresh.step(&powers);
        }
        assert_eq!(retimed.temperatures(), fresh.temperatures());
        // And the re-timed trajectory actually differs from never
        // re-timing (i.e. the test would catch a stale decay factor).
        let mut stale = two_block_model();
        for _ in 0..200 {
            stale.step(&powers);
        }
        assert!(
            (stale.temperatures()[0] - retimed.temperatures()[0]).abs() > 1e-9,
            "coarser dt must change the trajectory"
        );
    }

    /// A randomized 7-block model with random R/C/temperature state, for
    /// the kernel-equivalence property tests.
    fn random_model(rng: &mut tdtm_prng::Rng) -> BlockModel {
        let params: Vec<BlockParams> = (0..7)
            .map(|i| BlockParams {
                name: format!("b{i}"),
                area: 1e-6,
                r: 0.1 + rng.next_f64() * 30.0,
                c: 1e-8 + rng.next_f64() * 1e-4,
            })
            .collect();
        let heatsink = 20.0 + rng.next_f64() * 90.0;
        // Spread dt so decay ranges from ~1 (cycle steps) to ~0 (coarse).
        let dt = 10f64.powf(rng.next_f64() * 8.0 - 10.0);
        let mut m = BlockModel::new(params, heatsink, dt);
        for i in 0..7 {
            m.set_temperature(i, heatsink - 5.0 + rng.next_f64() * 60.0);
        }
        m
    }

    fn random_powers(rng: &mut tdtm_prng::Rng) -> [f64; 7] {
        std::array::from_fn(|_| rng.next_f64() * 40.0)
    }

    #[test]
    fn property_step_fixed_matches_step_bitwise() {
        let mut rng = tdtm_prng::Rng::new(0x51EF_F00D);
        for _ in 0..200 {
            let mut a = random_model(&mut rng);
            let mut b = a.clone();
            for _ in 0..20 {
                let powers = random_powers(&mut rng);
                a.step(&powers);
                b.step_fixed(&powers);
                assert_eq!(a.temperatures(), b.temperatures());
            }
        }
    }

    #[test]
    fn property_step_scaled_matches_scale_then_step_bitwise() {
        let mut rng = tdtm_prng::Rng::new(0xCAFE_0002);
        for _ in 0..200 {
            let mut a = random_model(&mut rng);
            let mut b = a.clone();
            for _ in 0..20 {
                let powers = random_powers(&mut rng);
                let scale = 0.2 + rng.next_f64() * 1.3;
                // Reference: separate scale pass, then step.
                let mut scaled = powers;
                for p in &mut scaled {
                    *p *= scale;
                }
                a.step(&scaled);
                // Fused pass; also pins the written-back effective watts.
                let mut fused = powers;
                b.step_scaled(&mut fused, scale);
                assert_eq!(a.temperatures(), b.temperatures());
                assert_eq!(scaled, fused);
            }
        }
    }

    #[test]
    fn property_step_fused_matches_three_pass_reference_bitwise() {
        let mut rng = tdtm_prng::Rng::new(0xBEEF_0003);
        for _ in 0..200 {
            let mut a = random_model(&mut rng);
            let mut b = a.clone();
            // A synthetic temperature-dependent "leakage": any per-block
            // function of the pre-step temperature must fuse exactly.
            let coeff: [f64; 7] = std::array::from_fn(|_| rng.next_f64() * 0.05);
            for _ in 0..20 {
                let powers = random_powers(&mut rng);
                let scale = 0.2 + rng.next_f64() * 1.3;
                let base_total = rng.next_f64() * 100.0;

                // Three-pass reference: scale loop, extra loop (reading
                // pre-step temperatures, accumulating total in block
                // order), then step.
                let mut ref_powers = powers;
                for p in &mut ref_powers {
                    *p *= scale;
                }
                let mut ref_total = base_total;
                for i in 0..7 {
                    let lp = coeff[i] * (a.temperatures()[i] - 15.0);
                    ref_powers[i] += lp;
                    ref_total += lp;
                }
                a.step(&ref_powers);

                let mut fused_powers = powers;
                let mut fused_total = base_total;
                b.step_fused(&mut fused_powers, scale, &mut fused_total, |i, t| {
                    coeff[i] * (t - 15.0)
                });
                assert_eq!(a.temperatures(), b.temperatures());
                assert_eq!(ref_powers, fused_powers);
                assert_eq!(ref_total.to_bits(), fused_total.to_bits());
            }
        }
    }

    #[test]
    fn property_step_gap_fixed_matches_iterated_step_fixed_bitwise() {
        let mut rng = tdtm_prng::Rng::new(0x6A9_0004);
        for _ in 0..200 {
            let mut a = random_model(&mut rng);
            let mut b = a.clone();
            let powers = random_powers(&mut rng);
            let cycles = (rng.next_f64() * 60.0) as u64; // includes 0
            for _ in 0..cycles {
                a.step_fixed(&powers);
            }
            b.step_gap_fixed(&powers, cycles);
            assert_eq!(a.temperatures(), b.temperatures(), "k={cycles}");
        }
    }

    #[test]
    fn property_step_gap_observed_matches_iterated_snapshots_bitwise() {
        let mut rng = tdtm_prng::Rng::new(0x6A9_0005);
        for _ in 0..100 {
            let mut a = random_model(&mut rng);
            let mut b = a.clone();
            let powers = random_powers(&mut rng);
            let cycles = 1 + (rng.next_f64() * 40.0) as u64;
            let mut reference = Vec::new();
            for _ in 0..cycles {
                a.step_fixed(&powers);
                reference.push(*a.temperatures_fixed::<7>());
            }
            let mut observed = Vec::new();
            b.step_gap_observed(&powers, cycles, |temps: &[f64; 7]| observed.push(*temps));
            assert_eq!(reference, observed);
            assert_eq!(a.temperatures(), b.temperatures());
        }
    }

    #[test]
    fn property_step_gap_closed_tracks_iterated_within_tolerance() {
        // The pow-based closed form is *approximate* (different rounding
        // than the product chain), so it is pinned to a tolerance scaled
        // by the excess over steady state, not to bits.
        let mut rng = tdtm_prng::Rng::new(0x6A9_0006);
        for _ in 0..100 {
            let mut iterated = random_model(&mut rng);
            let mut closed = iterated.clone();
            let powers = random_powers(&mut rng);
            let cycles = 1 + (rng.next_f64() * 2000.0) as u64;
            for _ in 0..cycles {
                iterated.step_fixed(&powers);
            }
            closed.step_gap_closed(&powers, cycles);
            for (i, &p) in powers.iter().enumerate() {
                let t_ss = iterated.steady_state(i, p);
                let excess = (iterated.temperatures()[i] - t_ss).abs().max(1.0);
                let d = (iterated.temperatures()[i] - closed.temperatures()[i]).abs();
                assert!(
                    d <= 1e-9 * excess,
                    "block {i}, k={cycles}: closed {} vs iterated {} (excess {excess})",
                    closed.temperatures()[i],
                    iterated.temperatures()[i]
                );
            }
        }
    }

    #[test]
    fn step_gap_closed_with_zero_cycles_is_a_no_op() {
        let mut m = two_block_model();
        m.set_temperature(0, 104.5);
        let before = m.temperatures().to_vec();
        m.step_gap_closed(&[5.0, 2.0], 0);
        assert_eq!(m.temperatures(), &before[..]);
    }

    #[test]
    fn temperatures_fixed_views_the_same_state() {
        let mut m = two_block_model();
        m.step(&[5.0, 2.0]);
        let fixed: &[f64; 2] = m.temperatures_fixed();
        assert_eq!(&fixed[..], m.temperatures());
    }

    #[test]
    #[should_panic(expected = "one power per block")]
    fn step_fixed_checks_arity() {
        let mut m = two_block_model();
        m.step_fixed(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn set_heatsink_needs_no_decay_refresh() {
        // The decay factor e^{-dt/RC} does not involve the heatsink
        // temperature, so `set_heatsink` only shifts the steady state: a
        // model whose heatsink moved mid-run must step bit-identically to
        // one constructed at the new heatsink from the same temperatures.
        let powers = [4.0, 7.0];
        let mut moved = two_block_model();
        for _ in 0..50 {
            moved.step(&powers);
        }
        moved.set_heatsink(108.0);
        assert_eq!(moved.heatsink(), 108.0);
        let mut fresh = BlockModel::new(moved.params().to_vec(), 108.0, DT);
        for (i, &t) in moved.temperatures().to_vec().iter().enumerate() {
            fresh.set_temperature(i, t);
        }
        for _ in 0..50 {
            moved.step(&powers);
            fresh.step(&powers);
        }
        assert_eq!(moved.temperatures(), fresh.temperatures());
        assert_eq!(moved.steady_state(0, 4.0), 108.0 + 4.0 * moved.params()[0].r);
    }
}
