//! Dynamic compact thermal-model extraction (model-order reduction).
//!
//! Detailed RC networks are accurate but expensive: every forward-Euler
//! step touches every node and edge, and the stable step size is set by
//! the *fastest* time constant even when only the slow behavior matters.
//! Following the compact-model literature (Habra et al., arXiv:0801.1044;
//! Gerstenmaier et al., arXiv:0801.0817), [`CompactModel::extract`]
//! reduces any [`RcNetwork`] to a small state-space model with a bounded
//! worst-case error against the full solver.
//!
//! ## Method: modal truncation with static residualization
//!
//! For the free (non-fixed) nodes the network dynamics are
//!
//! ```text
//! C dT/dt = -G T + P + k
//! ```
//!
//! with `C` the diagonal capacitance matrix, `G` the conductance
//! Laplacian (edges to fixed nodes and ambient fold into the diagonal),
//! `P` the injected powers and `k` the constant inflow from fixed
//! references. Substituting `y = C^{1/2} T` symmetrizes the system:
//! `dy/dt = -S y + C^{-1/2}(P + k)` with `S = C^{-1/2} G C^{-1/2}`
//! symmetric positive semi-definite. A Jacobi eigendecomposition
//! `S = V Λ Vᵀ` decouples it into scalar modes `z = Vᵀ y`:
//!
//! ```text
//! dz_m/dt = -λ_m z_m + w_m,   w = Ψ (P + k),   T = Φ z
//! ```
//!
//! with `Φ = C^{-1/2} V` and `Ψ = Vᵀ C^{-1/2}`. Fast modes (large
//! `λ_m`, time constants far below the horizon of interest) are
//! *statically residualized*: replaced by their quasi-static value
//! `z_m = w_m / λ_m`, which keeps their DC contribution exactly — the
//! reduced model's steady state matches the full network's — and only
//! forgets their brief transients. Zero modes (floating subgraphs with
//! no path to any temperature reference: pure integrators) are always
//! kept and advanced exactly as `z += w·dt`.
//!
//! ## Error bound
//!
//! Dropping mode `m` loses at most `|Φ_im| · |z_m(t) − w_m(t)/λ_m|` at
//! node `i`. Under piecewise-constant inputs the modal deviation is
//! largest immediately after a power step `Δu` and decays as
//! `e^{-λ_m t}`, so it never exceeds `‖Ψ_m‖₁ · max_j |Δu_j| / λ_m` plus
//! the mode's deviation at extraction time. [`CompactModel::extract`]
//! drops the fastest modes greedily while the accumulated per-node bound
//!
//! ```text
//! err_i = Σ_dropped |Φ_im| · (‖Ψ_m‖₁ / λ_m + |z_m(0) − w_m(0)/λ_m|)
//! ```
//!
//! stays within `tol` at every node. The bound is normalized to power
//! steps of at most 1 W per node; for inputs bounded by `p` watts, scale
//! `tol` by `1/p`. Within that envelope the reduced trajectory stays
//! within `tol` °C of the *exact* solution of the network ODE under
//! zero-order-hold inputs (the kept modes integrate exactly, so there is
//! no additional discretization error — pinned by property test).

use crate::network::{NodeId, RcNetwork};
use crate::{Celsius, Watts};
use std::fmt::Write as _;

/// Relative threshold below which an eigenvalue counts as a zero mode
/// (floating subgraph) rather than a decaying one.
const ZERO_MODE_REL: f64 = 1e-9;

/// A reduced state-space thermal model extracted from an [`RcNetwork`].
///
/// Outputs are the temperatures of the network's free (non-fixed) nodes,
/// in [`node_ids`](CompactModel::node_ids) order; inputs are the powers
/// injected at those same nodes. The model integrates *exactly* under
/// zero-order-hold inputs: one [`step`](CompactModel::step) per constant-
/// power segment suffices, regardless of the segment length.
#[derive(Clone, PartialEq, Debug)]
pub struct CompactModel {
    /// Free-node ids, defining input/output order.
    ids: Vec<NodeId>,
    /// Decay rates (1/s) of the kept dynamic modes, ascending.
    lambda: Vec<f64>,
    /// Modal state, one entry per kept mode.
    z: Vec<f64>,
    /// Input map `Ψ` (kept modes × nodes, row-major): `w = Ψ (P + k)`.
    psi: Vec<f64>,
    /// Output map `Φ` (nodes × kept modes, row-major): `T = Φ z + …`.
    phi: Vec<f64>,
    /// Static residual of the dropped modes (nodes × nodes, row-major):
    /// `T += Dstat (P + k)`.
    dstat: Vec<f64>,
    /// Constant inflow from fixed references and ambient, per node (W).
    kconst: Vec<f64>,
    /// Current output temperatures (°C), updated by `step`.
    temps: Vec<f64>,
    /// Accumulated worst-case truncation error bound (°C per watt of
    /// input step), maximized over nodes.
    err_bound: f64,
    /// The tolerance the extraction was asked for.
    tol: f64,
    /// Number of modes in the full (unreduced) system.
    full_order: usize,
}

impl CompactModel {
    /// Extracts a compact model from `net` at its current state, keeping
    /// enough modes that the worst-case truncation error stays within
    /// `tol` °C (per watt of input step; see the module docs for the
    /// exact envelope).
    ///
    /// Fixed nodes become constant boundary conditions; their
    /// temperatures are not part of the reduced state. A network with
    /// only fixed nodes reduces to an empty (order-zero) model.
    ///
    /// # Errors
    ///
    /// Returns an error if `tol` is not positive or the eigensolver
    /// fails to converge (does not happen for physical networks).
    pub fn extract(net: &RcNetwork, tol: f64) -> Result<CompactModel, String> {
        if !tol.is_finite() || tol <= 0.0 {
            return Err(format!("tolerance must be positive, got {tol}"));
        }
        let ids: Vec<NodeId> = net.node_ids().filter(|&id| !net.is_fixed(id)).collect();
        let n = ids.len();
        // Dense index of each free node, keyed by raw node id.
        let mut dense = vec![usize::MAX; net.len()];
        for (d, id) in ids.iter().enumerate() {
            dense[id.0] = d;
        }

        let cap: Vec<f64> = ids.iter().map(|&id| net.capacitance(id)).collect();
        let sqrt_c: Vec<f64> = cap.iter().map(|c| c.sqrt()).collect();

        // Conductance Laplacian over free nodes + constant inflow from
        // fixed references.
        let mut g = vec![0.0f64; n * n];
        let mut kconst = vec![0.0f64; n];
        for (a, b, cond) in net.edge_list() {
            let (da, tb) = (dense[a.0], b);
            match tb {
                Some(b) if a.0 == b.0 => {} // self-loop carries no heat
                Some(b) => {
                    let db = dense[b.0];
                    match (da != usize::MAX, db != usize::MAX) {
                        (true, true) => {
                            g[da * n + da] += cond;
                            g[db * n + db] += cond;
                            g[da * n + db] -= cond;
                            g[db * n + da] -= cond;
                        }
                        (true, false) => {
                            g[da * n + da] += cond;
                            kconst[da] += cond * net.temperature(b);
                        }
                        (false, true) => {
                            g[db * n + db] += cond;
                            kconst[db] += cond * net.temperature(a);
                        }
                        (false, false) => {} // between fixed nodes
                    }
                }
                None => {
                    if da != usize::MAX {
                        g[da * n + da] += cond;
                        kconst[da] += cond * net.ambient();
                    }
                }
            }
        }

        // Symmetrized system matrix S = C^{-1/2} G C^{-1/2}.
        let mut s = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                s[i * n + j] = g[i * n + j] / (sqrt_c[i] * sqrt_c[j]);
            }
        }
        let (eig, v) = jacobi_eigh(s, n)?;

        // Modes sorted by eigenvalue ascending (slowest first).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| eig[a].total_cmp(&eig[b]));
        let lambda_max = order.last().map(|&m| eig[m].max(0.0)).unwrap_or(0.0);
        let zero_cut = lambda_max * ZERO_MODE_REL;

        // Full modal maps: phi[i][m] = V_im / sqrt(C_i),
        // psi[m][j] = V_jm * ... of the *inverse* transform. Note
        // z = Vᵀ C^{1/2} T, so the state init uses sqrt_c, while the
        // forcing w = Vᵀ C^{-1/2} (P + k) uses 1/sqrt_c.
        let temps0: Vec<f64> = ids.iter().map(|&id| net.temperature(id)).collect();
        let powers0: Vec<f64> = ids.iter().map(|&id| net.power(id)).collect();

        // Greedy truncation, fastest modes first: accumulate each
        // candidate's per-node bound and stop before any node exceeds
        // tol. Zero modes are never dropped (no quasi-static value).
        let mut node_bound = vec![0.0f64; n];
        let mut dropped = vec![false; n];
        let mut err_bound = 0.0f64;
        for &m in order.iter().rev() {
            let lam = eig[m];
            if lam <= zero_cut {
                break; // ascending order: everything further is slower
            }
            // ‖Ψ_m‖₁ and the mode's current quasi-static deviation.
            let mut psi_l1 = 0.0;
            let mut w0 = 0.0;
            let mut z0 = 0.0;
            for j in 0..n {
                let vjm = v[j * n + m];
                psi_l1 += (vjm / sqrt_c[j]).abs();
                w0 += vjm / sqrt_c[j] * (powers0[j] + kconst[j]);
                z0 += vjm * sqrt_c[j] * temps0[j];
            }
            let dev0 = (z0 - w0 / lam).abs();
            let mut candidate = node_bound.clone();
            let mut worst = 0.0f64;
            for (i, nb) in candidate.iter_mut().enumerate() {
                let phi_im = (v[i * n + m] / sqrt_c[i]).abs();
                *nb += phi_im * (psi_l1 / lam + dev0);
                worst = worst.max(*nb);
            }
            if worst > tol {
                break; // keep this mode and every slower one
            }
            node_bound = candidate;
            err_bound = worst;
            dropped[m] = true;
        }

        let kept: Vec<usize> = order.iter().copied().filter(|&m| !dropped[m]).collect();
        let k = kept.len();
        let mut lambda = Vec::with_capacity(k);
        let mut psi = vec![0.0f64; k * n];
        let mut phi = vec![0.0f64; n * k];
        let mut z = vec![0.0f64; k];
        for (row, &m) in kept.iter().enumerate() {
            lambda.push(eig[m].max(0.0));
            for j in 0..n {
                let vjm = v[j * n + m];
                psi[row * n + j] = vjm / sqrt_c[j];
                phi[j * k + row] = vjm / sqrt_c[j];
                z[row] += vjm * sqrt_c[j] * temps0[j];
            }
        }
        // Static residual of the dropped modes: Σ Φ_m Ψ_m / λ_m.
        let mut dstat = vec![0.0f64; n * n];
        for (m, _) in dropped.iter().enumerate().filter(|&(_, &d)| d) {
            let lam = eig[m];
            for i in 0..n {
                let phi_im = v[i * n + m] / sqrt_c[i];
                for j in 0..n {
                    dstat[i * n + j] += phi_im * (v[j * n + m] / sqrt_c[j]) / lam;
                }
            }
        }

        let mut model = CompactModel {
            ids,
            lambda,
            z,
            psi,
            phi,
            dstat,
            kconst,
            temps: temps0,
            err_bound,
            tol,
            full_order: n,
        };
        // Cache outputs consistent with the captured state.
        model.refresh_outputs(&powers0);
        Ok(model)
    }

    /// Advances the model by `dt` seconds under constant `powers` (one
    /// entry per free node, in [`node_ids`](CompactModel::node_ids)
    /// order). Exact for the given zero-order-hold segment — `dt` may be
    /// arbitrarily large.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the node count or `dt` is
    /// negative.
    pub fn step(&mut self, powers: &[Watts], dt: f64) {
        assert_eq!(powers.len(), self.ids.len(), "one power per free node");
        assert!(dt >= 0.0, "dt must be non-negative");
        let n = self.ids.len();
        for (m, z) in self.z.iter_mut().enumerate() {
            let w = dot_forcing(&self.psi[m * n..(m + 1) * n], powers, &self.kconst);
            let lam = self.lambda[m];
            if lam > 0.0 {
                let zinf = w / lam;
                *z = zinf + (*z - zinf) * (-lam * dt).exp();
            } else {
                *z += w * dt; // floating subgraph: pure integrator
            }
        }
        self.refresh_outputs(powers);
    }

    fn refresh_outputs(&mut self, powers: &[Watts]) {
        let n = self.ids.len();
        let k = self.lambda.len();
        for i in 0..n {
            let mut t = 0.0;
            for (m, z) in self.z.iter().enumerate() {
                t += self.phi[i * k + m] * z;
            }
            t += dot_forcing(&self.dstat[i * n..(i + 1) * n], powers, &self.kconst);
            self.temps[i] = t;
        }
    }

    /// Current temperatures (°C), one per free node, in
    /// [`node_ids`](CompactModel::node_ids) order.
    pub fn temperatures(&self) -> &[Celsius] {
        &self.temps
    }

    /// Temperature of a specific node, or `None` if `id` is not one of
    /// the model's free nodes.
    pub fn temperature(&self, id: NodeId) -> Option<Celsius> {
        self.ids.iter().position(|&i| i == id).map(|p| self.temps[p])
    }

    /// The free-node ids defining input/output order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of kept dynamic modes (the reduced state dimension).
    pub fn order(&self) -> usize {
        self.lambda.len()
    }

    /// State dimension of the original (unreduced) free-node system.
    pub fn full_order(&self) -> usize {
        self.full_order
    }

    /// Worst-case truncation error bound (°C per watt of input step;
    /// see the module docs). Always ≤ the requested tolerance.
    pub fn error_bound(&self) -> f64 {
        self.err_bound
    }

    /// The tolerance [`extract`](CompactModel::extract) was asked for.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Steady-state temperatures under constant `powers`, or `None` if
    /// the model contains a zero mode (floating subgraph: no unique
    /// steady state), mirroring [`RcNetwork::steady_state`]'s `None` on
    /// reference-free nodes.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the node count.
    pub fn steady_state(&self, powers: &[Watts]) -> Option<Vec<Celsius>> {
        assert_eq!(powers.len(), self.ids.len(), "one power per free node");
        if self.lambda.iter().any(|&l| l <= 0.0) {
            return None;
        }
        let n = self.ids.len();
        let k = self.lambda.len();
        let mut out = vec![0.0f64; n];
        for (m, &lam) in self.lambda.iter().enumerate() {
            let w = dot_forcing(&self.psi[m * n..(m + 1) * n], powers, &self.kconst);
            let zinf = w / lam;
            for (i, o) in out.iter_mut().enumerate() {
                *o += self.phi[i * k + m] * zinf;
            }
        }
        for (i, o) in out.iter_mut().enumerate() {
            *o += dot_forcing(&self.dstat[i * n..(i + 1) * n], powers, &self.kconst);
        }
        Some(out)
    }

    /// Serializes the model as one JSON object (scalars and flat number
    /// arrays only). Round-trips exactly through
    /// [`from_json`](CompactModel::from_json): floats are written in
    /// shortest-roundtrip form.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(s, "\"n\":{},\"full_order\":{}", self.ids.len(), self.full_order);
        let _ = write!(s, ",\"tol\":{},\"err_bound\":{}", self.tol, self.err_bound);
        let ids: Vec<f64> = self.ids.iter().map(|id| id.0 as f64).collect();
        for (name, arr) in [
            ("ids", &ids),
            ("lambda", &self.lambda),
            ("z", &self.z),
            ("psi", &self.psi),
            ("phi", &self.phi),
            ("dstat", &self.dstat),
            ("kconst", &self.kconst),
            ("temps", &self.temps),
        ] {
            let _ = write!(s, ",\"{name}\":[");
            for (i, v) in arr.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push(']');
        }
        s.push('}');
        s
    }

    /// Parses a model serialized by [`to_json`](CompactModel::to_json).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input or inconsistent dimensions.
    pub fn from_json(text: &str) -> Result<CompactModel, String> {
        let mut n = None;
        let mut full_order = None;
        let mut tol = None;
        let mut err_bound = None;
        let mut arrays: [(&str, Option<Vec<f64>>); 8] = [
            ("ids", None),
            ("lambda", None),
            ("z", None),
            ("psi", None),
            ("phi", None),
            ("dstat", None),
            ("kconst", None),
            ("temps", None),
        ];
        for (key, value) in json_fields(text)? {
            match key.as_str() {
                "n" => n = Some(parse_scalar(&value)? as usize),
                "full_order" => full_order = Some(parse_scalar(&value)? as usize),
                "tol" => tol = Some(parse_scalar(&value)?),
                "err_bound" => err_bound = Some(parse_scalar(&value)?),
                other => {
                    if let Some(slot) = arrays.iter_mut().find(|(name, _)| *name == other) {
                        slot.1 = Some(parse_array(&value)?);
                    }
                    // Unknown keys are ignored (forward compatibility).
                }
            }
        }
        let n = n.ok_or("missing field: n")?;
        let take = |arrays: &mut [(&str, Option<Vec<f64>>)], name: &str| {
            arrays
                .iter_mut()
                .find(|(a, _)| *a == name)
                .and_then(|(_, v)| v.take())
                .ok_or_else(|| format!("missing field: {name}"))
        };
        let ids_f = take(&mut arrays, "ids")?;
        let lambda = take(&mut arrays, "lambda")?;
        let z = take(&mut arrays, "z")?;
        let psi = take(&mut arrays, "psi")?;
        let phi = take(&mut arrays, "phi")?;
        let dstat = take(&mut arrays, "dstat")?;
        let kconst = take(&mut arrays, "kconst")?;
        let temps = take(&mut arrays, "temps")?;
        let k = lambda.len();
        if ids_f.len() != n
            || z.len() != k
            || psi.len() != k * n
            || phi.len() != n * k
            || dstat.len() != n * n
            || kconst.len() != n
            || temps.len() != n
        {
            return Err("inconsistent dimensions".to_string());
        }
        Ok(CompactModel {
            ids: ids_f.iter().map(|&v| NodeId(v as usize)).collect(),
            lambda,
            z,
            psi,
            phi,
            dstat,
            kconst,
            temps,
            err_bound: err_bound.ok_or("missing field: err_bound")?,
            tol: tol.ok_or("missing field: tol")?,
            full_order: full_order.ok_or("missing field: full_order")?,
        })
    }
}

/// Row-times-forcing dot product: `Σ_j row_j · (powers_j + kconst_j)`.
fn dot_forcing(row: &[f64], powers: &[f64], kconst: &[f64]) -> f64 {
    row.iter()
        .zip(powers.iter().zip(kconst))
        .map(|(&r, (&p, &k))| r * (p + k))
        .sum()
}

/// Splits a flat JSON object into `(key, raw value)` pairs. The values
/// this format uses are numbers and arrays of numbers only.
fn json_fields(text: &str) -> Result<Vec<(String, String)>, String> {
    let t = text.trim();
    let inner = t
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or("expected a JSON object")?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let r = rest.strip_prefix('"').ok_or("expected a key")?;
        let end = r.find('"').ok_or("unterminated key")?;
        let key = r[..end].to_string();
        let r = r[end + 1..].trim_start().strip_prefix(':').ok_or("expected ':'")?;
        let r = r.trim_start();
        let (value, after) = if let Some(arr) = r.strip_prefix('[') {
            let close = arr.find(']').ok_or("unterminated array")?;
            (format!("[{}]", &arr[..close]), &arr[close + 1..])
        } else {
            let end = r.find(',').unwrap_or(r.len());
            (r[..end].trim().to_string(), &r[end.min(r.len())..])
        };
        fields.push((key, value));
        rest = after.trim_start().strip_prefix(',').unwrap_or(after).trim();
    }
    Ok(fields)
}

fn parse_scalar(v: &str) -> Result<f64, String> {
    v.trim().parse::<f64>().map_err(|e| format!("bad number {v:?}: {e}"))
}

fn parse_array(v: &str) -> Result<Vec<f64>, String> {
    let inner = v
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or("expected an array")?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(parse_scalar).collect()
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix (row-major
/// `n×n`). Returns `(eigenvalues, eigenvectors)` with eigenvector `m`
/// stored as column `m` of the returned matrix. Deterministic; converges
/// quadratically for the symmetric PSD matrices extraction produces.
fn jacobi_eigh(mut a: Vec<f64>, n: usize) -> Result<(Vec<f64>, Vec<f64>), String> {
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    if n < 2 {
        return Ok((a.iter().step_by(n.max(1) + 1).copied().collect(), v));
    }
    let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let eps = (norm * 1e-14).max(f64::MIN_POSITIVE);
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() <= eps {
            let eig = (0..n).map(|i| a[i * n + i]).collect();
            return Ok((eig, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq == 0.0 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err("jacobi eigensolver failed to converge".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section 4.1 worked example: 25 W through 2 K/W total above a
    /// 27 °C ambient settles at 77 °C. The compact model must reproduce
    /// both the steady state and the (two-mode) transient exactly.
    #[test]
    fn worked_example_settles_to_77c() {
        let mut net = RcNetwork::new(27.0);
        let die = net.add_node(0.5, 27.0);
        let sink = net.add_node(60.0, 27.0);
        net.connect(die, sink, 1.0);
        net.connect_to_ambient(sink, 1.0);
        net.set_power(die, 25.0);

        let mut model = CompactModel::extract(&net, 1e-9).unwrap();
        assert_eq!(model.full_order(), 2);
        let powers = [25.0, 0.0];
        let ss = model.steady_state(&powers).expect("grounded network");
        let die_pos = model.node_ids().iter().position(|&id| id == die).unwrap();
        assert!((ss[die_pos] - 77.0).abs() < 1e-9, "steady state {}", ss[die_pos]);
        // One exact step across five hours of settling.
        model.step(&powers, 18_000.0);
        assert!((model.temperatures()[die_pos] - 77.0).abs() < 1e-6);
        assert_eq!(model.temperature(die), Some(model.temperatures()[die_pos]));
    }

    /// Builds a random grounded RC network: a spanning tree over free
    /// nodes, extra cross edges, and one or more ambient/fixed-node
    /// attachments (node 0 is always referenced, so the network has a
    /// unique steady state).
    fn random_network(rng: &mut tdtm_prng::Rng) -> (RcNetwork, Vec<NodeId>) {
        let n = 2 + rng.index(7); // 2..=8 free nodes
        let mut net = RcNetwork::new(20.0 + rng.next_f64() * 20.0);
        let ids: Vec<NodeId> = (0..n)
            .map(|_| {
                net.add_node(rng.range_f64(1e-5, 1e-2), 20.0 + rng.next_f64() * 60.0)
            })
            .collect();
        for i in 1..n {
            let parent = ids[rng.index(i)];
            net.connect(ids[i], parent, rng.range_f64(0.1, 10.0));
        }
        for _ in 0..rng.index(n) {
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b {
                net.connect(ids[a], ids[b], rng.range_f64(0.1, 10.0));
            }
        }
        net.connect_to_ambient(ids[0], rng.range_f64(0.1, 10.0));
        if rng.index(2) == 0 {
            let fixed = net.add_fixed_node(30.0 + rng.next_f64() * 70.0);
            net.connect(ids[rng.index(n)], fixed, rng.range_f64(0.1, 10.0));
        }
        (net, ids)
    }

    fn random_powers(rng: &mut tdtm_prng::Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.next_f64()).collect() // within the 1 W envelope
    }

    /// Tier (a) of the ISSUE's property test: an effectively untruncated
    /// extraction must track the full forward-Euler solver across random
    /// networks and step/pulse/ramp inputs. The compact model integrates
    /// exactly, so the gap is the Euler discretization error — the slack
    /// scales with the step size we give the reference.
    #[test]
    fn property_exact_extraction_tracks_the_full_solver() {
        tdtm_prng::cases(12, 0x2ED0_C7E5, |rng| {
            let (mut net, ids) = random_network(rng);
            let n = ids.len();
            let mut model = CompactModel::extract(&net, 1e-9).unwrap();
            assert_eq!(model.node_ids(), &ids[..], "free nodes, construction order");

            let dt = net.max_stable_dt() / 16.0;
            let steps_per_seg = 400;
            let seg = dt * steps_per_seg as f64;
            // Step, then pulse-down, then a 4-piece ramp up.
            let hi = random_powers(rng, n);
            let lo: Vec<f64> = hi.iter().map(|p| p * 0.1).collect();
            let mut segments: Vec<Vec<f64>> = vec![hi.clone(), lo.clone()];
            for k in 1..=4 {
                let f = k as f64 / 4.0;
                segments.push(lo.iter().zip(&hi).map(|(l, h)| l + (h - l) * f).collect());
            }
            for powers in &segments {
                for (&id, &p) in ids.iter().zip(powers) {
                    net.set_power(id, p);
                }
                net.run(seg, dt);
                model.step(powers, seg);
                for (i, &id) in ids.iter().enumerate() {
                    let full = net.temperature(id);
                    let compact = model.temperatures()[i];
                    assert!(
                        (full - compact).abs() < 0.2,
                        "node {i}: euler {full} vs compact {compact}"
                    );
                }
            }
        });
    }

    /// Tier (b): the truncation error bound itself. A truncated model
    /// must stay within its reported `error_bound()` of the untruncated
    /// one — exactly, no integration slack, since both integrate their
    /// kept modes in closed form — for a power step within the 1 W
    /// envelope the bound is normalized to.
    #[test]
    fn property_truncated_model_respects_its_error_bound() {
        tdtm_prng::cases(24, 0x0B0_B0B0, |rng| {
            let (net, ids) = random_network(rng);
            let n = ids.len();
            let tol = rng.range_f64(0.05, 2.0);
            let full = CompactModel::extract(&net, 1e-12).unwrap();
            let reduced = CompactModel::extract(&net, tol).unwrap();
            assert!(reduced.order() <= full.order());
            assert!(reduced.error_bound() <= tol, "bound {} > tol {tol}", reduced.error_bound());

            let powers = random_powers(rng, n);
            let budget = reduced.error_bound() + 1e-9;
            let mut a = full.clone();
            let mut b = reduced.clone();
            // Geometrically spaced checkpoints from ns to ks scales.
            for k in 0..20 {
                let dt = 1e-9 * 4f64.powi(k);
                a.step(&powers, dt);
                b.step(&powers, dt);
                for i in 0..n {
                    let d = (a.temperatures()[i] - b.temperatures()[i]).abs();
                    assert!(
                        d <= budget,
                        "node {i} at step {k}: |{} - {}| = {d} > bound {budget} \
                         (order {} of {})",
                        a.temperatures()[i],
                        b.temperatures()[i],
                        reduced.order(),
                        reduced.full_order(),
                    );
                }
            }
            // And truncation never moves the steady state: the dropped
            // modes are statically residualized, so DC is exact.
            let (sa, sb) = (a.steady_state(&powers), b.steady_state(&powers));
            let (sa, sb) = (sa.unwrap(), sb.unwrap());
            for i in 0..n {
                assert!((sa[i] - sb[i]).abs() < 1e-9, "DC must survive truncation");
            }
        });
    }

    /// The Table-3 floorplan (Figure 3B: seven blocks, tangential chain,
    /// explicit heatsink node): extraction must compress it and agree
    /// with the full solver on both steady state and transient.
    #[test]
    fn table3_floorplan_extracts_and_tracks() {
        let si = crate::silicon::SiliconProperties::effective();
        let blocks = crate::block_model::table3_blocks();
        let mut net = RcNetwork::new(27.0);
        let sink = net.add_node(350.0, 103.0);
        net.connect_to_ambient(sink, 0.34);
        net.set_power(sink, (103.0 - 27.0) / 0.34);
        let nodes: Vec<NodeId> = blocks
            .iter()
            .map(|b| {
                let node = net.add_node(b.c, 103.0);
                net.connect(node, sink, b.r);
                node
            })
            .collect();
        for i in 1..nodes.len() {
            let r_tan = si.r_tangential_for_block(blocks[i].area).0;
            net.connect(nodes[i - 1], nodes[i], r_tan);
        }

        // All seven blocks share one time constant (tau = rho*c_v*t^2 is
        // area-independent), so the spectrum is one slow heatsink mode
        // plus seven nearly-degenerate fast block modes whose per-watt
        // transient amplitudes are on the order of the block resistances
        // (0.6-2.4 K/W). A ~10 degC/W tolerance drops all of them,
        // collapsing the full Figure-3B network to a single dynamic mode
        // -- the structure of the paper's own simplified model (constant
        // heatsink + quasi-static coupling).
        let tol = 10.0;
        let mut model = CompactModel::extract(&net, tol).unwrap();
        assert_eq!(model.full_order(), 8);
        assert!(model.order() < model.full_order(), "nothing was reduced");
        assert_eq!(model.order(), 1, "only the heatsink mode survives");
        assert!(model.error_bound() <= tol);

        // Powers within a watt per block (the bound's envelope); the
        // sink keeps its ambient-offset injection.
        let mut powers = vec![0.0; model.node_ids().len()];
        let sink_pos = model.node_ids().iter().position(|&id| id == sink).unwrap();
        powers[sink_pos] = (103.0 - 27.0) / 0.34;
        for (i, &id) in model.node_ids().iter().enumerate() {
            if id != sink {
                powers[i] = 0.2 + 0.1 * (i as f64);
                net.set_power(id, powers[i]);
            }
        }

        let full_ss = net.steady_state().expect("grounded network");
        let compact_ss = model.steady_state(&powers).expect("grounded network");
        for (i, &id) in model.node_ids().iter().enumerate() {
            let (gs, compact) = (full_ss[id.0], compact_ss[i]);
            assert!(
                (gs - compact).abs() < 1e-3,
                "node {i}: full GS {gs} vs compact {compact}"
            );
        }

        // Transient: Euler at a conservative step vs exact compact.
        let dt = net.max_stable_dt() / 16.0;
        let horizon = dt * 3_000.0;
        net.run(horizon, dt);
        model.step(&powers, horizon);
        for (i, &id) in model.node_ids().iter().enumerate() {
            let d = (net.temperature(id) - model.temperatures()[i]).abs();
            assert!(d < tol + 0.1, "node {i}: transient gap {d}");
        }
    }

    #[test]
    fn fixed_only_network_reduces_to_an_empty_model() {
        let mut net = RcNetwork::new(27.0);
        let a = net.add_fixed_node(85.0);
        let b = net.add_fixed_node(45.0);
        net.connect(a, b, 2.0);
        let model = CompactModel::extract(&net, 0.1).unwrap();
        assert_eq!(model.order(), 0);
        assert_eq!(model.full_order(), 0);
        assert!(model.temperatures().is_empty());
        assert_eq!(model.steady_state(&[]), Some(vec![]));
    }

    #[test]
    fn isolated_node_becomes_an_exact_integrator() {
        // A free node with no path to any reference is a pure thermal
        // integrator: T rises by P/C per second, forever. The zero mode
        // must be kept (never truncated) and stepped exactly, and
        // steady_state must refuse (mirroring RcNetwork's None).
        let mut net = RcNetwork::new(27.0);
        let grounded = net.add_node(1e-3, 27.0);
        net.connect_to_ambient(grounded, 1.0);
        let floating = net.add_node(0.5, 40.0);
        let mut model = CompactModel::extract(&net, 0.1).unwrap();
        let pos = model.node_ids().iter().position(|&id| id == floating).unwrap();
        let powers: Vec<f64> = model
            .node_ids()
            .iter()
            .map(|&id| if id == floating { 2.0 } else { 0.0 })
            .collect();
        model.step(&powers, 10.0);
        // 2 W into 0.5 J/K for 10 s = +40 K on top of the initial 40 °C.
        assert!((model.temperatures()[pos] - 80.0).abs() < 1e-9);
        assert_eq!(model.steady_state(&powers), None);
    }

    #[test]
    fn serialization_round_trips_bitwise() {
        tdtm_prng::cases(16, 0x5E71_A11E, |rng| {
            let (net, ids) = random_network(rng);
            let tol = rng.range_f64(1e-6, 1.0);
            let mut model = CompactModel::extract(&net, tol).unwrap();
            // Step so the mutable state is mid-trajectory, not initial.
            let powers = random_powers(rng, ids.len());
            model.step(&powers, rng.range_f64(1e-6, 1.0));

            let text = model.to_json();
            let back = CompactModel::from_json(&text).unwrap();
            assert_eq!(model, back, "round-trip must be exact");
            // And the round-tripped model keeps stepping identically.
            let mut a = model.clone();
            let mut b = back;
            a.step(&powers, 0.37);
            b.step(&powers, 0.37);
            assert_eq!(a, b);
        });
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(CompactModel::from_json("").is_err());
        assert!(CompactModel::from_json("[1,2]").is_err());
        assert!(CompactModel::from_json("{\"n\":2}").is_err(), "missing arrays");
        // Inconsistent dimensions: n says 2 but temps has 1 entry.
        let net = {
            let mut net = RcNetwork::new(27.0);
            let a = net.add_node(1.0, 27.0);
            net.connect_to_ambient(a, 1.0);
            net
        };
        let good = CompactModel::extract(&net, 1e-6).unwrap().to_json();
        let bad = good.replace("\"n\":1", "\"n\":2");
        assert!(CompactModel::from_json(&bad).is_err());
        // Unknown keys are tolerated (forward compatibility).
        let extended = good.replace("{", "{\"future_field\":3.5,");
        assert!(CompactModel::from_json(&extended).is_ok());
    }

    #[test]
    fn invalid_tolerance_is_rejected() {
        let net = RcNetwork::new(27.0);
        assert!(CompactModel::extract(&net, 0.0).is_err());
        assert!(CompactModel::extract(&net, -1.0).is_err());
        assert!(CompactModel::extract(&net, f64::NAN).is_err());
    }

    #[test]
    fn looser_tolerance_never_keeps_more_modes() {
        tdtm_prng::cases(12, 0x70_1E55, |rng| {
            let (net, _) = random_network(rng);
            let tight = CompactModel::extract(&net, 1e-6).unwrap();
            let loose = CompactModel::extract(&net, 5.0).unwrap();
            assert!(loose.order() <= tight.order());
            assert_eq!(tight.tolerance(), 1e-6);
            assert_eq!(loose.tolerance(), 5.0);
        });
    }

}
