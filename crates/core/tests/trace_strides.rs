//! Stride edge cases for `Trace` and `PowerTrace` recording.
//!
//! The recorders sample every `stride` cycles; these tests pin the edge
//! behavior: stride 0 is rejected, stride 1 records every cycle, a
//! stride longer than the run records exactly the cycle-0 sample for the
//! trace and nothing for the stride-mean power trace, and samples land
//! exactly on stride multiples around the warmup boundary.

use tdtm_core::{SimConfig, Simulator};
use tdtm_isa::asm::assemble;
use tdtm_isa::Program;

fn short_program() -> Program {
    assemble(
        "     li x31, 2000000
         l:   addi x5, x5, 1
              addi x31, x31, -1
              bne  x31, x0, l
              halt",
    )
    .expect("valid program")
}

fn quick() -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.dtm.policy = tdtm_dtm::PolicyKind::None;
    cfg
}

#[test]
#[should_panic(expected = "stride must be nonzero")]
fn trace_stride_zero_rejected() {
    let mut sim = Simulator::new(quick(), short_program());
    sim.record_trace(0);
}

#[test]
#[should_panic(expected = "stride must be nonzero")]
fn power_trace_stride_zero_rejected() {
    let mut sim = Simulator::new(quick(), short_program());
    sim.record_power_trace(0);
}

#[test]
fn trace_stride_one_records_every_cycle() {
    let mut sim = Simulator::new(quick(), short_program());
    sim.record_trace(1);
    let report = sim.run();
    let trace = sim.trace().expect("recording enabled");
    assert_eq!(trace.len() as u64, report.total_cycles, "one sample per simulated cycle");
    assert_eq!(trace.cycles.first(), Some(&0));
    assert_eq!(trace.cycles.last(), Some(&(report.total_cycles - 1)));
}

#[test]
fn power_trace_stride_one_records_every_cycle() {
    let mut sim = Simulator::new(quick(), short_program());
    sim.record_power_trace(1);
    let report = sim.run();
    let trace = sim.power_trace().expect("recording enabled");
    assert_eq!(trace.len() as u64, report.total_cycles);
}

#[test]
fn trace_stride_longer_than_run_keeps_only_cycle_zero() {
    let mut sim = Simulator::new(quick(), short_program());
    sim.record_trace(u64::MAX);
    let report = sim.run();
    assert!(report.total_cycles > 0);
    let trace = sim.trace().expect("recording enabled");
    // Cycle 0 is a multiple of any stride, so exactly one sample exists.
    assert_eq!(trace.len(), 1);
    assert_eq!(trace.cycles, vec![0]);
}

#[test]
fn power_trace_stride_longer_than_run_is_empty() {
    let mut sim = Simulator::new(quick(), short_program());
    sim.record_power_trace(u64::MAX);
    let report = sim.run();
    assert!(report.total_cycles > 0);
    let trace = sim.power_trace().expect("recording enabled");
    // The stride-mean recorder only emits once a full window accumulates;
    // a window longer than the run never fills.
    assert_eq!(trace.len(), 0);
}

#[test]
fn trace_samples_land_on_stride_multiples_across_the_warmup_boundary() {
    let stride = 700u64; // deliberately not a divisor of the warmup window
    let mut cfg = quick();
    cfg.thermal_warmup_cycles = 1_000;
    let mut sim = Simulator::new(cfg, short_program());
    sim.record_trace(stride);
    let report = sim.run();
    let trace = sim.trace().expect("recording enabled");
    for (i, &cycle) in trace.cycles.iter().enumerate() {
        assert_eq!(cycle, i as u64 * stride, "samples at exact stride multiples");
    }
    // The recorder ignores the warmup boundary: the sample before and
    // after cycle 1000 are 700 and 1400, with no off-by-one skip.
    assert!(trace.cycles.contains(&700));
    assert!(trace.cycles.contains(&1400));
    let expected = report.total_cycles.div_ceil(stride);
    assert_eq!(trace.len() as u64, expected, "ceil(total/stride) samples");
}

#[test]
fn power_trace_emits_only_complete_windows() {
    let stride = 700u64;
    let mut sim = Simulator::new(quick(), short_program());
    sim.record_power_trace(stride);
    let report = sim.run();
    let trace = sim.power_trace().expect("recording enabled");
    // Complete windows only: floor, not ceil — a trailing partial window
    // is discarded rather than emitted with a short mean.
    assert_eq!(trace.len() as u64, report.total_cycles / stride);
}
