//! Telemetry non-perturbation and determinism guarantees.
//!
//! The telemetry layer observes; it must never change what it observes.
//! These tests pin the two contracts the design leans on: a run with
//! telemetry enabled produces a byte-identical `RunReport` to a run
//! without it, and the experiment engine's merged grid telemetry is
//! identical for 1 vs. N worker threads.

use tdtm_core::engine::ExperimentGrid;
use tdtm_core::experiments::ExperimentScale;
use tdtm_core::{SimConfig, Simulator};
use tdtm_dtm::PolicyKind;
use tdtm_telemetry::TelemetryConfig;
use tdtm_workloads::by_name;

fn hot_config(policy: PolicyKind) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.dtm.policy = policy;
    cfg.max_insts = 120_000;
    cfg.heatsink_temp = 107.0;
    cfg
}

fn run_pair(policy: PolicyKind, telemetry: &TelemetryConfig) {
    let workload = by_name("gcc").expect("suite workload");
    let mut plain = Simulator::for_workload(hot_config(policy), &workload);
    let mut observed = Simulator::for_workload(hot_config(policy), &workload);
    observed.enable_telemetry(telemetry);
    let r_plain = plain.run();
    let r_observed = observed.run();
    assert_eq!(
        r_plain, r_observed,
        "telemetry must not perturb the simulation ({policy:?})"
    );
    assert!(plain.telemetry().is_none());
    assert!(observed.telemetry().is_some());
}

#[test]
fn reports_identical_with_telemetry_on_or_off() {
    // Full telemetry across the policy families that exercise different
    // code paths: none (no controller), PID (per-block controllers),
    // hierarchical (controllers + V/f backup with resync stalls).
    for policy in [PolicyKind::None, PolicyKind::Pid, PolicyKind::Hierarchical] {
        run_pair(policy, &TelemetryConfig::full(4096, 1));
    }
    // And the cheap grid configuration.
    run_pair(PolicyKind::Pid, &TelemetryConfig::metrics_and_phases());
}

#[test]
fn telemetry_collects_what_the_run_did() {
    let workload = by_name("gcc").expect("suite workload");
    let mut sim = Simulator::for_workload(hot_config(PolicyKind::Pid), &workload);
    sim.enable_telemetry(&TelemetryConfig::full(100_000, 1));
    let report = sim.run();
    let telemetry = sim.take_telemetry().expect("enabled");

    let snap = telemetry.metrics.expect("metrics on").snapshot();
    assert_eq!(snap.counter("cycles"), report.total_cycles);
    assert_eq!(snap.counter("dtm_samples"), report.samples);
    assert_eq!(snap.counter("thermal_steps"), report.total_cycles);
    // One hottest-temp record per cycle.
    let temp_hist = snap.histogram("hottest_temp_c").expect("schema");
    assert_eq!(temp_hist.count(), report.total_cycles);
    // One duty record per DTM sample.
    let duty_hist = snap.histogram("fetch_duty").expect("schema");
    assert_eq!(duty_hist.count(), report.samples);

    let events = telemetry.events.expect("events on");
    assert!(events.recorded() > 0, "a hot PID run must emit events");
    let controller_events = events
        .iter()
        .filter(|e| e.kind() == "controller")
        .count() as u64;
    // Stride 1: every DTM sample logs one controller event per block.
    assert_eq!(controller_events, report.samples * 7);

    let phases = telemetry.phases.expect("phases on");
    assert!(phases.total_nanos() > 0, "phase timers must accumulate");
}

#[test]
fn grid_telemetry_merges_identically_for_1_and_4_threads() {
    let grid = ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .workload(by_name("art").expect("suite workload"))
        .policies(&[PolicyKind::None, PolicyKind::Pid]);
    let cfg = TelemetryConfig::metrics_and_phases();
    let one = grid.run_telemetry(1, &cfg);
    let four = grid.run_telemetry(4, &cfg);
    assert_eq!(one.reports(), four.reports(), "reports shard-independent");
    for (a, b) in one.runs.iter().zip(&four.runs) {
        assert!(
            a.obs.deterministic_eq(&b.obs),
            "deterministic observation fields must not depend on worker count"
        );
    }
    let sim_one = &one.telemetry.as_ref().expect("merged").sim;
    let sim_four = &four.telemetry.as_ref().expect("merged").sim;
    assert_eq!(
        sim_one, sim_four,
        "merged simulation telemetry must not depend on worker count"
    );
    assert!(sim_one.counter("cycles") > 0);
}
