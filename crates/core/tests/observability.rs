//! Integration pins for the observability stack: telemetry must never
//! perturb the simulation it watches, and the streaming grid must be
//! deterministic up to stamping.
//!
//! * Multicore non-perturbation: a chip run with full telemetry produces
//!   a byte-identical [`ChipReport`] and byte-identical per-core duty
//!   histories, across core counts and with/without the supervisor.
//! * Stream determinism: an N-thread [`ExperimentGrid::run_streaming`]
//!   stream, sorted by cell index, equals the 1-thread stream on every
//!   deterministic field; stamps are assigned in physical emit order.
//! * The committed sample streams under `results/streams/` keep parsing
//!   and rendering (they are the `obs_report` acceptance fixtures).

use std::path::Path;

use tdtm_core::experiments::ExperimentScale;
use tdtm_core::report::{obs_dashboard, obs_dashboard_csv};
use tdtm_core::{ExperimentGrid, MulticoreSim, ResultCache, SimConfig};
use tdtm_dtm::{PolicyKind, SupervisorConfig};
use tdtm_telemetry::{CellRecord, MemorySink, TelemetryConfig};
use tdtm_workloads::by_name;

/// A small but thermally active chip: hot heatsink so the controllers
/// (and, when attached, the supervisor) actually act.
fn hot_chip_cfg(cores: usize, supervisor: bool) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.dtm.policy = PolicyKind::Pid;
    cfg.max_insts = 10_000;
    cfg.thermal_warmup_cycles = 500;
    cfg.heatsink_temp = 107.0;
    cfg.chip.cores = cores;
    if supervisor {
        cfg.chip.supervisor = Some(SupervisorConfig::default());
    }
    cfg
}

#[test]
fn multicore_telemetry_does_not_perturb_the_chip() {
    let workload = by_name("gcc").expect("suite workload");
    for cores in [1, 2, 4] {
        for supervisor in [false, true] {
            let cfg = hot_chip_cfg(cores, supervisor);

            let mut plain = MulticoreSim::for_workload(cfg.clone(), &workload);
            let baseline = plain.run();

            let mut observed = MulticoreSim::for_workload(cfg, &workload);
            observed.enable_telemetry(&TelemetryConfig::full(4096, 1));
            let report = observed.run();
            let telemetry = observed.take_telemetry().expect("telemetry was enabled");

            let ctx = format!("cores={cores} supervisor={supervisor}");
            assert_eq!(report, baseline, "{ctx}: ChipReport perturbed by telemetry");
            assert_eq!(
                format!("{report:?}"),
                format!("{baseline:?}"),
                "{ctx}: ChipReport debug repr perturbed"
            );
            for k in 0..cores {
                assert_eq!(
                    plain.duty_history(k),
                    observed.duty_history(k),
                    "{ctx}: core {k} duty history perturbed"
                );
            }

            // The collectors must actually have collected something.
            assert_eq!(telemetry.cores.len(), cores, "{ctx}");
            let merged = telemetry.merged_metrics().expect("metrics on");
            assert_eq!(merged.counter("cycles"), cores as u64 * report.chip_cycles, "{ctx}");
            let events = telemetry.cores[0].events.as_ref().expect("events on");
            assert!(events.recorded() > 0, "{ctx}: core 0 recorded no events");
            if supervisor && report.supervisor_interventions > 0 {
                let chip_events = telemetry.chip_events.as_ref().expect("chip ring on");
                assert!(
                    chip_events.iter().any(|e| e.kind() == "supervisor_cap"),
                    "{ctx}: interventions happened but no supervisor_cap event"
                );
                assert!(merged.counter("supervisor_caps") > 0, "{ctx}");
            }
        }
    }
}

#[test]
fn streaming_grid_is_deterministic_across_worker_counts() {
    let grid = ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .workload(by_name("art").expect("suite workload"))
        .policies(&[PolicyKind::None, PolicyKind::Pid]);
    let cfg = TelemetryConfig::metrics_and_phases();

    // One fresh cache per run: with the shared process-wide cache, the
    // second run would replay the first's records and this test would
    // stop exercising thread-count determinism.
    let mut one_sink = MemorySink::new();
    let one = grid.run_streaming_cached(1, &cfg, &mut one_sink, &ResultCache::in_memory());
    let mut four_sink = MemorySink::new();
    let four = grid.run_streaming_cached(4, &cfg, &mut four_sink, &ResultCache::in_memory());

    assert_eq!(one.reports(), four.reports(), "reports shard-independent");
    assert_eq!(one_sink.records.len(), 4);
    assert_eq!(four_sink.records.len(), 4);

    // Stamps are assigned under the sink lock, so the physical stream
    // order IS the stamp order, whatever the thread count.
    for (pos, r) in one_sink.records.iter().enumerate() {
        assert_eq!(r.seq, pos as u64, "1-thread stamps follow emit order");
        // One worker completes cells in index order.
        assert_eq!(r.index, pos, "1-thread stream is a replay in cell order");
    }
    let four_seqs: Vec<u64> = four_sink.records.iter().map(|r| r.seq).collect();
    assert_eq!(four_seqs, (0..4).collect::<Vec<u64>>(), "N-thread stamps follow emit order");

    // Sorted by cell index, the N-thread stream equals the 1-thread
    // replay on every deterministic field.
    let mut sorted = four_sink.records.clone();
    sorted.sort_by_key(|r| r.index);
    for (a, b) in one_sink.records.iter().zip(&sorted) {
        assert!(
            a.deterministic_eq(b),
            "cell {} diverges between 1-thread and 4-thread streams:\n{a:?}\n{b:?}",
            a.index
        );
    }

    // The emitted record also rides along as each run's extra payload.
    for (run, rec) in one.runs.iter().zip(&one_sink.records) {
        assert_eq!(run.extra.index, rec.index);
        assert!(run.extra.deterministic_eq(rec));
    }
}

#[test]
fn streaming_cache_replays_records_byte_identically() {
    // One shared cache, two streamed runs of the same grid: the cold
    // pass misses every cell (records flagged `cached: false`), the
    // warm pass replays every stored record (`cached: true`) without
    // simulating — identical on every deterministic field, and with
    // reports bit-identical to the cold pass.
    let grid = ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .workload(by_name("art").expect("suite workload"))
        .policies(&[PolicyKind::None, PolicyKind::Pid]);
    let cfg = TelemetryConfig::metrics_and_phases();
    let cache = ResultCache::in_memory();

    let mut cold_sink = MemorySink::new();
    let cold = grid.run_streaming_cached(2, &cfg, &mut cold_sink, &cache);
    let mut warm_sink = MemorySink::new();
    let warm = grid.run_streaming_cached(2, &cfg, &mut warm_sink, &cache);

    let cold_stats = cold.cache_stats.expect("cached run reports stats");
    assert_eq!((cold_stats.cache_hits, cold_stats.cache_misses), (0, 4));
    let warm_stats = warm.cache_stats.expect("cached run reports stats");
    assert_eq!((warm_stats.cache_hits, warm_stats.cache_misses), (4, 0));

    assert!(cold_sink.records.iter().all(|r| r.cached == Some(false)));
    assert!(warm_sink.records.iter().all(|r| r.cached == Some(true)));

    let mut cold_sorted = cold_sink.records.clone();
    cold_sorted.sort_by_key(|r| r.index);
    let mut warm_sorted = warm_sink.records.clone();
    warm_sorted.sort_by_key(|r| r.index);
    for (a, b) in cold_sorted.iter().zip(&warm_sorted) {
        assert!(
            a.deterministic_eq(b),
            "cell {} diverges between fresh and replayed streams:\n{a:?}\n{b:?}",
            a.index
        );
        assert!(b.wall_seconds > 0.0, "replayed records still carry a wall clock");
    }
    for (a, b) in cold.runs.iter().zip(&warm.runs) {
        assert_eq!(
            format!("{:?}", a.report),
            format!("{:?}", b.report),
            "cell {}: replayed report not bit-identical",
            a.index
        );
    }
}

#[test]
fn streaming_grid_covers_multicore_cells() {
    let grid = ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .policies(&[PolicyKind::Pid])
        .variant("mc2", |cfg| {
            cfg.max_insts = 10_000;
            cfg.thermal_warmup_cycles = 500;
            cfg.chip.cores = 2;
            cfg.chip.supervisor = Some(tdtm_dtm::SupervisorConfig::default());
        });
    let mut sink = MemorySink::new();
    let results = grid.run_streaming(1, &TelemetryConfig::metrics_and_phases(), &mut sink);
    assert_eq!(sink.records.len(), 1);
    let rec = &sink.records[0];
    assert_eq!(rec.label, "gcc/PID/mc2");
    // Chip cells merge per-core snapshots: the fixed schema includes the
    // chip-level counters even when they end up zero.
    let names: Vec<&str> = rec.metrics.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"supervisor_caps"), "metrics: {names:?}");
    assert!(names.contains(&"core_parks"), "metrics: {names:?}");
    let cycles = rec.metrics.iter().find(|(n, _)| n == "cycles").expect("cycles counter").1;
    assert_eq!(cycles, 2 * rec.thermal_steps, "two cores' cycles merged");
    assert!(results.runs[0].report.committed >= 10_000);
}

#[test]
fn committed_sample_streams_parse_and_render() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/streams");
    let read = |name: &str| {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        CellRecord::parse_jsonl(&text).expect("committed stream parses")
    };
    let hot = read("quick_hot.jsonl");
    let nominal = read("quick_nominal.jsonl");
    assert_eq!(hot.len(), 4);
    assert_eq!(nominal.len(), 4);

    let md = obs_dashboard(&hot, Some(&nominal));
    assert!(md.contains("## A vs B (matched by cell label)"));
    assert!(md.contains("| gcc/PID |"), "matched cell row missing:\n{md}");
    let csv = obs_dashboard_csv(&hot, Some(&nominal));
    let header = csv.lines().next().expect("header");
    assert!(header.contains("wall_seconds_b"), "baseline columns missing: {header}");
    assert_eq!(csv.lines().count(), 1 + 4, "one row per run-A cell");
}
