//! Experiment drivers: one function per paper table/figure family.
//!
//! The `tdtm-bench` binaries are thin wrappers that call these drivers and
//! print tables; keeping the logic here makes it testable.

use crate::config::SimConfig;
use crate::engine::{ConfigPatch, ExperimentGrid, GridResults};
use crate::metrics::RunReport;
use crate::multicore::ChipReport;
use crate::simulator::Simulator;
use tdtm_dtm::{PolicyKind, SupervisorConfig};
use tdtm_thermal::comparison::AgreementCounts;
use tdtm_workloads::{ThermalCategory, Workload};

/// How much simulation to run per benchmark (scale knob for every
/// experiment driver).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExperimentScale {
    /// Committed instructions per run (post-warmup).
    pub insts: u64,
    /// Cycles excluded from metrics at the start of each run.
    pub warmup_cycles: u64,
}

impl ExperimentScale {
    /// Tiny runs for unit tests.
    pub fn quick() -> ExperimentScale {
        ExperimentScale { insts: 30_000, warmup_cycles: 2_000 }
    }

    /// The default used by the table binaries (~1M instructions each).
    pub fn standard() -> ExperimentScale {
        ExperimentScale { insts: 1_000_000, warmup_cycles: 100_000 }
    }

    /// Longer runs for final numbers.
    pub fn full() -> ExperimentScale {
        ExperimentScale { insts: 4_000_000, warmup_cycles: 200_000 }
    }

    /// Reads the scale from the `TDTM_INSTS` environment variable, falling
    /// back to [`ExperimentScale::standard`].
    pub fn from_env() -> ExperimentScale {
        let mut scale = ExperimentScale::standard();
        if let Ok(v) = std::env::var("TDTM_INSTS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                scale.insts = n.max(1);
                scale.warmup_cycles = (n / 10).min(200_000);
            }
        }
        scale
    }

    /// A [`SimConfig`] at this scale with the given policy.
    pub fn config(&self, policy: PolicyKind) -> SimConfig {
        let mut cfg = SimConfig {
            max_insts: self.insts,
            thermal_warmup_cycles: self.warmup_cycles,
            ..SimConfig::default()
        };
        cfg.dtm.policy = policy;
        cfg
    }
}

/// Runs one workload with no DTM (the characterization configuration
/// behind Tables 4-8).
pub fn characterize(workload: &Workload, scale: ExperimentScale) -> RunReport {
    let mut sim = Simulator::for_workload(scale.config(PolicyKind::None), workload);
    sim.run()
}

/// Characterizes the whole 18-benchmark suite without DTM, sharded over
/// the experiment engine.
pub fn characterize_suite(scale: ExperimentScale) -> Vec<RunReport> {
    ExperimentGrid::new(scale).suite().run().reports()
}

/// Assigns a measured thermal category from a characterization run,
/// using the paper's Table 4/5 structure: emergencies ⇒ extreme; heavy
/// time above the stress threshold (emergency − 1 K) ⇒ high; coming
/// within 2 K of the emergency threshold ⇒ medium; else low.
pub fn categorize(report: &RunReport) -> ThermalCategory {
    categorize_against(report, 111.0)
}

/// [`categorize`] with an explicit emergency threshold.
pub fn categorize_against(report: &RunReport, emergency: f64) -> ThermalCategory {
    if report.emergency_fraction() > 0.001 {
        ThermalCategory::Extreme
    } else if report.stress_fraction() > 0.30 {
        ThermalCategory::High
    } else if report.stress_fraction() > 0.0005
        || report.hottest_block().is_some_and(|b| b.max_temp > emergency - 2.0)
    {
        ThermalCategory::Medium
    } else {
        ThermalCategory::Low
    }
}

/// Per-proxy agreement results for one benchmark (Tables 9 and 10).
#[derive(Clone, Debug)]
pub struct ProxyReport {
    /// Proxy label (e.g. "structure 10000", "chip-wide 500000").
    pub label: String,
    /// Per-block agreement counts (single entry for chip-wide proxies),
    /// labeled with block names.
    pub per_block: Vec<(String, AgreementCounts)>,
}

/// Runs one proxy-scoring cell: builds the simulator from `cfg`, attaches
/// the boxcar proxies, runs, and labels the agreement counts.
fn proxy_cell_run(
    cfg: SimConfig,
    workload: &Workload,
    structure_windows: &[usize],
    chipwide_windows: &[usize],
    chip_threshold_w: f64,
) -> (RunReport, Vec<ProxyReport>) {
    let block_names: Vec<String> = cfg.blocks.iter().map(|b| b.name.clone()).collect();
    let mut sim = Simulator::for_workload(cfg, workload);
    for &w in structure_windows {
        sim.add_structure_proxy(w);
    }
    for &w in chipwide_windows {
        sim.add_chipwide_proxy(w, chip_threshold_w);
    }
    let report = sim.run();
    let proxies = sim
        .proxies()
        .iter()
        .map(|p| ProxyReport {
            label: p.label.clone(),
            per_block: p
                .counts
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let name = if p.counts.len() == 1 {
                        "chip".to_string()
                    } else {
                        block_names[i].clone()
                    };
                    (name, *c)
                })
                .collect(),
        })
        .collect();
    (report, proxies)
}

/// Runs one workload with no DTM while scoring boxcar power proxies
/// against the RC thermal model.
pub fn proxy_comparison(
    workload: &Workload,
    scale: ExperimentScale,
    structure_windows: &[usize],
    chipwide_windows: &[usize],
    chip_threshold_w: f64,
) -> (RunReport, Vec<ProxyReport>) {
    let mut cfg = scale.config(PolicyKind::None);
    // Cold-start the thermal state: the proxy comparison is about how the
    // boxcar lags real heating *transients*, so the jump-started steady
    // state would hide exactly the dynamics Tables 9/10 measure.
    cfg.warm_start = false;
    proxy_cell_run(cfg, workload, structure_windows, chipwide_windows, chip_threshold_w)
}

/// The Tables 9/10 proxy comparison over the whole suite, one engine cell
/// per benchmark (each cold-started; see [`proxy_comparison`]). The extra
/// payload of each cell is its [`ProxyReport`] list.
pub fn proxy_comparison_suite(
    scale: ExperimentScale,
    structure_windows: &[usize],
    chipwide_windows: &[usize],
    chip_threshold_w: f64,
) -> GridResults<Vec<ProxyReport>> {
    ExperimentGrid::new(scale)
        .suite()
        .variant("cold", |cfg| cfg.warm_start = false)
        .run_with(|cell| {
            proxy_cell_run(
                cell.config(),
                &cell.workload,
                structure_windows,
                chipwide_windows,
                chip_threshold_w,
            )
        })
}

/// One benchmark's DTM-policy comparison (the Section 7 results).
#[derive(Clone, Debug)]
pub struct DtmComparison {
    /// Benchmark name.
    pub bench: String,
    /// The non-DTM baseline.
    pub baseline: RunReport,
    /// One report per evaluated policy.
    pub runs: Vec<RunReport>,
}

impl DtmComparison {
    /// Performance of `policy` as % of the non-DTM baseline.
    pub fn percent_of_baseline(&self, policy: PolicyKind) -> Option<f64> {
        self.runs
            .iter()
            .find(|r| r.policy == policy.to_string())
            .map(|r| r.percent_of(&self.baseline))
    }
}

/// The policy axis for a comparison grid: the non-DTM baseline first,
/// then each requested policy.
fn baseline_first(policies: &[PolicyKind]) -> Vec<PolicyKind> {
    let mut axis = vec![PolicyKind::None];
    axis.extend(policies.iter().copied().filter(|&p| p != PolicyKind::None));
    axis
}

/// The (suite × {baseline, policies…}) grid behind
/// [`compare_policies_suite`] — exposed so binaries can run it themselves
/// and print the engine's observability summary.
pub fn compare_policies_grid(scale: ExperimentScale, policies: &[PolicyKind]) -> ExperimentGrid {
    ExperimentGrid::new(scale).suite().policies(&baseline_first(policies))
}

/// Groups an executed comparison grid (baseline-first policy axis, as
/// built by [`compare_policies_grid`]) into per-benchmark comparisons.
///
/// # Panics
///
/// Panics if the grid does not open each benchmark with a
/// [`PolicyKind::None`] baseline cell.
pub fn group_policy_comparisons(results: &GridResults) -> Vec<DtmComparison> {
    let mut out: Vec<DtmComparison> = Vec::new();
    for run in &results.runs {
        if run.policy == PolicyKind::None {
            out.push(DtmComparison {
                bench: run.bench.clone(),
                baseline: run.report.clone(),
                runs: Vec::new(),
            });
        } else {
            let current = out
                .last_mut()
                .filter(|c| c.bench == run.bench)
                .expect("each benchmark must open with its PolicyKind::None baseline");
            current.runs.push(run.report.clone());
        }
    }
    out
}

/// Runs one workload under the baseline and each listed policy.
pub fn compare_policies(
    workload: &Workload,
    scale: ExperimentScale,
    policies: &[PolicyKind],
) -> DtmComparison {
    let grid = ExperimentGrid::new(scale)
        .workload(workload.clone())
        .policies(&baseline_first(policies));
    group_policy_comparisons(&grid.run())
        .pop()
        .expect("one workload yields one comparison")
}

/// Runs the policy comparison across the whole suite, sharded over the
/// experiment engine.
pub fn compare_policies_suite(
    scale: ExperimentScale,
    policies: &[PolicyKind],
) -> Vec<DtmComparison> {
    group_policy_comparisons(&compare_policies_grid(scale, policies).run())
}

/// Shared setup of every cross-core-interference variant: the chip is
/// pinned hot (107 C heatsink, the configuration the single-core DTM
/// tests use to force engagement) and cores 1..N run *unthrottled* — the
/// DTM-controlled core 0 has to cope with whatever its neighbors conduct
/// into it.
fn hot_neighbors(cfg: &mut SimConfig, cores: usize) {
    cfg.heatsink_temp = 107.0;
    cfg.chip.cores = cores;
    cfg.chip.neighbor_policy = Some(PolicyKind::None);
}

/// The chip variants of the cross-core-interference study: core count ×
/// coupling strength × heterogeneity × supervisor, against a single-core
/// control at the same heatsink temperature.
pub fn interference_variants() -> Vec<(&'static str, ConfigPatch)> {
    vec![
        ("solo", |cfg| hot_neighbors(cfg, 1)),
        ("2core", |cfg| hot_neighbors(cfg, 2)),
        ("2core-uncoupled", |cfg| {
            hot_neighbors(cfg, 2);
            cfg.chip.coupling = 0.0;
        }),
        ("2core-strong", |cfg| {
            hot_neighbors(cfg, 2);
            cfg.chip.coupling = 4.0;
        }),
        ("4core", |cfg| hot_neighbors(cfg, 4)),
        ("4core-hetero", |cfg| {
            hot_neighbors(cfg, 4);
            cfg.chip.heterogeneity = 0.3;
        }),
        ("4core-super", |cfg| {
            hot_neighbors(cfg, 4);
            cfg.chip.supervisor = Some(SupervisorConfig::default());
        }),
    ]
}

/// Builds the cross-core-interference grid for one workload: the non-DTM
/// baseline plus each requested policy, crossed with
/// [`interference_variants`].
pub fn interference_grid(
    workload: &Workload,
    scale: ExperimentScale,
    policies: &[PolicyKind],
) -> ExperimentGrid {
    ExperimentGrid::new(scale)
        .workload(workload.clone())
        .policies(&baseline_first(policies))
        .variants(&interference_variants())
}

/// Runs the cross-core-interference study. Each cell's report is core 0's
/// (the DTM-controlled core); the extra payload is the full [`ChipReport`]
/// for multicore variants and `None` for the single-core control.
pub fn interference_study(
    workload: &Workload,
    scale: ExperimentScale,
    policies: &[PolicyKind],
) -> GridResults<Option<ChipReport>> {
    interference_grid(workload, scale, policies).run_with(|cell| cell.run_chip())
}

/// Mean performance loss (100 − %-of-baseline) across comparisons for one
/// policy, counting only benchmarks where the policy ever engaged (the
/// paper reports losses over the thermally active programs).
pub fn mean_performance_loss(rows: &[DtmComparison], policy: PolicyKind) -> f64 {
    let mut losses = Vec::new();
    for row in rows {
        if let Some(pct) = row.percent_of_baseline(policy) {
            let engaged = row
                .runs
                .iter()
                .find(|r| r.policy == policy.to_string())
                .map(|r| r.engaged_samples > 0)
                .unwrap_or(false);
            if engaged {
                losses.push(100.0 - pct);
            }
        }
    }
    if losses.is_empty() {
        0.0
    } else {
        losses.iter().sum::<f64>() / losses.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_workloads::by_name;

    #[test]
    fn characterize_reports_cover_the_blocks() {
        let w = by_name("gcc").unwrap();
        let r = characterize(&w, ExperimentScale::quick());
        assert_eq!(r.blocks.len(), 7);
        assert!(r.ipc > 0.5, "gcc stand-in should have decent IPC, got {}", r.ipc);
        assert_eq!(r.policy, "none");
    }

    #[test]
    fn categorize_thresholds() {
        let w = by_name("vpr").unwrap();
        let mut r = characterize(&w, ExperimentScale::quick());
        r.emergency_cycles = 0;
        r.stress_cycles = 0;
        assert_eq!(categorize(&r), ThermalCategory::Low);
        r.stress_cycles = r.cycles / 2;
        assert_eq!(categorize(&r), ThermalCategory::High);
        r.emergency_cycles = r.cycles / 10;
        assert_eq!(categorize(&r), ThermalCategory::Extreme);
    }

    #[test]
    fn proxy_comparison_produces_reports() {
        let w = by_name("gcc").unwrap();
        let (report, proxies) =
            proxy_comparison(&w, ExperimentScale::quick(), &[10_000], &[10_000], 47.0);
        assert_eq!(proxies.len(), 2);
        assert_eq!(proxies[0].per_block.len(), 7);
        assert_eq!(proxies[1].per_block.len(), 1);
        let total: u64 = proxies[1].per_block[0].1.total();
        assert_eq!(total, report.cycles);
    }

    #[test]
    fn compare_policies_runs_all_requested() {
        let w = by_name("gcc").unwrap();
        let cmp = compare_policies(
            &w,
            ExperimentScale::quick(),
            &[PolicyKind::Toggle1, PolicyKind::Pid],
        );
        assert_eq!(cmp.runs.len(), 2);
        let pct = cmp.percent_of_baseline(PolicyKind::Pid).unwrap();
        assert!(pct > 0.0 && pct <= 100.0 + 1e-9, "pct {pct}");
        assert!(cmp.percent_of_baseline(PolicyKind::Manual).is_none());
    }

    #[test]
    fn grouping_matches_grid_order_and_baselines() {
        let gcc = by_name("gcc").unwrap();
        let art = by_name("art").unwrap();
        let grid = ExperimentGrid::new(ExperimentScale::quick())
            .workload(gcc.clone())
            .workload(art)
            .policies(&baseline_first(&[PolicyKind::Toggle1]));
        let grouped = group_policy_comparisons(&grid.run_threads(3));
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].bench, "gcc");
        assert_eq!(grouped[1].bench, "art");
        for cmp in &grouped {
            assert_eq!(cmp.baseline.policy, "none");
            assert_eq!(cmp.runs.len(), 1);
            assert!(cmp.percent_of_baseline(PolicyKind::Toggle1).is_some());
        }
        // The engine-backed single-workload path reproduces the same
        // reports (bitwise: the simulation is deterministic).
        let serial = compare_policies(&gcc, ExperimentScale::quick(), &[PolicyKind::Toggle1]);
        assert_eq!(serial.baseline, grouped[0].baseline);
        assert_eq!(serial.runs, grouped[0].runs);
    }

    #[test]
    fn interference_grid_covers_the_scenario_family() {
        let w = by_name("gcc").unwrap();
        let grid = interference_grid(&w, ExperimentScale::quick(), &[PolicyKind::Pid]);
        // {baseline, PID} × 7 chip variants.
        assert_eq!(grid.len(), 2 * interference_variants().len());
        let cells = grid.cells();
        assert_eq!(cells[0].config().chip.cores, 1, "solo control comes first");
        let multicore = cells.iter().filter(|c| c.config().chip.cores > 1).count();
        assert_eq!(multicore, 2 * 6, "every non-solo variant is a real chip");
        let supered = cells.iter().filter(|c| c.config().chip.supervisor.is_some()).count();
        assert_eq!(supered, 2, "one supervised variant per policy");
    }

    #[test]
    fn interference_study_returns_chip_reports_for_chip_cells() {
        let w = by_name("gcc").unwrap();
        let mut scale = ExperimentScale::quick();
        scale.insts = 10_000;
        scale.warmup_cycles = 500;
        let results = interference_study(&w, scale, &[PolicyKind::Pid]);
        for run in &results.runs {
            let cores = if run.variant == "solo" { 1 } else { usize::from(run.extra.is_some()) };
            match (&run.extra, run.variant) {
                (None, "solo") => {}
                (Some(chip), v) => {
                    assert!(chip.cores.len() > 1, "{v}: chip report expected, cores={cores}");
                    assert_eq!(chip.cores[0], run.report, "{v}: report must be core 0's");
                }
                (None, v) => panic!("{v}: multicore variant missing its chip report"),
            }
        }
    }

    #[test]
    fn scale_from_env_parses() {
        std::env::set_var("TDTM_INSTS", "12345");
        let s = ExperimentScale::from_env();
        assert_eq!(s.insts, 12345);
        std::env::remove_var("TDTM_INSTS");
    }
}
