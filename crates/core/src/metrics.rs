//! Run metrics: the paper's success measures.
//!
//! "Our metrics of success are the percentage of cycles spent in thermal
//! emergency and percentage of the non-DTM IPC."

/// Per-structure results of one run.
#[derive(Clone, PartialEq, Debug)]
pub struct BlockMetrics {
    /// Structure name (paper Table 3 naming).
    pub name: String,
    /// Mean temperature over counted cycles (C).
    pub avg_temp: f64,
    /// Maximum temperature observed (C).
    pub max_temp: f64,
    /// Cycles this structure exceeded the emergency threshold.
    pub emergency_cycles: u64,
    /// Cycles this structure exceeded the stress threshold
    /// (emergency − 1 K).
    pub stress_cycles: u64,
    /// Mean power (W).
    pub avg_power: f64,
    /// Maximum single-cycle power (W).
    pub max_power: f64,
}

/// Results of one simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct RunReport {
    /// Workload name.
    pub name: String,
    /// Policy name.
    pub policy: String,
    /// Cycles counted (after warmup).
    pub cycles: u64,
    /// Total simulated cycles including warmup — every one of these took
    /// a thermal-model step, so this is also the thermal-step count the
    /// engine reports as host throughput.
    pub total_cycles: u64,
    /// Instructions committed over counted cycles.
    pub committed: u64,
    /// Wall-clock seconds of counted simulated time (accounts for
    /// frequency scaling).
    pub wall_time: f64,
    /// Committed IPC over counted cycles.
    pub ipc: f64,
    /// Mean total chip power (W).
    pub avg_power: f64,
    /// Maximum single-cycle chip power (W).
    pub max_power: f64,
    /// Chip-average temperature in the paper's Table 4 convention:
    /// 27 C ambient + chip-wide R (0.34 K/W) × average power.
    pub avg_chip_temp: f64,
    /// Cycles during which *any* block exceeded the emergency threshold.
    pub emergency_cycles: u64,
    /// Cycles during which any block exceeded the stress threshold.
    pub stress_cycles: u64,
    /// Per-structure breakdown.
    pub blocks: Vec<BlockMetrics>,
    /// DTM samples taken.
    pub samples: u64,
    /// DTM samples on which the policy restricted the machine.
    pub engaged_samples: u64,
    /// Branch mispredictions recovered.
    pub recoveries: u64,
    /// Conditional-branch prediction accuracy.
    pub bpred_accuracy: f64,
    /// Cycles fetch was gated by DTM.
    pub gated_cycles: u64,
}

impl RunReport {
    /// Fraction of counted cycles spent in thermal emergency.
    pub fn emergency_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.emergency_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of counted cycles spent above the stress threshold.
    pub fn stress_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stress_cycles as f64 / self.cycles as f64
        }
    }

    /// Committed instructions per second of simulated wall time (the
    /// performance measure that stays meaningful under V/f scaling).
    pub fn insts_per_second(&self) -> f64 {
        if self.wall_time == 0.0 {
            0.0
        } else {
            self.committed as f64 / self.wall_time
        }
    }

    /// This run's performance as a fraction of a baseline (non-DTM) run,
    /// the paper's "% of non-DTM IPC".
    pub fn percent_of(&self, baseline: &RunReport) -> f64 {
        let base = baseline.insts_per_second();
        if base == 0.0 {
            0.0
        } else {
            100.0 * self.insts_per_second() / base
        }
    }

    /// The hottest structure (by max temperature), or `None` for a report
    /// with no per-block breakdown.
    pub fn hottest_block(&self) -> Option<&BlockMetrics> {
        self.blocks.iter().max_by(|a, b| a.max_temp.total_cmp(&b.max_temp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, committed: u64, emergency: u64) -> RunReport {
        RunReport {
            name: "t".into(),
            policy: "none".into(),
            cycles,
            total_cycles: cycles + 500,
            committed,
            wall_time: cycles as f64 / 1.5e9,
            ipc: committed as f64 / cycles as f64,
            avg_power: 40.0,
            max_power: 80.0,
            avg_chip_temp: crate::config::table4_chip_temp(40.0),
            emergency_cycles: emergency,
            stress_cycles: emergency * 2,
            blocks: vec![BlockMetrics {
                name: "bpred".into(),
                avg_temp: 105.0,
                max_temp: 110.0,
                emergency_cycles: emergency,
                stress_cycles: emergency * 2,
                avg_power: 3.0,
                max_power: 5.6,
            }],
            samples: cycles / 1000,
            engaged_samples: 0,
            recoveries: 0,
            bpred_accuracy: 0.95,
            gated_cycles: 0,
        }
    }

    #[test]
    fn fractions() {
        let r = report(1000, 2000, 50);
        assert!((r.emergency_fraction() - 0.05).abs() < 1e-12);
        assert!((r.stress_fraction() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn percent_of_baseline() {
        let base = report(1000, 2000, 0);
        let slower = report(1250, 2000, 0); // same work, 25% more cycles
        assert!((slower.percent_of(&base) - 80.0).abs() < 1e-9);
        assert!((base.percent_of(&base) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn chip_temp_convention() {
        let r = report(10, 10, 0);
        assert!((r.avg_chip_temp - 40.6).abs() < 1e-12);
    }

    #[test]
    fn hottest_block_found() {
        let r = report(10, 10, 0);
        assert_eq!(r.hottest_block().expect("has blocks").name, "bpred");
    }

    #[test]
    fn hottest_block_is_none_without_blocks() {
        let mut r = report(10, 10, 0);
        r.blocks.clear();
        assert!(r.hottest_block().is_none());
    }
}
