//! Plain-text table formatting shared by the table-regeneration binaries.

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut TextTable {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].len());
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Renders run reports as CSV (header + one row per report), for feeding
/// external plotting tools.
pub fn reports_to_csv(reports: &[crate::RunReport]) -> String {
    let mut out = String::from(
        "benchmark,policy,cycles,committed,ipc,avg_power_w,max_power_w,avg_chip_temp_c,\
         emergency_fraction,stress_fraction,samples,engaged_samples,recoveries,bpred_accuracy",
    );
    if let Some(first) = reports.first() {
        for b in &first.blocks {
            let slug = b.name.replace([' ', '.'], "_");
            out.push_str(&format!(",{slug}_avg_t,{slug}_max_t"));
        }
    }
    out.push('\n');
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{:.4},{:.2},{:.2},{:.2},{:.6},{:.6},{},{},{},{:.4}",
            r.name,
            r.policy,
            r.cycles,
            r.committed,
            r.ipc,
            r.avg_power,
            r.max_power,
            r.avg_chip_temp,
            r.emergency_fraction(),
            r.stress_fraction(),
            r.samples,
            r.engaged_samples,
            r.recoveries,
            r.bpred_accuracy,
        ));
        for b in &r.blocks {
            out.push_str(&format!(",{:.3},{:.3}", b.avg_temp, b.max_temp));
        }
        out.push('\n');
    }
    out
}

/// Formats a float with the given number of decimals.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Renders the engine's per-grid observability summary: one row per cell
/// with host wall-clock, simulated-cycle throughput, and work counters,
/// plus an aggregate footer. Timing varies run to run; everything else is
/// deterministic.
pub fn grid_summary<R>(results: &crate::engine::GridResults<R>) -> String {
    let mut t = TextTable::new([
        "cell",
        "wall (s)",
        "Mcycles/s",
        "insts retired",
        "thermal steps",
        "ctrl invocations",
    ]);
    for run in &results.runs {
        t.row([
            run.label(),
            format!("{:.3}", run.obs.wall_seconds),
            format!("{:.2}", run.obs.cycles_per_second() / 1e6),
            run.obs.committed.to_string(),
            run.obs.thermal_steps.to_string(),
            run.obs.dtm_samples.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "{} cells on {} thread(s): {:.2} s wall, {} thermal steps, aggregate {:.2} Mcycles/s\n",
        results.runs.len(),
        results.threads,
        results.wall_seconds,
        results.total_thermal_steps(),
        results.aggregate_cycles_per_second() / 1e6,
    ));
    if let Some(telemetry) = &results.telemetry {
        out.push('\n');
        out.push_str(&grid_telemetry_summary(telemetry));
    }
    out
}

/// Renders the merged grid telemetry: the deterministic simulation
/// counters, the temperature/duty histograms' tails, and the host-time
/// phase profile.
pub fn grid_telemetry_summary(telemetry: &crate::engine::GridTelemetry) -> String {
    let mut out = String::from("telemetry (merged over cells)\n");
    for &(name, value) in &telemetry.sim.counters {
        out.push_str(&format!("  {name:<18} {value}\n"));
    }
    for (name, hist) in &telemetry.sim.histograms {
        let p50 = hist.quantile(0.5);
        let p99 = hist.quantile(0.99);
        out.push_str(&format!(
            "  {name:<18} n={} p50={} p99={} over={}\n",
            hist.count(),
            p50.map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            p99.map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            hist.overflow,
        ));
    }
    let wall = &telemetry.cell_wall_ms;
    out.push_str(&format!(
        "  cell wall-time     n={} p50={} ms p99={} ms\n",
        wall.count(),
        wall.quantile(0.5)
            .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
        wall.quantile(0.99)
            .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
    ));
    if telemetry.phases.total_nanos() > 0 {
        out.push_str("host-time phase profile (not deterministic)\n");
        out.push_str(&telemetry.phases.render_table());
    }
    out
}

/// Renders a markdown dashboard over one or two completed-cell streams
/// (the `obs_report` bin's output). With one stream: per-cell wall time,
/// throughput, emergency/stress counts, and the hottest-block
/// distribution. With a baseline stream: an A-vs-B section with per-cell
/// wall-time speedups and emergency/peak-temperature deltas, matched by
/// cell label.
///
/// Records are presented in cell-index order regardless of the stream's
/// completion order, so a dashboard over an N-thread stream reads the
/// same as over a 1-thread stream (wall columns aside).
pub fn obs_dashboard(
    a: &[tdtm_telemetry::CellRecord],
    b: Option<&[tdtm_telemetry::CellRecord]>,
) -> String {
    let mut out = String::from("# Grid observability dashboard\n");
    out.push_str(&obs_run_section(
        if b.is_some() { "Run A" } else { "Run" },
        a,
    ));
    if let Some(b) = b {
        out.push_str(&obs_run_section("Run B (baseline)", b));
        out.push_str(&obs_delta_section(a, b));
    }
    out
}

fn obs_sorted(records: &[tdtm_telemetry::CellRecord]) -> Vec<&tdtm_telemetry::CellRecord> {
    let mut sorted: Vec<_> = records.iter().collect();
    sorted.sort_by_key(|r| r.index);
    sorted
}

/// `cells / seconds` formatted for the dashboard header, or `n/a` when
/// the denominator is zero, negative, or non-finite — a stream whose
/// timing fields are absent (legacy), zeroed, or corrupt has no
/// throughput to report, and printing `inf` or a fake `0.00` misreads
/// as a measurement.
fn obs_rate(cells: usize, seconds: f64) -> String {
    if seconds > 0.0 && seconds.is_finite() {
        format!("{:.2}", cells as f64 / seconds)
    } else {
        "n/a".to_string()
    }
}

fn obs_run_section(title: &str, records: &[tdtm_telemetry::CellRecord]) -> String {
    let sorted = obs_sorted(records);
    let cell_seconds: f64 = sorted.iter().map(|r| r.wall_seconds).sum();
    let cells_per_sec = obs_rate(sorted.len(), cell_seconds);
    // Grid wall time: the stream's last emission stamp. Older streams
    // (pre-`elapsed_seconds`) carry 0.0 there, so fall back to the
    // cell-seconds sum, which is exact for 1-worker runs.
    let wall = sorted
        .iter()
        .map(|r| r.elapsed_seconds)
        .fold(0.0_f64, f64::max);
    let wall = if wall > 0.0 && wall.is_finite() { wall } else { cell_seconds };
    let agg_cells_per_sec = obs_rate(sorted.len(), wall);
    let emergency: u64 = sorted.iter().map(|r| r.emergency_cycles).sum();
    let stress: u64 = sorted.iter().map(|r| r.stress_cycles).sum();

    let mut out = format!("\n## {title} — {} cells\n\n", sorted.len());
    out.push_str(&format!(
        "- {wall:.3} s grid wall time ({agg_cells_per_sec} cells/s aggregate)\n"
    ));
    out.push_str(&format!(
        "- {cell_seconds:.3} cell-seconds total ({cells_per_sec} cells/s per worker)\n"
    ));
    out.push_str(&format!(
        "- emergency cycles: {emergency}, stress cycles: {stress}\n"
    ));

    // Cache hit rate: cells served from the content-addressed result
    // cache vs. simulated fresh. Legacy streams (pre-cache) carry no
    // `cached` field at all, so the rate is unknowable — say `n/a`,
    // never a fake 0%.
    let stamped = sorted.iter().filter(|r| r.cached.is_some()).count();
    if stamped > 0 {
        let hits = sorted.iter().filter(|r| r.cached == Some(true)).count();
        out.push_str(&format!(
            "- cache hit rate: {:.1}% ({hits}/{stamped} cells cached)\n",
            100.0 * hits as f64 / stamped as f64
        ));
    } else {
        out.push_str("- cache hit rate: n/a\n");
    }

    // Hottest-block distribution: count of cells peaking in each block,
    // most frequent first (name breaks ties, for determinism).
    let mut dist: Vec<(&str, usize)> = Vec::new();
    for r in &sorted {
        if r.hottest_block.is_empty() {
            continue;
        }
        match dist.iter_mut().find(|(name, _)| *name == r.hottest_block) {
            Some((_, n)) => *n += 1,
            None => dist.push((&r.hottest_block, 1)),
        }
    }
    dist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if !dist.is_empty() {
        let list: Vec<String> = dist
            .iter()
            .map(|(name, n)| format!("{name} ×{n}"))
            .collect();
        out.push_str(&format!("- hottest blocks: {}\n", list.join(", ")));
    }

    out.push_str("\n| cell | wall (s) | Mcyc/s | IPC | emerg | stress | hottest | peak °C |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|---|---:|\n");
    for r in &sorted {
        let mcps = if r.wall_seconds > 0.0 {
            r.thermal_steps as f64 / r.wall_seconds / 1e6
        } else {
            0.0
        };
        out.push_str(&format!(
            "| {} | {:.3} | {:.2} | {:.3} | {} | {} | {} | {:.2} |\n",
            r.label,
            r.wall_seconds,
            mcps,
            r.ipc,
            r.emergency_cycles,
            r.stress_cycles,
            r.hottest_block,
            r.hottest_temp_c,
        ));
    }
    out
}

fn obs_delta_section(a: &[tdtm_telemetry::CellRecord], b: &[tdtm_telemetry::CellRecord]) -> String {
    let mut out = String::from(
        "\n## A vs B (matched by cell label)\n\n\
         | cell | wall A (s) | wall B (s) | speedup | emerg A | emerg B | Δemerg | Δpeak °C |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    let mut unmatched = Vec::new();
    for ra in obs_sorted(a) {
        let Some(rb) = b.iter().find(|r| r.label == ra.label) else {
            unmatched.push(ra.label.clone());
            continue;
        };
        let speedup = if ra.wall_seconds > 0.0 {
            rb.wall_seconds / ra.wall_seconds
        } else {
            0.0
        };
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.2}x | {} | {} | {:+} | {:+.2} |\n",
            ra.label,
            ra.wall_seconds,
            rb.wall_seconds,
            speedup,
            ra.emergency_cycles,
            rb.emergency_cycles,
            ra.emergency_cycles as i64 - rb.emergency_cycles as i64,
            ra.hottest_temp_c - rb.hottest_temp_c,
        ));
    }
    if !unmatched.is_empty() {
        out.push_str(&format!("\nNot in B: {}\n", unmatched.join(", ")));
    }
    out
}

/// CSV form of [`obs_dashboard`]: one row per cell in A (paired with its
/// B match when a baseline is given; B-only columns stay empty for
/// unmatched cells).
pub fn obs_dashboard_csv(
    a: &[tdtm_telemetry::CellRecord],
    b: Option<&[tdtm_telemetry::CellRecord]>,
) -> String {
    let mut out = String::from(
        "cell,bench,policy,variant,wall_seconds,thermal_steps,ipc,emergency_cycles,\
         stress_cycles,hottest_block,hottest_temp_c",
    );
    if b.is_some() {
        out.push_str(",wall_seconds_b,emergency_cycles_b,hottest_temp_c_b");
    }
    out.push('\n');
    for r in obs_sorted(a) {
        out.push_str(&format!(
            "{},{},{},{},{:.6},{},{:.4},{},{},{},{:.3}",
            r.label,
            r.bench,
            r.policy,
            r.variant,
            r.wall_seconds,
            r.thermal_steps,
            r.ipc,
            r.emergency_cycles,
            r.stress_cycles,
            r.hottest_block,
            r.hottest_temp_c,
        ));
        if let Some(b) = b {
            match b.iter().find(|rb| rb.label == r.label) {
                Some(rb) => out.push_str(&format!(
                    ",{:.6},{},{:.3}",
                    rb.wall_seconds, rb.emergency_cycles, rb.hottest_temp_c
                )),
                None => out.push_str(",,,"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["bench", "IPC", "emerg"]);
        t.row(["gzip", "2.31", "0.00%"]);
        t.row(["a-longer-name", "0.40", "12.34%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric columns line up at the end.
        assert!(lines[2].ends_with("0.00%"));
        assert!(lines[3].ends_with("12.34%"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn csv_has_header_and_block_columns() {
        use crate::metrics::{BlockMetrics, RunReport};
        let r = RunReport {
            name: "gcc".into(),
            policy: "PID".into(),
            cycles: 100,
            total_cycles: 150,
            committed: 300,
            wall_time: 100.0 / 1.5e9,
            ipc: 3.0,
            avg_power: 50.0,
            max_power: 70.0,
            avg_chip_temp: 44.0,
            emergency_cycles: 0,
            stress_cycles: 10,
            blocks: vec![BlockMetrics {
                name: "int exec. unit".into(),
                avg_temp: 108.0,
                max_temp: 110.0,
                emergency_cycles: 0,
                stress_cycles: 10,
                avg_power: 5.0,
                max_power: 8.0,
            }],
            samples: 1,
            engaged_samples: 0,
            recoveries: 2,
            bpred_accuracy: 0.99,
            gated_cycles: 0,
        };
        let csv = reports_to_csv(&[r]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert!(header.contains("int_exec__unit_avg_t"));
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(row.starts_with("gcc,PID,100,300,3.0000,"));
        assert!(lines.next().is_none());
    }

    fn obs_record(index: usize, label: &str, emerg: u64) -> tdtm_telemetry::CellRecord {
        tdtm_telemetry::CellRecord {
            seq: index as u64,
            index,
            label: label.to_string(),
            bench: label.split('/').next().unwrap_or("").to_string(),
            policy: "PID".to_string(),
            variant: "base".to_string(),
            wall_seconds: 0.5,
            elapsed_seconds: 0.0,
            thermal_steps: 1_000_000,
            committed: 120_000,
            dtm_samples: 1_000,
            ipc: 0.9,
            emergency_cycles: emerg,
            stress_cycles: emerg * 10,
            hottest_block: "int reg. file".to_string(),
            hottest_temp_c: 111.5,
            cached: None,
            metrics: Vec::new(),
        }
    }

    #[test]
    fn obs_dashboard_single_run_lists_cells_and_distribution() {
        // Records arrive in completion order; the dashboard re-sorts.
        let records = vec![obs_record(1, "art/PID", 7), obs_record(0, "gcc/PID", 40)];
        let s = obs_dashboard(&records, None);
        assert!(s.contains("# Grid observability dashboard"));
        assert!(s.contains("2 cells"), "dashboard:\n{s}");
        assert!(s.contains("emergency cycles: 47"));
        assert!(s.contains("hottest blocks: int reg. file ×2"));
        let gcc = s.find("| gcc/PID |").expect("gcc row");
        let art = s.find("| art/PID |").expect("art row");
        assert!(
            gcc < art,
            "rows are in cell-index order, not completion order"
        );
        assert!(
            !s.contains("Run B"),
            "no baseline section without a baseline"
        );
    }

    #[test]
    fn obs_dashboard_reports_na_hit_rate_for_legacy_streams() {
        // Pre-cache streams carry no `cached` field: the dashboard must
        // say the rate is unknowable, not claim 0%.
        let records = vec![obs_record(0, "gcc/PID", 40), obs_record(1, "art/PID", 7)];
        let s = obs_dashboard(&records, None);
        assert!(s.contains("- cache hit rate: n/a"), "got:\n{s}");
        assert!(!s.contains("cells cached"), "got:\n{s}");
    }

    #[test]
    fn obs_dashboard_reports_cache_hit_rate_when_records_are_stamped() {
        let mut records = vec![
            obs_record(0, "gcc/PID", 40),
            obs_record(1, "art/PID", 7),
            obs_record(2, "mcf/PID", 3),
            obs_record(3, "eqk/PID", 1),
        ];
        records[0].cached = Some(true);
        records[1].cached = Some(true);
        records[2].cached = Some(true);
        records[3].cached = Some(false);
        let s = obs_dashboard(&records, None);
        assert!(
            s.contains("- cache hit rate: 75.0% (3/4 cells cached)"),
            "got:\n{s}"
        );
    }

    #[test]
    fn obs_dashboard_header_reports_grid_wall_and_aggregate_throughput() {
        // A 2-worker fixture stream: both cells took 0.5 s of worker time
        // but overlapped, so the last emission stamp (grid wall) is 0.6 s.
        let mut records = vec![obs_record(0, "gcc/PID", 40), obs_record(1, "art/PID", 7)];
        records[0].elapsed_seconds = 0.5;
        records[1].elapsed_seconds = 0.6;
        let s = obs_dashboard(&records, None);
        assert!(
            s.contains("- 0.600 s grid wall time (3.33 cells/s aggregate)"),
            "got:\n{s}"
        );
        assert!(
            s.contains("- 1.000 cell-seconds total (2.00 cells/s per worker)"),
            "got:\n{s}"
        );

        // Legacy streams predate `elapsed_seconds` (all 0.0): the header
        // falls back to the cell-seconds sum for the wall estimate.
        let legacy = vec![obs_record(0, "gcc/PID", 40), obs_record(1, "art/PID", 7)];
        let s = obs_dashboard(&legacy, None);
        assert!(
            s.contains("- 1.000 s grid wall time (2.00 cells/s aggregate)"),
            "got:\n{s}"
        );
    }

    #[test]
    fn obs_dashboard_header_prints_na_without_timing_data() {
        // A stream with no usable timing at all (elapsed_seconds absent
        // AND wall_seconds zeroed) has no throughput to report: the
        // header must say `n/a`, never `inf`, `NaN`, or a fake `0.00`.
        let mut records = vec![obs_record(0, "gcc/PID", 40), obs_record(1, "art/PID", 7)];
        for r in &mut records {
            r.wall_seconds = 0.0;
        }
        let s = obs_dashboard(&records, None);
        assert!(
            s.contains("- 0.000 s grid wall time (n/a cells/s aggregate)"),
            "got:\n{s}"
        );
        assert!(
            s.contains("- 0.000 cell-seconds total (n/a cells/s per worker)"),
            "got:\n{s}"
        );

        // A corrupt stamp (e.g. a hand-edited fixture) must not leak
        // `inf` into the aggregate either: the wall estimate falls back
        // to the cell-seconds sum.
        let mut corrupt = vec![obs_record(0, "gcc/PID", 40), obs_record(1, "art/PID", 7)];
        corrupt[1].elapsed_seconds = f64::INFINITY;
        let s = obs_dashboard(&corrupt, None);
        assert!(
            s.contains("- 1.000 s grid wall time (2.00 cells/s aggregate)"),
            "got:\n{s}"
        );
        assert!(!s.contains("inf"), "got:\n{s}");
    }

    #[test]
    fn obs_dashboard_renders_committed_stream_fixtures() {
        // The committed demo streams are legacy fixtures (no
        // `elapsed_seconds` field): parsing them and rendering the
        // dashboard must keep working, with real throughput numbers from
        // the wall_seconds fallback and no `inf`/`NaN` anywhere.
        for fixture in ["quick_nominal.jsonl", "quick_hot.jsonl"] {
            let path = format!(
                "{}/../../results/streams/{fixture}",
                env!("CARGO_MANIFEST_DIR")
            );
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read fixture {path}: {e}"));
            let records =
                tdtm_telemetry::CellRecord::parse_jsonl(&text).expect("fixture parses");
            assert!(!records.is_empty(), "{fixture}: empty fixture");
            assert!(
                records.iter().all(|r| r.elapsed_seconds == 0.0),
                "{fixture}: no longer a legacy stream; update this test"
            );
            let s = obs_dashboard(&records, None);
            assert!(
                s.contains("cells/s aggregate") && !s.contains("(n/a cells/s aggregate)"),
                "{fixture}: wall_seconds fallback should yield a real rate:\n{s}"
            );
            assert!(!s.contains("inf") && !s.contains("NaN"), "{fixture}:\n{s}");
        }
    }

    #[test]
    fn obs_dashboard_pairs_runs_by_label() {
        let a = vec![obs_record(0, "gcc/PID", 40), obs_record(1, "art/PID", 7)];
        let mut b = vec![obs_record(0, "gcc/PID", 55)];
        b[0].wall_seconds = 1.0;
        let s = obs_dashboard(&a, Some(&b));
        assert!(s.contains("Run B (baseline)"));
        assert!(s.contains("A vs B"));
        // 1.0s baseline over 0.5s current = 2.00x speedup; 40 - 55 = -15.
        assert!(
            s.contains("| gcc/PID | 0.500 | 1.000 | 2.00x | 40 | 55 | -15 |"),
            "got:\n{s}"
        );
        assert!(s.contains("Not in B: art/PID"));
    }

    #[test]
    fn obs_dashboard_csv_widths_match() {
        let a = vec![obs_record(0, "gcc/PID", 40), obs_record(1, "art/PID", 7)];
        let b = vec![obs_record(0, "gcc/PID", 55)];
        let csv = obs_dashboard_csv(&a, Some(&b));
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let w = header.split(',').count();
        for row in lines {
            assert_eq!(row.split(',').count(), w, "row: {row}");
        }
        let csv_single = obs_dashboard_csv(&a, None);
        assert!(!csv_single.contains("wall_seconds_b"));
    }

    #[test]
    fn grid_summary_renders_counters_and_footer() {
        use crate::engine::ExperimentGrid;
        use crate::experiments::ExperimentScale;
        let grid = ExperimentGrid::new(ExperimentScale::quick())
            .workload(tdtm_workloads::by_name("gcc").expect("known workload"));
        let results = grid.run_threads(1);
        let s = grid_summary(&results);
        assert!(s.contains("gcc/none"), "summary:\n{s}");
        assert!(s.contains("thermal steps"));
        assert!(s.contains("1 cells on 1 thread(s)"));
    }
}
