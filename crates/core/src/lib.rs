//! # tdtm-core — simulator orchestration, metrics, and experiment drivers
//!
//! Wires the whole stack together, cycle by cycle, exactly as the paper's
//! methodology describes: "first the SimpleScalar pipeline model determines
//! the activity of each structure; then Wattch computes power dissipation
//! for each of them; and finally our thermal model computes temperature
//! based on R, C, and the power dissipation in the past clock cycle" —
//! with the DTM policy sampling the (idealized) sensors every 1000 cycles
//! and driving the fetch-toggling actuator.
//!
//! * [`SimConfig`] / [`Simulator`] — one benchmark run;
//! * [`multicore`] — the N-core chip: [`MulticoreSim`] runs replicated
//!   cores in lockstep over the coupled thermal kernel, with per-core DTM
//!   under an optional chip-level supervisor;
//! * [`metrics`] — the paper's success metrics (% cycles in thermal
//!   emergency, % of non-DTM IPC, per-structure temperatures);
//! * [`experiments`] — drivers that regenerate each of the paper's tables
//!   and result figures (see `DESIGN.md` for the index);
//! * [`engine`] — the parallel experiment engine: [`ExperimentGrid`]
//!   shards (workload × policy × variant) cells across scoped threads
//!   (`TDTM_THREADS`) with deterministic, cell-ordered results;
//! * [`report`] — plain-text table formatting shared by the `tdtm-bench`
//!   binaries.
//!
//! # Examples
//!
//! ```
//! use tdtm_core::{SimConfig, Simulator};
//! use tdtm_dtm::PolicyKind;
//!
//! let mut config = SimConfig::default();
//! config.max_insts = 30_000;
//! config.thermal_warmup_cycles = 1_000;
//! config.dtm.policy = PolicyKind::Pid;
//! let workload = tdtm_workloads::by_name("gcc").expect("known workload");
//! let mut sim = Simulator::for_workload(config, &workload);
//! let report = sim.run();
//! assert!(report.committed >= 30_000);
//! ```

pub mod batch;
pub mod cache;
pub mod config;
pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod multicore;
pub mod replay;
pub mod report;
pub mod simulator;
pub mod telemetry;

pub use cache::{CacheStats, CellArtifact, Fingerprint, ResultCache};
pub use config::{ChipConfig, SimConfig};
pub use engine::{ExperimentGrid, GridResults, RunResult};
pub use metrics::{BlockMetrics, RunReport};
pub use multicore::{ChipReport, ChipTelemetry, MulticoreSim};
pub use simulator::{Simulator, SkipReason, SkipWindow};
