//! The simulator's telemetry schema and helpers.
//!
//! The collectors themselves live in `tdtm-telemetry`; this module pins
//! down the *schema* the simulator populates — the counter and histogram
//! names every run reports — so the experiment engine can merge snapshots
//! from different cells without guessing at their shape.

use tdtm_telemetry::MetricsRegistry;

/// Counter names the simulator populates, in registration order. The
/// chip-level counters (`supervisor_caps`, `core_parks`) stay zero on the
/// single-core path — registering them everywhere keeps every run on one
/// schema, so single-core and multicore snapshots merge.
pub const SIM_COUNTERS: [&str; 11] = [
    "cycles",
    "thermal_steps",
    "dtm_samples",
    "duty_changes",
    "emergency_entries",
    "stress_entries",
    "sensor_reads",
    "events_recorded",
    "events_dropped",
    "supervisor_caps",
    "core_parks",
];

/// Histogram of the per-cycle hottest block temperature (°C).
pub const HIST_HOTTEST_TEMP: &str = "hottest_temp_c";

/// Histogram of the commanded fetch duty per DTM sample (one bin per
/// actuator level).
pub const HIST_FETCH_DUTY: &str = "fetch_duty";

/// Builds the registry every simulator run populates. All runs share this
/// schema, so their snapshots merge.
pub fn sim_metrics_registry() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for name in SIM_COUNTERS {
        reg = reg.with_counter(name);
    }
    reg.with_histogram(HIST_HOTTEST_TEMP, 80.0, 120.0, 80)
        .with_histogram(HIST_FETCH_DUTY, 0.0, 1.0, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_self_consistent() {
        let reg = sim_metrics_registry();
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), SIM_COUNTERS.len());
        assert_eq!(snap.histograms.len(), 2);
        // Two independently built registries merge (same schema).
        let mut a = sim_metrics_registry().snapshot();
        a.merge_from(&snap);
    }
}
