//! Top-level simulation configuration.

use tdtm_dtm::{DtmConfig, PolicyKind, SupervisorConfig};
use tdtm_power::PowerConfig;
use tdtm_thermal::block_model::{table3_blocks, BlockParams};
use tdtm_uarch::CoreConfig;

/// Ambient temperature of the paper's Table-4 chip-average convention
/// (°C).
pub const TABLE4_AMBIENT_C: f64 = 27.0;

/// Chip-wide junction-to-ambient thermal resistance of the Table-4
/// convention (K/W).
pub const TABLE4_CHIP_R_K_PER_W: f64 = 0.34;

/// The paper's Table-4 chip-average temperature convention: ambient plus
/// chip-wide R times average power.
pub fn table4_chip_temp(avg_power_w: f64) -> f64 {
    TABLE4_AMBIENT_C + TABLE4_CHIP_R_K_PER_W * avg_power_w
}

/// Multicore chip topology and hierarchical-DTM settings. The default is
/// a single core with no supervisor, under which the multicore simulator
/// reproduces the single-core path byte-identically.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChipConfig {
    /// Number of replicated cores on the chip.
    pub cores: usize,
    /// Lateral coupling strength: multiplier on the tangential conductance
    /// joining corresponding blocks of adjacent cores (0.0 disconnects the
    /// cores thermally).
    pub coupling: f64,
    /// Heterogeneity factor `h`: core `k` of `N` gets its thermal
    /// resistances scaled by `1 + h·k/(N-1)` (core 0 always nominal).
    pub heterogeneity: f64,
    /// Chip-level supervisor redistributing the thermal budget across
    /// cores (`None` leaves the per-core policies fully autonomous).
    pub supervisor: Option<SupervisorConfig>,
    /// Policy run on cores 1..N when set (core 0 always runs the main
    /// `dtm.policy`); used by the interference experiments to pit a
    /// throttled core against unthrottled hot neighbors.
    pub neighbor_policy: Option<PolicyKind>,
}

impl Default for ChipConfig {
    fn default() -> ChipConfig {
        ChipConfig {
            cores: 1,
            coupling: 1.0,
            heterogeneity: 0.0,
            supervisor: None,
            neighbor_policy: None,
        }
    }
}

/// Everything one simulation run needs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Core microarchitecture (paper Table 2).
    pub core: CoreConfig,
    /// Power model settings.
    pub power: PowerConfig,
    /// DTM policy and thresholds.
    pub dtm: DtmConfig,
    /// Thermal parameters of the tracked blocks (paper Table 3). Must
    /// stay in `THERMAL_BLOCKS` order.
    pub blocks: Vec<BlockParams>,
    /// Heatsink temperature during the run (C). The paper holds the
    /// heatsink constant — its time constant is minutes — at a
    /// "has-risen-to" operating value for the DTM experiments.
    pub heatsink_temp: f64,
    /// Committed instructions to simulate (after warmups).
    pub max_insts: u64,
    /// Hard cycle bound (safety net for fully-gated runs).
    pub max_cycles: u64,
    /// Cycles of thermal/pipeline warmup excluded from metrics. During
    /// warmup the thermal state evolves and DTM runs, but nothing is
    /// counted.
    pub thermal_warmup_cycles: u64,
    /// Whether to jump-start block temperatures at the steady state of
    /// the power observed over the first sampling interval (in addition
    /// to the warmup window).
    pub warm_start: bool,
    /// Optional temperature-dependent leakage (an extension — the paper's
    /// 0.18 µm model is dynamic-power only; `None` reproduces it).
    pub leakage: Option<tdtm_power::LeakageModel>,
    /// Chip topology: core count, thermal coupling, and the hierarchical
    /// DTM supervisor. Ignored by the single-core [`Simulator`]; the
    /// multicore simulator reads it.
    ///
    /// [`Simulator`]: crate::simulator::Simulator
    pub chip: ChipConfig,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            core: CoreConfig::alpha21264_like(),
            power: PowerConfig::default(),
            dtm: DtmConfig::default(),
            blocks: table3_blocks(),
            heatsink_temp: 103.0,
            max_insts: 1_000_000,
            max_cycles: 200_000_000,
            thermal_warmup_cycles: 100_000,
            warm_start: true,
            leakage: None,
            chip: ChipConfig::default(),
        }
    }
}

impl SimConfig {
    /// Cycle time in seconds at nominal frequency.
    pub fn cycle_time(&self) -> f64 {
        self.core.cycle_time()
    }

    /// A configuration scaled for quick tests: small instruction budget
    /// and short warmup.
    pub fn quick_test() -> SimConfig {
        SimConfig {
            max_insts: 30_000,
            thermal_warmup_cycles: 2_000,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_uarch::activity::THERMAL_BLOCKS;

    #[test]
    fn default_blocks_match_thermal_block_order() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.blocks.len(), THERMAL_BLOCKS.len());
        // Names line up pairwise (table3 uses the paper's table names).
        let pairs = [
            ("LSQ", "LSQ"),
            ("inst. window", "window"),
            ("regfile", "regfile"),
            ("bpred", "bpred"),
            ("D-cache", "D-cache"),
            ("int exec. unit", "IntALU"),
            ("FP exec. unit", "FPALU"),
        ];
        for ((b, t), (bn, tn)) in cfg.blocks.iter().zip(THERMAL_BLOCKS).zip(pairs) {
            assert_eq!(b.name, bn);
            assert_eq!(t.name(), tn);
        }
    }

    #[test]
    fn defaults_are_runnable() {
        let cfg = SimConfig::default();
        assert!(cfg.heatsink_temp < cfg.dtm.emergency);
        assert!(cfg.max_cycles > cfg.max_insts);
    }

    #[test]
    fn default_chip_is_a_lone_core() {
        let chip = ChipConfig::default();
        assert_eq!(chip.cores, 1);
        assert_eq!(chip.heterogeneity, 0.0);
        assert!(chip.supervisor.is_none());
        assert!(chip.neighbor_policy.is_none());
        assert_eq!(SimConfig::default().chip, chip);
    }

    #[test]
    fn table4_convention_matches_paper_numbers() {
        assert!((table4_chip_temp(0.0) - 27.0).abs() < 1e-12);
        assert!((table4_chip_temp(40.0) - 40.6).abs() < 1e-12);
    }
}
