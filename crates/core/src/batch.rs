//! Batched SoA execution of independent single-core grid cells.
//!
//! The experiment engine's unit of work used to be one cell = one
//! [`Simulator`](crate::simulator::Simulator): each worker thread runs one
//! cell to completion, with the cell's seven block temperatures and decay
//! factors scattered across its own `BlockModel`. `GridBatch` instead
//! packs the thermal state of up to [`BATCH_LANES`] cells into one
//! [`ThermalBatch`] — a struct-of-arrays with every lane's temperatures,
//! decay factors, and resistances in contiguous per-field arrays — and
//! advances all of them in lockstep: one round runs one machine cycle per
//! live cell, then a single vectorizable sweep steps every lane's exact
//! exponential-decay update at once.
//!
//! # Byte identity
//!
//! Batching is a host-side execution strategy, never a model change. Each
//! lane replicates the uninstrumented fast loop of
//! [`Simulator::run`](crate::simulator::Simulator::run) operation for
//! operation — the same stop-condition order, resync stalls, V/f
//! retiming, warm-start jump, accumulator folds, and DTM boundary
//! sampling — and [`ThermalBatch::step_batch`] reproduces
//! `BlockModel::step_scaled` bit-exactly per lane (pinned by property
//! tests in `tdtm-thermal`). Reports finalize through the same
//! `finalize_report` path as every other loop, so a batched grid's
//! `RunReport`s are byte-identical to the per-cell reference path
//! (pinned by `tests/engine.rs` and `tests/hot_loop_identity.rs`).
//!
//! # Eligibility
//!
//! [`batch_eligible`] mirrors the simulator's own `RunPlan::fast`
//! classification for the engine's uninstrumented path: single core, no
//! supervisor, direct DTM triggering, no leakage feedback. Anything else
//! — multicore chips, interrupt-delayed commands, leakage, or any
//! instrumented run (telemetry, proxies, traces attach only through
//! driver closures or streaming, which keep the per-cell reference path)
//! — falls back to [`GridCell::run_chip`].

use crate::config::SimConfig;
use crate::engine::GridCell;
use crate::metrics::RunReport;
use crate::simulator::{finalize_report, skip_default, RunAccum, MIN_SKIP_WINDOW, NUM_THERMAL};
use tdtm_dtm::{build_policy_at, DtmConfig, DtmPolicy, PolicyKind, SensorModel, TriggerMechanism};
use tdtm_power::{PowerModel, PowerSample};
use tdtm_thermal::{BlockModel, BlockParams, ThermalBatch};
use tdtm_uarch::{Core, CoreControl};

/// Maximum cells packed into one `GridBatch` (one SoA lane each).
///
/// Small on purpose: a lane costs one resident core + power model, and
/// the lockstep rounds only pay off while every lane stays hot in cache.
pub const BATCH_LANES: usize = 4;

/// Whether a cell with this configuration can run on the batched SoA
/// path with a byte-identical report.
///
/// The predicate mirrors the simulator's internal fast-loop
/// classification for a cell the engine runs without instrumentation:
/// one core, no supervisor, direct DTM triggering, and no
/// temperature-dependent leakage (the batched sweep monomorphizes the
/// leakage-free update).
pub fn batch_eligible(cfg: &SimConfig) -> bool {
    cfg.chip.cores == 1
        && cfg.chip.supervisor.is_none()
        && matches!(cfg.dtm.mechanism, TriggerMechanism::Direct)
        && cfg.leakage.is_none()
}

/// Everything one lane needs besides its thermal state (which lives in
/// the shared [`ThermalBatch`]): the core, power model, policy, sensors,
/// accumulators, and the V/f bookkeeping of the fast loop.
struct LaneState {
    /// Grid-cell index, for keying the finished report.
    index: usize,
    name: String,
    core: Core,
    power: std::sync::Arc<PowerModel>,
    policy: Box<dyn DtmPolicy>,
    sensors: SensorModel,
    params: Vec<BlockParams>,
    dtm: DtmConfig,
    acc: RunAccum,
    // Run constants hoisted from the config.
    interval: u64,
    emergency: f64,
    stress: f64,
    nominal_dt: f64,
    warmup: u64,
    warm_window: u64,
    max_insts: u64,
    max_cycles: u64,
    idle_sample: PowerSample,
    /// Cycle of the next DTM-sample boundary (`(cycle + 1) % interval
    /// == 0` without the per-cycle modulo).
    next_sample: u64,
    // Mutable fast-loop state.
    warm_start_power: [f64; NUM_THERMAL],
    sensed: [f64; NUM_THERMAL],
    resync_remaining: u64,
    vf_power_scale: f64,
    vf_freq_scale: f64,
    vf_engaged: bool,
    duty_history: Vec<f64>,
}

impl LaneState {
    fn finalize(&self) -> RunReport {
        finalize_report(
            &self.name,
            self.policy.as_ref(),
            &self.params,
            self.core.stats(),
            self.core.bpred().accuracy(),
            &self.acc,
        )
    }
}

/// A group of batch-eligible grid cells advanced in lockstep over one
/// shared [`ThermalBatch`].
///
/// Push up to [`BATCH_LANES`] cells, then [`run`](GridBatch::run) them
/// to completion. Cells finish at their own stop conditions; a finished
/// cell's lane is swap-removed so the SoA sweep only ever touches live
/// lanes.
pub(crate) struct GridBatch {
    batch: ThermalBatch,
    lanes: Vec<LaneState>,
    reports: Vec<(usize, RunReport)>,
    /// Per-lane idle-gap fast-forwarding (defaults from `TDTM_SKIP`).
    skip: bool,
}

impl GridBatch {
    pub(crate) fn new() -> GridBatch {
        GridBatch {
            batch: ThermalBatch::new(NUM_THERMAL),
            lanes: Vec::new(),
            reports: Vec::new(),
            skip: skip_default(),
        }
    }

    /// Overrides the `TDTM_SKIP` default for this batch — identity tests
    /// run the same cells with skipping on and off and compare reports.
    #[cfg(test)]
    pub(crate) fn set_skip(&mut self, on: bool) {
        self.skip = on;
    }

    /// Adds one cell as a new lane, replicating the construction in
    /// `Simulator::build` (same skip, shared power model, same policy
    /// and ideal sensors).
    ///
    /// # Panics
    ///
    /// Panics if the cell's configuration is not [`batch_eligible`].
    pub(crate) fn push(&mut self, cell: &GridCell) {
        let cfg = cell.config();
        assert!(
            batch_eligible(&cfg),
            "cell {} is not batch-eligible",
            cell.label()
        );
        let core = Core::with_skip_shared(
            cfg.core,
            cell.workload.program_shared(),
            cell.workload.warmup_insts,
        );
        let power = cell.power_model();
        let thermal = BlockModel::new(cfg.blocks.clone(), cfg.heatsink_temp, cfg.cycle_time());
        let lane = self.batch.push(&thermal);
        debug_assert_eq!(lane, self.lanes.len());
        let interval = cfg.dtm.sample_interval.max(1);
        let nominal_dt = cfg.cycle_time();
        let idle_sample = power.cycle_power(&tdtm_uarch::Activity::new());
        self.lanes.push(LaneState {
            index: cell.index,
            name: cell.workload.name.to_string(),
            core,
            power,
            policy: build_policy_at(&cfg.dtm, cfg.core.clock_hz),
            sensors: SensorModel::ideal(),
            params: cfg.blocks,
            dtm: cfg.dtm,
            acc: RunAccum::new(),
            interval,
            emergency: cfg.dtm.emergency,
            stress: cfg.dtm.emergency - 1.0,
            nominal_dt,
            warmup: cfg.thermal_warmup_cycles,
            warm_window: if cfg.warm_start { interval } else { 0 },
            max_insts: cfg.max_insts,
            max_cycles: cfg.max_cycles,
            idle_sample,
            next_sample: interval - 1,
            warm_start_power: [0.0; NUM_THERMAL],
            sensed: [0.0; NUM_THERMAL],
            resync_remaining: 0,
            vf_power_scale: 1.0,
            vf_freq_scale: 1.0,
            vf_engaged: false,
            duty_history: Vec::new(),
        });
    }

    /// Runs every lane to completion and returns the reports keyed by
    /// grid-cell index (in completion order, not grid order).
    ///
    /// Each lockstep round has three phases. Phase 1 walks the live
    /// lanes checking stop conditions in the fast loop's exact order
    /// (instruction budget while counting, then cycle budget / program
    /// halt), runs one machine cycle (or a resync stall) per survivor,
    /// and stages its scaled block powers. Phase 2 is the point of the
    /// whole module: one [`ThermalBatch::step_batch`] sweep advances
    /// every lane's exact exponential update over contiguous arrays.
    /// Phase 3 finishes each lane's cycle — warm-start accumulation and
    /// jump, `RunAccum::record_cycle`, and the DTM boundary sample with
    /// command application (direct mode only, per eligibility).
    ///
    /// Lanes also fast-forward idle gaps independently: when a lane is
    /// provably idle for `k` cycles (resync-stalled, fetch-gated shut,
    /// or drained against a known wake cycle), phase 1 folds the whole
    /// window through [`ThermalBatch::step_lane_gap`] — the bit-exact
    /// per-lane iteration of the batch sweep — and jumps the lane's
    /// clock, leaving the other lanes untouched. Gaps stop strictly
    /// before the lane's next DTM boundary (the boundary cycle always
    /// runs through the normal phases), the warmup crossing, and the
    /// cycle budget; a fast-forwarded lane simply re-enters its stop
    /// checks at the new cycle. Reports stay byte-identical with
    /// skipping on or off (pinned by tests).
    pub(crate) fn run(self) -> Vec<(usize, RunReport)> {
        let GridBatch {
            mut batch,
            mut lanes,
            mut reports,
            skip,
        } = self;
        let mut powers = vec![0.0f64; lanes.len() * NUM_THERMAL];
        let mut scales = vec![1.0f64; lanes.len()];
        let mut totals = vec![0.0f64; lanes.len()];
        let mut countings = vec![false; lanes.len()];

        loop {
            // Phase 1: stop checks and one machine cycle per live lane.
            let mut l = 0;
            while l < lanes.len() {
                let lane = &mut lanes[l];
                let counting = lane.acc.cycle >= lane.warmup;
                if counting && lane.acc.counted_cycles == 0 {
                    lane.acc.committed_at_count_start = lane.core.stats().committed;
                }
                let insts_done = lane
                    .core
                    .stats()
                    .committed
                    .saturating_sub(lane.acc.committed_at_count_start)
                    >= lane.max_insts
                    && counting;
                if insts_done || lane.acc.cycle >= lane.max_cycles || lane.core.finished() {
                    // Swap-remove the lane from both the SoA batch and
                    // the state list, keeping them parallel; the moved
                    // lane (previously last, not yet visited this
                    // round) is revisited at slot `l`.
                    let finished = lanes.swap_remove(l);
                    batch.remove_lane(l);
                    reports.push((finished.index, finished.finalize()));
                    continue;
                }
                // Lane idle-gap fast-forward (see the method docs): fold
                // the window here in phase 1, then re-enter the stop
                // checks at the new cycle without advancing `l`.
                if skip && lane.acc.cycle >= lane.warm_window {
                    let mut cap = (lane.next_sample - lane.acc.cycle)
                        .min(lane.max_cycles - lane.acc.cycle);
                    if lane.acc.cycle < lane.warmup {
                        cap = cap.min(lane.warmup - lane.acc.cycle);
                    }
                    let window = if cap < MIN_SKIP_WINDOW {
                        None
                    } else if lane.resync_remaining > 0 {
                        Some(lane.resync_remaining.min(cap))
                    } else {
                        lane.core.idle_window(cap).map(|(len, _)| len)
                    };
                    if let Some(k) = window.filter(|&k| k >= MIN_SKIP_WINDOW) {
                        // Every gap cycle draws the bitwise-same idle
                        // power, so pre-scaling once matches the
                        // per-cycle `step_batch` bits exactly.
                        let scale = lane.vf_power_scale;
                        let mut gap_powers = lane.idle_sample.thermal_powers();
                        for p in &mut gap_powers {
                            *p *= scale;
                        }
                        if counting {
                            let gap_total = lane.idle_sample.total * scale;
                            let dt_wall = lane.nominal_dt / lane.vf_freq_scale;
                            let (emergency, stress) = (lane.emergency, lane.stress);
                            let acc = &mut lane.acc;
                            batch.step_lane_gap(l, &gap_powers, k, |temps| {
                                acc.record_cycle(
                                    temps, &gap_powers, gap_total, dt_wall, emergency, stress,
                                );
                            });
                        } else {
                            batch.step_lane_gap(l, &gap_powers, k, |_| {});
                        }
                        if lane.resync_remaining > 0 {
                            lane.resync_remaining -= k;
                        } else {
                            lane.core.skip_idle(k);
                        }
                        lane.acc.cycle += k;
                        continue;
                    }
                }
                let sample = if lane.resync_remaining > 0 {
                    lane.resync_remaining -= 1;
                    lane.idle_sample
                } else {
                    lane.power.cycle_power(lane.core.cycle())
                };
                powers[l * NUM_THERMAL..(l + 1) * NUM_THERMAL]
                    .copy_from_slice(&sample.thermal_powers());
                scales[l] = lane.vf_power_scale;
                totals[l] = sample.total * lane.vf_power_scale;
                countings[l] = counting;
                l += 1;
            }
            let live = lanes.len();
            if live == 0 {
                break;
            }

            // Phase 2: one SoA sweep steps every live lane's thermal
            // state (and writes back the scaled powers, exactly as
            // `BlockModel::step_scaled` would per lane).
            batch.step_batch(&mut powers[..live * NUM_THERMAL], &scales[..live]);

            // Phase 3: per-lane cycle epilogue.
            for l in 0..live {
                let lane = &mut lanes[l];
                let thermal_powers: &[f64; NUM_THERMAL] = powers[l * NUM_THERMAL..][..NUM_THERMAL]
                    .try_into()
                    .expect("seven staged block powers");

                // Warm start: after the first sampling interval, jump
                // blocks to the steady state of the observed average
                // power (the lane-wise `warm_start_jump`).
                if lane.acc.cycle < lane.warm_window {
                    for (acc, &p) in lane.warm_start_power.iter_mut().zip(thermal_powers) {
                        *acc += p;
                    }
                    if lane.acc.cycle + 1 == lane.interval {
                        for p in &mut lane.warm_start_power {
                            *p /= lane.interval as f64;
                        }
                        batch.warm_start_lane(l, &lane.warm_start_power[..]);
                        if lane.dtm.policy != PolicyKind::None {
                            let ceiling = if lane.dtm.policy.is_control_theoretic() {
                                lane.dtm.setpoint
                            } else {
                                lane.dtm.trigger
                            };
                            for i in 0..NUM_THERMAL {
                                if batch.temperatures(l)[i] > ceiling {
                                    batch.set_temperature(l, i, ceiling);
                                }
                            }
                        }
                    }
                }

                if countings[l] {
                    let temps = batch.temperatures_fixed::<NUM_THERMAL>(l);
                    lane.acc.record_cycle(
                        temps,
                        thermal_powers,
                        totals[l],
                        lane.nominal_dt / lane.vf_freq_scale,
                        lane.emergency,
                        lane.stress,
                    );
                }

                // DTM sample at the interval boundary — same cycle the
                // fast loop's chunk ends on, applied directly.
                if lane.acc.cycle == lane.next_sample {
                    lane.next_sample += lane.interval;
                    let temps = *batch.temperatures_fixed::<NUM_THERMAL>(l);
                    lane.sensors.read_all(&temps[..], &mut lane.sensed);
                    let cmd = lane.policy.sample(&lane.sensed);
                    lane.acc.samples += 1;
                    lane.duty_history.push(cmd.fetch_duty);
                    lane.core.set_control(CoreControl {
                        fetch_duty: cmd.fetch_duty,
                        fetch_width_limit: cmd.fetch_width_limit,
                        max_unresolved_branches: cmd.max_unresolved_branches,
                    });
                    match (cmd.vf, lane.vf_engaged) {
                        (Some(vf), false) => {
                            lane.vf_engaged = true;
                            lane.vf_power_scale = vf.power_scale();
                            lane.vf_freq_scale = vf.freq_scale;
                            batch.set_lane_dt(l, lane.nominal_dt / vf.freq_scale);
                            lane.resync_remaining = lane.dtm.vf_resync_cycles;
                        }
                        (None, true) => {
                            lane.vf_engaged = false;
                            lane.vf_power_scale = 1.0;
                            lane.vf_freq_scale = 1.0;
                            batch.set_lane_dt(l, lane.nominal_dt);
                            lane.resync_remaining = lane.dtm.vf_resync_cycles;
                        }
                        _ => {}
                    }
                }
                lane.acc.cycle += 1;
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExperimentGrid;
    use crate::experiments::ExperimentScale;

    #[test]
    fn eligibility_mirrors_the_fast_loop_preconditions() {
        let base = ExperimentScale::quick().config(PolicyKind::Pid);
        assert!(batch_eligible(&base));

        let mut multicore = base.clone();
        multicore.chip.cores = 4;
        assert!(!batch_eligible(&multicore));

        let mut interrupt = base.clone();
        interrupt.dtm.mechanism = TriggerMechanism::Interrupt {
            latency_cycles: 100,
        };
        assert!(!batch_eligible(&interrupt));

        let mut leaky = base;
        leaky.leakage = Some(tdtm_power::LeakageModel::node_180nm());
        assert!(!batch_eligible(&leaky));
    }

    #[test]
    fn a_batch_of_cells_reports_byte_identically_to_their_simulators() {
        let grid = ExperimentGrid::new(ExperimentScale::quick())
            .workload(tdtm_workloads::by_name("gcc").unwrap())
            .workload(tdtm_workloads::by_name("art").unwrap())
            .policies(&[PolicyKind::Pid, PolicyKind::VfScale]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 4);

        let mut batch = GridBatch::new();
        for cell in &cells {
            batch.push(cell);
        }
        let mut batched = batch.run();
        batched.sort_by_key(|&(index, _)| index);

        for (cell, (index, report)) in cells.iter().zip(&batched) {
            assert_eq!(cell.index, *index);
            let reference = cell.simulator().run();
            assert_eq!(report, &reference, "cell {}", cell.label());
        }
    }

    #[test]
    fn lane_fast_forward_reports_byte_identically_to_non_skipping_lanes() {
        // A hot heatsink forces the toggle policy to gate fetch shut for
        // long stretches, so the skipping batch actually fast-forwards;
        // the reports must not move by a bit relative to the per-cycle
        // lanes.
        let grid = ExperimentGrid::new(ExperimentScale::quick())
            .workload(tdtm_workloads::by_name("gcc").unwrap())
            .workload(tdtm_workloads::by_name("art").unwrap())
            .policies(&[PolicyKind::Toggle1, PolicyKind::VfScale])
            .variant("hot", |cfg| cfg.heatsink_temp = 107.0);
        let cells = grid.cells();
        let mut skipping = GridBatch::new();
        let mut reference = GridBatch::new();
        for cell in &cells {
            skipping.push(cell);
            reference.push(cell);
        }
        skipping.set_skip(true);
        reference.set_skip(false);
        let mut fast = skipping.run();
        let mut slow = reference.run();
        fast.sort_by_key(|&(index, _)| index);
        slow.sort_by_key(|&(index, _)| index);
        assert_eq!(fast, slow);
    }

    #[test]
    #[should_panic(expected = "not batch-eligible")]
    fn pushing_an_ineligible_cell_panics() {
        let grid = ExperimentGrid::new(ExperimentScale::quick())
            .workload(tdtm_workloads::by_name("gcc").unwrap())
            .variant("quad", |cfg| cfg.chip.cores = 4);
        let cells = grid.cells();
        let mut batch = GridBatch::new();
        batch.push(&cells[0]);
    }
}
