//! The cycle loop: core → power → thermal → (every interval) DTM.

use crate::config::SimConfig;
use crate::metrics::{BlockMetrics, RunReport};
use crate::telemetry::{sim_metrics_registry, HIST_FETCH_DUTY, HIST_HOTTEST_TEMP};
use std::collections::VecDeque;
use std::time::Instant;
use tdtm_control::pid::PidSample;
use tdtm_dtm::{build_policy_at, DtmCommand, DtmPolicy, SensorModel, TriggerMechanism};
use tdtm_isa::Program;
use tdtm_power::PowerModel;
use tdtm_telemetry::{
    ControllerSample, Event, EventTrace, Phase, PhaseProfile, Telemetry, TelemetryConfig,
    ThresholdKind,
};
use tdtm_thermal::boxcar::BoxcarProxy;
use tdtm_thermal::comparison::AgreementCounts;
use tdtm_thermal::BlockModel;
use tdtm_uarch::{Core, CoreControl, IdleKind};
use tdtm_workloads::Workload;

pub(crate) const NUM_THERMAL: usize = 7;

/// Minimum idle-window length (cycles) worth fast-forwarding: shorter
/// windows are cheaper to just execute than to probe, fold, and
/// book-keep.
pub(crate) const MIN_SKIP_WINDOW: u64 = 4;

/// Whether the fast loops fast-forward across provably-idle windows:
/// on unless the `TDTM_SKIP` environment variable is `0` or `off`
/// (mirroring `TDTM_BATCH` for the SoA grid path).
pub(crate) fn skip_default() -> bool {
    !matches!(
        std::env::var("TDTM_SKIP").ok().as_deref().map(str::trim),
        Some("0") | Some("off")
    )
}

/// Whether skipped *uncounted* windows use the approximate `powf`
/// closed form instead of the bit-exact iterated fold: off unless
/// `TDTM_SKIP_CLOSED` is `1` or `on`. Opt-in because it rounds
/// differently from the per-cycle recurrence and therefore breaks
/// byte-identity with the reference loop.
pub(crate) fn closed_form_default() -> bool {
    matches!(
        std::env::var("TDTM_SKIP_CLOSED")
            .ok()
            .as_deref()
            .map(str::trim),
        Some("1") | Some("on")
    )
}

/// Why a run loop fast-forwarded a window of cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// Duty-cycle fetch gating held the front end closed and the window
    /// was otherwise drained.
    Gated,
    /// The window was drained and stalled on a long-latency completion
    /// with a known wake cycle.
    Drained,
    /// A V/f resynchronization stall (the core is not clocked at all).
    Resync,
    /// A multicore gap in which at least one core was parked (chip-level
    /// windows only).
    Parked,
}

/// One fast-forwarded window: cycles `start..end` were advanced with a
/// constant-power thermal fold instead of per-cycle pipeline execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkipWindow {
    /// First skipped cycle.
    pub start: u64,
    /// One past the last skipped cycle.
    pub end: u64,
    /// Why the window was provably idle.
    pub reason: SkipReason,
}

impl SkipWindow {
    /// Window length in cycles.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the window is empty (never recorded by the run loops).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// A temperature-proxy attachment for the Tables 9/10 comparison.
#[derive(Clone, Debug)]
pub struct ProxyAttachment {
    /// Label used in reports ("structure 10K", "chip-wide 500K", ...).
    pub label: String,
    kind: ProxyKind,
    /// Agreement with the RC reference, per block (one entry for
    /// chip-wide proxies).
    pub counts: Vec<AgreementCounts>,
}

#[derive(Clone, Debug)]
enum ProxyKind {
    /// One boxcar per thermal block; triggers through the per-structure
    /// thermal rule (avg power × R + heatsink vs. threshold).
    PerStructure { boxcars: Vec<BoxcarProxy> },
    /// One boxcar over total chip power with a watts threshold.
    ChipWide {
        boxcar: BoxcarProxy,
        threshold_w: f64,
    },
}

/// A full simulation of one program under one configuration.
pub struct Simulator {
    cfg: SimConfig,
    core: Core,
    power: std::sync::Arc<PowerModel>,
    thermal: BlockModel,
    policy: Box<dyn DtmPolicy>,
    sensors: SensorModel,
    proxies: Vec<ProxyAttachment>,
    name: String,
    /// Commands awaiting their (interrupt-delayed) application cycle.
    pending: VecDeque<(u64, DtmCommand)>,
    /// Remaining stall cycles from a V/f resynchronization.
    resync_remaining: u64,
    /// Current V/f power scale (1.0 at nominal).
    vf_power_scale: f64,
    /// Current frequency scale (1.0 at nominal).
    vf_freq_scale: f64,
    vf_engaged: bool,
    /// Per-run duty trace (sampled), for diagnostics.
    duty_history: Vec<f64>,
    /// Optional downsampled trace recording.
    trace: Option<Trace>,
    /// Optional power-trace recording (stride-mean block powers).
    power_trace: Option<PowerTraceRecorder>,
    /// Telemetry to collect on the next [`run`](Simulator::run); boxed so
    /// the disabled path pays one pointer test per use site.
    telemetry: Option<Box<TelemetryState>>,
    /// Collected telemetry of the last run.
    collected: Option<Telemetry>,
    /// Forces the instrumented reference loop even when a run qualifies
    /// for the specialized fast loop (validation knob; see
    /// [`set_reference_loop`](Simulator::set_reference_loop)).
    reference_loop: bool,
    /// Fast-forwards the fast loop across provably-idle windows (see
    /// [`set_skip`](Simulator::set_skip); defaults from `TDTM_SKIP`).
    skip: bool,
    /// Uses the approximate closed form for *uncounted* skipped windows
    /// (see [`set_skip_closed`](Simulator::set_skip_closed)).
    skip_closed: bool,
    /// Records one [`SkipWindow`] per fast-forwarded window when enabled
    /// (off by default so long runs don't grow a log nobody reads).
    log_skip_windows: bool,
    /// The skip-window log of the last run (when enabled).
    skip_windows: Vec<SkipWindow>,
}

/// In-flight telemetry collection: the collectors plus the cheap local
/// accumulators and edge-detection state the run loop updates, flushed
/// into the registry when the run ends.
///
/// Crate-visible so [`MulticoreSim`](crate::multicore::MulticoreSim) can
/// keep one per core — every event it records is tagged with `core_id`
/// (0 on the single-core path).
pub(crate) struct TelemetryState {
    events: Option<EventTrace>,
    registry: Option<tdtm_telemetry::MetricsRegistry>,
    /// Cached histogram indices for the hot per-cycle/per-sample records.
    temp_idx: usize,
    duty_idx: usize,
    phases: bool,
    /// The core every event is tagged with.
    core_id: usize,
    /// Per-block "currently above emergency" for entry/exit edges.
    emerg: [bool; NUM_THERMAL],
    /// Per-block "currently above stress".
    stress: [bool; NUM_THERMAL],
    /// Plain local counters (flushed to the registry at run end — the run
    /// loop is single-threaded, so per-event atomics would be overhead).
    duty_changes: u64,
    emergency_entries: u64,
    stress_entries: u64,
    sensor_reads: u64,
    pub(crate) thermal_steps: u64,
    supervisor_caps: u64,
    park_transitions: u64,
    /// Host-time accumulators for the non-pipeline phases.
    power_nanos: u64,
    power_calls: u64,
    thermal_nanos: u64,
    thermal_calls: u64,
    controller_nanos: u64,
    controller_calls: u64,
}

impl TelemetryState {
    fn new(cfg: &TelemetryConfig) -> TelemetryState {
        TelemetryState::with_core(cfg, 0)
    }

    /// A collector whose events are tagged with `core_id`.
    pub(crate) fn with_core(cfg: &TelemetryConfig, core_id: usize) -> TelemetryState {
        let registry = cfg.metrics.then(sim_metrics_registry);
        let (temp_idx, duty_idx) = registry.as_ref().map_or((0, 0), |reg| {
            (
                reg.histogram_index(HIST_HOTTEST_TEMP),
                reg.histogram_index(HIST_FETCH_DUTY),
            )
        });
        TelemetryState {
            events: cfg.events.map(|e| EventTrace::new(e.capacity, e.stride)),
            registry,
            temp_idx,
            duty_idx,
            phases: cfg.phases,
            core_id,
            emerg: [false; NUM_THERMAL],
            stress: [false; NUM_THERMAL],
            duty_changes: 0,
            emergency_entries: 0,
            stress_entries: 0,
            sensor_reads: 0,
            thermal_steps: 0,
            supervisor_caps: 0,
            park_transitions: 0,
            power_nanos: 0,
            power_calls: 0,
            thermal_nanos: 0,
            thermal_calls: 0,
            controller_nanos: 0,
            controller_calls: 0,
        }
    }

    /// Per-cycle threshold edge detection and temperature histogram.
    ///
    /// `hottest` is the per-cycle maximum temperature, computed once by
    /// the run loop and passed through (this method used to refold it
    /// from `temps`, duplicating the loop's scan).
    pub(crate) fn observe_cycle(
        &mut self,
        cycle: u64,
        temps: &[f64],
        hottest: f64,
        emergency: f64,
        stress: f64,
    ) {
        for (block, &t) in temps.iter().enumerate() {
            let e_now = t > emergency;
            if e_now != self.emerg[block] {
                self.emerg[block] = e_now;
                if e_now {
                    self.emergency_entries += 1;
                }
                if let Some(trace) = &mut self.events {
                    trace.record(Event::ThermalEdge {
                        cycle,
                        core: self.core_id,
                        block,
                        threshold: ThresholdKind::Emergency,
                        entered: e_now,
                    });
                }
            }
            let s_now = t > stress;
            if s_now != self.stress[block] {
                self.stress[block] = s_now;
                if s_now {
                    self.stress_entries += 1;
                }
                if let Some(trace) = &mut self.events {
                    trace.record(Event::ThermalEdge {
                        cycle,
                        core: self.core_id,
                        block,
                        threshold: ThresholdKind::Stress,
                        entered: s_now,
                    });
                }
            }
        }
        if let Some(reg) = &self.registry {
            reg.histogram_at(self.temp_idx).record(hottest);
        }
    }

    /// Whether dense per-sample events (sensor reads, controller samples)
    /// are due on the `index`-th DTM sample. `false` when the event ring
    /// is disabled.
    pub(crate) fn sample_due(&self, index: u64) -> bool {
        self.events
            .as_ref()
            .is_some_and(|trace| trace.sample_due(index))
    }

    /// Records one [`Event::SensorRead`] per block (call only when
    /// [`sample_due`](TelemetryState::sample_due)).
    pub(crate) fn record_sensor_reads(&mut self, cycle: u64, sensed: &[f64]) {
        self.sensor_reads += sensed.len() as u64;
        if let Some(trace) = &mut self.events {
            for (block, &reading) in sensed.iter().enumerate() {
                trace.record(Event::SensorRead {
                    cycle,
                    core: self.core_id,
                    block,
                    reading,
                });
            }
        }
    }

    /// Records one controller-internals event (call only when
    /// [`sample_due`](TelemetryState::sample_due)).
    pub(crate) fn record_controller(&mut self, cycle: u64, block: usize, s: &PidSample) {
        if let Some(trace) = &mut self.events {
            trace.record(Event::Controller {
                cycle,
                core: self.core_id,
                sample: ControllerSample {
                    block,
                    error: s.error,
                    p_term: s.p_term,
                    i_term: s.i_term,
                    d_term: s.d_term,
                    integral_pre_clamp: s.integral_pre_clamp,
                    integral: s.integral,
                    output: s.output,
                    saturated: s.saturated,
                },
            });
        }
    }

    /// Records the commanded fetch duty into its histogram (every DTM
    /// sample, not strided).
    pub(crate) fn record_duty_hist(&mut self, duty: f64) {
        if let Some(reg) = &self.registry {
            reg.histogram_at(self.duty_idx).record(duty);
        }
    }

    /// Records an applied duty-level change.
    pub(crate) fn record_duty_change(&mut self, cycle: u64, from: f64, to: f64) {
        self.duty_changes += 1;
        if let Some(trace) = &mut self.events {
            trace.record(Event::DutyChange {
                cycle,
                core: self.core_id,
                from,
                to,
            });
        }
    }

    /// Counts a supervisor duty cap imposed on this core (the event
    /// itself goes to the chip-level ring, owned by `MulticoreSim`).
    pub(crate) fn bump_supervisor_cap(&mut self) {
        self.supervisor_caps += 1;
    }

    /// Counts a park/unpark transition of this core (the event itself
    /// goes to the chip-level ring).
    pub(crate) fn bump_park(&mut self) {
        self.park_transitions += 1;
    }

    /// Converts the in-flight state into the final [`Telemetry`]: flushes
    /// the local counters into the registry and assembles the phase
    /// profile from the core's stage timers and the loop's accumulators.
    pub(crate) fn flush(
        self,
        core: &Core,
        cycles: u64,
        samples: u64,
        stage_nanos_start: [u64; 6],
        core_cycles_start: u64,
    ) -> Telemetry {
        if let Some(reg) = &self.registry {
            reg.counter("cycles").add(cycles);
            reg.counter("thermal_steps").add(self.thermal_steps);
            reg.counter("dtm_samples").add(samples);
            reg.counter("duty_changes").add(self.duty_changes);
            reg.counter("emergency_entries").add(self.emergency_entries);
            reg.counter("stress_entries").add(self.stress_entries);
            reg.counter("sensor_reads").add(self.sensor_reads);
            reg.counter("supervisor_caps").add(self.supervisor_caps);
            reg.counter("core_parks").add(self.park_transitions);
            if let Some(trace) = &self.events {
                reg.counter("events_recorded").add(trace.recorded());
                reg.counter("events_dropped").add(trace.dropped());
            }
        }
        let phases = self.phases.then(|| {
            let mut profile = PhaseProfile::new();
            let stage = core.stage_nanos();
            let core_cycles = core.stats().cycles - core_cycles_start;
            const STAGES: [Phase; 6] = [
                Phase::Commit,
                Phase::Writeback,
                Phase::Issue,
                Phase::Dispatch,
                Phase::Decode,
                Phase::Fetch,
            ];
            for (i, phase) in STAGES.into_iter().enumerate() {
                profile.add(phase, stage[i] - stage_nanos_start[i], core_cycles);
            }
            profile.add(Phase::Power, self.power_nanos, self.power_calls);
            profile.add(Phase::ThermalStep, self.thermal_nanos, self.thermal_calls);
            profile.add(
                Phase::Controller,
                self.controller_nanos,
                self.controller_calls,
            );
            profile
        });
        Telemetry {
            events: self.events,
            metrics: self.registry,
            phases,
        }
    }
}

#[derive(Clone, Debug)]
struct PowerTraceRecorder {
    stride: u64,
    acc: [f64; NUM_THERMAL],
    acc_total: f64,
    count: u64,
    trace: crate::replay::PowerTrace,
}

/// A downsampled time series of the run: block temperatures, total power,
/// and fetch duty, sampled every `stride` cycles.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Cycles between samples.
    pub stride: u64,
    /// Cycle numbers of the samples.
    pub cycles: Vec<u64>,
    /// Per-sample block temperatures, in `THERMAL_BLOCKS` order.
    pub temperatures: Vec<[f64; NUM_THERMAL]>,
    /// Per-sample total chip power (W).
    pub power: Vec<f64>,
    /// Per-sample fetch duty currently applied.
    pub duty: Vec<f64>,
}

impl Trace {
    fn new(stride: u64) -> Trace {
        Trace {
            stride,
            cycles: Vec::new(),
            temperatures: Vec::new(),
            power: Vec::new(),
            duty: Vec::new(),
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// The maximum temperature of block `i` across the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `i` out of range.
    pub fn max_temperature(&self, i: usize) -> f64 {
        self.temperatures
            .iter()
            .map(|t| t[i])
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The once-per-run classification of everything the cycle loop would
/// otherwise have to test per cycle: which instrumentation is attached,
/// which optional physics are enabled, and whether DTM commands apply
/// directly. [`Simulator::run`] resolves a plan once, then dispatches to
/// a loop specialized for it.
#[derive(Clone, Copy, Debug)]
struct RunPlan {
    /// Telemetry collection is attached (events, metrics, or phases).
    telemetry: bool,
    /// Host-time phase profiling is on (times the power / thermal /
    /// controller sections with `Instant`; implies `telemetry`).
    phases: bool,
    /// Temperature proxies are attached (Tables 9/10 bookkeeping).
    proxies: bool,
    /// Downsampled trace recording is on.
    trace: bool,
    /// Power-trace recording is on.
    power_trace: bool,
    /// Temperature-dependent leakage feedback is enabled.
    leakage: bool,
    /// The run starts with a warm-start window (first sampling interval).
    warm_start: bool,
    /// DTM commands are interrupt-delayed — or a delayed command is still
    /// queued from a previous run — so the pending queue must be polled.
    interrupt: bool,
}

impl RunPlan {
    fn classify(sim: &Simulator) -> RunPlan {
        RunPlan {
            telemetry: sim.telemetry.is_some(),
            phases: sim.telemetry.as_deref().is_some_and(|ts| ts.phases),
            proxies: !sim.proxies.is_empty(),
            trace: sim.trace.is_some(),
            power_trace: sim.power_trace.is_some(),
            leakage: sim.cfg.leakage.is_some(),
            warm_start: sim.cfg.warm_start,
            interrupt: !matches!(sim.cfg.dtm.mechanism, TriggerMechanism::Direct)
                || !sim.pending.is_empty(),
        }
    }

    /// Whether the specialized uninstrumented loop applies: no observer
    /// is attached and commands apply directly, so nothing can observe or
    /// perturb the simulation between consecutive DTM-sample boundaries.
    fn fast(&self) -> bool {
        !(self.telemetry || self.proxies || self.trace || self.power_trace || self.interrupt)
    }
}

/// Post-warmup accumulators shared by the fast and reference loops — and
/// by the multicore simulator, which keeps one per core. The report is
/// assembled from this struct alone ([`finalize_report`]), so every loop
/// finalizes through one code path and a given simulation yields
/// byte-identical reports whichever loop ran it.
pub(crate) struct RunAccum {
    pub(crate) cycle: u64,
    pub(crate) counted_cycles: u64,
    pub(crate) committed_at_count_start: u64,
    pub(crate) wall_time: f64,
    pub(crate) sum_power: f64,
    pub(crate) max_power: f64,
    pub(crate) emergency_cycles: u64,
    pub(crate) stress_cycles: u64,
    pub(crate) block_sum_t: [f64; NUM_THERMAL],
    pub(crate) block_max_t: [f64; NUM_THERMAL],
    pub(crate) block_emerg: [u64; NUM_THERMAL],
    pub(crate) block_stress: [u64; NUM_THERMAL],
    pub(crate) block_sum_p: [f64; NUM_THERMAL],
    pub(crate) block_max_p: [f64; NUM_THERMAL],
    pub(crate) samples: u64,
}

impl RunAccum {
    pub(crate) fn new() -> RunAccum {
        RunAccum {
            cycle: 0,
            counted_cycles: 0,
            committed_at_count_start: 0,
            wall_time: 0.0,
            sum_power: 0.0,
            max_power: 0.0,
            emergency_cycles: 0,
            stress_cycles: 0,
            block_sum_t: [0.0; NUM_THERMAL],
            block_max_t: [f64::NEG_INFINITY; NUM_THERMAL],
            block_emerg: [0; NUM_THERMAL],
            block_stress: [0; NUM_THERMAL],
            block_sum_p: [0.0; NUM_THERMAL],
            block_max_p: [0.0; NUM_THERMAL],
            samples: 0,
        }
    }

    /// Folds one counted cycle into the accumulators. The arithmetic and
    /// its order are shared verbatim by both loops — that sharing is what
    /// makes their reports byte-identical.
    #[inline(always)]
    pub(crate) fn record_cycle(
        &mut self,
        temps: &[f64; NUM_THERMAL],
        thermal_powers: &[f64; NUM_THERMAL],
        total_power: f64,
        dt_wall: f64,
        emergency: f64,
        stress: f64,
    ) {
        self.counted_cycles += 1;
        self.wall_time += dt_wall;
        self.sum_power += total_power;
        self.max_power = self.max_power.max(total_power);
        let mut any_e = false;
        let mut any_s = false;
        for i in 0..NUM_THERMAL {
            let t = temps[i];
            self.block_sum_t[i] += t;
            self.block_max_t[i] = self.block_max_t[i].max(t);
            if t > emergency {
                self.block_emerg[i] += 1;
                any_e = true;
            }
            if t > stress {
                self.block_stress[i] += 1;
                any_s = true;
            }
            self.block_sum_p[i] += thermal_powers[i];
            self.block_max_p[i] = self.block_max_p[i].max(thermal_powers[i]);
        }
        if any_e {
            self.emergency_cycles += 1;
        }
        if any_s {
            self.stress_cycles += 1;
        }
    }
}

/// The warm-start jump applied at the end of the first sampling interval:
/// every block jumps to the steady state of its observed average power,
/// capped at the policy's control ceiling (under DTM the machine could
/// never have reached a temperature the policy would have prevented — the
/// setpoint for control-theoretic policies, the trigger for the threshold
/// policies). Shared by both single-core run loops and, per core, by the
/// multicore simulator.
pub(crate) fn warm_start_jump(
    thermal: &mut BlockModel,
    dtm: &tdtm_dtm::DtmConfig,
    warm_start_power: &mut [f64; NUM_THERMAL],
    interval: u64,
) {
    for p in warm_start_power.iter_mut() {
        *p /= interval as f64;
    }
    thermal.warm_start(&warm_start_power[..]);
    if dtm.policy != tdtm_dtm::PolicyKind::None {
        let ceiling = if dtm.policy.is_control_theoretic() {
            dtm.setpoint
        } else {
            dtm.trigger
        };
        for i in 0..NUM_THERMAL {
            let t = thermal.temperatures()[i];
            if t > ceiling {
                thermal.set_temperature(i, ceiling);
            }
        }
    }
}

/// Assembles a [`RunReport`] from one core's accumulators — the single
/// code path every run loop (fast, reference, and per-core multicore)
/// finalizes through, which is what makes their reports byte-identical.
pub(crate) fn finalize_report(
    name: &str,
    policy: &dyn DtmPolicy,
    params: &[tdtm_thermal::BlockParams],
    stats: &tdtm_uarch::CoreStats,
    bpred_accuracy: f64,
    acc: &RunAccum,
) -> RunReport {
    let committed = stats.committed.saturating_sub(acc.committed_at_count_start);
    let n = acc.counted_cycles.max(1) as f64;
    let blocks = (0..NUM_THERMAL)
        .map(|i| BlockMetrics {
            name: params[i].name.clone(),
            avg_temp: acc.block_sum_t[i] / n,
            max_temp: if acc.block_max_t[i].is_finite() {
                acc.block_max_t[i]
            } else {
                0.0
            },
            emergency_cycles: acc.block_emerg[i],
            stress_cycles: acc.block_stress[i],
            avg_power: acc.block_sum_p[i] / n,
            max_power: acc.block_max_p[i],
        })
        .collect();
    let avg_power = acc.sum_power / n;
    RunReport {
        name: name.to_string(),
        policy: policy.kind().to_string(),
        cycles: acc.counted_cycles,
        total_cycles: acc.cycle,
        committed,
        wall_time: acc.wall_time,
        ipc: committed as f64 / n,
        avg_power,
        max_power: acc.max_power,
        avg_chip_temp: crate::config::table4_chip_temp(avg_power),
        emergency_cycles: acc.emergency_cycles,
        stress_cycles: acc.stress_cycles,
        blocks,
        samples: acc.samples,
        engaged_samples: policy.engaged_samples(),
        recoveries: stats.recoveries,
        bpred_accuracy,
        gated_cycles: stats.gated_cycles,
    }
}

impl Simulator {
    /// Builds a simulator over an arbitrary program (no warmup skip).
    pub fn new(cfg: SimConfig, program: Program) -> Simulator {
        let name = program.name.clone();
        Simulator::build(cfg, std::sync::Arc::new(program), &name, 0, None)
    }

    /// Builds a simulator for a suite workload, honoring its functional
    /// warmup skip.
    pub fn for_workload(cfg: SimConfig, workload: &Workload) -> Simulator {
        Simulator::build(
            cfg,
            workload.program_shared(),
            workload.name,
            workload.warmup_insts,
            None,
        )
    }

    /// [`for_workload`](Simulator::for_workload) with a prebuilt, shared
    /// power model. The caller must have built `power` from this exact
    /// `cfg.power`/`cfg.core` pair (the experiment engine caches one model
    /// per distinct pair across grid cells).
    pub fn for_workload_with_power(
        cfg: SimConfig,
        workload: &Workload,
        power: std::sync::Arc<PowerModel>,
    ) -> Simulator {
        Simulator::build(
            cfg,
            workload.program_shared(),
            workload.name,
            workload.warmup_insts,
            Some(power),
        )
    }

    fn build(
        cfg: SimConfig,
        program: std::sync::Arc<Program>,
        name: &str,
        skip: u64,
        power: Option<std::sync::Arc<PowerModel>>,
    ) -> Simulator {
        let core = Core::with_skip_shared(cfg.core, program, skip);
        let power =
            power.unwrap_or_else(|| std::sync::Arc::new(PowerModel::new(&cfg.power, &cfg.core)));
        let thermal = BlockModel::new(cfg.blocks.clone(), cfg.heatsink_temp, cfg.cycle_time());
        let policy = build_policy_at(&cfg.dtm, cfg.core.clock_hz);
        Simulator {
            core,
            power,
            thermal,
            policy,
            sensors: SensorModel::ideal(),
            proxies: Vec::new(),
            name: name.to_string(),
            pending: VecDeque::new(),
            resync_remaining: 0,
            vf_power_scale: 1.0,
            vf_freq_scale: 1.0,
            vf_engaged: false,
            duty_history: Vec::new(),
            trace: None,
            power_trace: None,
            telemetry: None,
            collected: None,
            reference_loop: false,
            skip: skip_default(),
            skip_closed: closed_form_default(),
            log_skip_windows: false,
            skip_windows: Vec::new(),
            cfg,
        }
    }

    /// Enables telemetry collection for the next [`run`](Simulator::run).
    /// The collected [`Telemetry`] is available from
    /// [`telemetry`](Simulator::telemetry) afterwards. Collection never
    /// changes the simulation: the [`RunReport`] is byte-identical with
    /// telemetry on or off.
    pub fn enable_telemetry(&mut self, cfg: &TelemetryConfig) {
        if cfg.phases {
            self.core.set_stage_profiling(true);
        }
        self.telemetry = Some(Box::new(TelemetryState::new(cfg)));
    }

    /// The telemetry collected by the last run, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.collected.as_ref()
    }

    /// Takes ownership of the collected telemetry.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.collected.take()
    }

    /// Enables downsampled trace recording (one sample every `stride`
    /// cycles). Call before [`run`](Simulator::run).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn record_trace(&mut self, stride: u64) {
        assert!(stride > 0, "stride must be nonzero");
        self.trace = Some(Trace::new(stride));
    }

    /// The recorded trace, if [`record_trace`](Simulator::record_trace)
    /// was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Enables power-trace recording: stride-mean per-block powers
    /// suitable for open-loop thermal replay (see [`crate::replay`]).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn record_power_trace(&mut self, stride: u64) {
        assert!(stride > 0, "stride must be nonzero");
        self.power_trace = Some(PowerTraceRecorder {
            stride,
            acc: [0.0; NUM_THERMAL],
            acc_total: 0.0,
            count: 0,
            trace: crate::replay::PowerTrace::new(self.cfg.cycle_time() * stride as f64, stride),
        });
    }

    /// The recorded power trace, if enabled.
    pub fn power_trace(&self) -> Option<&crate::replay::PowerTrace> {
        self.power_trace.as_ref().map(|r| &r.trace)
    }

    /// Replaces the ideal sensors (for the sensor-fidelity ablation).
    pub fn set_sensors(&mut self, sensors: SensorModel) {
        self.sensors = sensors;
    }

    /// Attaches a per-structure boxcar power proxy with the given window,
    /// for the Tables 9/10 comparison.
    pub fn add_structure_proxy(&mut self, window: usize) {
        self.proxies.push(ProxyAttachment {
            label: format!("structure {window}"),
            kind: ProxyKind::PerStructure {
                boxcars: vec![BoxcarProxy::new(window); NUM_THERMAL],
            },
            counts: vec![AgreementCounts::new(); NUM_THERMAL],
        });
    }

    /// Attaches a chip-wide boxcar power proxy triggering at
    /// `threshold_w` watts.
    pub fn add_chipwide_proxy(&mut self, window: usize, threshold_w: f64) {
        self.proxies.push(ProxyAttachment {
            label: format!("chip-wide {window}"),
            kind: ProxyKind::ChipWide {
                boxcar: BoxcarProxy::new(window),
                threshold_w,
            },
            counts: vec![AgreementCounts::new()],
        });
    }

    /// The attached proxies and their agreement counts (after [`run`]).
    ///
    /// [`run`]: Simulator::run
    pub fn proxies(&self) -> &[ProxyAttachment] {
        &self.proxies
    }

    /// Sampled fetch-duty history (one entry per DTM sample).
    pub fn duty_history(&self) -> &[f64] {
        &self.duty_history
    }

    /// Current block temperatures (for tracing examples).
    pub fn temperatures(&self) -> &[f64] {
        self.thermal.temperatures()
    }

    /// Forces the fully instrumented reference loop even when a run
    /// qualifies for the specialized fast loop. This is a validation
    /// knob: the byte-identity tests run the same simulation through
    /// both loops and compare the reports.
    pub fn set_reference_loop(&mut self, on: bool) {
        self.reference_loop = on;
    }

    /// Enables or disables idle-gap skipping in the fast loop,
    /// overriding the `TDTM_SKIP` default. Skipping never changes the
    /// report: a gated, drained, or resync-stalled window is advanced
    /// with the same per-cycle arithmetic the loop would have executed,
    /// so [`RunReport`]s stay byte-identical either way (pinned by
    /// `tests/hot_loop_identity.rs`).
    pub fn set_skip(&mut self, on: bool) {
        self.skip = on;
    }

    /// Opts *uncounted* skipped windows into the `powf` closed form
    /// (one exponentiation instead of a k-cycle fold), overriding the
    /// `TDTM_SKIP_CLOSED` default. The closed form rounds differently
    /// from the per-cycle recurrence, so this trades byte-identity for
    /// speed; the drift is property-tested to stay within
    /// `1e-9 · max(T − heatsink, 1)` per window.
    pub fn set_skip_closed(&mut self, on: bool) {
        self.skip_closed = on;
    }

    /// Enables skip-window logging for the next [`run`](Simulator::run):
    /// each fast-forwarded window is recorded with its start/end cycle
    /// and reason, available from
    /// [`skip_windows`](Simulator::skip_windows) afterwards.
    pub fn record_skip_windows(&mut self) {
        self.log_skip_windows = true;
    }

    /// The skip-window log of the last run (empty unless
    /// [`record_skip_windows`](Simulator::record_skip_windows) was
    /// enabled and the fast loop actually skipped).
    pub fn skip_windows(&self) -> &[SkipWindow] {
        &self.skip_windows
    }

    /// Runs to the configured instruction budget and returns the report.
    ///
    /// The loop is specialized once per run (via an internal run plan):
    /// an uninstrumented run — no telemetry, proxies, or traces, and
    /// direct DTM triggering — takes a chunked loop that advances
    /// straight to the next DTM-sample or stop boundary with no
    /// per-cycle `Option` tests; anything instrumented takes the
    /// reference loop. Both loops fold into one accumulator and finalize
    /// through one code path, and their reports are byte-identical
    /// (pinned by tests).
    pub fn run(&mut self) -> RunReport {
        let plan = RunPlan::classify(self);
        let mut acc = RunAccum::new();
        self.skip_windows.clear();
        // Detach the telemetry state from `self` for the duration of the
        // loop so its mutable borrows stay disjoint from the simulator's
        // components; reattached as `collected` at the end.
        let mut tstate = self.telemetry.take();
        let stage_nanos_start = self.core.stage_nanos();
        let core_cycles_start = self.core.stats().cycles;

        if plan.fast() && !self.reference_loop {
            if plan.leakage {
                self.run_fast::<true>(&mut acc, plan);
            } else {
                self.run_fast::<false>(&mut acc, plan);
            }
        } else {
            self.run_reference(&mut acc, plan, &mut tstate);
        }

        if let Some(ts) = tstate {
            self.collected = Some(ts.flush(
                &self.core,
                acc.cycle,
                acc.samples,
                stage_nanos_start,
                core_cycles_start,
            ));
        }
        self.finalize(&acc)
    }

    /// The specialized uninstrumented cycle loop.
    ///
    /// Eligibility ([`RunPlan::fast`]) guarantees nothing observes or
    /// perturbs the simulation between consecutive DTM-sample
    /// boundaries, so the loop runs in chunks that end exactly on the
    /// next boundary and samples once per chunk instead of testing
    /// `(cycle + 1) % interval` every cycle. Leakage is monomorphized
    /// out via `LEAK`, and the power-scale / leakage-add / exact-decay
    /// passes are fused into one sweep over the blocks
    /// ([`BlockModel::step_fused`]) with bit-identical arithmetic.
    ///
    /// Boundary math: DTM samples fire on cycles where
    /// `(cycle + 1) % interval == 0` — the *last* cycle of each
    /// interval-aligned chunk — so from any `cycle` the boundary is
    /// `interval - cycle % interval` cycles ahead, inclusive. Stop
    /// conditions (instruction budget, cycle budget, program halt) can
    /// fire mid-chunk and are still checked every cycle, in exactly the
    /// reference loop's order; a mid-chunk stop skips the boundary
    /// sample just as the reference loop would.
    ///
    /// Idle-gap skipping: when the core proves a k-cycle window idle
    /// ([`Core::idle_window`]: fetch gated shut or the pipeline drained
    /// against a known wake cycle) — or the loop is inside a V/f resync
    /// stall — every cycle in the window draws the same idle power, so
    /// the loop folds the window with a constant-power thermal kernel
    /// ([`BlockModel::step_gap_observed`] /
    /// [`BlockModel::step_gap_fixed`]) and jumps the cycle counter,
    /// never touching the pipeline. The fold iterates the per-cycle
    /// recurrence in the same order with the same bits, and counted
    /// cycles still fold into the accumulator one at a time, so reports
    /// stay byte-identical with the non-skipping loops. Windows are
    /// clipped to the chunk boundary (the boundary's DTM sample always
    /// runs), the cycle budget, and the warmup boundary (so `counting`
    /// is uniform across a fold); no window starts inside the
    /// warm-start window (its per-cycle power accumulation must run) or
    /// under temperature-dependent leakage (power varies with T).
    fn run_fast<const LEAK: bool>(&mut self, acc: &mut RunAccum, plan: RunPlan) {
        let interval = self.cfg.dtm.sample_interval.max(1);
        let emergency = self.cfg.dtm.emergency;
        let stress = emergency - 1.0;
        let nominal_dt = self.cfg.cycle_time();
        let warmup = self.cfg.thermal_warmup_cycles;
        let idle_sample = self.power.cycle_power(&tdtm_uarch::Activity::new());
        let mut sensed = [0.0f64; NUM_THERMAL];
        let mut warm_start_power = [0.0f64; NUM_THERMAL];
        let warm_window = if plan.warm_start { interval } else { 0 };
        let leak = self.cfg.leakage;
        // Peak powers hoisted so the leakage closure does not borrow
        // `self.power` while `self.thermal` is mutably borrowed.
        let peaks: [f64; NUM_THERMAL] =
            std::array::from_fn(|i| self.power.peak(tdtm_uarch::activity::THERMAL_BLOCKS[i]));

        let skip = self.skip && !LEAK;

        'run: loop {
            let mut remaining = interval - acc.cycle % interval;
            while remaining > 0 {
                let counting = acc.cycle >= warmup;
                if counting && acc.counted_cycles == 0 {
                    acc.committed_at_count_start = self.core.stats().committed;
                }
                // Stop conditions.
                if self
                    .core
                    .stats()
                    .committed
                    .saturating_sub(acc.committed_at_count_start)
                    >= self.cfg.max_insts
                    && counting
                {
                    break 'run;
                }
                if acc.cycle >= self.cfg.max_cycles || self.core.finished() {
                    break 'run;
                }

                // Idle-gap fast-forward. Inside a window nothing the
                // stop conditions read can change (the pipeline is
                // untouched, so `committed` and `finished` are frozen;
                // the cycle budget caps the window), so checking them
                // once at entry matches the per-cycle reference order.
                if skip && acc.cycle >= warm_window {
                    let mut cap = remaining.min(self.cfg.max_cycles - acc.cycle);
                    if acc.cycle < warmup {
                        cap = cap.min(warmup - acc.cycle);
                    }
                    let window = if self.resync_remaining > 0 {
                        Some((self.resync_remaining.min(cap), SkipReason::Resync))
                    } else {
                        self.core.idle_window(cap).map(|(len, kind)| {
                            let reason = match kind {
                                IdleKind::Gated => SkipReason::Gated,
                                IdleKind::Drained => SkipReason::Drained,
                            };
                            (len, reason)
                        })
                    };
                    if let Some((k, reason)) = window {
                        if k >= MIN_SKIP_WINDOW {
                            // Every skipped cycle draws the bitwise-same
                            // idle power sample, so pre-scaling once is
                            // exactly the per-cycle `step_scaled` bits.
                            let scale = self.vf_power_scale;
                            let mut gap_powers = idle_sample.thermal_powers();
                            for p in &mut gap_powers {
                                *p *= scale;
                            }
                            let gap_total = idle_sample.total * scale;
                            if counting {
                                let dt_wall = nominal_dt / self.vf_freq_scale;
                                let acc = &mut *acc;
                                self.thermal.step_gap_observed(&gap_powers, k, |temps| {
                                    acc.record_cycle(
                                        temps,
                                        &gap_powers,
                                        gap_total,
                                        dt_wall,
                                        emergency,
                                        stress,
                                    );
                                });
                            } else if self.skip_closed {
                                self.thermal.step_gap_closed(&gap_powers, k);
                            } else {
                                self.thermal.step_gap_fixed(&gap_powers, k);
                            }
                            if reason == SkipReason::Resync {
                                self.resync_remaining -= k;
                            } else {
                                self.core.skip_idle(k);
                            }
                            if self.log_skip_windows {
                                self.skip_windows.push(SkipWindow {
                                    start: acc.cycle,
                                    end: acc.cycle + k,
                                    reason,
                                });
                            }
                            acc.cycle += k;
                            remaining -= k;
                            continue;
                        }
                    }
                }

                // One machine cycle (or a resync-stall cycle).
                let sample = if self.resync_remaining > 0 {
                    self.resync_remaining -= 1;
                    idle_sample
                } else {
                    self.power.cycle_power(self.core.cycle())
                };
                let scale = self.vf_power_scale;
                let mut thermal_powers = sample.thermal_powers();
                let mut total_power = sample.total * scale;
                if LEAK {
                    let leak = leak.expect("LEAK implies a leakage model");
                    self.thermal.step_fused(
                        &mut thermal_powers,
                        scale,
                        &mut total_power,
                        // Leakage scales with V (roughly linearly through
                        // V·I_leak); reuse the dynamic scale conservatively.
                        |i, t| leak.leakage_power(peaks[i], t) * scale,
                    );
                } else {
                    self.thermal.step_scaled(&mut thermal_powers, scale);
                }

                if acc.cycle < warm_window {
                    for i in 0..NUM_THERMAL {
                        warm_start_power[i] += thermal_powers[i];
                    }
                    if acc.cycle + 1 == interval {
                        self.apply_warm_start(&mut warm_start_power, interval);
                    }
                }

                if counting {
                    let temps = self.thermal.temperatures_fixed();
                    acc.record_cycle(
                        temps,
                        &thermal_powers,
                        total_power,
                        nominal_dt / self.vf_freq_scale,
                        emergency,
                        stress,
                    );
                }
                acc.cycle += 1;
                remaining -= 1;
            }

            // DTM sample at the chunk boundary: the cycle just executed
            // satisfied `(cycle + 1) % interval == 0` before the
            // increment, and in Direct mode the reference loop applies
            // the command within that same cycle's body with nothing in
            // between, so sampling after the chunk is bit-equivalent.
            let sample_cycle = acc.cycle - 1;
            let temps = self.thermal.temperatures_fixed::<NUM_THERMAL>();
            self.sensors.read_all(&temps[..], &mut sensed);
            let cmd = self.policy.sample(&sensed);
            acc.samples += 1;
            self.duty_history.push(cmd.fetch_duty);
            self.apply(sample_cycle, cmd, &mut None);
        }
    }

    /// The fully instrumented reference cycle loop: telemetry, proxies,
    /// traces, phase timing, and interrupt-delayed DTM all live here.
    #[allow(clippy::too_many_lines)]
    fn run_reference(
        &mut self,
        acc: &mut RunAccum,
        plan: RunPlan,
        tstate: &mut Option<Box<TelemetryState>>,
    ) {
        let interval = self.cfg.dtm.sample_interval.max(1);
        let emergency = self.cfg.dtm.emergency;
        let stress = emergency - 1.0;
        let nominal_dt = self.cfg.cycle_time();
        let warmup = self.cfg.thermal_warmup_cycles;
        let idle_sample = self.power.cycle_power(&tdtm_uarch::Activity::new());
        let mut sensed = [0.0f64; NUM_THERMAL];
        let mut warm_start_power = [0.0f64; NUM_THERMAL];
        let warm_window = if plan.warm_start { interval } else { 0 };
        // Per-block thermal resistances and the heatsink temperature are
        // run constants; hoisted for the proxy bookkeeping (this used to
        // collect a fresh `Vec<f64>` every cycle).
        let proxy_rs: [f64; NUM_THERMAL] = std::array::from_fn(|i| self.thermal.params()[i].r);
        let heatsink = self.thermal.heatsink();

        loop {
            let counting = acc.cycle >= warmup;
            if counting && acc.counted_cycles == 0 {
                acc.committed_at_count_start = self.core.stats().committed;
            }
            // Stop conditions.
            if self
                .core
                .stats()
                .committed
                .saturating_sub(acc.committed_at_count_start)
                >= self.cfg.max_insts
                && counting
            {
                break;
            }
            if acc.cycle >= self.cfg.max_cycles || self.core.finished() {
                break;
            }

            // One machine cycle (or a resync-stall cycle).
            let sample = if self.resync_remaining > 0 {
                self.resync_remaining -= 1;
                idle_sample
            } else {
                let activity = self.core.cycle();
                if plan.phases {
                    let start = Instant::now();
                    let sample = self.power.cycle_power(activity);
                    let ts = tstate.as_deref_mut().expect("phases implies telemetry");
                    ts.power_nanos += start.elapsed().as_nanos() as u64;
                    ts.power_calls += 1;
                    sample
                } else {
                    self.power.cycle_power(activity)
                }
            };
            let scale = self.vf_power_scale;
            let mut thermal_powers = sample.thermal_powers();
            for p in &mut thermal_powers {
                *p *= scale;
            }
            let mut total_power = sample.total * scale;
            // Optional temperature-dependent leakage (extension): leakage
            // at the block's *current* temperature adds to the power that
            // heats it this cycle — the feedback loop.
            if let Some(leak) = self.cfg.leakage {
                let temps_now = self.thermal.temperatures();
                for (i, b) in tdtm_uarch::activity::THERMAL_BLOCKS.iter().enumerate() {
                    // Leakage scales with V (roughly linearly through
                    // V·I_leak); reuse the dynamic scale conservatively.
                    let lp = leak.leakage_power(self.power.peak(*b), temps_now[i]) * scale;
                    thermal_powers[i] += lp;
                    total_power += lp;
                }
            }
            if plan.phases {
                let start = Instant::now();
                self.thermal.step(&thermal_powers);
                let ts = tstate.as_deref_mut().expect("phases implies telemetry");
                ts.thermal_nanos += start.elapsed().as_nanos() as u64;
                ts.thermal_calls += 1;
                ts.thermal_steps += 1;
            } else {
                self.thermal.step(&thermal_powers);
                if let Some(ts) = tstate.as_deref_mut() {
                    ts.thermal_steps += 1;
                }
            }

            // Warm start: after the first sampling interval, jump blocks
            // to the steady state of the observed average power.
            if acc.cycle < warm_window {
                for i in 0..NUM_THERMAL {
                    warm_start_power[i] += thermal_powers[i];
                }
                if acc.cycle + 1 == interval {
                    self.apply_warm_start(&mut warm_start_power, interval);
                }
            }

            let temps = self.thermal.temperatures();
            if let Some(ts) = tstate.as_deref_mut() {
                // The per-cycle hottest-block fold is computed once here
                // and shared with the histogram record inside
                // `observe_cycle`.
                let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                ts.observe_cycle(acc.cycle, temps, hottest, emergency, stress);
            }
            if counting {
                let temps: &[f64; NUM_THERMAL] = temps.try_into().expect("seven thermal blocks");
                acc.record_cycle(
                    temps,
                    &thermal_powers,
                    total_power,
                    nominal_dt / self.vf_freq_scale,
                    emergency,
                    stress,
                );
            }

            // Proxy bookkeeping (Tables 9/10).
            if !self.proxies.is_empty() {
                for proxy in &mut self.proxies {
                    match &mut proxy.kind {
                        ProxyKind::PerStructure { boxcars } => {
                            for i in 0..NUM_THERMAL {
                                boxcars[i].push(thermal_powers[i]);
                                if counting {
                                    let proxy_hot = boxcars[i].triggered_thermal(
                                        proxy_rs[i],
                                        heatsink,
                                        emergency,
                                    );
                                    proxy.counts[i].record(temps[i] > emergency, proxy_hot);
                                }
                            }
                        }
                        ProxyKind::ChipWide {
                            boxcar,
                            threshold_w,
                        } => {
                            boxcar.push(total_power);
                            if counting {
                                let reference_hot = temps.iter().any(|&t| t > emergency);
                                proxy.counts[0]
                                    .record(reference_hot, boxcar.triggered(*threshold_w));
                            }
                        }
                    }
                }
            }

            // Power-trace recording.
            if let Some(rec) = &mut self.power_trace {
                for (acc, &p) in rec.acc.iter_mut().zip(&thermal_powers) {
                    *acc += p;
                }
                rec.acc_total += total_power;
                rec.count += 1;
                if rec.count == rec.stride {
                    let mean = rec.acc.map(|a| a / rec.stride as f64);
                    rec.trace.push(mean, rec.acc_total / rec.stride as f64);
                    rec.acc = [0.0; NUM_THERMAL];
                    rec.acc_total = 0.0;
                    rec.count = 0;
                }
            }

            // Trace recording. Note the stride asymmetry with DTM
            // sampling below: a trace sample fires at the *start* of each
            // stride (`cycle % stride == 0`, so the first is cycle 0),
            // while a DTM sample fires at the *end* of each interval
            // (`(cycle + 1) % interval == 0`, so the first is cycle
            // interval − 1). Pinned by tests.
            if let Some(trace) = &mut self.trace {
                if acc.cycle.is_multiple_of(trace.stride) {
                    let mut temps_arr = [0.0; NUM_THERMAL];
                    temps_arr.copy_from_slice(temps);
                    trace.cycles.push(acc.cycle);
                    trace.temperatures.push(temps_arr);
                    trace.power.push(total_power);
                    trace.duty.push(self.core.control().fetch_duty);
                }
            }

            // DTM sampling.
            if (acc.cycle + 1).is_multiple_of(interval) {
                let dtm_start = plan.phases.then(Instant::now);
                self.sensors.read_all(temps, &mut sensed);
                let cmd = match tstate.as_deref_mut() {
                    Some(ts) => {
                        // The observed and unobserved policy paths execute
                        // identical code (`sample` delegates to
                        // `sample_observed`), so the command is bit-equal
                        // either way; only the observer's bookkeeping
                        // differs. Dense per-sample events honor the
                        // trace stride; edge events never go through here.
                        let due = ts.sample_due(acc.samples);
                        if due {
                            ts.record_sensor_reads(acc.cycle, &sensed);
                        }
                        let cycle = acc.cycle;
                        let cmd = self.policy.sample_observed(&sensed, &mut |block, s| {
                            if due {
                                ts.record_controller(cycle, block, &s);
                            }
                        });
                        ts.record_duty_hist(cmd.fetch_duty);
                        cmd
                    }
                    None => self.policy.sample(&sensed),
                };
                acc.samples += 1;
                self.duty_history.push(cmd.fetch_duty);
                match self.cfg.dtm.mechanism {
                    TriggerMechanism::Direct => self.apply(acc.cycle, cmd, tstate),
                    TriggerMechanism::Interrupt { latency_cycles } => {
                        self.pending.push_back((acc.cycle + latency_cycles, cmd));
                    }
                }
                if let Some(start) = dtm_start {
                    let ts = tstate.as_deref_mut().expect("timed block implies state");
                    ts.controller_nanos += start.elapsed().as_nanos() as u64;
                    ts.controller_calls += 1;
                }
            }
            while self.pending.front().is_some_and(|&(at, _)| at <= acc.cycle) {
                let (_, cmd) = self.pending.pop_front().expect("checked");
                self.apply(acc.cycle, cmd, tstate);
            }

            acc.cycle += 1;
        }
    }

    /// Applies the warm-start jump at the end of the first sampling
    /// interval. Shared by both run loops.
    fn apply_warm_start(&mut self, warm_start_power: &mut [f64; NUM_THERMAL], interval: u64) {
        warm_start_jump(&mut self.thermal, &self.cfg.dtm, warm_start_power, interval);
    }

    /// Assembles the run report from the accumulators — one code path
    /// shared by both loops.
    fn finalize(&mut self, acc: &RunAccum) -> RunReport {
        finalize_report(
            &self.name,
            self.policy.as_ref(),
            self.thermal.params(),
            self.core.stats(),
            self.core.bpred().accuracy(),
            acc,
        )
    }

    fn apply(&mut self, cycle: u64, cmd: DtmCommand, tstate: &mut Option<Box<TelemetryState>>) {
        if let Some(ts) = tstate.as_deref_mut() {
            let from = self.core.control().fetch_duty;
            if cmd.fetch_duty != from {
                ts.record_duty_change(cycle, from, cmd.fetch_duty);
            }
        }
        self.core.set_control(CoreControl {
            fetch_duty: cmd.fetch_duty,
            fetch_width_limit: cmd.fetch_width_limit,
            max_unresolved_branches: cmd.max_unresolved_branches,
        });
        match (cmd.vf, self.vf_engaged) {
            (Some(vf), false) => {
                self.vf_engaged = true;
                self.vf_power_scale = vf.power_scale();
                self.vf_freq_scale = vf.freq_scale;
                self.thermal.set_dt(self.cfg.cycle_time() / vf.freq_scale);
                self.resync_remaining = self.cfg.dtm.vf_resync_cycles;
            }
            (None, true) => {
                self.vf_engaged = false;
                self.vf_power_scale = 1.0;
                self.vf_freq_scale = 1.0;
                self.thermal.set_dt(self.cfg.cycle_time());
                self.resync_remaining = self.cfg.dtm.vf_resync_cycles;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use tdtm_dtm::PolicyKind;
    use tdtm_isa::asm::assemble;

    fn hot_loop_program() -> Program {
        // Dense independent integer work: the hottest easy kernel.
        assemble(
            "     li x31, 2000000000
             l:   addi x5, x5, 1
                  addi x6, x6, 2
                  xor  x7, x7, x5
                  add  x8, x8, x6
                  addi x9, x9, 1
                  xor  x10, x10, x8
                  add  x11, x11, x5
                  slli x12, x6, 1
                  addi x31, x31, -1
                  bne  x31, x0, l
                  halt",
        )
        .unwrap()
    }

    fn quick(policy: PolicyKind) -> SimConfig {
        let mut cfg = SimConfig::quick_test();
        cfg.dtm.policy = policy;
        cfg
    }

    #[test]
    fn baseline_run_produces_sane_report() {
        let mut sim = Simulator::new(quick(PolicyKind::None), hot_loop_program());
        let r = sim.run();
        assert!(r.committed >= 30_000);
        assert!(r.ipc > 1.0, "ipc {}", r.ipc);
        assert!(
            r.avg_power > 10.0 && r.avg_power < 120.0,
            "power {}",
            r.avg_power
        );
        assert_eq!(r.blocks.len(), 7);
        assert!(r.blocks.iter().all(|b| b.avg_temp >= 100.0));
        assert_eq!(r.policy, "none");
    }

    #[test]
    fn hot_loop_heats_int_units_most() {
        let mut sim = Simulator::new(quick(PolicyKind::None), hot_loop_program());
        let r = sim.run();
        let hottest = r.hottest_block().expect("seven blocks");
        assert!(
            hottest.name.contains("int") || hottest.name == "regfile" || hottest.name == "bpred",
            "integer-dominated kernel should heat the int path, got {}",
            hottest.name
        );
    }

    #[test]
    fn pid_policy_engages_on_hot_code() {
        let mut cfg = quick(PolicyKind::Pid);
        cfg.max_insts = 120_000;
        // Make the workload clearly emergency-bound so the policy must act.
        cfg.heatsink_temp = 107.0;
        let mut sim = Simulator::new(cfg, hot_loop_program());
        let r = sim.run();
        assert!(r.engaged_samples > 0, "PID should engage on a hot loop");
        assert_eq!(r.emergency_cycles, 0, "PID must prevent emergencies");
    }

    #[test]
    fn no_dtm_exceeds_pid_performance_but_has_emergencies() {
        let mut base_cfg = quick(PolicyKind::None);
        base_cfg.max_insts = 120_000;
        base_cfg.heatsink_temp = 105.0;
        let mut none = Simulator::new(base_cfg.clone(), hot_loop_program());
        let r_none = none.run();
        assert!(
            r_none.emergency_cycles > 0,
            "hot loop at 105C heatsink must overheat"
        );

        let mut pid_cfg = base_cfg;
        pid_cfg.dtm.policy = PolicyKind::Pid;
        let mut pid = Simulator::new(pid_cfg, hot_loop_program());
        let r_pid = pid.run();
        let pct = r_pid.percent_of(&r_none);
        assert!(pct < 100.0 + 1e-9, "DTM can never beat no-DTM, got {pct}%");
        assert!(pct > 30.0, "PID should not destroy performance, got {pct}%");
    }

    #[test]
    fn interrupt_mechanism_still_controls() {
        let mut cfg = quick(PolicyKind::Pid);
        cfg.max_insts = 120_000;
        cfg.heatsink_temp = 107.0;
        cfg.dtm.mechanism = TriggerMechanism::Interrupt {
            latency_cycles: 250,
        };
        let mut sim = Simulator::new(cfg, hot_loop_program());
        let r = sim.run();
        assert!(r.engaged_samples > 0);
    }

    #[test]
    fn proxies_accumulate_agreement_counts() {
        let mut cfg = quick(PolicyKind::None);
        cfg.max_insts = 60_000;
        cfg.heatsink_temp = 105.0;
        let mut sim = Simulator::new(cfg, hot_loop_program());
        sim.add_structure_proxy(10_000);
        sim.add_chipwide_proxy(10_000, 47.0);
        let r = sim.run();
        let total: u64 = sim.proxies()[0].counts.iter().map(|c| c.total()).sum();
        assert_eq!(
            total,
            7 * r.cycles,
            "one record per block per counted cycle"
        );
        assert_eq!(sim.proxies()[1].counts[0].total(), r.cycles);
    }

    #[test]
    fn vf_scaling_policy_reduces_power() {
        let mut cfg = quick(PolicyKind::VfScale);
        cfg.max_insts = 120_000;
        cfg.heatsink_temp = 105.0;
        cfg.dtm.vf_resync_cycles = 100;
        let mut vf = Simulator::new(cfg.clone(), hot_loop_program());
        let r_vf = vf.run();

        let mut none_cfg = cfg;
        none_cfg.dtm.policy = PolicyKind::None;
        let mut none = Simulator::new(none_cfg, hot_loop_program());
        let r_none = none.run();

        assert!(r_vf.engaged_samples > 0, "vf policy should trigger");
        assert!(r_vf.avg_power < r_none.avg_power, "scaling must cut power");
        assert!(r_vf.insts_per_second() < r_none.insts_per_second());
    }

    #[test]
    fn leakage_extension_heats_the_chip() {
        let mut plain_cfg = quick(PolicyKind::None);
        plain_cfg.max_insts = 60_000;
        let mut leaky_cfg = plain_cfg.clone();
        leaky_cfg.leakage = Some(tdtm_power::LeakageModel::node_180nm());
        let mut plain = Simulator::new(plain_cfg, hot_loop_program());
        let mut leaky = Simulator::new(leaky_cfg, hot_loop_program());
        let r_plain = plain.run();
        let r_leaky = leaky.run();
        assert!(
            r_leaky.avg_power > r_plain.avg_power + 0.5,
            "leakage adds watts"
        );
        assert!(
            r_leaky.hottest_block().unwrap().max_temp > r_plain.hottest_block().unwrap().max_temp,
            "and therefore kelvins"
        );
    }

    #[test]
    fn pid_contains_node_scale_leakage() {
        // With 0.18 µm-class leakage, the hot loop pushes further past
        // threshold without DTM; PID still holds it at the setpoint
        // (leakage is just extra plant gain to the feedback loop).
        let mut cfg = quick(PolicyKind::Pid);
        cfg.max_insts = 120_000;
        cfg.leakage = Some(tdtm_power::LeakageModel::node_180nm());
        let mut sim = Simulator::new(cfg, hot_loop_program());
        let r = sim.run();
        assert_eq!(
            r.emergency_cycles, 0,
            "PID must contain the leakage feedback"
        );
        assert!(r.engaged_samples > 0, "which requires actually engaging");
    }

    #[test]
    fn runaway_leakage_defeats_any_policy() {
        // Past the runaway boundary even an idle chip has no thermal
        // equilibrium: the what-if model melts the chip regardless of
        // DTM. This is a property of the package, not the policy.
        let mut cfg = quick(PolicyKind::Pid);
        cfg.max_insts = 120_000;
        cfg.leakage = Some(tdtm_power::LeakageModel::node_later_whatif());
        let mut sim = Simulator::new(cfg, hot_loop_program());
        let r = sim.run();
        assert!(
            r.hottest_block().unwrap().max_temp > 150.0,
            "runaway must diverge, got {:.1}",
            r.hottest_block().unwrap().max_temp
        );
    }

    #[test]
    fn warm_start_skips_the_cold_ramp() {
        let mut cfg = quick(PolicyKind::None);
        cfg.warm_start = true;
        cfg.thermal_warmup_cycles = 2_000;
        let mut sim = Simulator::new(cfg.clone(), hot_loop_program());
        let warm = sim.run();
        let mut cold_cfg = cfg;
        cold_cfg.warm_start = false;
        let mut sim2 = Simulator::new(cold_cfg, hot_loop_program());
        let cold = sim2.run();
        assert!(
            warm.blocks[5].avg_temp >= cold.blocks[5].avg_temp - 1e-9,
            "warm start should not read cooler than a cold start over a short run"
        );
    }
}
