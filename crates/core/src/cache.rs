//! Content-addressed result cache: cross-run memoization for grid cells.
//!
//! ROADMAP item 4 (experiment service mode) needs repeat and overlapping
//! capacity-planning queries to be near-free. PR 8 made the cacheable
//! artifacts exact — [`RunReport`]s are byte-identical across threads,
//! batching, and skipping — so memoization can be *exact*, not
//! approximate: a cache hit replays the identical bytes a fresh
//! simulation would produce.
//!
//! ## Keys are content; invalidation is never
//!
//! A cell's [`Fingerprint`] is a deterministic FNV-1a-128 hash
//! ([`tdtm_prng::Fnv128`]) over a canonical encoding of *everything the
//! simulation result depends on*: the assembled program (encoded
//! instruction words, data segments, name), the workload identity, and
//! the full [`SimConfig`](crate::config::SimConfig) — core, power, DTM,
//! floorplan blocks, heatsink, chip topology, leakage, scale limits.
//! Floats enter the hash canonicalized: every NaN collapses to one key
//! (payloads cannot split keys) while `-0.0` stays distinct from `0.0`
//! (sign cannot alias keys). Because the key *is* the content, entries
//! are immutable and never invalidated — a changed spec is a different
//! key, and a colliding spec is the same simulation.
//!
//! ## Two tiers
//!
//! The in-memory tier is a mutex-guarded map shared across the worker
//! pool under [`shard_map`](crate::engine::shard_map). The optional disk
//! tier (`TDTM_CACHE_DIR`) holds one JSON file per fingerprint so caches
//! survive across processes; corrupt, truncated, or schema-drifted files
//! are treated as misses (recompute and overwrite), never a panic, and
//! an unusable directory degrades to memory-only with a single warning.
//!
//! ## In-flight dedup
//!
//! [`ResultCache::claim`] gives exactly one caller the right to compute
//! each fingerprint; concurrent claimers block on a condvar until the
//! owner [`publish`](ResultCache::publish)es (or releases on panic) and
//! then share the artifact. Identical cells within one grid therefore
//! simulate once.
//!
//! Set `TDTM_CACHE=0` to opt out entirely (mirroring `TDTM_BATCH` /
//! `TDTM_SKIP`); the engine then takes exactly the pre-cache paths.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::engine::GridCell;
use crate::metrics::{BlockMetrics, RunReport};
use tdtm_isa::Program;
use tdtm_prng::Fnv128;
use tdtm_telemetry::stream::{json, json_f64, json_str};
use tdtm_telemetry::{CellRecord, TelemetryConfig};

/// A 128-bit content address. Two equal fingerprints name the same
/// simulation; the cache treats them as identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// 32 lowercase hex digits (the on-disk entry name).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Hashes a program by content: name, encoded instruction words (the
/// ISA's canonical byte encoding), and data segments. Two programs that
/// assemble to the same image hash equal regardless of how they were
/// built.
pub fn program_fingerprint(program: &Program) -> u128 {
    let mut h = Fnv128::new();
    h.write(b"tdtm/program/v1\0");
    h.write(program.name.as_bytes());
    h.write(&[0]);
    h.write_u64(program.insts.len() as u64);
    for inst in &program.insts {
        let encoded = tdtm_isa::encoding::encode(inst);
        h.write_u32(encoded.word);
        match encoded.ext {
            Some(ext) => {
                h.write(&[1]);
                h.write_u32(ext);
            }
            None => h.write(&[0]),
        }
    }
    h.write_u64(program.data.len() as u64);
    for seg in &program.data {
        h.write_u64(seg.base);
        h.write_u64(seg.bytes.len() as u64);
        h.write(&seg.bytes);
    }
    h.finish()
}

/// The canonical fingerprint of one grid cell: program content plus the
/// workload identity plus the cell's *resolved* configuration (scale,
/// policy, and variant patch already applied — `SimConfig` + power/core
/// model + floorplan + `ChipConfig`).
///
/// The configuration enters the hash through its `Debug` rendering,
/// which for `f64` is Rust's shortest round-trip formatting: injective
/// on finite values (no two bit patterns share a rendering), `NaN` for
/// every NaN payload, and sign-preserving for `-0.0` — exactly the
/// canonicalized-bits contract. The golden-fingerprint test pins this
/// encoding so accidental drift fails loudly.
pub fn cell_fingerprint(cell: &GridCell) -> Fingerprint {
    cell_fingerprint_with(cell, program_fingerprint(cell.workload.program()))
}

fn cell_fingerprint_with(cell: &GridCell, program_fp: u128) -> Fingerprint {
    let mut h = Fnv128::new();
    h.write(b"tdtm/cell/v1\0");
    h.write_u128(program_fp);
    h.write(cell.workload.name.as_bytes());
    h.write(&[0]);
    let _ = write!(h, "{:?}", cell.workload.category);
    h.write_u64(cell.workload.warmup_insts);
    let cfg = cell.config();
    let _ = write!(h, "{cfg:?}");
    Fingerprint(h.finish())
}

/// Fingerprints for every cell of a grid, with the program hash memoized
/// per shared [`Program`] allocation — an 18 × 5 grid hashes 18
/// programs, not 90.
pub fn cell_fingerprints(cells: &[GridCell]) -> Vec<Fingerprint> {
    let mut by_program: HashMap<*const Program, u128> = HashMap::new();
    cells
        .iter()
        .map(|cell| {
            let program = cell.workload.program_shared();
            let fp = *by_program
                .entry(Arc::as_ptr(&program))
                .or_insert_with(|| program_fingerprint(&program));
            cell_fingerprint_with(cell, fp)
        })
        .collect()
}

/// The fingerprint of a *streamed* cell: the cell key plus the telemetry
/// configuration (streamed records embed a metric snapshot, so the same
/// cell under different telemetry is a different artifact), under its
/// own domain tag so plain-run and streamed artifacts can never alias.
pub fn stream_fingerprint(cell: Fingerprint, cfg: &TelemetryConfig) -> Fingerprint {
    let mut h = Fnv128::new();
    h.write(b"tdtm/stream/v1\0");
    h.write_u128(cell.0);
    let _ = write!(h, "{cfg:?}");
    Fingerprint(h.finish())
}

/// Content key for a power model: the (power config, core config) pair
/// that fully determines [`tdtm_power::PowerModel::new`]'s tables. Used
/// by grid assembly to dedupe model construction in O(1) per cell.
pub fn power_fingerprint(power: &tdtm_power::PowerConfig, core: &tdtm_uarch::CoreConfig) -> u128 {
    let mut h = Fnv128::new();
    h.write(b"tdtm/power/v1\0");
    let _ = write!(h, "{power:?}\0{core:?}");
    h.finish()
}

/// The immutable artifact stored per fingerprint: the deterministic
/// report, plus the normalized [`CellRecord`] for streamed cells
/// (`None` for plain runs — the two use different fingerprint domains).
#[derive(Clone, PartialEq, Debug)]
pub struct CellArtifact {
    /// The deterministic simulation report, byte-identical to what a
    /// fresh run of the same fingerprint would produce.
    pub report: RunReport,
    /// For streamed cells: the emitted record with host-side fields
    /// normalized (`seq` 0, wall/elapsed 0, `cached` unset) so the
    /// stored bytes are a pure function of the fingerprint.
    pub record: Option<CellRecord>,
}

impl CellArtifact {
    /// One JSON object (the on-disk entry format, version 1).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"v\":1,\"report\":");
        s.push_str(&report_to_json(&self.report));
        s.push_str(",\"record\":");
        match &self.record {
            Some(record) => s.push_str(&record.to_json()),
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }

    /// Parses a version-1 entry. Any malformation — truncation, a wrong
    /// version, a missing or mistyped field — is an `Err`, which the
    /// cache treats as a miss (recompute and overwrite), never a panic.
    pub fn from_json(text: &str) -> Result<CellArtifact, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("entry is not an object")?;
        let version = field(obj, "v")?.as_u64().ok_or("v: not a u64")?;
        if version != 1 {
            return Err(format!("unsupported entry version {version}"));
        }
        let report = report_from_value(field(obj, "report")?)?;
        let record = match field(obj, "record")? {
            json::Value::Null => None,
            v => Some(CellRecord::from_value(v)?),
        };
        Ok(CellArtifact { report, record })
    }
}

fn field<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key}"))
}

fn get_u64(obj: &[(String, json::Value)], key: &str) -> Result<u64, String> {
    field(obj, key)?.as_u64().ok_or_else(|| format!("{key}: not a u64"))
}

fn get_f64(obj: &[(String, json::Value)], key: &str) -> Result<f64, String> {
    field(obj, key)?.as_f64().ok_or_else(|| format!("{key}: not a number"))
}

fn get_str(obj: &[(String, json::Value)], key: &str) -> Result<String, String> {
    Ok(field(obj, key)?.as_str().ok_or_else(|| format!("{key}: not a string"))?.to_string())
}

/// Serializes a [`RunReport`] losslessly: floats use shortest
/// round-trip rendering (finite values come back bit-exact; non-finite
/// become `null` and read back as NaN, the stream-format convention).
pub fn report_to_json(r: &RunReport) -> String {
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"name\":{},\"policy\":{},\"cycles\":{},\"total_cycles\":{},\"committed\":{},\
         \"wall_time\":{},\"ipc\":{},\"avg_power\":{},\"max_power\":{},\"avg_chip_temp\":{},\
         \"emergency_cycles\":{},\"stress_cycles\":{},\"samples\":{},\"engaged_samples\":{},\
         \"recoveries\":{},\"bpred_accuracy\":{},\"gated_cycles\":{},\"blocks\":[",
        json_str(&r.name),
        json_str(&r.policy),
        r.cycles,
        r.total_cycles,
        r.committed,
        json_f64(r.wall_time),
        json_f64(r.ipc),
        json_f64(r.avg_power),
        json_f64(r.max_power),
        json_f64(r.avg_chip_temp),
        r.emergency_cycles,
        r.stress_cycles,
        r.samples,
        r.engaged_samples,
        r.recoveries,
        json_f64(r.bpred_accuracy),
        r.gated_cycles,
    );
    for (i, b) in r.blocks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":{},\"avg_temp\":{},\"max_temp\":{},\"emergency_cycles\":{},\
             \"stress_cycles\":{},\"avg_power\":{},\"max_power\":{}}}",
            json_str(&b.name),
            json_f64(b.avg_temp),
            json_f64(b.max_temp),
            b.emergency_cycles,
            b.stress_cycles,
            json_f64(b.avg_power),
            json_f64(b.max_power),
        );
    }
    s.push_str("]}");
    s
}

/// Parses a [`RunReport`] written by [`report_to_json`]. Every known
/// field is required (schema drift must read as a miss, not as a report
/// with silently defaulted values); unknown fields are ignored.
pub fn report_from_value(value: &json::Value) -> Result<RunReport, String> {
    let obj = value.as_object().ok_or("report is not an object")?;
    let blocks = field(obj, "blocks")?
        .as_array()
        .ok_or("blocks: not an array")?
        .iter()
        .map(block_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RunReport {
        name: get_str(obj, "name")?,
        policy: get_str(obj, "policy")?,
        cycles: get_u64(obj, "cycles")?,
        total_cycles: get_u64(obj, "total_cycles")?,
        committed: get_u64(obj, "committed")?,
        wall_time: get_f64(obj, "wall_time")?,
        ipc: get_f64(obj, "ipc")?,
        avg_power: get_f64(obj, "avg_power")?,
        max_power: get_f64(obj, "max_power")?,
        avg_chip_temp: get_f64(obj, "avg_chip_temp")?,
        emergency_cycles: get_u64(obj, "emergency_cycles")?,
        stress_cycles: get_u64(obj, "stress_cycles")?,
        blocks,
        samples: get_u64(obj, "samples")?,
        engaged_samples: get_u64(obj, "engaged_samples")?,
        recoveries: get_u64(obj, "recoveries")?,
        bpred_accuracy: get_f64(obj, "bpred_accuracy")?,
        gated_cycles: get_u64(obj, "gated_cycles")?,
    })
}

fn block_from_value(value: &json::Value) -> Result<BlockMetrics, String> {
    let obj = value.as_object().ok_or("block is not an object")?;
    Ok(BlockMetrics {
        name: get_str(obj, "name")?,
        avg_temp: get_f64(obj, "avg_temp")?,
        max_temp: get_f64(obj, "max_temp")?,
        emergency_cycles: get_u64(obj, "emergency_cycles")?,
        stress_cycles: get_u64(obj, "stress_cycles")?,
        avg_power: get_f64(obj, "avg_power")?,
        max_power: get_f64(obj, "max_power")?,
    })
}

/// Per-grid cache tallies, surfaced on
/// [`GridResults`](crate::engine::GridResults). `hits + misses` equals
/// the cell count; `inflight_waits` counts the hits that were deduped
/// against a computation still in flight (within the grid or in another
/// worker/process sharing the cache).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Cells served from the cache (memory, disk, or an in-flight
    /// leader) without simulating.
    pub cache_hits: u64,
    /// Cells that simulated and published their artifact.
    pub cache_misses: u64,
    /// Of the hits, how many waited on (or were deduped against) an
    /// identical computation in flight.
    pub cache_inflight_waits: u64,
}

impl CacheStats {
    /// Hit fraction in [0, 1], or `None` for an empty grid.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }
}

struct CacheState {
    mem: HashMap<u128, Arc<CellArtifact>>,
    inflight: HashSet<u128>,
}

/// The two-tier content-addressed cache. See the module docs for the
/// key/tier/dedup contract.
pub struct ResultCache {
    state: Mutex<CacheState>,
    ready: Condvar,
    disk: Option<PathBuf>,
    disk_failed: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    inflight_waits: AtomicU64,
}

/// The outcome of [`ResultCache::claim`].
pub enum Claim<'a> {
    /// The artifact was already available (memory tier, disk tier, or a
    /// concurrent computation that finished while we waited).
    Hit {
        /// The cached artifact.
        artifact: Arc<CellArtifact>,
        /// Whether this claim blocked on an in-flight computation.
        waited: bool,
    },
    /// This caller owns computing the fingerprint: run the simulation
    /// and [`complete`](ClaimGuard::complete) the guard. Dropping the
    /// guard without completing (e.g. on panic) releases the claim so
    /// waiters can re-claim and compute themselves.
    Miss(ClaimGuard<'a>),
}

/// Ownership of an in-flight computation; see [`Claim::Miss`].
pub struct ClaimGuard<'a> {
    cache: &'a ResultCache,
    fp: Fingerprint,
}

impl ClaimGuard<'_> {
    /// The claimed fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    /// Publishes the computed artifact and wakes all waiters.
    pub fn complete(self, artifact: CellArtifact) -> Arc<CellArtifact> {
        self.cache.publish(self.fp, artifact)
        // The Drop impl then finds the fingerprint already cleared from
        // the in-flight set and does nothing.
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.cache.state.lock().expect("result cache lock poisoned");
        if st.inflight.remove(&self.fp.0) {
            self.cache.ready.notify_all();
        }
    }
}

impl ResultCache {
    /// A memory-only cache (entries live as long as the value).
    pub fn in_memory() -> ResultCache {
        ResultCache {
            state: Mutex::new(CacheState { mem: HashMap::new(), inflight: HashSet::new() }),
            ready: Condvar::new(),
            disk: None,
            disk_failed: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir` (created if missing). If the directory
    /// cannot be created or written, prints one warning and degrades to
    /// memory-only — an unusable cache dir must never fail a run.
    pub fn with_disk(dir: impl Into<PathBuf>) -> ResultCache {
        let dir = dir.into();
        let probe = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            let p = dir.join(format!(".probe.{}", std::process::id()));
            std::fs::write(&p, b"ok")?;
            std::fs::remove_file(&p)
        })();
        match probe {
            Ok(()) => {
                let mut cache = ResultCache::in_memory();
                cache.disk = Some(dir);
                cache
            }
            Err(e) => {
                eprintln!(
                    "result cache: cache dir {} is unusable ({e}); continuing in-memory only",
                    dir.display()
                );
                ResultCache::in_memory()
            }
        }
    }

    /// Whether `TDTM_CACHE` leaves the cache enabled (on unless `0` or
    /// `off`, mirroring `TDTM_BATCH`/`TDTM_SKIP`).
    pub fn enabled_in_env() -> bool {
        !matches!(
            std::env::var("TDTM_CACHE").ok().as_deref().map(str::trim),
            Some("0") | Some("off")
        )
    }

    /// The process-wide cache the engine's default entry points use:
    /// `None` when `TDTM_CACHE=0`, disk-backed when `TDTM_CACHE_DIR` is
    /// set, in-memory otherwise. Resolved once per process.
    pub fn global() -> Option<&'static ResultCache> {
        static GLOBAL: OnceLock<Option<ResultCache>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                if !ResultCache::enabled_in_env() {
                    return None;
                }
                match std::env::var("TDTM_CACHE_DIR") {
                    Ok(dir) if !dir.trim().is_empty() => {
                        Some(ResultCache::with_disk(dir.trim()))
                    }
                    _ => Some(ResultCache::in_memory()),
                }
            })
            .as_ref()
    }

    /// Whether the disk tier is active.
    pub fn has_disk_tier(&self) -> bool {
        self.disk.is_some() && !self.disk_failed.load(Ordering::Relaxed)
    }

    /// Entries in the memory tier.
    pub fn len(&self) -> usize {
        self.state.lock().expect("result cache lock poisoned").mem.len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative claim tallies since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cache_inflight_waits: self.inflight_waits.load(Ordering::Relaxed),
        }
    }

    /// Non-claiming probe: the artifact if cached (memory or disk),
    /// without counting or deduping. Promotes disk hits to memory.
    pub fn lookup(&self, fp: Fingerprint) -> Option<Arc<CellArtifact>> {
        let mut st = self.state.lock().expect("result cache lock poisoned");
        if let Some(artifact) = st.mem.get(&fp.0) {
            return Some(Arc::clone(artifact));
        }
        let artifact = self.disk_lookup(fp)?;
        st.mem.insert(fp.0, Arc::clone(&artifact));
        Some(artifact)
    }

    /// Resolves a fingerprint to either a cached artifact or ownership
    /// of the computation. Blocks while an identical computation is in
    /// flight (in-flight dedup: identical cells simulate once).
    pub fn claim(&self, fp: Fingerprint) -> Claim<'_> {
        let mut st = self.state.lock().expect("result cache lock poisoned");
        let mut waited = false;
        loop {
            if let Some(artifact) = st.mem.get(&fp.0) {
                let artifact = Arc::clone(artifact);
                drop(st);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Claim::Hit { artifact, waited };
            }
            if !st.inflight.contains(&fp.0) {
                if let Some(artifact) = self.disk_lookup(fp) {
                    st.mem.insert(fp.0, Arc::clone(&artifact));
                    drop(st);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Claim::Hit { artifact, waited };
                }
                st.inflight.insert(fp.0);
                drop(st);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Claim::Miss(ClaimGuard { cache: self, fp });
            }
            if !waited {
                waited = true;
                self.inflight_waits.fetch_add(1, Ordering::Relaxed);
            }
            st = self.ready.wait(st).expect("result cache lock poisoned");
        }
    }

    /// Stores an artifact under `fp` (memory, and disk when active),
    /// clears any in-flight claim for it, and wakes all waiters.
    /// Idempotent: re-publishing a fingerprint overwrites with identical
    /// content (keys are content).
    pub fn publish(&self, fp: Fingerprint, artifact: CellArtifact) -> Arc<CellArtifact> {
        let artifact = Arc::new(artifact);
        self.disk_store(fp, &artifact);
        let mut st = self.state.lock().expect("result cache lock poisoned");
        st.mem.insert(fp.0, Arc::clone(&artifact));
        st.inflight.remove(&fp.0);
        drop(st);
        self.ready.notify_all();
        artifact
    }

    fn entry_path(&self, fp: Fingerprint) -> Option<PathBuf> {
        Some(self.disk.as_ref()?.join(format!("{}.json", fp.hex())))
    }

    fn disk_lookup(&self, fp: Fingerprint) -> Option<Arc<CellArtifact>> {
        let text = std::fs::read_to_string(self.entry_path(fp)?).ok()?;
        CellArtifact::from_json(&text).ok().map(Arc::new)
    }

    fn disk_store(&self, fp: Fingerprint, artifact: &CellArtifact) {
        let Some(path) = self.entry_path(fp) else { return };
        if self.disk_failed.load(Ordering::Relaxed) {
            return;
        }
        // Write-then-rename so a concurrent reader (another process on
        // the same TDTM_CACHE_DIR) never sees a truncated entry.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = std::fs::write(&tmp, artifact.to_json())
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            if !self.disk_failed.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "result cache: disk tier write failed ({e}); continuing in-memory only"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExperimentGrid;
    use crate::experiments::ExperimentScale;
    use tdtm_dtm::PolicyKind;
    use tdtm_workloads::by_name;

    fn quick_cells(variant: Option<(&'static str, crate::engine::ConfigPatch)>) -> Vec<GridCell> {
        let mut grid = ExperimentGrid::new(ExperimentScale::quick())
            .workload(by_name("gcc").expect("suite workload"))
            .policies(&[PolicyKind::None, PolicyKind::Pid]);
        if let Some((name, patch)) = variant {
            grid = grid.variant(name, patch);
        }
        grid.cells()
    }

    fn sample_report() -> RunReport {
        RunReport {
            name: "gcc".into(),
            policy: "PID".into(),
            cycles: 120_000,
            total_cycles: 147_692,
            committed: 97_531,
            wall_time: 8.2e-5,
            ipc: 0.8127441,
            avg_power: 42.125,
            max_power: 83.0625,
            avg_chip_temp: 41.3225,
            emergency_cycles: 40,
            stress_cycles: 380,
            blocks: vec![
                BlockMetrics {
                    name: "IntReg".into(),
                    avg_temp: 104.03125,
                    max_temp: 112.625,
                    emergency_cycles: 40,
                    stress_cycles: 380,
                    avg_power: 3.1875,
                    max_power: 5.625,
                },
                BlockMetrics {
                    name: "Bpred".into(),
                    avg_temp: 99.5,
                    max_temp: 101.75,
                    emergency_cycles: 0,
                    stress_cycles: 12,
                    avg_power: 2.0,
                    max_power: 3.25,
                },
            ],
            samples: 147,
            engaged_samples: 31,
            recoveries: 1204,
            bpred_accuracy: 0.94330357,
            gated_cycles: 7936,
        }
    }

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tdtm_cache_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn equal_specs_hash_equal_across_builds_and_threads() {
        let a = cell_fingerprints(&quick_cells(None));
        let b = cell_fingerprints(&quick_cells(None));
        assert_eq!(a, b, "re-enumerated grid must fingerprint identically");
        let cells = quick_cells(None);
        let from_threads: Vec<Vec<Fingerprint>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| cell_fingerprints(&cells)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("fingerprint thread"))
                .collect()
        });
        for fps in from_threads {
            assert_eq!(fps, a, "fingerprints must not depend on the hashing thread");
        }
        // Single-cell and batch enumeration agree.
        for (cell, fp) in cells.iter().zip(&a) {
            assert_eq!(cell_fingerprint(cell), *fp);
        }
    }

    #[test]
    fn any_field_perturbation_changes_the_key() {
        let base = cell_fingerprints(&quick_cells(None));
        let perturbations: Vec<(&str, crate::engine::ConfigPatch)> = vec![
            ("heatsink", |cfg| cfg.heatsink_temp += 0.5),
            ("insts", |cfg| cfg.max_insts += 1),
            ("warmup", |cfg| cfg.thermal_warmup_cycles += 1),
            ("cores", |cfg| cfg.chip.cores = 2),
            ("coupling", |cfg| cfg.chip.coupling += 1e-9),
            ("dtm", |cfg| cfg.dtm.emergency += 0.25),
        ];
        let mut seen: Vec<Fingerprint> = base.clone();
        for (name, patch) in perturbations {
            let fps = cell_fingerprints(&quick_cells(Some((name, patch))));
            for fp in &fps {
                assert!(!seen.contains(fp), "perturbation {name} did not change the key");
            }
            seen.extend(fps);
        }
        // Different policies and workloads already separate within a grid.
        assert_ne!(base[0], base[1], "policy must separate keys");
    }

    #[test]
    fn nan_cannot_split_and_negative_zero_cannot_alias() {
        // Two differently-written NaN sensor ranges are the same
        // specification...
        let nan_a = cell_fingerprints(&quick_cells(Some(("nan", |cfg| {
            cfg.dtm.sensor_range = f64::NAN;
        }))));
        let nan_b = cell_fingerprints(&quick_cells(Some(("nan", |cfg| {
            cfg.dtm.sensor_range = f64::from_bits(0x7ff8_0000_0000_beef);
        }))));
        assert_eq!(nan_a, nan_b, "NaN payloads must not split keys");
        // ...but NaN is not 0.0, and a -0.0 coupling is not 0.0.
        let zero = cell_fingerprints(&quick_cells(Some(("z", |cfg| {
            cfg.dtm.sensor_range = 0.0;
        }))));
        assert_ne!(nan_a, zero, "NaN vs 0.0 must separate");
        let cpl_zero = cell_fingerprints(&quick_cells(Some(("cz", |cfg| {
            cfg.chip.coupling = 0.0;
        }))));
        let cpl_neg = cell_fingerprints(&quick_cells(Some(("cnz", |cfg| {
            cfg.chip.coupling = -0.0;
        }))));
        assert_ne!(cpl_zero, cpl_neg, "-0.0 coupling must not alias 0.0");
    }

    #[test]
    fn golden_fingerprint_pins_the_canonical_encoding() {
        // gcc/none/base at quick scale. If this changes, the canonical
        // encoding changed and every existing on-disk cache silently
        // invalidates — bump the domain-tag version string deliberately
        // instead of letting it drift.
        let cells = quick_cells(None);
        assert_eq!(cells[0].label(), "gcc/none");
        assert_eq!(
            cell_fingerprint(&cells[0]).hex(),
            "5d37ca4024ddb46c03609ffa790e869b",
        );
    }

    #[test]
    fn artifact_json_roundtrip_is_byte_identical() {
        let artifact = CellArtifact { report: sample_report(), record: None };
        let parsed = CellArtifact::from_json(&artifact.to_json()).expect("round trip");
        assert_eq!(parsed, artifact);
        assert_eq!(
            format!("{parsed:?}"),
            format!("{artifact:?}"),
            "debug repr (bit-level floats) must survive the disk tier"
        );
        // And with a stream record attached.
        let mut record = CellRecord { index: 3, label: "gcc/PID".into(), ..CellRecord::default() };
        record.ipc = 0.8127441;
        let artifact = CellArtifact { report: sample_report(), record: Some(record) };
        let parsed = CellArtifact::from_json(&artifact.to_json()).expect("round trip");
        assert_eq!(parsed, artifact);
    }

    #[test]
    fn non_finite_report_fields_survive_as_nan() {
        let mut report = sample_report();
        report.ipc = f64::NAN;
        let artifact = CellArtifact { report, record: None };
        let parsed = CellArtifact::from_json(&artifact.to_json()).expect("round trip");
        assert!(parsed.report.ipc.is_nan());
    }

    #[test]
    fn claim_publish_and_memory_hits() {
        let cache = ResultCache::in_memory();
        let fp = Fingerprint(42);
        let artifact = CellArtifact { report: sample_report(), record: None };
        match cache.claim(fp) {
            Claim::Miss(guard) => {
                assert_eq!(guard.fingerprint(), fp);
                guard.complete(artifact.clone());
            }
            Claim::Hit { .. } => panic!("empty cache cannot hit"),
        }
        match cache.claim(fp) {
            Claim::Hit { artifact: got, waited } => {
                assert_eq!(*got, artifact);
                assert!(!waited);
            }
            Claim::Miss(_) => panic!("published fingerprint must hit"),
        }
        let stats = cache.stats();
        assert_eq!(
            (stats.cache_hits, stats.cache_misses, stats.cache_inflight_waits),
            (1, 1, 0)
        );
        assert!((stats.hit_rate().expect("nonempty") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dropped_claim_releases_so_waiters_recompute() {
        let cache = ResultCache::in_memory();
        let fp = Fingerprint(7);
        let Claim::Miss(guard) = cache.claim(fp) else { panic!("first claim misses") };
        drop(guard); // abandoned (e.g. worker panic)
        match cache.claim(fp) {
            Claim::Miss(guard) => guard.complete(CellArtifact {
                report: sample_report(),
                record: None,
            }),
            Claim::Hit { .. } => panic!("abandoned claim must not look cached"),
        };
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn inflight_dedup_blocks_then_shares() {
        let cache = ResultCache::in_memory();
        let fp = Fingerprint(99);
        let Claim::Miss(guard) = cache.claim(fp) else { panic!("first claim misses") };
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| match cache.claim(fp) {
                Claim::Hit { artifact, waited } => {
                    assert!(waited, "second claim must observe the in-flight computation");
                    artifact.report.committed
                }
                Claim::Miss(_) => panic!("in-flight fingerprint must not be re-claimed"),
            });
            // Give the waiter time to block, then publish.
            std::thread::sleep(std::time::Duration::from_millis(20));
            guard.complete(CellArtifact { report: sample_report(), record: None });
            assert_eq!(waiter.join().expect("waiter"), sample_report().committed);
        });
        let stats = cache.stats();
        assert_eq!(stats.cache_inflight_waits, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn disk_tier_survives_across_cache_instances() {
        let dir = test_dir("roundtrip");
        let fp = Fingerprint(0xabcdef);
        let artifact = CellArtifact { report: sample_report(), record: None };
        {
            let cache = ResultCache::with_disk(&dir);
            assert!(cache.has_disk_tier());
            cache.publish(fp, artifact.clone());
        }
        // A fresh instance (fresh process, conceptually) hits from disk.
        let cache = ResultCache::with_disk(&dir);
        assert!(cache.is_empty(), "memory tier starts cold");
        match cache.claim(fp) {
            Claim::Hit { artifact: got, .. } => assert_eq!(*got, artifact),
            Claim::Miss(_) => panic!("disk entry must hit"),
        }
        assert_eq!(cache.len(), 1, "disk hits promote to memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_truncated_empty_and_drifted_entries_are_misses() {
        let dir = test_dir("corrupt");
        std::fs::create_dir_all(&dir).expect("test dir");
        let fp = Fingerprint(0x1234);
        let good = CellArtifact { report: sample_report(), record: None };
        let entry = dir.join(format!("{}.json", fp.hex()));
        let valid = good.to_json();
        let drifted = valid.replace("\"committed\"", "\"renamed_committed\"");
        assert_ne!(drifted, valid);
        let cases: Vec<(&str, String)> = vec![
            ("binary garbage", "\u{1}\u{2}not json at all".to_string()),
            ("truncated", valid[..valid.len() / 2].to_string()),
            ("empty", String::new()),
            ("wrong version", valid.replace("{\"v\":1,", "{\"v\":99,")),
            ("schema drift", drifted),
            ("wrong shape", "[1,2,3]".to_string()),
        ];
        for (name, contents) in cases {
            std::fs::write(&entry, &contents).expect("write corrupt entry");
            let cache = ResultCache::with_disk(&dir);
            match cache.claim(fp) {
                Claim::Miss(guard) => {
                    // Recompute-and-overwrite: publishing repairs the entry.
                    guard.complete(good.clone());
                }
                Claim::Hit { .. } => panic!("{name}: corrupt entry served as a hit"),
            }
            let repaired = std::fs::read_to_string(&entry).expect("entry rewritten");
            assert_eq!(repaired, valid, "{name}: entry not overwritten with valid bytes");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_cache_dir_degrades_to_memory_only() {
        let blocker = std::env::temp_dir().join(format!("tdtm_cache_file_{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").expect("blocker file");
        // A path *under a file* cannot be created, even running as root.
        let cache = ResultCache::with_disk(blocker.join("sub"));
        assert!(!cache.has_disk_tier(), "must degrade to memory-only");
        let fp = Fingerprint(5);
        let Claim::Miss(guard) = cache.claim(fp) else { panic!("cold claim misses") };
        guard.complete(CellArtifact { report: sample_report(), record: None });
        assert!(matches!(cache.claim(fp), Claim::Hit { .. }), "memory tier still works");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn stream_fingerprint_is_domain_separated_and_config_sensitive() {
        let cell = cell_fingerprint(&quick_cells(None)[0]);
        let metrics = stream_fingerprint(cell, &TelemetryConfig::metrics_and_phases());
        assert_ne!(metrics.0, cell.0, "stream artifacts must not alias plain-run artifacts");
        let full = stream_fingerprint(cell, &TelemetryConfig::full(4096, 1));
        assert_ne!(metrics, full, "telemetry config is part of the stream key");
        assert_eq!(metrics, stream_fingerprint(cell, &TelemetryConfig::metrics_and_phases()));
    }

    #[test]
    fn power_fingerprint_separates_configs() {
        let cfg = crate::config::SimConfig::quick_test();
        let base = power_fingerprint(&cfg.power, &cfg.core);
        assert_eq!(base, power_fingerprint(&cfg.power, &cfg.core));
        let mut hot = cfg.power;
        hot.idle_fraction += 0.01;
        assert_ne!(base, power_fingerprint(&hot, &cfg.core));
    }
}
