//! The parallel, deterministic experiment engine.
//!
//! The paper's result tables are grids: every benchmark crossed with every
//! policy (Section 7), or with every proxy configuration (Tables 9/10).
//! Each cell is an independent simulation, so the grid shards perfectly
//! across threads — but the *results* must not depend on scheduling.
//!
//! [`ExperimentGrid`] enumerates (workload × policy × config-variant)
//! cells in a fixed order, [`shard_map`] fans them out over
//! `std::thread::scope` workers, and results come back keyed by cell
//! index. The reports are byte-identical regardless of worker count:
//! `TDTM_THREADS=1` reproduces `TDTM_THREADS=8` exactly (only the
//! wall-clock observability in [`RunObservation`] varies).
//!
//! ```
//! use tdtm_core::engine::ExperimentGrid;
//! use tdtm_core::experiments::ExperimentScale;
//! use tdtm_dtm::PolicyKind;
//!
//! let grid = ExperimentGrid::new(ExperimentScale::quick())
//!     .workload(tdtm_workloads::by_name("gcc").unwrap())
//!     .policies(&[PolicyKind::None, PolicyKind::Pid]);
//! let results = grid.run();
//! assert_eq!(results.runs.len(), 2);
//! assert!(results.runs[0].obs.thermal_steps > 0);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::cache::{self, CacheStats, CellArtifact, Claim, ResultCache};
use crate::config::SimConfig;
use crate::experiments::ExperimentScale;
use crate::metrics::RunReport;
use crate::simulator::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_telemetry::{
    CellRecord, Histogram, HistogramSnapshot, Phase, PhaseProfile, RegistrySnapshot, StampedSink,
    StreamSink, Telemetry, TelemetryConfig,
};
use tdtm_workloads::{suite, Workload};

/// A configuration override applied to a cell's [`SimConfig`] after the
/// scale and policy are set. A plain function pointer so cells stay
/// `Clone` and trivially shareable across workers.
pub type ConfigPatch = fn(&mut SimConfig);

/// Worker count for [`ExperimentGrid::run`]: the `TDTM_THREADS`
/// environment variable if set to a positive integer, else the machine's
/// available parallelism.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("TDTM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Whether [`ExperimentGrid::run_threads`] uses the batched SoA path
/// for eligible cells: on unless the `TDTM_BATCH` environment variable
/// is `0` or `off`.
fn batching_default() -> bool {
    !matches!(
        std::env::var("TDTM_BATCH").ok().as_deref().map(str::trim),
        Some("0") | Some("off")
    )
}

/// Applies `f` to every item of `items`, sharding the work across
/// `threads` scoped worker threads. Workers pull items from a shared
/// atomic cursor (so uneven cell costs still balance), but the returned
/// vector is ordered by item index — identical for any thread count.
///
/// # Panics
///
/// Propagates a panic from `f` (the first worker panic observed).
pub fn shard_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut keyed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => keyed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    keyed.sort_by_key(|&(i, _)| i);
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// Assembles one cell's [`RunResult`] from its report — the shared
/// tail of the solo, batched, cached, and follower paths.
fn result_from_report(cell: &GridCell, report: RunReport, wall: f64) -> RunResult {
    RunResult {
        index: cell.index,
        bench: cell.workload.name.to_string(),
        policy: cell.policy,
        variant: cell.variant,
        obs: RunObservation::from_report(&report, wall),
        report,
        extra: (),
    }
}

/// Runs a set of cells with batched dispatch: consecutive batch-eligible
/// cells pack into lockstep SoA batches ([`crate::batch`], up to
/// [`crate::batch::BATCH_LANES`] per work item; a trailing group of one
/// stays solo — the chunked fast loop is cheaper for a lone cell), and
/// everything else runs the per-cell chip path. `publish` runs in the
/// worker for each finished result (the cached path's publication hook;
/// a no-op for plain runs). Results come back in completion order —
/// callers sort or index by [`RunResult::index`].
fn run_cells_batched(
    cells: &[&GridCell],
    threads: usize,
    publish: &(dyn Fn(&RunResult) + Sync),
) -> Vec<RunResult> {
    enum Item<'a> {
        Solo(&'a GridCell),
        Group(Vec<&'a GridCell>),
    }
    let mut items: Vec<Item> = Vec::new();
    let mut group: Vec<&GridCell> = Vec::new();
    for &cell in cells {
        if crate::batch::batch_eligible(&cell.config()) {
            group.push(cell);
            if group.len() == crate::batch::BATCH_LANES {
                items.push(Item::Group(std::mem::take(&mut group)));
            }
        } else {
            items.push(Item::Solo(cell));
        }
    }
    match group.len() {
        0 => {}
        1 => items.push(Item::Solo(group[0])),
        _ => items.push(Item::Group(group)),
    }

    let sharded = shard_map(&items, threads, |_, item| match item {
        Item::Solo(cell) => {
            let start = Instant::now();
            let (report, _chip) = cell.run_chip();
            let wall = start.elapsed().as_secs_f64();
            let run = result_from_report(cell, report, wall);
            publish(&run);
            vec![run]
        }
        Item::Group(cells) => {
            let start = Instant::now();
            let mut batch = crate::batch::GridBatch::new();
            for cell in cells {
                batch.push(cell);
            }
            let reports = batch.run();
            // Lanes finish at their own stop conditions inside one
            // lockstep run, so per-cell wall time is not separable;
            // each cell is charged an even share (wall_seconds is
            // nondeterministic and never part of identity pins).
            let wall = start.elapsed().as_secs_f64() / cells.len() as f64;
            reports
                .into_iter()
                .map(|(index, report)| {
                    let cell = cells
                        .iter()
                        .find(|c| c.index == index)
                        .expect("report keyed by a pushed cell");
                    let run = result_from_report(cell, report, wall);
                    publish(&run);
                    run
                })
                .collect()
        }
    });
    sharded.into_iter().flatten().collect()
}

/// One cell of an [`ExperimentGrid`]: a workload under a policy with a
/// named configuration variant, at a fixed position in the grid.
#[derive(Clone)]
pub struct GridCell {
    /// Position in the grid's enumeration order (results come back in
    /// this order).
    pub index: usize,
    /// The benchmark to run.
    pub workload: Workload,
    /// The DTM policy for this cell.
    pub policy: PolicyKind,
    /// Name of the configuration variant ("base" when none was given).
    pub variant: &'static str,
    /// The grid's scale.
    pub scale: ExperimentScale,
    patch: ConfigPatch,
    /// Power model shared across every cell with the same power/core
    /// configuration — the tables are immutable, so one model serves all
    /// (policy × variant) cells of a grid.
    power: Arc<tdtm_power::PowerModel>,
}

impl GridCell {
    /// A human-readable cell label, e.g. `gcc/PID` or `art/none/cold`.
    pub fn label(&self) -> String {
        if self.variant == "base" {
            format!("{}/{}", self.workload.name, self.policy)
        } else {
            format!("{}/{}/{}", self.workload.name, self.policy, self.variant)
        }
    }

    /// The cell's full configuration: scale + policy, then the variant
    /// patch.
    pub fn config(&self) -> SimConfig {
        let mut cfg = self.scale.config(self.policy);
        (self.patch)(&mut cfg);
        cfg
    }

    /// A ready-to-run simulator for this cell, reusing the grid's shared
    /// program and power-model artifacts.
    pub fn simulator(&self) -> Simulator {
        Simulator::for_workload_with_power(self.config(), &self.workload, Arc::clone(&self.power))
    }

    /// The grid's shared power model for this cell (custom drivers that
    /// build a [`crate::multicore::MulticoreSim`] themselves reuse it).
    pub fn power_model(&self) -> Arc<tdtm_power::PowerModel> {
        Arc::clone(&self.power)
    }

    /// Runs this cell, dispatching on its chip configuration: a plain
    /// single-core cell takes [`GridCell::simulator`], while a cell whose
    /// variant configures multiple cores or a supervisor runs on the
    /// multicore chip simulator (returning core 0's report plus the full
    /// [`ChipReport`](crate::multicore::ChipReport)).
    pub fn run_chip(&self) -> (RunReport, Option<crate::multicore::ChipReport>) {
        crate::multicore::run_chip_cell(self.config(), &self.workload, self.power_model())
    }
}

/// Host-side observability for one cell run: wall-clock cost, simulated
/// throughput, and work counters.
///
/// The work counters (`thermal_steps`, `committed`, `dtm_samples`) are
/// deterministic functions of the cell's configuration. `wall_seconds` is
/// host wall-clock time and is **nondeterministic** — it varies run to
/// run, machine to machine, and with the worker-thread count — so it is
/// explicitly excluded from byte-identity pins; tests compare
/// observations with [`deterministic_eq`](RunObservation::deterministic_eq)
/// rather than `==`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RunObservation {
    /// Host wall-clock seconds spent on the cell (nondeterministic; never
    /// part of byte-identity pins).
    pub wall_seconds: f64,
    /// Thermal-model steps taken (= total simulated cycles, including
    /// warmup).
    pub thermal_steps: u64,
    /// Instructions retired over counted cycles.
    pub committed: u64,
    /// Controller (DTM policy) invocations.
    pub dtm_samples: u64,
}

impl RunObservation {
    fn from_report(report: &RunReport, wall_seconds: f64) -> RunObservation {
        RunObservation {
            wall_seconds,
            thermal_steps: report.total_cycles,
            committed: report.committed,
            dtm_samples: report.samples,
        }
    }

    /// Compares the deterministic fields only — everything except
    /// `wall_seconds`. This is what determinism tests should use instead
    /// of hand-rolling per-field comparisons.
    pub fn deterministic_eq(&self, other: &RunObservation) -> bool {
        self.thermal_steps == other.thermal_steps
            && self.committed == other.committed
            && self.dtm_samples == other.dtm_samples
    }

    /// Simulated cycles per host second (the simulator's throughput on
    /// this cell).
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.thermal_steps as f64 / self.wall_seconds
        }
    }
}

/// The result of one grid cell: the cell's identity, its deterministic
/// [`RunReport`], host-side observability, and any extra payload produced
/// by a [`run_with`](ExperimentGrid::run_with) closure.
#[derive(Clone, Debug)]
pub struct RunResult<R = ()> {
    /// The cell's position in the grid enumeration.
    pub index: usize,
    /// Benchmark name.
    pub bench: String,
    /// Policy of the cell.
    pub policy: PolicyKind,
    /// Configuration-variant name.
    pub variant: &'static str,
    /// The deterministic simulation report.
    pub report: RunReport,
    /// Host-side timing and counters (not deterministic).
    pub obs: RunObservation,
    /// Extra payload from `run_with` (unit for plain runs).
    pub extra: R,
}

impl<R> RunResult<R> {
    /// The cell label (`bench/policy[/variant]`).
    pub fn label(&self) -> String {
        if self.variant == "base" {
            format!("{}/{}", self.bench, self.policy)
        } else {
            format!("{}/{}/{}", self.bench, self.policy, self.variant)
        }
    }
}

/// Merged telemetry of a whole grid execution.
///
/// The simulation metrics merge per-cell snapshots *in cell order*, so
/// `sim` is byte-identical for any worker-thread count. The phase profile
/// and wall-time histogram are host-side timing and vary run to run.
#[derive(Clone, Debug)]
pub struct GridTelemetry {
    /// Deterministic simulation metrics summed over all cells.
    pub sim: RegistrySnapshot,
    /// Host-time phase profile summed over all cells (includes one
    /// `GridCell` entry per cell).
    pub phases: PhaseProfile,
    /// Histogram of per-cell wall time in milliseconds.
    pub cell_wall_ms: HistogramSnapshot,
}

/// All results of one grid execution, in cell order.
#[derive(Clone, Debug)]
pub struct GridResults<R = ()> {
    /// One result per cell, ordered by cell index.
    pub runs: Vec<RunResult<R>>,
    /// Worker threads used.
    pub threads: usize,
    /// Host wall-clock seconds for the whole grid.
    pub wall_seconds: f64,
    /// Merged grid telemetry, populated by
    /// [`ExperimentGrid::run_telemetry`] (`None` for plain runs).
    pub telemetry: Option<GridTelemetry>,
    /// Result-cache tallies for this grid (`None` when the grid ran
    /// without a cache, e.g. `TDTM_CACHE=0` or an explicit uncached
    /// path).
    pub cache_stats: Option<CacheStats>,
}

impl<R> GridResults<R> {
    /// The deterministic reports alone, in cell order.
    pub fn reports(&self) -> Vec<RunReport> {
        self.runs.iter().map(|r| r.report.clone()).collect()
    }

    /// Total thermal steps across all cells.
    pub fn total_thermal_steps(&self) -> u64 {
        self.runs.iter().map(|r| r.obs.thermal_steps).sum()
    }

    /// Total instructions retired across all cells.
    pub fn total_committed(&self) -> u64 {
        self.runs.iter().map(|r| r.obs.committed).sum()
    }

    /// Aggregate simulated cycles per host second over the grid (total
    /// steps over grid wall time — reflects the parallel speedup).
    pub fn aggregate_cycles_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.total_thermal_steps() as f64 / self.wall_seconds
        }
    }
}

/// A (workload × policy × config-variant) experiment grid.
///
/// Build with the fluent methods, then [`run`](ExperimentGrid::run) (or
/// [`run_with`](ExperimentGrid::run_with) to attach per-cell
/// instrumentation). Cells are enumerated workload-major, then policy,
/// then variant, and results always come back in that order.
#[derive(Clone)]
pub struct ExperimentGrid {
    scale: ExperimentScale,
    workloads: Vec<Workload>,
    policies: Vec<PolicyKind>,
    variants: Vec<(&'static str, ConfigPatch)>,
}

fn no_patch(_: &mut SimConfig) {}

impl ExperimentGrid {
    /// An empty grid at the given scale (no workloads yet; one implicit
    /// `None` policy and one implicit `base` variant).
    pub fn new(scale: ExperimentScale) -> ExperimentGrid {
        ExperimentGrid {
            scale,
            workloads: Vec::new(),
            policies: vec![PolicyKind::None],
            variants: vec![("base", no_patch)],
        }
    }

    /// Adds the full 18-benchmark suite as the workload axis.
    pub fn suite(mut self) -> ExperimentGrid {
        self.workloads.extend(suite());
        self
    }

    /// Adds one workload to the workload axis.
    pub fn workload(mut self, workload: Workload) -> ExperimentGrid {
        self.workloads.push(workload);
        self
    }

    /// Replaces the policy axis.
    pub fn policies(mut self, policies: &[PolicyKind]) -> ExperimentGrid {
        self.policies = policies.to_vec();
        self
    }

    /// Replaces the variant axis with a single named configuration patch.
    pub fn variant(mut self, name: &'static str, patch: ConfigPatch) -> ExperimentGrid {
        self.variants = vec![(name, patch)];
        self
    }

    /// Replaces the variant axis with several named configuration patches
    /// (one cell per variant per workload per policy).
    pub fn variants(mut self, variants: &[(&'static str, ConfigPatch)]) -> ExperimentGrid {
        self.variants = variants.to_vec();
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.workloads.len() * self.policies.len() * self.variants.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the cells in grid order: workload-major, then policy,
    /// then variant.
    ///
    /// Immutable per-cell artifacts are shared, not rebuilt: workloads
    /// hold their assembled program behind an `Arc` (18 programs for an
    /// 18 × 5 grid, not 90), and one power model is built per *distinct*
    /// (power config, core config) pair across the whole grid — for most
    /// grids that is a single model serving every cell.
    pub fn cells(&self) -> Vec<GridCell> {
        // Models are deduped by content fingerprint (O(1) per cell,
        // instead of the old O(cells) linear scan per cell): the
        // fingerprint covers exactly the (power config, core config)
        // pair that determines the model's tables.
        let mut power_cache: HashMap<u128, Arc<tdtm_power::PowerModel>> = HashMap::new();
        let mut cells = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for &policy in &self.policies {
                for &(variant, patch) in &self.variants {
                    let mut cfg = self.scale.config(policy);
                    patch(&mut cfg);
                    let key = cache::power_fingerprint(&cfg.power, &cfg.core);
                    let power = Arc::clone(power_cache.entry(key).or_insert_with(|| {
                        Arc::new(tdtm_power::PowerModel::new(&cfg.power, &cfg.core))
                    }));
                    cells.push(GridCell {
                        index: cells.len(),
                        workload: workload.clone(),
                        policy,
                        variant,
                        scale: self.scale,
                        patch,
                        power,
                    });
                }
            }
        }
        cells
    }

    /// Runs every cell on [`thread_count`] workers.
    pub fn run(&self) -> GridResults {
        self.run_threads(thread_count())
    }

    /// Runs every cell on exactly `threads` workers. The reports are
    /// identical for any `threads` value. Cells whose variant configures
    /// a multicore chip run on the chip simulator (reporting core 0);
    /// everything else takes the single-core path.
    ///
    /// Uninstrumented single-core cells are additionally packed into
    /// SoA thermal batches ([`crate::batch`]) and advanced in lockstep,
    /// up to [`crate::batch::BATCH_LANES`] per work item — a host-side
    /// execution strategy that leaves every report byte-identical to
    /// the per-cell path (pinned by `tests/engine.rs`). Set
    /// `TDTM_BATCH=0` to force the per-cell reference path.
    ///
    /// Runs through the process-wide content-addressed result cache
    /// ([`ResultCache::global`]) unless `TDTM_CACHE=0`: previously
    /// simulated cells replay their byte-identical report without
    /// simulating, and identical cells within the grid simulate once.
    pub fn run_threads(&self, threads: usize) -> GridResults {
        match ResultCache::global() {
            Some(cache) => self.run_threads_cached(threads, batching_default(), cache),
            None => self.run_threads_with_batching(threads, batching_default()),
        }
    }

    /// [`run_threads`](ExperimentGrid::run_threads) with the batched
    /// dispatch chosen explicitly instead of from `TDTM_BATCH`, and no
    /// result cache — the exact reference path identity tests and
    /// benchmarks compare against.
    pub fn run_threads_with_batching(&self, threads: usize, batching: bool) -> GridResults {
        if !batching {
            return self.run_with_threads(threads, |cell| {
                let (report, _chip) = cell.run_chip();
                (report, ())
            });
        }
        let cells = self.cells();
        let grid_start = Instant::now();
        let cell_refs: Vec<&GridCell> = cells.iter().collect();
        let mut runs = run_cells_batched(&cell_refs, threads, &|_| {});
        runs.sort_by_key(|r| r.index);
        GridResults {
            runs,
            threads,
            wall_seconds: grid_start.elapsed().as_secs_f64(),
            telemetry: None,
            cache_stats: None,
        }
    }

    /// [`run_threads`](ExperimentGrid::run_threads) against an explicit
    /// [`ResultCache`] (tests and benchmarks use their own instead of
    /// the process-wide one). Cached cells replay without simulating;
    /// misses run on the usual solo/batched paths and publish their
    /// artifact as they complete; identical cells within the grid are
    /// deduped against the in-flight leader. Reports are byte-identical
    /// to [`run_threads_with_batching`](ExperimentGrid::run_threads_with_batching)
    /// — pinned by `tests/engine.rs`.
    pub fn run_threads_cached(
        &self,
        threads: usize,
        batching: bool,
        cache: &ResultCache,
    ) -> GridResults {
        let cells = self.cells();
        let grid_start = Instant::now();
        let fps = cache::cell_fingerprints(&cells);
        let mut runs: Vec<Option<RunResult>> = (0..cells.len()).map(|_| None).collect();
        let mut stats = CacheStats::default();

        // Resolve each cell: cache hit, follower of an identical cell
        // already claimed in this grid (resolved after the leader runs —
        // a follower must not block inside a worker that could also hold
        // its leader), or a claimed miss to simulate.
        let mut leader_of: HashMap<u128, usize> = HashMap::new();
        let mut followers: Vec<(usize, usize)> = Vec::new();
        let mut guards = Vec::new();
        let mut miss_cells: Vec<&GridCell> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let start = Instant::now();
            if let Some(&leader) = leader_of.get(&fps[i].0) {
                followers.push((i, leader));
                stats.cache_hits += 1;
                stats.cache_inflight_waits += 1;
                continue;
            }
            match cache.claim(fps[i]) {
                Claim::Hit { artifact, waited } => {
                    stats.cache_hits += 1;
                    if waited {
                        stats.cache_inflight_waits += 1;
                    }
                    let wall = start.elapsed().as_secs_f64().max(1e-9);
                    runs[i] = Some(result_from_report(cell, artifact.report.clone(), wall));
                }
                Claim::Miss(guard) => {
                    guards.push(guard);
                    leader_of.insert(fps[i].0, i);
                    miss_cells.push(cell);
                }
            }
        }
        stats.cache_misses = miss_cells.len() as u64;

        // Simulate the misses on the normal paths, publishing each
        // artifact the moment its cell completes (so concurrent grids
        // sharing the cache can hit it while this grid still runs).
        let publish = |run: &RunResult| {
            cache.publish(
                fps[run.index],
                CellArtifact { report: run.report.clone(), record: None },
            );
        };
        let miss_runs = if batching {
            run_cells_batched(&miss_cells, threads, &publish)
        } else {
            shard_map(&miss_cells, threads, |_, cell| {
                let start = Instant::now();
                let (report, _chip) = cell.run_chip();
                let wall = start.elapsed().as_secs_f64();
                let run = result_from_report(cell, report, wall);
                publish(&run);
                run
            })
        };
        for run in miss_runs {
            let i = run.index;
            runs[i] = Some(run);
        }
        drop(guards); // all claims published; drops are no-ops

        // Followers replay their leader's report under their own cell
        // identity.
        for (i, leader) in followers {
            let start = Instant::now();
            let report =
                runs[leader].as_ref().expect("leader cell was simulated").report.clone();
            let wall = start.elapsed().as_secs_f64().max(1e-9);
            runs[i] = Some(result_from_report(&cells[i], report, wall));
        }

        GridResults {
            runs: runs.into_iter().map(|r| r.expect("every cell resolved")).collect(),
            threads,
            wall_seconds: grid_start.elapsed().as_secs_f64(),
            telemetry: None,
            cache_stats: Some(stats),
        }
    }

    /// Runs every cell through a custom driver on [`thread_count`]
    /// workers. The driver builds and runs the cell's simulator itself
    /// (typically starting from [`GridCell::simulator`]) so it can attach
    /// proxies, traces, or sensors, and returns the report plus any extra
    /// payload.
    pub fn run_with<R, F>(&self, f: F) -> GridResults<R>
    where
        R: Send,
        F: Fn(&GridCell) -> (RunReport, R) + Sync,
    {
        self.run_with_threads(thread_count(), f)
    }

    /// [`run_with`](ExperimentGrid::run_with) on exactly `threads`
    /// workers.
    pub fn run_with_threads<R, F>(&self, threads: usize, f: F) -> GridResults<R>
    where
        R: Send,
        F: Fn(&GridCell) -> (RunReport, R) + Sync,
    {
        let cells = self.cells();
        let grid_start = Instant::now();
        let runs = shard_map(&cells, threads, |_, cell| {
            let start = Instant::now();
            let (report, extra) = f(cell);
            let wall = start.elapsed().as_secs_f64();
            RunResult {
                index: cell.index,
                bench: cell.workload.name.to_string(),
                policy: cell.policy,
                variant: cell.variant,
                obs: RunObservation::from_report(&report, wall),
                report,
                extra,
            }
        });
        GridResults {
            runs,
            threads,
            wall_seconds: grid_start.elapsed().as_secs_f64(),
            telemetry: None,
            cache_stats: None,
        }
    }

    /// Runs every cell with the given telemetry enabled and merges the
    /// per-cell collections into [`GridResults::telemetry`]. Reports stay
    /// byte-identical to a plain [`run`](ExperimentGrid::run), and the
    /// merged simulation metrics (`telemetry.sim`) are identical for any
    /// `threads` value because per-cell snapshots merge in cell order.
    pub fn run_telemetry(&self, threads: usize, cfg: &TelemetryConfig) -> GridResults<Telemetry> {
        let mut results = self.run_with_threads(threads, |cell| {
            let mut sim = cell.simulator();
            sim.enable_telemetry(cfg);
            let report = sim.run();
            let telemetry = sim.take_telemetry().expect("telemetry was enabled");
            (report, telemetry)
        });
        let mut sim_merged: Option<RegistrySnapshot> = None;
        let mut phases = PhaseProfile::new();
        let wall_hist = Histogram::new(0.0, 10_000.0, 100);
        for run in &results.runs {
            if let Some(metrics) = &run.extra.metrics {
                let snap = metrics.snapshot();
                match &mut sim_merged {
                    Some(acc) => acc.merge_from(&snap),
                    None => sim_merged = Some(snap),
                }
            }
            if let Some(profile) = &run.extra.phases {
                phases.merge_from(profile);
            }
            phases.add(Phase::GridCell, (run.obs.wall_seconds * 1e9) as u64, 1);
            wall_hist.record(run.obs.wall_seconds * 1e3);
        }
        results.telemetry = Some(GridTelemetry {
            sim: sim_merged.unwrap_or_default(),
            phases,
            cell_wall_ms: wall_hist.snapshot(),
        });
        results
    }

    /// Runs every cell with the given telemetry enabled, streaming one
    /// [`CellRecord`] to `sink` *as each cell completes* — a live progress
    /// feed for long grids, instead of silence until the whole grid
    /// returns. Cells are chip-aware (multicore variants run on
    /// [`MulticoreSim`](crate::multicore::MulticoreSim) with chip
    /// telemetry, merging the per-core metric snapshots).
    ///
    /// Records are emitted in completion order with a monotone `seq`
    /// stamp assigned under the sink's lock, so the stream's physical
    /// order always matches `seq`. Determinism contract (pinned by
    /// `tests/observability.rs`): sort any N-thread stream by cell
    /// `index` and its deterministic fields equal a 1-thread run's stream
    /// ([`CellRecord::deterministic_eq`]); reports stay byte-identical to
    /// a plain [`run`](ExperimentGrid::run).
    ///
    /// Returns the usual cell-ordered results with each cell's emitted
    /// record (including its stamp) as the extra payload.
    ///
    /// Runs through the process-wide result cache ([`ResultCache::global`])
    /// unless `TDTM_CACHE=0`: a cached cell re-emits its stored record —
    /// identical on every deterministic field, flagged `cached: true` —
    /// without simulating. With the cache off, records carry `cached:
    /// None` and the stream is byte-identical to pre-cache builds.
    pub fn run_streaming(
        &self,
        threads: usize,
        cfg: &TelemetryConfig,
        sink: &mut dyn StreamSink,
    ) -> GridResults<CellRecord> {
        self.run_streaming_inner(threads, cfg, sink, ResultCache::global())
    }

    /// [`run_streaming`](ExperimentGrid::run_streaming) against an
    /// explicit [`ResultCache`] (tests and benchmarks use their own
    /// instead of the process-wide one).
    pub fn run_streaming_cached(
        &self,
        threads: usize,
        cfg: &TelemetryConfig,
        sink: &mut dyn StreamSink,
        cache: &ResultCache,
    ) -> GridResults<CellRecord> {
        self.run_streaming_inner(threads, cfg, sink, Some(cache))
    }

    fn run_streaming_inner(
        &self,
        threads: usize,
        cfg: &TelemetryConfig,
        sink: &mut dyn StreamSink,
        cache: Option<&ResultCache>,
    ) -> GridResults<CellRecord> {
        let cells = self.cells();
        let grid_start = Instant::now();
        // Streamed artifacts live under their own fingerprint domain
        // (cell key ⊕ telemetry config): the stored record embeds a
        // metric snapshot, so the telemetry config is part of the key.
        let fps = match cache {
            Some(_) => cache::cell_fingerprints(&cells)
                .into_iter()
                .map(|fp| cache::stream_fingerprint(fp, cfg))
                .collect(),
            None => Vec::new(),
        };
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let inflight_waits = AtomicU64::new(0);
        let stamped = StampedSink::new(sink);
        let runs = shard_map(&cells, threads, |i, cell| {
            let start = Instant::now();
            // A worker holds at most one claim at a time, so blocking on
            // an identical in-flight cell (another worker's claim) can
            // never self-deadlock; a 1-thread run completes each cell —
            // publishing its artifact — before claiming the next.
            let mut claim = None;
            if let Some(cache) = cache {
                match cache.claim(fps[i]) {
                    Claim::Hit { artifact, waited } if artifact.record.is_some() => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        if waited {
                            inflight_waits.fetch_add(1, Ordering::Relaxed);
                        }
                        let wall = start.elapsed().as_secs_f64().max(1e-9);
                        let stored = artifact.record.as_ref().expect("checked above");
                        // Replay the stored record under this cell's
                        // identity: the key is content, so everything
                        // except identity and host-side stamps is the
                        // stored bytes.
                        let mut record = stored.clone();
                        record.index = cell.index;
                        record.label = cell.label();
                        record.bench = cell.workload.name.to_string();
                        record.policy = cell.policy.to_string();
                        record.variant = cell.variant.to_string();
                        record.wall_seconds = wall;
                        record.cached = Some(true);
                        stamped.emit(&mut record);
                        return RunResult {
                            index: cell.index,
                            bench: cell.workload.name.to_string(),
                            policy: cell.policy,
                            variant: cell.variant,
                            obs: RunObservation::from_report(&artifact.report, wall),
                            report: artifact.report.clone(),
                            extra: record,
                        };
                    }
                    // An artifact without a record is a malformed entry
                    // for this domain (e.g. hand-edited disk file):
                    // recompute below and overwrite it.
                    Claim::Hit { .. } => {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                    Claim::Miss(guard) => {
                        misses.fetch_add(1, Ordering::Relaxed);
                        claim = Some(guard);
                    }
                };
            }
            let cell_cfg = cell.config();
            let single = cell_cfg.chip.cores == 1 && cell_cfg.chip.supervisor.is_none();
            let (report, chip, snapshot) = if single {
                let mut sim = cell.simulator();
                sim.enable_telemetry(cfg);
                let report = sim.run();
                let telemetry = sim.take_telemetry().expect("telemetry was enabled");
                let snapshot = telemetry.metrics.as_ref().map(|m| m.snapshot());
                (report, None, snapshot)
            } else {
                let mut sim = crate::multicore::MulticoreSim::for_workload_with_power(
                    cell_cfg,
                    &cell.workload,
                    cell.power_model(),
                );
                sim.enable_telemetry(cfg);
                let chip = sim.run();
                let telemetry = sim.take_telemetry().expect("telemetry was enabled");
                let snapshot = telemetry.merged_metrics();
                (chip.cores[0].clone(), Some(chip), snapshot)
            };
            let wall = start.elapsed().as_secs_f64();

            // Emergency/stress and the hottest block are chip-wide when a
            // chip ran; core 0's report supplies the throughput numbers.
            let (emergency_cycles, stress_cycles, hottest_block, hottest_temp_c) = match &chip {
                Some(chip) => {
                    let (core, block, temp) = chip.hottest();
                    (
                        chip.emergency_cycles(),
                        chip.cores.iter().map(|r| r.stress_cycles).sum(),
                        chip.cores[core].blocks[block].name.clone(),
                        temp,
                    )
                }
                None => match report.hottest_block() {
                    Some(b) => {
                        (report.emergency_cycles, report.stress_cycles, b.name.clone(), b.max_temp)
                    }
                    None => (report.emergency_cycles, report.stress_cycles, String::new(), f64::NAN),
                },
            };
            let mut record = CellRecord {
                seq: 0, // stamped at emit
                index: cell.index,
                label: cell.label(),
                bench: cell.workload.name.to_string(),
                policy: cell.policy.to_string(),
                variant: cell.variant.to_string(),
                wall_seconds: wall,
                elapsed_seconds: 0.0, // stamped at emit
                thermal_steps: report.total_cycles,
                committed: report.committed,
                dtm_samples: report.samples,
                ipc: report.ipc,
                emergency_cycles,
                stress_cycles,
                hottest_block,
                hottest_temp_c,
                metrics: snapshot
                    .map(|s| s.counters.iter().map(|&(n, v)| (n.to_string(), v)).collect())
                    .unwrap_or_default(),
                cached: cache.map(|_| false),
            };
            if let Some(cache) = cache {
                // Publish before stamping: the stored record is the
                // pre-stamp normal form (seq 0, zero wall/elapsed, no
                // provenance flag) so the artifact's bytes are a pure
                // function of the fingerprint.
                let mut stored = record.clone();
                stored.wall_seconds = 0.0;
                stored.cached = None;
                let artifact = CellArtifact { report: report.clone(), record: Some(stored) };
                match claim.take() {
                    Some(guard) => drop(guard.complete(artifact)),
                    // Wrong-shaped hit (no record): overwrite in place.
                    None => drop(cache.publish(fps[i], artifact)),
                }
            }
            stamped.emit(&mut record);
            RunResult {
                index: cell.index,
                bench: cell.workload.name.to_string(),
                policy: cell.policy,
                variant: cell.variant,
                obs: RunObservation::from_report(&report, wall),
                report,
                extra: record,
            }
        });
        GridResults {
            runs,
            threads,
            wall_seconds: grid_start.elapsed().as_secs_f64(),
            telemetry: None,
            cache_stats: cache.map(|_| CacheStats {
                cache_hits: hits.load(Ordering::Relaxed),
                cache_misses: misses.load(Ordering::Relaxed),
                cache_inflight_waits: inflight_waits.load(Ordering::Relaxed),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_workloads::by_name;

    #[test]
    fn shard_map_preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 2, 4, 16, 64] {
            let out = shard_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 10
            });
            let expect: Vec<usize> = items.iter().map(|&x| x * 10).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn shard_map_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(shard_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(shard_map(&[9u8], 4, |_, &x| x), vec![9]);
    }

    #[test]
    #[should_panic(expected = "cell exploded")]
    fn shard_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..8).collect();
        shard_map(&items, 4, |_, &x| {
            if x == 5 {
                panic!("cell exploded");
            }
            x
        });
    }

    #[test]
    fn cells_enumerate_workload_major_with_stable_indices() {
        let grid = ExperimentGrid::new(ExperimentScale::quick())
            .workload(by_name("gcc").unwrap())
            .workload(by_name("art").unwrap())
            .policies(&[PolicyKind::None, PolicyKind::Pid])
            .variants(&[("base", no_patch), ("hot", |cfg| cfg.heatsink_temp = 107.0)]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(grid.len(), 8);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        assert_eq!(cells[0].label(), "gcc/none");
        assert_eq!(cells[1].label(), "gcc/none/hot");
        assert_eq!(cells[2].label(), "gcc/PID");
        assert_eq!(cells[4].label(), "art/none");
        assert!((cells[1].config().heatsink_temp - 107.0).abs() < 1e-12);
        assert!((cells[0].config().heatsink_temp - 107.0).abs() > 1.0);
    }

    #[test]
    fn grid_run_reports_come_back_in_cell_order() {
        let grid = ExperimentGrid::new(ExperimentScale::quick())
            .workload(by_name("gcc").unwrap())
            .policies(&[PolicyKind::None, PolicyKind::Toggle1]);
        let results = grid.run_threads(2);
        assert_eq!(results.threads, 2);
        assert_eq!(results.runs.len(), 2);
        assert_eq!(results.runs[0].policy, PolicyKind::None);
        assert_eq!(results.runs[1].policy, PolicyKind::Toggle1);
        for run in &results.runs {
            assert!(run.obs.thermal_steps >= run.report.cycles);
            assert!(run.obs.committed >= 30_000);
            assert!(run.obs.wall_seconds > 0.0);
            assert!(run.obs.cycles_per_second() > 0.0);
        }
        assert!(results.total_thermal_steps() > 0);
        assert!(results.aggregate_cycles_per_second() > 0.0);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }
}
