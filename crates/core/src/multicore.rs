//! The multicore chip simulator: N replicated cores over a thermally
//! coupled die, under hierarchical DTM.
//!
//! [`MulticoreSim`] runs `cfg.chip.cores` copies of the single-core
//! machine in chip-cycle lockstep. The thermal side is the bit-tested
//! coupled kernel ([`CoupledChip`]): per-core exact-decay block models
//! joined block-by-block through tangential resistances, with inter-core
//! flows evaluated from pre-step temperatures once per cycle. The DTM
//! side is two-level: each core keeps its own sensors, policy, and
//! actuators (fetch toggling and V/f scaling, exactly the single-core
//! mechanisms), and an optional chip-level [`ChipSupervisor`] redistributes
//! the shared thermal budget each sampling interval by capping hot cores'
//! duty ceilings.
//!
//! The degenerate cases are exact, not approximate:
//!
//! * **N = 1** (or zero coupling) has no coupling edges, so the thermal
//!   step is the plain single-core kernel bit for bit, and the per-core
//!   cycle body replicates the single-core loop's order of operations —
//!   core 0's [`RunReport`] is byte-identical to [`Simulator::run`]
//!   (pinned by `tests/multicore.rs`).
//! * A cool chip makes the supervisor the identity, so attaching it to a
//!   chip with thermal headroom changes nothing.
//!
//! A core *parks* when it hits its stop condition (instruction budget,
//! cycle budget, or program halt): it stops cycling, stepping, and
//! counting, and its block temperatures freeze — still visible to
//! neighbors as a thermal boundary condition — until every core is parked
//! and the chip stops. Parked cores report `-inf` to the supervisor and
//! take no further DTM samples.
//!
//! The chip loop supports the direct trigger mechanism only (the
//! single-core reference loop keeps the interrupt-delay model).

use crate::config::SimConfig;
use crate::metrics::RunReport;
use crate::simulator::{
    finalize_report, skip_default, warm_start_jump, RunAccum, Simulator, SkipReason, SkipWindow,
    TelemetryState, MIN_SKIP_WINDOW, NUM_THERMAL,
};
use std::sync::Arc;
use tdtm_dtm::{
    build_policy_at, ChipSupervisor, DtmCommand, DtmConfig, DtmPolicy, SensorModel,
    TriggerMechanism,
};
use tdtm_isa::Program;
use tdtm_power::PowerModel;
use tdtm_telemetry::{Event, EventTrace, RegistrySnapshot, Telemetry, TelemetryConfig};
use tdtm_thermal::{CoupledChip, MulticoreFloorplan};
use tdtm_uarch::{Core, CoreControl, IdleKind};
use tdtm_workloads::Workload;

/// One core's machine state: pipeline, policy, actuators, accumulators.
struct CoreSlot {
    core: Core,
    policy: Box<dyn DtmPolicy>,
    sensors: SensorModel,
    /// This core's DTM configuration (the chip configuration with the
    /// policy swapped for neighbor cores).
    dtm: DtmConfig,
    name: String,
    resync_remaining: u64,
    vf_power_scale: f64,
    vf_freq_scale: f64,
    vf_engaged: bool,
    duty_history: Vec<f64>,
    acc: RunAccum,
    warm_start_power: [f64; NUM_THERMAL],
    parked: bool,
}

impl CoreSlot {
    /// Applies a DTM command to this core — the same actuator semantics
    /// as the single-core simulator, retiming this core's thermal model
    /// on a V/f transition.
    fn apply(&mut self, thermal: &mut tdtm_thermal::BlockModel, cmd: DtmCommand, cycle_time: f64) {
        self.core.set_control(CoreControl {
            fetch_duty: cmd.fetch_duty,
            fetch_width_limit: cmd.fetch_width_limit,
            max_unresolved_branches: cmd.max_unresolved_branches,
        });
        match (cmd.vf, self.vf_engaged) {
            (Some(vf), false) => {
                self.vf_engaged = true;
                self.vf_power_scale = vf.power_scale();
                self.vf_freq_scale = vf.freq_scale;
                thermal.set_dt(cycle_time / vf.freq_scale);
                self.resync_remaining = self.dtm.vf_resync_cycles;
            }
            (None, true) => {
                self.vf_engaged = false;
                self.vf_power_scale = 1.0;
                self.vf_freq_scale = 1.0;
                thermal.set_dt(cycle_time);
                self.resync_remaining = self.dtm.vf_resync_cycles;
            }
            _ => {}
        }
    }
}

/// The collected telemetry of one chip run: one per-core [`Telemetry`]
/// (events tagged with the core id, one metrics registry per core, stage
/// phase timers) plus a chip-level event ring for the hierarchy's own
/// decisions ([`Event::SupervisorCap`], [`Event::Park`]).
///
/// [`Event::SupervisorCap`]: tdtm_telemetry::Event::SupervisorCap
/// [`Event::Park`]: tdtm_telemetry::Event::Park
#[derive(Debug, Default)]
pub struct ChipTelemetry {
    /// Per-core collections, in core order.
    pub cores: Vec<Telemetry>,
    /// Supervisor cap decisions and park transitions, chip-wide, if the
    /// event trace was enabled.
    pub chip_events: Option<EventTrace>,
}

impl ChipTelemetry {
    /// Merges the per-core metric snapshots in core order (all cores
    /// share the simulator schema, so the merge is well-defined). `None`
    /// when metrics collection was off.
    pub fn merged_metrics(&self) -> Option<RegistrySnapshot> {
        let mut merged: Option<RegistrySnapshot> = None;
        for t in &self.cores {
            let snap = t.metrics.as_ref()?.snapshot();
            match &mut merged {
                None => merged = Some(snap),
                Some(m) => m.merge_from(&snap),
            }
        }
        merged
    }
}

/// In-flight chip telemetry: one per-core collector plus the chip-level
/// event ring. Purely observational — the run loop only touches it behind
/// `Option` tests, so a telemetry-off run executes identical simulation
/// code (ChipReports byte-identical on vs off, pinned by
/// `tests/observability.rs`).
struct ChipTelemetryState {
    cores: Vec<TelemetryState>,
    chip_events: Option<EventTrace>,
}

/// Results of one chip run: per-core reports plus chip-level counters.
#[derive(Clone, PartialEq, Debug)]
pub struct ChipReport {
    /// One report per core, in core order (core 0 keeps the plain
    /// workload name; core `k` is suffixed `#k`).
    pub cores: Vec<RunReport>,
    /// Sampling intervals on which the supervisor capped at least one
    /// core (0 without a supervisor).
    pub supervisor_interventions: u64,
    /// Whether any inter-core coupling edges were present.
    pub coupled: bool,
    /// Chip cycles executed (the lockstep clock, counting warmup).
    pub chip_cycles: u64,
}

impl ChipReport {
    /// The chip-wide peak block temperature: `(core, block, temp)`.
    pub fn hottest(&self) -> (usize, usize, f64) {
        let mut best = (0, 0, f64::NEG_INFINITY);
        for (k, r) in self.cores.iter().enumerate() {
            for (b, m) in r.blocks.iter().enumerate() {
                if m.max_temp > best.2 {
                    best = (k, b, m.max_temp);
                }
            }
        }
        best
    }

    /// Total cycles any core spent in thermal emergency.
    pub fn emergency_cycles(&self) -> u64 {
        self.cores.iter().map(|r| r.emergency_cycles).sum()
    }
}

/// A full simulation of one program on an N-core chip.
///
/// All cores run the same program (each on its own pipeline), which makes
/// the cross-core-interference scenarios deterministic: differences
/// between cores come only from DTM throttling, heterogeneity, and
/// thermal coupling, never from workload skew.
pub struct MulticoreSim {
    cfg: SimConfig,
    chip: CoupledChip,
    slots: Vec<CoreSlot>,
    supervisor: Option<ChipSupervisor>,
    power: Arc<PowerModel>,
    chip_cycles: u64,
    /// Telemetry to collect on the next [`run`](MulticoreSim::run).
    telemetry: Option<ChipTelemetryState>,
    /// Collected telemetry of the last run.
    collected: Option<ChipTelemetry>,
    /// Fast-forwards chip-level gaps in which every active core is
    /// provably idle (see [`set_skip`](MulticoreSim::set_skip); defaults
    /// from `TDTM_SKIP`).
    skip: bool,
    /// Records one [`SkipWindow`] per chip-level gap when enabled.
    log_skip_windows: bool,
    /// The skip-window log of the last run (when enabled).
    skip_windows: Vec<SkipWindow>,
}

impl MulticoreSim {
    /// Builds a chip simulator over an arbitrary program (no warmup
    /// skip).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.chip.cores` is zero or the DTM trigger mechanism is
    /// not [`TriggerMechanism::Direct`].
    pub fn new(cfg: SimConfig, program: Program) -> MulticoreSim {
        let name = program.name.clone();
        MulticoreSim::build(cfg, Arc::new(program), &name, 0, None)
    }

    /// Builds a chip simulator for a suite workload, honoring its
    /// functional warmup skip on every core.
    pub fn for_workload(cfg: SimConfig, workload: &Workload) -> MulticoreSim {
        MulticoreSim::build(
            cfg,
            workload.program_shared(),
            workload.name,
            workload.warmup_insts,
            None,
        )
    }

    /// [`for_workload`](MulticoreSim::for_workload) with a prebuilt,
    /// shared power model (one model serves every core — all cores share
    /// `cfg.power`/`cfg.core`).
    pub fn for_workload_with_power(
        cfg: SimConfig,
        workload: &Workload,
        power: Arc<PowerModel>,
    ) -> MulticoreSim {
        MulticoreSim::build(
            cfg,
            workload.program_shared(),
            workload.name,
            workload.warmup_insts,
            Some(power),
        )
    }

    fn build(
        cfg: SimConfig,
        program: Arc<Program>,
        name: &str,
        skip: u64,
        power: Option<Arc<PowerModel>>,
    ) -> MulticoreSim {
        let n = cfg.chip.cores;
        assert!(n > 0, "need at least one core");
        assert!(
            matches!(cfg.dtm.mechanism, TriggerMechanism::Direct),
            "the multicore simulator supports direct triggering only"
        );
        let power = power.unwrap_or_else(|| Arc::new(PowerModel::new(&cfg.power, &cfg.core)));
        let chip = MulticoreFloorplan::with_blocks(n, cfg.blocks.clone())
            .coupling(cfg.chip.coupling)
            .heterogeneity(cfg.chip.heterogeneity)
            .build_chip(cfg.heatsink_temp, cfg.cycle_time());
        let slots = (0..n)
            .map(|k| {
                let mut dtm = cfg.dtm;
                if k > 0 {
                    if let Some(p) = cfg.chip.neighbor_policy {
                        dtm.policy = p;
                    }
                }
                CoreSlot {
                    core: Core::with_skip_shared(cfg.core, program.clone(), skip),
                    policy: build_policy_at(&dtm, cfg.core.clock_hz),
                    sensors: SensorModel::ideal(),
                    dtm,
                    name: if k == 0 {
                        name.to_string()
                    } else {
                        format!("{name}#{k}")
                    },
                    resync_remaining: 0,
                    vf_power_scale: 1.0,
                    vf_freq_scale: 1.0,
                    vf_engaged: false,
                    duty_history: Vec::new(),
                    acc: RunAccum::new(),
                    warm_start_power: [0.0; NUM_THERMAL],
                    parked: false,
                }
            })
            .collect();
        let supervisor = cfg.chip.supervisor.map(|sc| ChipSupervisor::new(sc, n));
        MulticoreSim {
            cfg,
            chip,
            slots,
            supervisor,
            power,
            chip_cycles: 0,
            telemetry: None,
            collected: None,
            skip: skip_default(),
            log_skip_windows: false,
            skip_windows: Vec::new(),
        }
    }

    /// Enables or disables chip-level idle-gap skipping, overriding the
    /// `TDTM_SKIP` default. A gap opens only when *every* active core is
    /// simultaneously inside a provably-idle window (parked cores are
    /// idle by definition), and elides only the pipeline/power phase —
    /// the coupled thermal step and all accounting still run per cycle —
    /// so [`ChipReport`]s stay byte-identical either way (pinned by
    /// `tests/hot_loop_identity.rs`).
    pub fn set_skip(&mut self, on: bool) {
        self.skip = on;
    }

    /// Enables skip-window logging for the next
    /// [`run`](MulticoreSim::run); see
    /// [`skip_windows`](MulticoreSim::skip_windows).
    pub fn record_skip_windows(&mut self) {
        self.log_skip_windows = true;
    }

    /// The chip-level skip-window log of the last run (empty unless
    /// [`record_skip_windows`](MulticoreSim::record_skip_windows) was
    /// enabled and gaps actually opened). A gap in which at least one
    /// core sat parked reports [`SkipReason::Parked`]; an all-resync gap
    /// reports [`SkipReason::Resync`]; otherwise the gated cause wins
    /// over the drained one.
    pub fn skip_windows(&self) -> &[SkipWindow] {
        &self.skip_windows
    }

    /// Enables telemetry collection for the next [`run`](MulticoreSim::run):
    /// one collector per core (every event tagged with its core id) plus a
    /// chip-level event ring for supervisor caps and park transitions.
    /// The collected [`ChipTelemetry`] is available from
    /// [`take_telemetry`](MulticoreSim::take_telemetry) afterwards.
    /// Collection never changes the simulation: the [`ChipReport`] is
    /// byte-identical with telemetry on or off (pinned by test).
    ///
    /// Phase timing on the chip covers the pipeline stage timers only;
    /// the lockstep loop does not wrap the shared thermal step or the
    /// controllers in per-call timers.
    pub fn enable_telemetry(&mut self, cfg: &TelemetryConfig) {
        if cfg.phases {
            for slot in &mut self.slots {
                slot.core.set_stage_profiling(true);
            }
        }
        self.telemetry = Some(ChipTelemetryState {
            cores: (0..self.slots.len())
                .map(|k| TelemetryState::with_core(cfg, k))
                .collect(),
            chip_events: cfg.events.map(|e| EventTrace::new(e.capacity, e.stride)),
        });
    }

    /// The telemetry collected by the last run, if enabled.
    pub fn telemetry(&self) -> Option<&ChipTelemetry> {
        self.collected.as_ref()
    }

    /// Takes ownership of the collected telemetry.
    pub fn take_telemetry(&mut self) -> Option<ChipTelemetry> {
        self.collected.take()
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.slots.len()
    }

    /// The coupled thermal model (current temperatures, edges).
    pub fn chip(&self) -> &CoupledChip {
        &self.chip
    }

    /// The chip-level supervisor, if configured.
    pub fn supervisor(&self) -> Option<&ChipSupervisor> {
        self.supervisor.as_ref()
    }

    /// Sampled fetch-duty history of core `k` (post-supervisor-cap, one
    /// entry per DTM sample taken by that core).
    pub fn duty_history(&self, k: usize) -> &[f64] {
        &self.slots[k].duty_history
    }

    /// Runs every core to its stop condition and returns the chip report.
    ///
    /// The loop advances all cores in chip-cycle lockstep, chunked to the
    /// DTM sampling boundary exactly like the single-core fast loop. Each
    /// cycle: (1) every active core checks its stop conditions, then
    /// executes one pipeline cycle and computes its scaled block powers
    /// (plus optional leakage from its own pre-step temperatures); (2)
    /// the coupled kernel steps the whole chip once, evaluating the
    /// inter-core flows from pre-step temperatures; (3) every active core
    /// folds the cycle into its accumulators. At each sampling boundary
    /// every active core senses and samples its policy; the supervisor
    /// (if any) then caps the commands before they are applied.
    ///
    /// Conducted heat is a flow, not dissipation: reported per-block and
    /// chip powers exclude the coupling flows.
    pub fn run(&mut self) -> ChipReport {
        let MulticoreSim {
            cfg,
            chip,
            slots,
            supervisor,
            power,
            chip_cycles,
            telemetry,
            collected,
            skip,
            log_skip_windows,
            skip_windows,
        } = self;
        skip_windows.clear();
        // Detached for the loop (same discipline as the single-core
        // path); flushed into `collected` at the end.
        let mut tstate = telemetry.take();
        let stage_start: Vec<[u64; 6]> = slots.iter().map(|s| s.core.stage_nanos()).collect();
        let cycles_start: Vec<u64> = slots.iter().map(|s| s.core.stats().cycles).collect();
        let interval = cfg.dtm.sample_interval.max(1);
        let emergency = cfg.dtm.emergency;
        let stress = emergency - 1.0;
        let nominal_dt = cfg.cycle_time();
        let warmup = cfg.thermal_warmup_cycles;
        let idle_sample = power.cycle_power(&tdtm_uarch::Activity::new());
        let warm_window = if cfg.warm_start { interval } else { 0 };
        let leak = cfg.leakage;
        let peaks: [f64; NUM_THERMAL] =
            std::array::from_fn(|i| power.peak(tdtm_uarch::activity::THERMAL_BLOCKS[i]));
        let n = slots.len();
        let mut powers: Vec<Vec<f64>> = vec![vec![0.0; NUM_THERMAL]; n];
        let mut totals = vec![0.0f64; n];
        let mut active: Vec<bool> = slots.iter().map(|s| !s.parked).collect();
        let mut hottest = vec![f64::NEG_INFINITY; n];
        let mut cmds: Vec<Option<DtmCommand>> = (0..n).map(|_| None).collect();
        let mut sensed = [0.0f64; NUM_THERMAL];
        // Chip-level idle-gap skipping is off under temperature-dependent
        // leakage: an idle core's power then varies with its temperature,
        // so phase 1 is no longer constant across a gap.
        let skipping = *skip && leak.is_none();
        let mut gap_remaining: u64 = 0;

        'run: loop {
            if active.iter().all(|a| !a) {
                break;
            }
            let mut remaining = interval - *chip_cycles % interval;
            while remaining > 0 {
                // Chip-level idle-gap fast-forward: when every active
                // core is simultaneously inside a provably-idle window
                // (resync-stalled, fetch-gated shut, or drained against
                // a known wake cycle — parked cores are idle by
                // definition), phase 1 produces the bitwise-same idle
                // powers every cycle. The loop stages those powers once,
                // applies the cores' window bookkeeping wholesale
                // (nothing observes a core mid-gap), and elides phase 1
                // for the gap; phases 2 and 3 — the coupled thermal
                // step, telemetry, and accounting — still run per cycle,
                // which is what keeps ChipReports and telemetry
                // byte-identical to the non-skipping loop even with
                // coupling attached. Gaps are clipped so no stop
                // condition, park transition, warmup crossing, or DTM
                // boundary can fall inside them.
                if gap_remaining == 0 && skipping {
                    'probe: {
                        let mut m = remaining;
                        let mut any_parked = false;
                        let mut all_resync = true;
                        let mut any_gated = false;
                        for slot in slots.iter_mut() {
                            if slot.parked {
                                any_parked = true;
                                continue;
                            }
                            // The warm-start window accumulates power per
                            // cycle in phase 3; no gaps until past it.
                            if slot.acc.cycle < warm_window {
                                break 'probe;
                            }
                            // A core due to park *this* cycle must park
                            // through phase 1 (the active mask feeds the
                            // masked thermal step).
                            let counting = slot.acc.cycle >= warmup;
                            let base = if counting && slot.acc.counted_cycles == 0 {
                                slot.core.stats().committed
                            } else {
                                slot.acc.committed_at_count_start
                            };
                            if (counting
                                && slot.core.stats().committed.saturating_sub(base)
                                    >= cfg.max_insts)
                                || slot.acc.cycle >= cfg.max_cycles
                                || slot.core.finished()
                            {
                                break 'probe;
                            }
                            let mut cap = remaining.min(cfg.max_cycles - slot.acc.cycle);
                            if slot.acc.cycle < warmup {
                                cap = cap.min(warmup - slot.acc.cycle);
                            }
                            let window = if slot.resync_remaining > 0 {
                                slot.resync_remaining.min(cap)
                            } else {
                                all_resync = false;
                                match slot.core.idle_window(cap) {
                                    Some((len, kind)) => {
                                        if kind == IdleKind::Gated {
                                            any_gated = true;
                                        }
                                        len
                                    }
                                    None => break 'probe,
                                }
                            };
                            m = m.min(window);
                        }
                        if m < MIN_SKIP_WINDOW {
                            break 'probe;
                        }
                        for (k, slot) in slots.iter_mut().enumerate() {
                            if slot.parked {
                                continue;
                            }
                            let counting = slot.acc.cycle >= warmup;
                            if counting && slot.acc.counted_cycles == 0 {
                                slot.acc.committed_at_count_start = slot.core.stats().committed;
                            }
                            if slot.resync_remaining > 0 {
                                slot.resync_remaining -= m;
                            } else {
                                slot.core.skip_idle(m);
                            }
                            // Every gap cycle draws the bitwise-same idle
                            // power, so staging the scaled powers once is
                            // exactly what phase 1 would compute.
                            let scale = slot.vf_power_scale;
                            let thermal_powers = idle_sample.thermal_powers();
                            let buf = &mut powers[k];
                            for i in 0..NUM_THERMAL {
                                buf[i] = thermal_powers[i] * scale;
                            }
                            totals[k] = idle_sample.total * scale;
                        }
                        if *log_skip_windows {
                            let reason = if any_parked {
                                SkipReason::Parked
                            } else if all_resync {
                                SkipReason::Resync
                            } else if any_gated {
                                SkipReason::Gated
                            } else {
                                SkipReason::Drained
                            };
                            skip_windows.push(SkipWindow {
                                start: *chip_cycles,
                                end: *chip_cycles + m,
                                reason,
                            });
                        }
                        gap_remaining = m;
                    }
                }

                if gap_remaining > 0 {
                    // Inside a gap: phase 1 is elided — `powers`,
                    // `totals`, and `active` are loop constants.
                    gap_remaining -= 1;
                } else {
                    // Phase 1: per-core stop checks, pipeline cycle, power.
                    for (k, slot) in slots.iter_mut().enumerate() {
                        if slot.parked {
                            continue;
                        }
                        let counting = slot.acc.cycle >= warmup;
                        if counting && slot.acc.counted_cycles == 0 {
                            slot.acc.committed_at_count_start = slot.core.stats().committed;
                        }
                        let budget_hit = slot
                            .core
                            .stats()
                            .committed
                            .saturating_sub(slot.acc.committed_at_count_start)
                            >= cfg.max_insts
                            && counting;
                        if budget_hit || slot.acc.cycle >= cfg.max_cycles || slot.core.finished() {
                            slot.parked = true;
                            active[k] = false;
                            if let Some(ts) = tstate.as_mut() {
                                ts.cores[k].bump_park();
                                if let Some(ring) = &mut ts.chip_events {
                                    ring.record(Event::Park {
                                        cycle: *chip_cycles,
                                        core: k,
                                        parked: true,
                                    });
                                }
                            }
                            continue;
                        }
                        let sample = if slot.resync_remaining > 0 {
                            slot.resync_remaining -= 1;
                            idle_sample
                        } else {
                            power.cycle_power(slot.core.cycle())
                        };
                        let scale = slot.vf_power_scale;
                        let thermal_powers = sample.thermal_powers();
                        let mut total = sample.total * scale;
                        let buf = &mut powers[k];
                        for i in 0..NUM_THERMAL {
                            buf[i] = thermal_powers[i] * scale;
                        }
                        if let Some(leak) = leak {
                            let temps_now = chip.temperatures(k);
                            for i in 0..NUM_THERMAL {
                                // Leakage scales with V (roughly linearly
                                // through V·I_leak); reuse the dynamic scale
                                // conservatively, as the single-core loops do.
                                let lp = leak.leakage_power(peaks[i], temps_now[i]) * scale;
                                buf[i] += lp;
                                total += lp;
                            }
                        }
                        totals[k] = total;
                    }
                }
                if active.iter().all(|a| !a) {
                    break 'run;
                }

                // Phase 2: one coupled thermal step for the whole chip.
                chip.step_masked(&powers, &active);

                // Phase 3: per-core warm start and accounting.
                for (k, slot) in slots.iter_mut().enumerate() {
                    if slot.parked {
                        continue;
                    }
                    if let Some(ts) = tstate.as_mut() {
                        let cts = &mut ts.cores[k];
                        cts.thermal_steps += 1;
                        let temps = chip.core_models()[k].temperatures_fixed::<NUM_THERMAL>();
                        let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        cts.observe_cycle(slot.acc.cycle, &temps[..], hottest, emergency, stress);
                    }
                    if slot.acc.cycle < warm_window {
                        for (acc_p, p) in slot.warm_start_power.iter_mut().zip(&powers[k]) {
                            *acc_p += p;
                        }
                        if slot.acc.cycle + 1 == interval {
                            warm_start_jump(
                                chip.core_mut(k),
                                &slot.dtm,
                                &mut slot.warm_start_power,
                                interval,
                            );
                        }
                    }
                    if slot.acc.cycle >= warmup {
                        let temps = chip.core_models()[k].temperatures_fixed();
                        let block_powers: &[f64; NUM_THERMAL] = powers[k]
                            .as_slice()
                            .try_into()
                            .expect("seven thermal blocks");
                        slot.acc.record_cycle(
                            temps,
                            block_powers,
                            totals[k],
                            nominal_dt / slot.vf_freq_scale,
                            emergency,
                            stress,
                        );
                    }
                    slot.acc.cycle += 1;
                }
                *chip_cycles += 1;
                remaining -= 1;
            }

            // DTM boundary: every active core senses and samples its own
            // policy; the supervisor then caps the commands chip-wide.
            // Events here stamp the chunk's last executed cycle (the loop
            // has already advanced past it — the fast-loop convention).
            for (k, slot) in slots.iter_mut().enumerate() {
                cmds[k] = None;
                hottest[k] = f64::NEG_INFINITY;
                if slot.parked {
                    continue;
                }
                let temps = chip.core_models()[k].temperatures_fixed::<NUM_THERMAL>();
                slot.sensors.read_all(&temps[..], &mut sensed);
                hottest[k] = sensed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let cmd = match tstate.as_mut() {
                    Some(ts) => {
                        // Observed and unobserved policy paths produce
                        // bit-equal commands (`sample` delegates to
                        // `sample_observed`); dense per-sample events
                        // honor the trace stride.
                        let cts = &mut ts.cores[k];
                        let due = cts.sample_due(slot.acc.samples);
                        let cycle = slot.acc.cycle - 1;
                        if due {
                            cts.record_sensor_reads(cycle, &sensed);
                        }
                        slot.policy.sample_observed(&sensed, &mut |block, s| {
                            if due {
                                cts.record_controller(cycle, block, &s);
                            }
                        })
                    }
                    None => slot.policy.sample(&sensed),
                };
                slot.acc.samples += 1;
                cmds[k] = Some(cmd);
            }
            if let Some(sup) = supervisor {
                let caps = match tstate.as_mut() {
                    Some(ts) => {
                        let cycle = *chip_cycles - 1;
                        let cores = &mut ts.cores;
                        let ring = &mut ts.chip_events;
                        sup.allocate_observed(&hottest, &mut |core, hot, cap| {
                            cores[core].bump_supervisor_cap();
                            if let Some(ring) = ring {
                                ring.record(Event::SupervisorCap {
                                    cycle,
                                    core,
                                    hottest: hot,
                                    cap,
                                });
                            }
                        })
                    }
                    None => sup.allocate(&hottest),
                };
                for (cmd, &cap) in cmds.iter_mut().zip(caps) {
                    if let Some(c) = cmd {
                        c.fetch_duty = c.fetch_duty.min(cap);
                    }
                }
            }
            for (k, slot) in slots.iter_mut().enumerate() {
                let Some(cmd) = cmds[k].take() else { continue };
                if let Some(ts) = tstate.as_mut() {
                    // The histogram and change events see the *applied*
                    // (post-supervisor-cap) duty, matching duty_history.
                    let cts = &mut ts.cores[k];
                    cts.record_duty_hist(cmd.fetch_duty);
                    let from = slot.core.control().fetch_duty;
                    if cmd.fetch_duty != from {
                        cts.record_duty_change(slot.acc.cycle - 1, from, cmd.fetch_duty);
                    }
                }
                slot.duty_history.push(cmd.fetch_duty);
                slot.apply(chip.core_mut(k), cmd, nominal_dt);
            }
        }

        if let Some(ts) = tstate {
            let cores = ts
                .cores
                .into_iter()
                .enumerate()
                .map(|(k, cts)| {
                    cts.flush(
                        &slots[k].core,
                        slots[k].acc.cycle,
                        slots[k].acc.samples,
                        stage_start[k],
                        cycles_start[k],
                    )
                })
                .collect();
            *collected = Some(ChipTelemetry {
                cores,
                chip_events: ts.chip_events,
            });
        }

        ChipReport {
            cores: slots
                .iter()
                .enumerate()
                .map(|(k, slot)| {
                    finalize_report(
                        &slot.name,
                        slot.policy.as_ref(),
                        chip.core_models()[k].params(),
                        slot.core.stats(),
                        slot.core.bpred().accuracy(),
                        &slot.acc,
                    )
                })
                .collect(),
            supervisor_interventions: supervisor.as_ref().map_or(0, ChipSupervisor::interventions),
            coupled: !chip.edges().is_empty(),
            chip_cycles: *chip_cycles,
        }
    }
}

/// Runs `cfg` either on the single-core [`Simulator`] (when
/// `cfg.chip.cores == 1` and no supervisor is attached) or on the
/// multicore chip, returning core 0's report plus the chip report when a
/// chip actually ran. Experiment drivers use this to make any grid cell
/// chip-aware without forking their plumbing.
pub fn run_chip_cell(
    cfg: SimConfig,
    workload: &Workload,
    power: Arc<PowerModel>,
) -> (RunReport, Option<ChipReport>) {
    if cfg.chip.cores == 1 && cfg.chip.supervisor.is_none() {
        let mut sim = Simulator::for_workload_with_power(cfg, workload, power);
        (sim.run(), None)
    } else {
        let mut sim = MulticoreSim::for_workload_with_power(cfg, workload, power);
        let chip = sim.run();
        (chip.cores[0].clone(), Some(chip))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_dtm::PolicyKind;

    fn quick(policy: PolicyKind, cores: usize) -> SimConfig {
        let mut cfg = SimConfig::quick_test();
        cfg.dtm.policy = policy;
        cfg.chip.cores = cores;
        cfg
    }

    fn workload() -> Workload {
        tdtm_workloads::by_name("gcc").expect("known workload")
    }

    #[test]
    fn single_core_chip_produces_a_sane_report() {
        let mut sim = MulticoreSim::for_workload(quick(PolicyKind::Pid, 1), &workload());
        let chip = sim.run();
        assert_eq!(chip.cores.len(), 1);
        assert!(!chip.coupled, "one core has no neighbors");
        assert_eq!(chip.supervisor_interventions, 0);
        let r = &chip.cores[0];
        assert!(r.committed >= 30_000);
        assert_eq!(r.blocks.len(), NUM_THERMAL);
        assert_eq!(r.name, "gcc");
    }

    #[test]
    fn chip_report_names_and_sizes_scale_with_cores() {
        let mut cfg = quick(PolicyKind::Pid, 3);
        cfg.max_insts = 10_000;
        cfg.thermal_warmup_cycles = 500;
        let mut sim = MulticoreSim::for_workload(cfg, &workload());
        let chip = sim.run();
        assert_eq!(chip.cores.len(), 3);
        assert!(chip.coupled);
        assert_eq!(chip.cores[0].name, "gcc");
        assert_eq!(chip.cores[1].name, "gcc#1");
        assert_eq!(chip.cores[2].name, "gcc#2");
        // Identical cores, identical program, homogeneous chip: every
        // core commits the same work.
        assert_eq!(chip.cores[0].committed, chip.cores[1].committed);
        assert_eq!(chip.cores[0].committed, chip.cores[2].committed);
    }

    #[test]
    fn neighbor_policy_splits_the_chip() {
        let mut cfg = quick(PolicyKind::Toggle1, 2);
        cfg.max_insts = 10_000;
        cfg.thermal_warmup_cycles = 500;
        cfg.chip.neighbor_policy = Some(PolicyKind::None);
        let mut sim = MulticoreSim::for_workload(cfg, &workload());
        let chip = sim.run();
        assert_eq!(chip.cores[0].policy, "toggle1");
        assert_eq!(chip.cores[1].policy, "none");
    }

    #[test]
    fn supervisor_caps_hot_cores_duty() {
        // Hot chip, weak per-core policy (none), supervisor on: the
        // supervisor must intervene and cap duty below 1.
        let mut cfg = quick(PolicyKind::None, 2);
        cfg.max_insts = 60_000;
        cfg.heatsink_temp = 107.0;
        cfg.thermal_warmup_cycles = 1_000;
        cfg.chip.supervisor = Some(tdtm_dtm::SupervisorConfig::default());
        let mut sim = MulticoreSim::for_workload(cfg, &workload());
        let chip = sim.run();
        assert!(
            chip.supervisor_interventions > 0,
            "hot chip must trigger the supervisor"
        );
        let mut duties = Vec::new();
        for k in 0..2 {
            duties.extend_from_slice(sim.duty_history(k));
        }
        assert!(
            duties.iter().any(|&d| d < 1.0),
            "at least one capped duty recorded"
        );
    }

    #[test]
    #[should_panic(expected = "direct triggering only")]
    fn interrupt_mechanism_is_rejected() {
        let mut cfg = quick(PolicyKind::Pid, 2);
        cfg.dtm.mechanism = TriggerMechanism::Interrupt {
            latency_cycles: 250,
        };
        let _ = MulticoreSim::for_workload(cfg, &workload());
    }

    #[test]
    fn run_chip_cell_dispatches_by_core_count() {
        let cfg = quick(PolicyKind::Pid, 1);
        let power = Arc::new(PowerModel::new(&cfg.power, &cfg.core));
        let (_, chip) = run_chip_cell(cfg.clone(), &workload(), power.clone());
        assert!(
            chip.is_none(),
            "one supervisor-less core takes the single-core path"
        );
        let mut cfg2 = cfg;
        cfg2.chip.cores = 2;
        cfg2.max_insts = 10_000;
        cfg2.thermal_warmup_cycles = 500;
        let (r0, chip) = run_chip_cell(cfg2, &workload(), power);
        let chip = chip.expect("two cores take the chip path");
        assert_eq!(chip.cores[0], r0);
    }
}
