//! Open-loop thermal replay from recorded power traces.
//!
//! A [`PowerTrace`] holds stride-mean per-block powers captured during one
//! (expensive) cycle-level simulation. Replaying it through the thermal
//! model is ~1000× cheaper than re-simulating the core, which makes
//! parameter sweeps that do not feed back into execution — emergency
//! thresholds, R/C what-ifs, heatsink temperatures — essentially free.
//! (Anything that changes the *actuators* is closed-loop and still needs
//! full simulation; see `Simulator`.)
//!
//! The batching error of stride-mean replay is bounded in
//! `ablation_integration`: millikelvins out to thousands of cycles per
//! step.

use tdtm_thermal::block_model::BlockParams;
use tdtm_thermal::BlockModel;

/// Number of thermally tracked blocks.
pub const NUM_THERMAL: usize = 7;

/// A recorded per-block power trace at fixed stride.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerTrace {
    /// Seconds per sample (cycle time × stride).
    pub dt: f64,
    /// Cycles per sample.
    pub stride: u64,
    samples: Vec<[f64; NUM_THERMAL]>,
    totals: Vec<f64>,
}

impl PowerTrace {
    /// Creates an empty trace.
    ///
    /// # Panics
    ///
    /// Panics unless `dt` is positive and `stride` nonzero.
    pub fn new(dt: f64, stride: u64) -> PowerTrace {
        assert!(dt > 0.0 && stride > 0, "bad trace geometry");
        PowerTrace { dt, stride, samples: Vec::new(), totals: Vec::new() }
    }

    /// Appends one stride-mean sample.
    pub fn push(&mut self, block_powers: [f64; NUM_THERMAL], total: f64) {
        self.samples.push(block_powers);
        self.totals.push(total);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The per-block samples.
    pub fn samples(&self) -> &[[f64; NUM_THERMAL]] {
        &self.samples
    }

    /// Total chip power per sample.
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// Mean per-block power over the whole trace.
    pub fn mean_block_powers(&self) -> [f64; NUM_THERMAL] {
        let mut mean = [0.0; NUM_THERMAL];
        for s in &self.samples {
            for i in 0..NUM_THERMAL {
                mean[i] += s[i];
            }
        }
        let n = self.samples.len().max(1) as f64;
        mean.map(|m| m / n)
    }
}

/// Results of replaying a trace through the thermal model against a
/// threshold.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ReplayOutcome {
    /// Samples during which any block exceeded the threshold.
    pub hot_samples: u64,
    /// Total samples replayed.
    pub total_samples: u64,
    /// Highest temperature reached by any block.
    pub max_temp: f64,
}

impl ReplayOutcome {
    /// Fraction of replayed time above the threshold.
    pub fn hot_fraction(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.hot_samples as f64 / self.total_samples as f64
        }
    }
}

/// Replays a power trace through a fresh per-block thermal model and
/// counts threshold crossings.
///
/// # Panics
///
/// Panics if `blocks` does not have [`NUM_THERMAL`] entries.
pub fn replay(
    trace: &PowerTrace,
    blocks: &[BlockParams],
    heatsink: f64,
    threshold: f64,
    warm_start: bool,
) -> ReplayOutcome {
    assert_eq!(blocks.len(), NUM_THERMAL, "replay expects the 7 thermal blocks");
    let mut model = BlockModel::new(blocks.to_vec(), heatsink, trace.dt);
    if warm_start {
        model.warm_start(&trace.mean_block_powers());
    }
    let mut hot = 0u64;
    let mut max_temp = f64::NEG_INFINITY;
    for s in trace.samples() {
        model.step(s);
        let mut any = false;
        for &t in model.temperatures() {
            max_temp = max_temp.max(t);
            any |= t > threshold;
        }
        if any {
            hot += 1;
        }
    }
    ReplayOutcome {
        hot_samples: hot,
        total_samples: trace.len() as u64,
        max_temp: if max_temp.is_finite() { max_temp } else { heatsink },
    }
}

/// Replays the trace across a sweep of thresholds (one thermal pass per
/// threshold; still trivially cheap next to re-simulation).
pub fn threshold_sweep(
    trace: &PowerTrace,
    blocks: &[BlockParams],
    heatsink: f64,
    thresholds: &[f64],
    warm_start: bool,
) -> Vec<(f64, ReplayOutcome)> {
    thresholds
        .iter()
        .map(|&th| (th, replay(trace, blocks, heatsink, th, warm_start)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_thermal::block_model::table3_blocks;

    fn square_wave_trace() -> PowerTrace {
        let mut t = PowerTrace::new(256.0 / 1.5e9, 256);
        for k in 0..4000 {
            let hot = (k / 1000) % 2 == 0;
            let p = if hot { [2.0, 6.0, 4.0, 3.0, 5.0, 7.0, 1.0] } else { [0.5; 7] };
            t.push(p, p.iter().sum::<f64>() + 20.0);
        }
        t
    }

    #[test]
    fn trace_accumulates() {
        let t = square_wave_trace();
        assert_eq!(t.len(), 4000);
        let mean = t.mean_block_powers();
        assert!((mean[5] - (7.0 + 0.5) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn replay_counts_threshold_crossings_monotonically() {
        let t = square_wave_trace();
        let blocks = table3_blocks();
        let sweep = threshold_sweep(&t, &blocks, 103.0, &[105.0, 108.0, 111.0, 120.0], false);
        for w in sweep.windows(2) {
            assert!(
                w[0].1.hot_samples >= w[1].1.hot_samples,
                "higher thresholds cannot be hotter"
            );
        }
        assert_eq!(sweep.last().unwrap().1.hot_samples, 0, "120 C is unreachable");
        assert!(sweep[0].1.hot_samples > 0, "105 C is easily exceeded");
        // Max temp is threshold-independent.
        assert_eq!(sweep[0].1.max_temp, sweep[3].1.max_temp);
    }

    #[test]
    fn warm_start_raises_early_temperatures() {
        let t = square_wave_trace();
        let blocks = table3_blocks();
        let cold = replay(&t, &blocks, 103.0, 108.0, false);
        let warm = replay(&t, &blocks, 103.0, 108.0, true);
        assert!(warm.hot_samples >= cold.hot_samples);
    }

    #[test]
    fn recorded_trace_replays_close_to_the_live_run() {
        // Record a live simulation's power and reported max temperature,
        // then check the replay reproduces the max within the batching
        // error bound.
        use crate::config::SimConfig;
        use crate::simulator::Simulator;
        use tdtm_dtm::PolicyKind;

        let w = tdtm_workloads::by_name("gcc").expect("suite");
        let mut cfg = SimConfig::quick_test();
        cfg.max_insts = 120_000;
        cfg.dtm.policy = PolicyKind::None;
        // Cold-start both sides so the trajectories are directly
        // comparable (the live warm start uses first-interval power, the
        // replay's uses the trace mean — different by construction).
        cfg.warm_start = false;
        let mut sim = Simulator::for_workload(cfg.clone(), &w);
        sim.record_power_trace(256);
        let report = sim.run();
        let trace = sim.power_trace().expect("recorded").clone();
        assert!(!trace.is_empty());

        let outcome = replay(&trace, &cfg.blocks, cfg.heatsink_temp, cfg.dtm.emergency, false);
        let live_max = report.hottest_block().expect("simulator reports track blocks").max_temp;
        assert!(
            (outcome.max_temp - live_max).abs() < 0.2,
            "replay max {:.3} vs live max {:.3}",
            outcome.max_temp,
            live_max
        );
    }
}
