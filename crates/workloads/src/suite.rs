//! The 18-program suite and its thermal-category assignments.

use crate::kernels;
use tdtm_isa::asm::assemble_named;
use tdtm_isa::Program;

/// Thermal-behavior category (the paper's Table 5 partitioning).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ThermalCategory {
    /// Sustained operation at or past the emergency threshold without DTM.
    Extreme,
    /// Long stretches just under the threshold, few or no emergencies.
    High,
    /// Occasional thermal stress.
    Medium,
    /// Never near the threshold.
    Low,
}

impl ThermalCategory {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            ThermalCategory::Extreme => "extreme",
            ThermalCategory::High => "high",
            ThermalCategory::Medium => "medium",
            ThermalCategory::Low => "low",
        }
    }
}

impl std::fmt::Display for ThermalCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One benchmark: a named program plus its intended thermal category and
/// functional warmup length.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (a SPEC CPU2000 program name).
    pub name: &'static str,
    /// Intended thermal category.
    pub category: ThermalCategory,
    /// Instructions to fast-forward functionally before timing (the
    /// analogue of the paper's 2-billion-instruction skip).
    pub warmup_insts: u64,
    /// The assembled program, shared: cloning a `Workload` (one clone per
    /// grid cell) bumps a reference count instead of deep-copying data
    /// segments that can run to megabytes.
    program: std::sync::Arc<Program>,
}

impl Workload {
    fn new(
        name: &'static str,
        category: ThermalCategory,
        warmup_insts: u64,
        source: String,
    ) -> Workload {
        let program = assemble_named(&source, name)
            .unwrap_or_else(|e| panic!("workload `{name}` failed to assemble: {e}"));
        Workload { name, category, warmup_insts, program: std::sync::Arc::new(program) }
    }

    /// The assembled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The assembled program as a shared handle (no deep clone).
    pub fn program_shared(&self) -> std::sync::Arc<Program> {
        std::sync::Arc::clone(&self.program)
    }
}

/// Builds the full 18-program suite, in the paper's Table 4 order.
pub fn suite() -> Vec<Workload> {
    use ThermalCategory::*;
    vec![
        // gzip: integer compression windows — L1-resident load bursts.
        Workload::new("gzip", Medium, 64, kernels::load_bound(32 * 1024, 4, true)),
        // wupwise: large-stride FP-era stream — memory-bound and cool.
        Workload::new("wupwise", Low, 64, kernels::mem_stream(8 * 1024 * 1024, 8192, false)),
        // vpr: placement/routing pointer structures — serialized chase.
        Workload::new(
            "vpr",
            Low,
            kernels::pointer_chase_warmup(1 << 17),
            kernels::pointer_chase(1 << 17, 40961),
        ),
        // gcc: dense, high-ILP integer code.
        Workload::new("gcc", Extreme, 64, kernels::int_dense(10)),
        // mesa: moderate-ILP FP rendering loop.
        Workload::new("mesa", High, 64, kernels::fp_dense(6, 4)),
        // art: bursty — alternating hot FP bursts and cold miss phases.
        Workload::new("art", Extreme, 64, kernels::mixed_phases(100_000, 15_000, 1 << 20)),
        // equake: dense FP with heavy multiplies.
        Workload::new("equake", Extreme, 64, kernels::fp_dense(8, 6)),
        // crafty: search code — effectively random branches.
        Workload::new("crafty", Low, 64, kernels::branchy(0x2000, 4)),
        // facerec: FP plus integer address arithmetic, both clusters busy.
        Workload::new("facerec", High, 64, kernels::fp_dense(10, 2)),
        // fma3d: dense matrix arithmetic (FP + memory).
        Workload::new("fma3d", Medium, kernels::matmul_warmup(20), kernels::matmul(20)),
        // parser: branchy with moderate work.
        Workload::new("parser", Low, 64, kernels::branchy(0x1000, 8)),
        // eon: mixed int/FP rendering at moderate intensity.
        Workload::new("eon", Medium, 64, kernels::int_fp_mix(3, 3)),
        // perlbmk: call-dense interpreter-style integer code.
        Workload::new("perlbmk", High, 64, kernels::call_heavy(12)),
        // gap: hashed small-table accesses with integer work.
        Workload::new("gap", Medium, 64, kernels::hash_mix(1 << 15, 6)),
        // vortex: database-ish object accesses over a hot working set.
        Workload::new("vortex", Medium, 64, kernels::hash_mix(1 << 14, 6)),
        // bzip2: high-IPC integer with predictable branches.
        Workload::new("bzip2", Extreme, 64, kernels::int_dense(16)),
        // twolf: pointer-chasing placement with a medium footprint.
        Workload::new(
            "twolf",
            Low,
            kernels::pointer_chase_warmup(1 << 15),
            kernels::pointer_chase(1 << 15, 10241),
        ),
        // apsi: both execution clusters saturated.
        Workload::new("apsi", Extreme, 64, kernels::int_fp_mix(6, 5)),
    ]
}

/// Looks up one workload by benchmark name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_frontend::Cpu;

    #[test]
    fn suite_has_the_papers_18_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 18);
        let names: std::collections::HashSet<&str> = s.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 18, "names are unique");
        for expected in [
            "gzip", "wupwise", "vpr", "gcc", "mesa", "art", "equake", "crafty", "facerec",
            "fma3d", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf", "apsi",
        ] {
            assert!(names.contains(expected), "missing {expected}");
        }
    }

    #[test]
    fn all_categories_are_represented() {
        let s = suite();
        for cat in [
            ThermalCategory::Extreme,
            ThermalCategory::High,
            ThermalCategory::Medium,
            ThermalCategory::Low,
        ] {
            let n = s.iter().filter(|w| w.category == cat).count();
            assert!(n >= 3, "category {cat} has only {n} members");
        }
    }

    #[test]
    fn every_workload_executes_past_its_warmup() {
        for w in suite() {
            let mut cpu = Cpu::new(w.program());
            let budget = w.warmup_insts + 20_000;
            for i in 0..budget {
                let stepped = cpu
                    .step()
                    .unwrap_or_else(|e| panic!("{} failed at inst {i}: {e}", w.name));
                assert!(stepped.is_some(), "{} halted early at inst {i}", w.name);
            }
        }
    }

    #[test]
    fn by_name_round_trips() {
        let w = by_name("gcc").expect("gcc exists");
        assert_eq!(w.name, "gcc");
        assert!(by_name("not-a-benchmark").is_none());
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = by_name("crafty").unwrap();
        let b = by_name("crafty").unwrap();
        assert_eq!(a.program().insts, b.program().insts);
    }
}
