//! Parameterized kernel generators.
//!
//! Each generator emits TDISA assembly for an effectively endless program
//! (an outer loop of ~2 billion iterations around the kernel body) so the
//! simulator can run any instruction budget; register conventions:
//! `x30` outer counter, `x26..x29` pointers/inner counters, `x21/x22` LCG
//! state, `x1..x20` data.

use std::fmt::Write;

const OUTER_ITERS: i64 = 2_000_000_000;

fn header() -> String {
    String::new()
}

fn outer_open(src: &mut String) {
    let _ = writeln!(src, "        li x30, {OUTER_ITERS}");
    let _ = writeln!(src, "outer:");
}

fn outer_close(src: &mut String) {
    let _ = writeln!(src, "        addi x30, x30, -1");
    let _ = writeln!(src, "        bne x30, x0, outer");
    let _ = writeln!(src, "        halt");
}

/// Dense, mostly independent integer ALU work: high IPC, hot integer
/// execution units and register file.
pub fn int_dense(unroll: usize) -> String {
    let mut src = header();
    outer_open(&mut src);
    for i in 0..unroll {
        let r = 1 + (i % 8);
        let prev = 1 + ((i + 5) % 8);
        match i % 4 {
            0 => { let _ = writeln!(src, "        addi x{r}, x{r}, {}", (i % 7) as i32 + 1); }
            1 => { let _ = writeln!(src, "        xor  x{r}, x{r}, x{prev}"); }
            2 => { let _ = writeln!(src, "        add  x{r}, x{r}, x{prev}"); }
            _ => { let _ = writeln!(src, "        slli x{r}, x{prev}, 1"); }
        }
    }
    outer_close(&mut src);
    src
}

/// Dense floating-point work with plenty of ILP: hot FP units.
/// `mul_every` controls the multiply fraction (every Nth op is `fmul`;
/// multiplies share one non-replicated unit, so they throttle the mix).
pub fn fp_dense(unroll: usize, mul_every: usize) -> String {
    let mut src = header();
    let _ = writeln!(src, "        li x1, 1");
    for f in 1..=12 {
        let _ = writeln!(src, "        fcvt.d.w f{f}, x1");
    }
    outer_open(&mut src);
    for i in 0..unroll {
        // Rotate destinations over 12 registers; sources were written
        // ~11 operations ago, so nearby operations are independent.
        let d = 1 + (i % 12);
        let a = 1 + ((i + 1) % 12);
        let b = 1 + ((i + 2) % 12);
        if mul_every > 0 && i % mul_every == 0 {
            let _ = writeln!(src, "        fmul f{d}, f{a}, f{b}");
        } else {
            let _ = writeln!(src, "        fadd f{d}, f{a}, f{b}");
        }
    }
    // Renormalize one register so products cannot grow unboundedly.
    let _ = writeln!(src, "        fcvt.d.w f1, x1");
    outer_close(&mut src);
    src
}

/// Independent unrolled loads over a small-stride window: the hottest
/// D-cache/LSQ kernel. Loads carry no address dependences, so the memory
/// ports stay saturated; footprint vs. cache size sets the miss rate.
pub fn load_bound(footprint: usize, unroll: usize, with_store: bool) -> String {
    assert!(unroll >= 1 && footprint >= unroll * 16, "degenerate geometry");
    let mut src = header();
    let _ = writeln!(src, "        .data");
    let _ = writeln!(src, "buf:    .zero {footprint}");
    let _ = writeln!(src, "        .text");
    let _ = writeln!(src, "        la x29, buf");
    let _ = writeln!(src, "        li x28, {}", footprint - unroll * 8 - 64);
    let _ = writeln!(src, "        add x28, x28, x29");
    let _ = writeln!(src, "        mv x27, x29");
    outer_open(&mut src);
    for i in 0..unroll {
        let r = 1 + (i % 8);
        let _ = writeln!(src, "        lw x{r}, {}(x27)", i * 8);
    }
    if with_store {
        let _ = writeln!(src, "        sw x1, 0(x27)");
    }
    let _ = writeln!(src, "        addi x27, x27, {}", unroll * 8);
    let _ = writeln!(src, "        blt x27, x28, lb_ok");
    let _ = writeln!(src, "        mv x27, x29");
    let _ = writeln!(src, "lb_ok:");
    outer_close(&mut src);
    src
}

/// Streaming loads/stores over a `footprint`-byte buffer with the given
/// stride: hot D-cache and LSQ; miss behavior set by footprint vs. cache
/// sizes.
pub fn mem_stream(footprint: usize, stride: usize, with_stores: bool) -> String {
    assert!(stride >= 16 && footprint >= 2 * stride, "degenerate stream geometry");
    let mut src = header();
    let _ = writeln!(src, "        .data");
    let _ = writeln!(src, "buf:    .zero {footprint}");
    let _ = writeln!(src, "        .text");
    let _ = writeln!(src, "        la x29, buf");
    let _ = writeln!(src, "        li x28, {}", footprint - stride);
    let _ = writeln!(src, "        add x28, x28, x29");
    let _ = writeln!(src, "        mv x27, x29");
    outer_open(&mut src);
    let _ = writeln!(src, "        lw x1, 0(x27)");
    let _ = writeln!(src, "        lw x2, 8(x27)");
    let _ = writeln!(src, "        add x3, x1, x2");
    if with_stores {
        let _ = writeln!(src, "        sw x3, 0(x27)");
    }
    let _ = writeln!(src, "        addi x27, x27, {stride}");
    let _ = writeln!(src, "        blt x27, x28, noreset");
    let _ = writeln!(src, "        mv x27, x29");
    let _ = writeln!(src, "noreset:");
    outer_close(&mut src);
    src
}

/// A pointer chase over `nodes` 8-byte cells linked in a stride
/// permutation: serialized dependent loads, low IPC, cool chip.
///
/// The warmup (initialization) cost is roughly `7 × nodes` instructions;
/// use [`pointer_chase_warmup`] when configuring the timed region.
pub fn pointer_chase(nodes: usize, stride: usize) -> String {
    assert!(nodes.is_power_of_two(), "nodes must be a power of two");
    assert!(stride % 2 == 1, "stride must be odd to form a single cycle");
    let mut src = header();
    let _ = writeln!(src, "        .data");
    let _ = writeln!(src, "ring:   .zero {}", nodes * 8);
    let _ = writeln!(src, "        .text");
    let _ = writeln!(src, "        la x29, ring");
    let _ = writeln!(src, "        li x27, 0");
    let _ = writeln!(src, "        li x26, {nodes}");
    // ring[i] = &ring[(i + stride) & (nodes-1)]
    let _ = writeln!(src, "init:   slli x1, x27, 3");
    let _ = writeln!(src, "        add x1, x1, x29");
    let _ = writeln!(src, "        addi x2, x27, {stride}");
    let _ = writeln!(src, "        andi x2, x2, {}", nodes - 1);
    let _ = writeln!(src, "        slli x2, x2, 3");
    let _ = writeln!(src, "        add x2, x2, x29");
    let _ = writeln!(src, "        sw x2, 0(x1)");
    let _ = writeln!(src, "        addi x27, x27, 1");
    let _ = writeln!(src, "        bne x27, x26, init");
    let _ = writeln!(src, "        mv x1, x29");
    outer_open(&mut src);
    for _ in 0..4 {
        let _ = writeln!(src, "        lw x1, 0(x1)");
    }
    outer_close(&mut src);
    src
}

/// Instructions of functional warmup needed before [`pointer_chase`]'s
/// timed region starts in steady state.
pub fn pointer_chase_warmup(nodes: usize) -> u64 {
    (nodes as u64) * 9 + 64
}

/// Branch-heavy integer code driven by an LCG. `mask` selects which LCG
/// bits steer each branch: `0x2000`-style single high bits are
/// effectively random (hot branch predictor, many mispredictions), low
/// masks correlate with history (predictable).
pub fn branchy(mask: u32, work_per_branch: usize) -> String {
    let mut src = header();
    let _ = writeln!(src, "        li x21, 123456789");
    let _ = writeln!(src, "        li x22, 1103515245");
    outer_open(&mut src);
    for b in 0..3 {
        let _ = writeln!(src, "        mul x21, x21, x22");
        let _ = writeln!(src, "        addi x21, x21, 12345");
        let _ = writeln!(src, "        andi x1, x21, {mask}");
        let _ = writeln!(src, "        beq x1, x0, skip{b}");
        for w in 0..work_per_branch {
            let r = 2 + (w % 6);
            let _ = writeln!(src, "        addi x{r}, x{r}, 1");
        }
        let _ = writeln!(src, "skip{b}:");
    }
    outer_close(&mut src);
    src
}

/// Alternating hot/cool phases (the `art`-like bursty profile): a dense
/// FP phase of `hot_iters`, then a dependent-load miss phase of
/// `cool_iters` over a large-stride buffer.
pub fn mixed_phases(hot_iters: usize, cool_iters: usize, footprint: usize) -> String {
    let mut src = header();
    let _ = writeln!(src, "        .data");
    let _ = writeln!(src, "buf:    .zero {footprint}");
    let _ = writeln!(src, "        .text");
    let _ = writeln!(src, "        li x1, 1");
    for f in 1..=12 {
        let _ = writeln!(src, "        fcvt.d.w f{f}, x1");
    }
    let _ = writeln!(src, "        la x29, buf");
    outer_open(&mut src);
    // Hot phase: both clusters saturated (the far-spaced FP rotation plus
    // independent integer work), long enough — relative to the ~85 µs
    // block time constants — for temperatures to approach their hot
    // steady state before the cool phase begins.
    let _ = writeln!(src, "        li x27, {hot_iters}");
    let _ = writeln!(src, "hot:");
    for i in 0..5 {
        let d = 1 + (i % 12);
        let a = 1 + ((i + 1) % 12);
        let b = 1 + ((i + 2) % 12);
        if i % 4 == 0 {
            let _ = writeln!(src, "        fmul f{d}, f{a}, f{b}");
        } else {
            let _ = writeln!(src, "        fadd f{d}, f{a}, f{b}");
        }
    }
    for r in [5, 6, 7, 8, 9] {
        let _ = writeln!(src, "        addi x{r}, x{r}, 1");
    }
    let _ = writeln!(src, "        addi x27, x27, -1");
    let _ = writeln!(src, "        bne x27, x0, hot");
    let _ = writeln!(src, "        fcvt.d.w f2, x0");
    let _ = writeln!(src, "        fcvt.d.w f1, x0");
    // Cool phase: dependent strided loads missing the L1.
    let _ = writeln!(src, "        li x27, {cool_iters}");
    let _ = writeln!(src, "        mv x26, x29");
    let _ = writeln!(src, "cool:   lw x3, 0(x26)");
    let _ = writeln!(src, "        add x26, x26, x3"); // x3 is 0: dependence only
    let _ = writeln!(src, "        addi x26, x26, 4096");
    let _ = writeln!(src, "        andi x4, x27, {}", (footprint / 8192 - 1).max(1));
    let _ = writeln!(src, "        bne x4, x0, nc");
    let _ = writeln!(src, "        mv x26, x29");
    let _ = writeln!(src, "nc:     addi x27, x27, -1");
    let _ = writeln!(src, "        bne x27, x0, cool");
    outer_close(&mut src);
    src
}

/// Call/return-dense code (return-address stack and predictor exercise)
/// with integer work in the callees.
pub fn call_heavy(work: usize) -> String {
    let mut src = header();
    outer_open(&mut src);
    let _ = writeln!(src, "        call fn_a");
    let _ = writeln!(src, "        call fn_b");
    let _ = writeln!(src, "        addi x9, x9, 1");
    outer_close(&mut src); // halt ends main path
    let _ = writeln!(src, "fn_a:   mv x15, x1");
    for w in 0..work {
        let r = 2 + (w % 5);
        let _ = writeln!(src, "        addi x{r}, x{r}, 2");
    }
    let _ = writeln!(src, "        call fn_b");
    let _ = writeln!(src, "        mv x1, x15");
    let _ = writeln!(src, "        jalr x0, x15, 0");
    let _ = writeln!(src, "fn_b:   addi x8, x8, 1");
    for w in 0..work / 2 {
        let r = 10 + (w % 4);
        let _ = writeln!(src, "        xor x{r}, x{r}, x8");
    }
    let _ = writeln!(src, "        ret");
    src
}

/// Hash-table-style randomized loads/stores over a power-of-two
/// `footprint`, mixed with integer work.
pub fn hash_mix(footprint: usize, int_work: usize) -> String {
    assert!(footprint.is_power_of_two(), "footprint must be a power of two");
    let mut src = header();
    let _ = writeln!(src, "        .data");
    let _ = writeln!(src, "tab:    .zero {footprint}");
    let _ = writeln!(src, "        .text");
    let _ = writeln!(src, "        la x29, tab");
    let _ = writeln!(src, "        li x21, 88172645");
    let _ = writeln!(src, "        li x22, 1103515245");
    outer_open(&mut src);
    let _ = writeln!(src, "        mul x21, x21, x22");
    let _ = writeln!(src, "        addi x21, x21, 12345");
    let _ = writeln!(src, "        li x2, {}", footprint - 8);
    let _ = writeln!(src, "        and x1, x21, x2");
    let _ = writeln!(src, "        andi x1, x1, -8");
    let _ = writeln!(src, "        add x1, x1, x29");
    let _ = writeln!(src, "        lw x3, 0(x1)");
    let _ = writeln!(src, "        addi x3, x3, 1");
    let _ = writeln!(src, "        sw x3, 0(x1)");
    for w in 0..int_work {
        let r = 4 + (w % 6);
        let _ = writeln!(src, "        addi x{r}, x{r}, 1");
    }
    outer_close(&mut src);
    src
}

/// Dense `n × n` double-precision matrix multiply (the FP+memory kernel).
/// Initialization costs ~`14·n²` instructions; see [`matmul_warmup`].
pub fn matmul(n: usize) -> String {
    assert!(n >= 2, "matrix too small");
    let bytes = n * n * 8;
    let mut src = header();
    let _ = writeln!(src, "        .data");
    let _ = writeln!(src, "ma:     .zero {bytes}");
    let _ = writeln!(src, "mb:     .zero {bytes}");
    let _ = writeln!(src, "mc:     .zero {bytes}");
    let _ = writeln!(src, "        .text");
    let _ = writeln!(src, "        la x26, ma");
    let _ = writeln!(src, "        la x27, mb");
    let _ = writeln!(src, "        la x28, mc");
    // Fill A and B with small values: A[i] = (i & 7) * 0.25-ish via ints.
    let _ = writeln!(src, "        li x1, 0");
    let _ = writeln!(src, "        li x2, {}", n * n);
    let _ = writeln!(src, "fill:   andi x3, x1, 7");
    let _ = writeln!(src, "        fcvt.d.w f1, x3");
    let _ = writeln!(src, "        slli x4, x1, 3");
    let _ = writeln!(src, "        add x5, x26, x4");
    let _ = writeln!(src, "        fsw f1, 0(x5)");
    let _ = writeln!(src, "        add x5, x27, x4");
    let _ = writeln!(src, "        fsw f1, 0(x5)");
    let _ = writeln!(src, "        addi x1, x1, 1");
    let _ = writeln!(src, "        bne x1, x2, fill");
    outer_open(&mut src);
    let _ = writeln!(src, "        li x1, 0"); // i
    let _ = writeln!(src, "iloop:  li x2, 0"); // j
    let _ = writeln!(src, "jloop:  li x3, 0"); // k
    let _ = writeln!(src, "        fcvt.d.w f1, x0"); // sum = 0
    let _ = writeln!(src, "kloop:");
    // a = A[i*n + k]
    let _ = writeln!(src, "        li x4, {n}");
    let _ = writeln!(src, "        mul x5, x1, x4");
    let _ = writeln!(src, "        add x5, x5, x3");
    let _ = writeln!(src, "        slli x5, x5, 3");
    let _ = writeln!(src, "        add x5, x5, x26");
    let _ = writeln!(src, "        flw f2, 0(x5)");
    // b = B[k*n + j]
    let _ = writeln!(src, "        mul x6, x3, x4");
    let _ = writeln!(src, "        add x6, x6, x2");
    let _ = writeln!(src, "        slli x6, x6, 3");
    let _ = writeln!(src, "        add x6, x6, x27");
    let _ = writeln!(src, "        flw f3, 0(x6)");
    let _ = writeln!(src, "        fmul f4, f2, f3");
    let _ = writeln!(src, "        fadd f1, f1, f4");
    let _ = writeln!(src, "        addi x3, x3, 1");
    let _ = writeln!(src, "        bne x3, x4, kloop");
    // C[i*n + j] = sum
    let _ = writeln!(src, "        mul x5, x1, x4");
    let _ = writeln!(src, "        add x5, x5, x2");
    let _ = writeln!(src, "        slli x5, x5, 3");
    let _ = writeln!(src, "        add x5, x5, x28");
    let _ = writeln!(src, "        fsw f1, 0(x5)");
    let _ = writeln!(src, "        addi x2, x2, 1");
    let _ = writeln!(src, "        bne x2, x4, jloop");
    let _ = writeln!(src, "        addi x1, x1, 1");
    let _ = writeln!(src, "        bne x1, x4, iloop");
    outer_close(&mut src);
    src
}

/// Functional warmup before [`matmul`]'s timed region.
pub fn matmul_warmup(n: usize) -> u64 {
    (n * n) as u64 * 14 + 64
}

/// A mixed integer+FP kernel (both execution clusters busy).
pub fn int_fp_mix(int_unroll: usize, fp_unroll: usize) -> String {
    let mut src = header();
    let _ = writeln!(src, "        li x1, 1");
    for f in 1..=12 {
        let _ = writeln!(src, "        fcvt.d.w f{f}, x1");
    }
    outer_open(&mut src);
    let n = int_unroll.max(fp_unroll);
    for i in 0..n {
        if i < int_unroll {
            let r = 2 + (i % 6);
            let p = 2 + ((i + 3) % 6);
            let _ = writeln!(src, "        add x{r}, x{r}, x{p}");
        }
        if i < fp_unroll {
            let d = 1 + (i % 12);
            let a = 1 + ((i + 1) % 12);
            let b = 1 + ((i + 2) % 12);
            if i % 3 == 0 {
                let _ = writeln!(src, "        fmul f{d}, f{a}, f{b}");
            } else {
                let _ = writeln!(src, "        fadd f{d}, f{a}, f{b}");
            }
        }
    }
    let _ = writeln!(src, "        fcvt.d.w f1, x1");
    outer_close(&mut src);
    src
}

/// Serialized integer multiply chains: moderate, dependence-limited IPC.
pub fn int_chain(chain_ops: usize) -> String {
    let mut src = header();
    let _ = writeln!(src, "        li x1, 3");
    let _ = writeln!(src, "        li x2, 5");
    outer_open(&mut src);
    for i in 0..chain_ops {
        if i % 4 == 3 {
            let _ = writeln!(src, "        mul x1, x1, x2");
        } else {
            let _ = writeln!(src, "        add x1, x1, x2");
        }
    }
    let _ = writeln!(src, "        andi x1, x1, 1023");
    let _ = writeln!(src, "        ori x1, x1, 3");
    outer_close(&mut src);
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdtm_frontend::Cpu;
    use tdtm_isa::asm::assemble;
    use tdtm_isa::OpClass;

    /// Assembles a kernel and runs a slice of it functionally, returning
    /// per-class dynamic instruction fractions.
    fn profile(src: &str, insts: u64) -> [f64; 8] {
        let p = assemble(src).unwrap_or_else(|e| panic!("kernel must assemble: {e}\n{src}"));
        let mut cpu = Cpu::new(&p);
        let mut counts = [0u64; 8];
        for _ in 0..insts {
            let r = cpu.step().expect("executes").expect("not halted");
            let i = match r.inst.op.class() {
                OpClass::IntAlu => 0,
                OpClass::IntMul | OpClass::IntDiv => 1,
                OpClass::FpAdd => 2,
                OpClass::FpMul | OpClass::FpDiv => 3,
                OpClass::Load => 4,
                OpClass::Store => 5,
                OpClass::Branch => 6,
                _ => 7,
            };
            counts[i] += 1;
        }
        counts.map(|c| c as f64 / insts as f64)
    }

    #[test]
    fn int_dense_is_int_dominated() {
        let f = profile(&int_dense(16), 50_000);
        assert!(f[0] > 0.8, "int fraction {}", f[0]);
        assert!(f[2] + f[3] == 0.0);
    }

    #[test]
    fn fp_dense_is_fp_dominated() {
        let f = profile(&fp_dense(12, 3), 50_000);
        assert!(f[2] + f[3] > 0.7, "fp fraction {}", f[2] + f[3]);
    }

    #[test]
    fn mem_stream_has_heavy_memory_traffic() {
        let f = profile(&mem_stream(64 * 1024, 64, true), 50_000);
        assert!(f[4] + f[5] > 0.3, "mem fraction {}", f[4] + f[5]);
    }

    #[test]
    fn pointer_chase_is_load_serialized() {
        let src = pointer_chase(1024, 129);
        let f = profile(&src, 30_000);
        assert!(f[4] > 0.3, "load fraction {}", f[4]);
    }

    #[test]
    fn pointer_chase_links_form_a_cycle() {
        // Follow the ring functionally and confirm it revisits the start
        // only after the full period.
        let src = pointer_chase(64, 9);
        let p = assemble(&src).unwrap();
        let mut cpu = Cpu::new(&p);
        for _ in 0..pointer_chase_warmup(64) {
            cpu.step().unwrap();
        }
        // The chase register x1 now walks the ring; collect some steps.
        let mut seen = std::collections::HashSet::new();
        let mut steps = 0;
        while steps < 200 {
            let r = cpu.step().unwrap().unwrap();
            if r.inst.op == tdtm_isa::Op::Lw {
                seen.insert(r.mem.unwrap().addr);
                steps += 1;
            }
        }
        assert_eq!(seen.len(), 64, "stride permutation must cover all nodes");
    }

    #[test]
    fn branchy_has_many_branches() {
        let f = profile(&branchy(0x2000, 4), 50_000);
        assert!(f[6] > 0.15, "branch fraction {}", f[6]);
    }

    #[test]
    fn call_heavy_runs_and_returns() {
        let f = profile(&call_heavy(8), 50_000);
        assert!(f[7] > 0.0 || f[6] > 0.0, "jumps present");
    }

    #[test]
    fn matmul_mixes_fp_and_memory() {
        let n = 8;
        let f = profile(&matmul(n), matmul_warmup(n) + 30_000);
        assert!(f[2] + f[3] > 0.05, "fp fraction {}", f[2] + f[3]);
        assert!(f[4] > 0.05, "load fraction {}", f[4]);
    }

    #[test]
    fn hash_mix_stays_in_bounds() {
        let src = hash_mix(1 << 16, 4);
        let p = assemble(&src).unwrap();
        let mut cpu = Cpu::new(&p);
        for _ in 0..60_000 {
            let r = cpu.step().unwrap().unwrap();
            if let Some(m) = r.mem {
                let base = tdtm_isa::program::DATA_BASE;
                assert!(
                    (base..base + (1 << 16)).contains(&m.addr),
                    "access {:#x} outside the table",
                    m.addr
                );
            }
        }
    }

    #[test]
    fn mixed_phases_alternates_fp_and_loads() {
        let f = profile(&mixed_phases(400, 400, 1 << 20), 120_000);
        assert!(f[2] + f[3] > 0.1, "has an fp phase: {}", f[2] + f[3]);
        assert!(f[4] > 0.05, "has a load phase: {}", f[4]);
    }

    #[test]
    fn int_fp_mix_uses_both_clusters() {
        let f = profile(&int_fp_mix(8, 8), 50_000);
        assert!(f[0] > 0.2 && f[2] + f[3] > 0.2, "mix {f:?}");
    }

    #[test]
    fn int_chain_has_multiplies() {
        let f = profile(&int_chain(12), 50_000);
        assert!(f[1] > 0.1, "mul fraction {}", f[1]);
    }
}
