//! # tdtm-workloads — the synthetic SPEC CPU2000 stand-in suite
//!
//! The paper evaluates on 18 SPEC2000 programs (Alpha binaries, reference
//! inputs, EIO traces). Those are unavailable here, so this crate provides
//! 18 deterministic TDISA programs *named after* the paper's benchmarks,
//! each built from parameterized kernels ([`kernels`]) whose
//! microarchitectural profile — instruction mix, ILP, branch
//! predictability, memory footprint, burstiness — is tuned so the suite
//! spans the paper's four thermal-behavior categories (Table 5): extreme,
//! high, medium, and low thermal stress. See `DESIGN.md` §4 for why this
//! substitution preserves the DTM evaluation.
//!
//! Each workload declares a functional *warmup* instruction count (the
//! analogue of the paper's 2-billion-instruction skip) so initialization
//! code is excluded from the timed region.
//!
//! # Examples
//!
//! ```
//! let suite = tdtm_workloads::suite();
//! assert_eq!(suite.len(), 18);
//! let art = tdtm_workloads::by_name("art").expect("art is in the suite");
//! assert_eq!(art.category, tdtm_workloads::ThermalCategory::Extreme);
//! ```

pub mod kernels;
mod suite;

pub use suite::{by_name, suite, ThermalCategory, Workload};
