//! The chip-level DTM supervisor.
//!
//! The multicore hierarchy is two-level: each core runs its own per-block
//! policy (PID, adjustable-gain integral, ...) exactly as in the
//! single-core simulator, and a chip-level supervisor above them
//! redistributes the shared thermal budget once per sampling interval. A
//! core whose hottest block sits above the chip setpoint is consuming
//! more than its share of the heatsink, so the supervisor lowers that
//! core's *duty ceiling* — the per-core controller's command is then
//! clamped to `min(duty, cap)`. Cores with thermal margin keep the full
//! ceiling of 1.0, so with every core cool the supervisor is exactly the
//! identity and the N=1 chip behaves byte-identically to the single-core
//! path.
//!
//! The ceiling falls linearly with the overshoot — `cap = 1 - a·(T_hot -
//! setpoint)` for authority `a` — and is floored at one actuator
//! quantization level so a capped core keeps making (slow) forward
//! progress rather than livelocking at zero fetch.

/// Configuration of the chip-level supervisor.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SupervisorConfig {
    /// Chip-level setpoint (C): cores whose hottest block exceeds this
    /// get their duty ceiling reduced.
    pub chip_setpoint: f64,
    /// Ceiling reduction per kelvin of overshoot (duty/K).
    pub authority: f64,
    /// Floor on the duty ceiling (one 8-level quantization step by
    /// default, so capped cores still fetch occasionally).
    pub min_cap: f64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig { chip_setpoint: 110.8, authority: 0.5, min_cap: 0.125 }
    }
}

/// The chip-level budget allocator.
#[derive(Clone, Debug)]
pub struct ChipSupervisor {
    cfg: SupervisorConfig,
    caps: Vec<f64>,
    interventions: u64,
}

impl ChipSupervisor {
    /// A supervisor over `cores` cores, all ceilings initially 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the configuration is out of range
    /// (negative authority, or `min_cap` outside `[0, 1]`).
    pub fn new(cfg: SupervisorConfig, cores: usize) -> ChipSupervisor {
        assert!(cores > 0, "need at least one core");
        assert!(cfg.authority >= 0.0, "authority must be nonnegative");
        assert!((0.0..=1.0).contains(&cfg.min_cap), "min_cap must be a duty");
        ChipSupervisor { cfg, caps: vec![1.0; cores], interventions: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Recomputes the per-core duty ceilings from each core's hottest
    /// sensed block temperature (`f64::NEG_INFINITY` for a core that is
    /// parked/finished: it holds the full ceiling and never triggers an
    /// intervention). Returns the ceilings, one per core.
    ///
    /// # Panics
    ///
    /// Panics if `hottest_per_core` does not hold one entry per core.
    pub fn allocate(&mut self, hottest_per_core: &[f64]) -> &[f64] {
        self.allocate_observed(hottest_per_core, &mut |_, _, _| {})
    }

    /// Like [`allocate`](ChipSupervisor::allocate), but reports each cap
    /// *decision* (a ceiling set below 1.0) as
    /// `(core, hottest_sensed, cap)` through `observe`. Cores left at the
    /// full ceiling are not reported. The observed and unobserved paths
    /// compute identical ceilings — the observer only watches (mirroring
    /// `DtmPolicy::sample_observed`).
    ///
    /// # Panics
    ///
    /// Panics if `hottest_per_core` does not hold one entry per core.
    pub fn allocate_observed(
        &mut self,
        hottest_per_core: &[f64],
        observe: &mut dyn FnMut(usize, f64, f64),
    ) -> &[f64] {
        assert_eq!(hottest_per_core.len(), self.caps.len(), "one temperature per core");
        let mut intervened = false;
        for (core, (cap, &hot)) in self.caps.iter_mut().zip(hottest_per_core).enumerate() {
            let over = hot - self.cfg.chip_setpoint;
            *cap = if over > 0.0 {
                intervened = true;
                let cap = (1.0 - self.cfg.authority * over).clamp(self.cfg.min_cap, 1.0);
                observe(core, hot, cap);
                cap
            } else {
                1.0
            };
        }
        if intervened {
            self.interventions += 1;
        }
        &self.caps
    }

    /// The ceilings from the last [`allocate`](ChipSupervisor::allocate)
    /// call (all 1.0 before the first).
    pub fn caps(&self) -> &[f64] {
        &self.caps
    }

    /// Number of sampling intervals on which at least one core's ceiling
    /// was below 1.0.
    pub fn interventions(&self) -> u64 {
        self.interventions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cool_chip_is_the_identity() {
        let mut s = ChipSupervisor::new(SupervisorConfig::default(), 4);
        let caps = s.allocate(&[103.0, 108.0, 110.8, f64::NEG_INFINITY]).to_vec();
        assert_eq!(caps, vec![1.0; 4], "at/below setpoint: full ceilings");
        assert_eq!(s.interventions(), 0);
    }

    #[test]
    fn hot_cores_get_capped_monotonically() {
        let mut s = ChipSupervisor::new(SupervisorConfig::default(), 3);
        let caps = s.allocate(&[110.0, 111.3, 112.0]).to_vec();
        assert_eq!(caps[0], 1.0, "cool core untouched");
        assert!(caps[1] < 1.0, "hot core capped");
        assert!(caps[2] < caps[1], "hotter core capped harder");
        assert_eq!(s.interventions(), 1, "one intervention per interval, not per core");
    }

    #[test]
    fn cap_floors_at_min_cap() {
        let cfg = SupervisorConfig::default();
        let mut s = ChipSupervisor::new(cfg, 1);
        let caps = s.allocate(&[150.0]).to_vec();
        assert_eq!(caps[0], cfg.min_cap, "runaway core still gets the floor");
    }

    #[test]
    fn interventions_count_intervals() {
        let mut s = ChipSupervisor::new(SupervisorConfig::default(), 2);
        s.allocate(&[111.5, 111.5]);
        s.allocate(&[100.0, 100.0]);
        s.allocate(&[100.0, 111.2]);
        assert_eq!(s.interventions(), 2);
        assert_eq!(s.caps()[1], 1.0 - 0.5 * (111.2 - 110.8));
    }

    #[test]
    #[should_panic(expected = "one temperature per core")]
    fn allocation_arity_checked() {
        let mut s = ChipSupervisor::new(SupervisorConfig::default(), 2);
        s.allocate(&[100.0]);
    }

    #[test]
    fn observed_path_matches_and_reports_capped_cores_only() {
        let temps = [110.0, 111.3, 112.0, f64::NEG_INFINITY];
        let mut plain = ChipSupervisor::new(SupervisorConfig::default(), 4);
        let expected = plain.allocate(&temps).to_vec();

        let mut observed = ChipSupervisor::new(SupervisorConfig::default(), 4);
        let mut seen = Vec::new();
        let caps = observed
            .allocate_observed(&temps, &mut |core, hot, cap| seen.push((core, hot, cap)))
            .to_vec();
        assert_eq!(caps, expected, "observer must not change the allocation");
        assert_eq!(observed.interventions(), plain.interventions());
        assert_eq!(seen.len(), 2, "only the two capped cores are reported");
        assert_eq!(seen[0].0, 1);
        assert_eq!(seen[1], (2, 112.0, caps[2]));
    }
}
