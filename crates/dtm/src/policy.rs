//! The DTM policies.
//!
//! Every policy implements [`DtmPolicy`]: once per sampling interval it
//! receives the sensed per-block temperatures and returns a
//! [`DtmCommand`]. Policies are stateful (policy delays, controller
//! integrals) and deterministic.

use crate::command::DtmCommand;
use crate::config::{DtmConfig, PolicyKind};
use tdtm_control::design::{design_controller, ControllerKind, FopdtPlant};
use tdtm_control::pid::{quantize, PidController, PidSample};

/// A dynamic thermal management policy.
pub trait DtmPolicy {
    /// Consumes one sample of sensed block temperatures and returns the
    /// actuator command for the next interval.
    fn sample(&mut self, temps: &[f64]) -> DtmCommand;

    /// Like [`sample`](Self::sample), but reports each internal PID step
    /// as `(block_index, PidSample)` through `observe`. Policies without
    /// internal controllers ignore the observer; controller-backed
    /// policies override this so telemetry can watch the P/I/D terms
    /// without re-deriving them. Implementations must guarantee the
    /// observed and unobserved paths produce identical commands.
    fn sample_observed(
        &mut self,
        temps: &[f64],
        observe: &mut dyn FnMut(usize, PidSample),
    ) -> DtmCommand {
        let _ = observe;
        self.sample(temps)
    }

    /// Number of samples on which the policy restricted the machine.
    fn engaged_samples(&self) -> u64;

    /// The policy's kind (for reporting).
    fn kind(&self) -> PolicyKind;
}

/// Builds the policy selected by `config`.
pub fn build_policy(config: &DtmConfig) -> Box<dyn DtmPolicy> {
    build_policy_at(config, 1.5e9)
}

/// [`build_policy`] with an explicit clock (the controller designs depend
/// on the sampling period in seconds).
pub fn build_policy_at(config: &DtmConfig, clock_hz: f64) -> Box<dyn DtmPolicy> {
    match config.policy {
        PolicyKind::None => Box::new(NoDtm { samples: 0 }),
        PolicyKind::Toggle1 => Box::new(Triggered::new(*config, TriggeredAction::Toggle(0.0))),
        PolicyKind::Toggle2 => Box::new(Triggered::new(*config, TriggeredAction::Toggle(0.5))),
        PolicyKind::Throttle => Box::new(Triggered::new(
            *config,
            TriggeredAction::Throttle(config.throttle_width),
        )),
        PolicyKind::SpecControl => Box::new(Triggered::new(
            *config,
            TriggeredAction::SpecControl(config.spec_control_branches),
        )),
        PolicyKind::VfScale => Box::new(Triggered::new(*config, TriggeredAction::VfScale)),
        PolicyKind::Manual => Box::new(ManualProportional { cfg: *config, engaged: 0 }),
        PolicyKind::P | PolicyKind::Pd | PolicyKind::Pi | PolicyKind::Pid => {
            Box::new(CtPolicy::new(*config, clock_hz))
        }
        PolicyKind::Hierarchical => Box::new(Hierarchical::new(*config, clock_hz)),
    }
}

// ----------------------------------------------------------------------
// No DTM
// ----------------------------------------------------------------------

struct NoDtm {
    samples: u64,
}

impl DtmPolicy for NoDtm {
    fn sample(&mut self, _temps: &[f64]) -> DtmCommand {
        self.samples += 1;
        DtmCommand::full_speed()
    }

    fn engaged_samples(&self) -> u64 {
        0
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::None
    }
}

// ----------------------------------------------------------------------
// Trigger-threshold policies (toggle1/2, throttle, spec control, V/f)
// ----------------------------------------------------------------------

#[derive(Clone, Copy)]
enum TriggeredAction {
    Toggle(f64),
    Throttle(usize),
    SpecControl(usize),
    VfScale,
}

/// A fixed-response policy engaged whenever any block exceeds the trigger
/// threshold, held for at least the policy delay ("too short a policy, and
/// the system will stay at or near trigger; too long, and the system will
/// incur an unnecessary loss in performance").
struct Triggered {
    cfg: DtmConfig,
    action: TriggeredAction,
    engaged_until_sample: u64,
    sample_count: u64,
    engaged: u64,
}

impl Triggered {
    fn new(cfg: DtmConfig, action: TriggeredAction) -> Triggered {
        Triggered { cfg, action, engaged_until_sample: 0, sample_count: 0, engaged: 0 }
    }
}

impl DtmPolicy for Triggered {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        self.sample_count += 1;
        let hot = temps.iter().any(|&t| t > self.cfg.trigger);
        if hot {
            let delay_samples = self.cfg.policy_delay / self.cfg.sample_interval.max(1);
            self.engaged_until_sample = self.sample_count + delay_samples;
        }
        if self.sample_count <= self.engaged_until_sample || hot {
            self.engaged += 1;
            match self.action {
                TriggeredAction::Toggle(duty) => DtmCommand::toggle(duty),
                TriggeredAction::Throttle(w) => DtmCommand {
                    fetch_width_limit: Some(w),
                    ..DtmCommand::full_speed()
                },
                TriggeredAction::SpecControl(n) => DtmCommand {
                    max_unresolved_branches: Some(n),
                    ..DtmCommand::full_speed()
                },
                TriggeredAction::VfScale => DtmCommand {
                    vf: Some(self.cfg.vf_setting),
                    ..DtmCommand::full_speed()
                },
            }
        } else {
            DtmCommand::full_speed()
        }
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        match self.action {
            TriggeredAction::Toggle(d) => {
                if d == 0.0 {
                    PolicyKind::Toggle1
                } else {
                    PolicyKind::Toggle2
                }
            }
            TriggeredAction::Throttle(_) => PolicyKind::Throttle,
            TriggeredAction::SpecControl(_) => PolicyKind::SpecControl,
            TriggeredAction::VfScale => PolicyKind::VfScale,
        }
    }
}

// ----------------------------------------------------------------------
// The hand-built proportional controller "M"
// ----------------------------------------------------------------------

/// The paper's manually designed comparison controller: "sets the toggling
/// rate equal to the percentage error in temperature" across the sensor
/// range above the trigger, quantized to the actuator's 8 levels.
struct ManualProportional {
    cfg: DtmConfig,
    engaged: u64,
}

impl DtmPolicy for ManualProportional {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let error_fraction =
            ((hottest - self.cfg.trigger) / self.cfg.sensor_range).clamp(0.0, 1.0);
        let duty = quantize(1.0 - error_fraction, self.cfg.quantize_levels);
        if duty < 1.0 {
            self.engaged += 1;
        }
        DtmCommand::toggle(duty)
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Manual
    }
}

// ----------------------------------------------------------------------
// Control-theoretic policies
// ----------------------------------------------------------------------

/// One designed controller per thermal block; the actuator takes the most
/// restrictive (minimum) duty across blocks, so the hottest structure
/// governs.
struct CtPolicy {
    cfg: DtmConfig,
    controllers: Vec<PidController>,
    /// Output bias: P/PD controllers have no integral action to hold the
    /// operating point, so they modulate around full speed.
    bias: f64,
    kind: ControllerKind,
    engaged: u64,
    initialized: bool,
}

impl CtPolicy {
    fn new(cfg: DtmConfig, clock_hz: f64) -> CtPolicy {
        let kind = match cfg.policy {
            PolicyKind::P => ControllerKind::P,
            PolicyKind::Pd => ControllerKind::Pd,
            PolicyKind::Pi => ControllerKind::Pi,
            PolicyKind::Pid => ControllerKind::Pid,
            other => panic!("CtPolicy built for non-CT policy {other:?}"),
        };
        let plant = FopdtPlant {
            gain: cfg.plant_gain,
            time_constant: cfg.plant_tau,
            delay: cfg.loop_delay(clock_hz),
        };
        let gains = design_controller(&plant, kind);
        let period = cfg.sample_period(clock_hz);
        let has_integral = gains.ki > 0.0;
        // With integral action the controller output lives in [0, 1]
        // directly (the integral supplies the operating point). Without
        // it, the proportional/derivative terms modulate downward from
        // full speed: output range [-1, 0], duty = 1 + output.
        let (lo, hi, bias) = if has_integral { (0.0, 1.0, 0.0) } else { (-1.0, 0.0, 1.0) };
        let mut prototype = PidController::new(gains, period, lo, hi);
        if !cfg.anti_windup {
            prototype = prototype.without_anti_windup();
        }
        let controllers = vec![prototype; 7];
        CtPolicy { cfg, controllers, bias, kind, engaged: 0, initialized: false }
    }

    fn ensure_size(&mut self, n: usize) {
        if self.controllers.len() != n {
            let proto = self.controllers[0].clone();
            self.controllers = vec![proto; n];
            for c in &mut self.controllers {
                c.reset();
            }
        }
        self.initialized = true;
    }
}

impl DtmPolicy for CtPolicy {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        // Delegate so the observed and unobserved paths are literally the
        // same code — attaching telemetry cannot change the command.
        self.sample_observed(temps, &mut |_, _| {})
    }

    fn sample_observed(
        &mut self,
        temps: &[f64],
        observe: &mut dyn FnMut(usize, PidSample),
    ) -> DtmCommand {
        if !self.initialized {
            self.ensure_size(temps.len());
        }
        assert_eq!(temps.len(), self.controllers.len(), "one controller per sensed block");
        let mut duty: f64 = 1.0;
        for (block, (c, &t)) in self.controllers.iter_mut().zip(temps).enumerate() {
            let error = self.cfg.setpoint - t;
            let s = c.sample_detailed(error);
            observe(block, s);
            let u = (s.output + self.bias).clamp(0.0, 1.0);
            duty = duty.min(u);
        }
        let duty = quantize(duty, self.cfg.quantize_levels);
        if duty < 1.0 {
            self.engaged += 1;
        }
        DtmCommand::toggle(duty)
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        match self.kind {
            ControllerKind::P => PolicyKind::P,
            ControllerKind::Pd => PolicyKind::Pd,
            ControllerKind::Pi => PolicyKind::Pi,
            ControllerKind::Pid => PolicyKind::Pid,
        }
    }
}

// ----------------------------------------------------------------------
// Hierarchical: CT toggling primary, V/f backup
// ----------------------------------------------------------------------

/// The Section 2.1 hierarchy: a PID toggling controller handles normal
/// thermal stress; if temperature nevertheless gets "truly close to
/// emergency" (past the backup trigger), voltage/frequency scaling engages
/// as well, and — because scaling has invocation overhead — stays engaged
/// for the policy delay.
struct Hierarchical {
    cfg: DtmConfig,
    primary: CtPolicy,
    backup_until_sample: u64,
    sample_count: u64,
    engaged: u64,
}

impl Hierarchical {
    fn new(cfg: DtmConfig, clock_hz: f64) -> Hierarchical {
        let primary_cfg = DtmConfig { policy: PolicyKind::Pid, ..cfg };
        Hierarchical {
            cfg,
            primary: CtPolicy::new(primary_cfg, clock_hz),
            backup_until_sample: 0,
            sample_count: 0,
            engaged: 0,
        }
    }
}

impl DtmPolicy for Hierarchical {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        self.sample_observed(temps, &mut |_, _| {})
    }

    fn sample_observed(
        &mut self,
        temps: &[f64],
        observe: &mut dyn FnMut(usize, PidSample),
    ) -> DtmCommand {
        self.sample_count += 1;
        let mut cmd = self.primary.sample_observed(temps, observe);
        let truly_hot = temps.iter().any(|&t| t > self.cfg.backup_trigger);
        if truly_hot {
            let delay_samples = self.cfg.policy_delay / self.cfg.sample_interval.max(1);
            self.backup_until_sample = self.sample_count + delay_samples;
        }
        if truly_hot || self.sample_count <= self.backup_until_sample {
            cmd.vf = Some(self.cfg.vf_setting);
        }
        if cmd.is_restrictive() {
            self.engaged += 1;
        }
        cmd
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Hierarchical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(policy: PolicyKind) -> DtmConfig {
        DtmConfig { policy, ..DtmConfig::default() }
    }

    fn cool() -> [f64; 7] {
        [100.0; 7]
    }

    fn hot_block(temp: f64) -> [f64; 7] {
        let mut t = cool();
        t[3] = temp;
        t
    }

    #[test]
    fn no_dtm_never_restricts() {
        let mut p = build_policy(&config(PolicyKind::None));
        assert_eq!(p.sample(&hot_block(150.0)), DtmCommand::full_speed());
        assert_eq!(p.engaged_samples(), 0);
    }

    #[test]
    fn toggle1_stops_fetch_above_trigger() {
        let mut p = build_policy(&config(PolicyKind::Toggle1));
        assert_eq!(p.sample(&cool()).fetch_duty, 1.0);
        let cmd = p.sample(&hot_block(109.5));
        assert_eq!(cmd.fetch_duty, 0.0);
        assert_eq!(p.kind(), PolicyKind::Toggle1);
    }

    #[test]
    fn toggle2_halves_fetch() {
        let mut p = build_policy(&config(PolicyKind::Toggle2));
        assert_eq!(p.sample(&hot_block(110.0)).fetch_duty, 0.5);
    }

    #[test]
    fn policy_delay_holds_the_response() {
        let cfg = DtmConfig {
            policy: PolicyKind::Toggle1,
            policy_delay: 5_000,
            sample_interval: 1000,
            ..DtmConfig::default()
        };
        let mut p = build_policy(&cfg);
        assert_eq!(p.sample(&hot_block(110.0)).fetch_duty, 0.0);
        // Temperature back below trigger, but the policy stays engaged for
        // 5 more samples.
        for _ in 0..5 {
            assert_eq!(p.sample(&cool()).fetch_duty, 0.0, "held by policy delay");
        }
        assert_eq!(p.sample(&cool()).fetch_duty, 1.0, "released after delay");
    }

    #[test]
    fn throttle_and_spec_control_set_their_actuators() {
        let mut th = build_policy(&config(PolicyKind::Throttle));
        let cmd = th.sample(&hot_block(110.0));
        assert_eq!(cmd.fetch_width_limit, Some(1));
        assert_eq!(cmd.fetch_duty, 1.0);

        let mut sc = build_policy(&config(PolicyKind::SpecControl));
        let cmd = sc.sample(&hot_block(110.0));
        assert_eq!(cmd.max_unresolved_branches, Some(1));
    }

    #[test]
    fn vf_scaling_reduces_power_cubed_ish() {
        let mut p = build_policy(&config(PolicyKind::VfScale));
        let cmd = p.sample(&hot_block(110.0));
        let vf = cmd.vf.expect("engaged");
        assert!(vf.power_scale() < 0.6, "f·V² scale {}", vf.power_scale());
    }

    #[test]
    fn manual_matches_percentage_error_mapping() {
        let mut p = build_policy(&config(PolicyKind::Manual));
        // Below trigger: full speed.
        assert_eq!(p.sample(&hot_block(108.9)).fetch_duty, 1.0);
        // Midpoint of the 109..111 range: 50% error → toggle2.
        assert_eq!(p.sample(&hot_block(110.0)).fetch_duty, 0.5);
        // At/above range top: full stop.
        assert_eq!(p.sample(&hot_block(111.0)).fetch_duty, 0.0);
        assert_eq!(p.sample(&hot_block(115.0)).fetch_duty, 0.0);
    }

    #[test]
    fn manual_quantizes_to_eight_levels() {
        let mut p = build_policy(&config(PolicyKind::Manual));
        let duty = p.sample(&hot_block(109.3)).fetch_duty;
        assert!((duty * 8.0 - (duty * 8.0).round()).abs() < 1e-9, "duty {duty} on the 8-level grid");
    }

    #[test]
    fn ct_policies_run_full_speed_when_cool() {
        for kind in [PolicyKind::P, PolicyKind::Pd, PolicyKind::Pi, PolicyKind::Pid] {
            let mut p = build_policy(&config(kind));
            for _ in 0..10 {
                assert_eq!(p.sample(&cool()).fetch_duty, 1.0, "{kind}");
            }
            assert_eq!(p.engaged_samples(), 0, "{kind}");
        }
    }

    #[test]
    fn ct_policies_throttle_when_past_setpoint() {
        for kind in [PolicyKind::P, PolicyKind::Pd, PolicyKind::Pi, PolicyKind::Pid] {
            let mut p = build_policy(&config(kind));
            p.sample(&cool());
            let mut last = 1.0;
            for _ in 0..20 {
                last = p.sample(&hot_block(112.5)).fetch_duty;
            }
            assert!(last < 0.8, "{kind}: sustained 1.7K overshoot should throttle, duty {last}");
        }
    }

    #[test]
    fn ct_response_scales_with_severity() {
        // The pure P policy makes the proportionality visible: duty is
        // 1 + Kp·e with no integral/derivative state. (The designed Kp is
        // aggressive — a few tenths of a kelvin span the full actuator
        // range — which is exactly the tight control the paper reports.)
        let mut p = build_policy(&config(PolicyKind::P));
        let mild = p.sample(&hot_block(110.81)).fetch_duty;
        let severe = p.sample(&hot_block(110.9)).fetch_duty;
        let extreme = p.sample(&hot_block(113.0)).fetch_duty;
        assert!(
            severe < mild,
            "stronger thermal stress should get a stronger response ({severe} vs {mild})"
        );
        assert_eq!(extreme, 0.0, "far past the setpoint the actuator saturates");
        assert!(mild > 0.0, "mild overshoot gets a mild response");
    }

    #[test]
    fn hottest_block_governs() {
        let mut all_hot = build_policy(&config(PolicyKind::Pid));
        let mut one_hot = build_policy(&config(PolicyKind::Pid));
        all_hot.sample(&[112.0; 7]);
        one_hot.sample(&hot_block(112.0));
        let a = all_hot.sample(&[112.0; 7]).fetch_duty;
        let b = one_hot.sample(&hot_block(112.0)).fetch_duty;
        assert!((a - b).abs() < 1e-9, "min across blocks equals the hottest block's command");
    }

    #[test]
    fn hierarchical_engages_backup_only_when_truly_hot() {
        let mut p = build_policy(&config(PolicyKind::Hierarchical));
        // Cool: nothing.
        let cmd = p.sample(&cool());
        assert_eq!(cmd.fetch_duty, 1.0);
        assert!(cmd.vf.is_none());
        // Past the setpoint but under the backup trigger: toggling only.
        let cmd = p.sample(&hot_block(110.9));
        assert!(cmd.fetch_duty < 1.0, "primary controller engaged");
        assert!(cmd.vf.is_none(), "backup stays out below its trigger");
        // Truly close to emergency: V/f backup engages too.
        let cmd = p.sample(&hot_block(110.98));
        assert!(cmd.vf.is_some(), "backup engages past {:.2}", 110.95);
    }

    #[test]
    fn hierarchical_backup_held_for_policy_delay() {
        let cfg = DtmConfig {
            policy: PolicyKind::Hierarchical,
            policy_delay: 3_000,
            sample_interval: 1000,
            ..DtmConfig::default()
        };
        let mut p = build_policy(&cfg);
        assert!(p.sample(&hot_block(111.2)).vf.is_some());
        for i in 0..3 {
            assert!(p.sample(&cool()).vf.is_some(), "held at sample {i}");
        }
        assert!(p.sample(&cool()).vf.is_none(), "released after the delay");
    }

    #[test]
    fn observed_and_unobserved_sampling_agree_bitwise() {
        let mut plain = build_policy(&config(PolicyKind::Pid));
        let mut observed = build_policy(&config(PolicyKind::Hierarchical));
        let mut plain_h = build_policy(&config(PolicyKind::Hierarchical));
        let mut observed_p = build_policy(&config(PolicyKind::Pid));
        let mut seen = 0usize;
        for t in [108.0, 110.9, 111.5, 112.0, 109.0, 110.85] {
            let temps = hot_block(t);
            let a = plain.sample(&temps);
            let b = observed_p.sample_observed(&temps, &mut |_, s| {
                seen += 1;
                assert!(s.output.is_finite());
            });
            assert_eq!(a.fetch_duty.to_bits(), b.fetch_duty.to_bits());
            let c = plain_h.sample(&temps);
            let d = observed.sample_observed(&temps, &mut |_, _| {});
            assert_eq!(c, d, "hierarchical observed path diverged at {t}");
        }
        assert_eq!(seen, 6 * 7, "one PidSample per block per sample");
    }

    #[test]
    fn ct_duty_is_quantized() {
        let mut p = build_policy(&config(PolicyKind::Pi));
        p.sample(&cool());
        for t in [110.9, 111.2, 111.8, 112.4] {
            let duty = p.sample(&hot_block(t)).fetch_duty;
            assert!((duty * 8.0 - (duty * 8.0).round()).abs() < 1e-9, "duty {duty}");
        }
    }
}
