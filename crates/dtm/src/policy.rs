//! The DTM policies.
//!
//! Every policy implements [`DtmPolicy`]: once per sampling interval it
//! receives the sensed per-block temperatures and returns a
//! [`DtmCommand`]. Policies are stateful (policy delays, controller
//! integrals) and deterministic.

use crate::command::DtmCommand;
use crate::config::{DtmConfig, PolicyKind};
use tdtm_control::design::{design_controller, ControllerKind, FopdtPlant};
use tdtm_control::pid::{quantize, PidController, PidSample};

/// A dynamic thermal management policy.
pub trait DtmPolicy {
    /// Consumes one sample of sensed block temperatures and returns the
    /// actuator command for the next interval.
    fn sample(&mut self, temps: &[f64]) -> DtmCommand;

    /// Like [`sample`](Self::sample), but reports each internal PID step
    /// as `(block_index, PidSample)` through `observe`. Policies without
    /// internal controllers ignore the observer; controller-backed
    /// policies override this so telemetry can watch the P/I/D terms
    /// without re-deriving them. Implementations must guarantee the
    /// observed and unobserved paths produce identical commands.
    fn sample_observed(
        &mut self,
        temps: &[f64],
        observe: &mut dyn FnMut(usize, PidSample),
    ) -> DtmCommand {
        let _ = observe;
        self.sample(temps)
    }

    /// Number of samples on which the policy restricted the machine.
    fn engaged_samples(&self) -> u64;

    /// The policy's kind (for reporting).
    fn kind(&self) -> PolicyKind;
}

/// Builds the policy selected by `config`.
pub fn build_policy(config: &DtmConfig) -> Box<dyn DtmPolicy> {
    build_policy_at(config, 1.5e9)
}

/// [`build_policy`] with an explicit clock (the controller designs depend
/// on the sampling period in seconds).
pub fn build_policy_at(config: &DtmConfig, clock_hz: f64) -> Box<dyn DtmPolicy> {
    match config.policy {
        PolicyKind::None => Box::new(NoDtm { samples: 0 }),
        PolicyKind::Toggle1 => Box::new(Triggered::new(*config, TriggeredAction::Toggle(0.0))),
        PolicyKind::Toggle2 => Box::new(Triggered::new(*config, TriggeredAction::Toggle(0.5))),
        PolicyKind::Throttle => Box::new(Triggered::new(
            *config,
            TriggeredAction::Throttle(config.throttle_width),
        )),
        PolicyKind::SpecControl => Box::new(Triggered::new(
            *config,
            TriggeredAction::SpecControl(config.spec_control_branches),
        )),
        PolicyKind::VfScale => Box::new(Triggered::new(*config, TriggeredAction::VfScale)),
        PolicyKind::Manual => Box::new(ManualProportional { cfg: *config, engaged: 0 }),
        PolicyKind::P | PolicyKind::Pd | PolicyKind::Pi | PolicyKind::Pid => {
            Box::new(CtPolicy::new(*config, clock_hz))
        }
        PolicyKind::Hierarchical => Box::new(Hierarchical::new(*config, clock_hz)),
        PolicyKind::AdaptiveI => Box::new(AdaptiveIntegral::new(*config)),
        PolicyKind::StabilityAware => Box::new(StabilityAwarePi::new(*config, clock_hz)),
    }
}

// ----------------------------------------------------------------------
// No DTM
// ----------------------------------------------------------------------

struct NoDtm {
    samples: u64,
}

impl DtmPolicy for NoDtm {
    fn sample(&mut self, _temps: &[f64]) -> DtmCommand {
        self.samples += 1;
        DtmCommand::full_speed()
    }

    fn engaged_samples(&self) -> u64 {
        0
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::None
    }
}

// ----------------------------------------------------------------------
// Trigger-threshold policies (toggle1/2, throttle, spec control, V/f)
// ----------------------------------------------------------------------

#[derive(Clone, Copy)]
enum TriggeredAction {
    Toggle(f64),
    Throttle(usize),
    SpecControl(usize),
    VfScale,
}

/// A fixed-response policy engaged whenever any block exceeds the trigger
/// threshold, held for at least the policy delay ("too short a policy, and
/// the system will stay at or near trigger; too long, and the system will
/// incur an unnecessary loss in performance").
struct Triggered {
    cfg: DtmConfig,
    action: TriggeredAction,
    engaged_until_sample: u64,
    sample_count: u64,
    engaged: u64,
}

impl Triggered {
    fn new(cfg: DtmConfig, action: TriggeredAction) -> Triggered {
        Triggered { cfg, action, engaged_until_sample: 0, sample_count: 0, engaged: 0 }
    }
}

impl DtmPolicy for Triggered {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        self.sample_count += 1;
        let hot = temps.iter().any(|&t| t > self.cfg.trigger);
        if hot {
            let delay_samples = self.cfg.policy_delay / self.cfg.sample_interval.max(1);
            self.engaged_until_sample = self.sample_count + delay_samples;
        }
        if self.sample_count <= self.engaged_until_sample || hot {
            self.engaged += 1;
            match self.action {
                TriggeredAction::Toggle(duty) => DtmCommand::toggle(duty),
                TriggeredAction::Throttle(w) => DtmCommand {
                    fetch_width_limit: Some(w),
                    ..DtmCommand::full_speed()
                },
                TriggeredAction::SpecControl(n) => DtmCommand {
                    max_unresolved_branches: Some(n),
                    ..DtmCommand::full_speed()
                },
                TriggeredAction::VfScale => DtmCommand {
                    vf: Some(self.cfg.vf_setting),
                    ..DtmCommand::full_speed()
                },
            }
        } else {
            DtmCommand::full_speed()
        }
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        match self.action {
            TriggeredAction::Toggle(d) => {
                if d == 0.0 {
                    PolicyKind::Toggle1
                } else {
                    PolicyKind::Toggle2
                }
            }
            TriggeredAction::Throttle(_) => PolicyKind::Throttle,
            TriggeredAction::SpecControl(_) => PolicyKind::SpecControl,
            TriggeredAction::VfScale => PolicyKind::VfScale,
        }
    }
}

// ----------------------------------------------------------------------
// The hand-built proportional controller "M"
// ----------------------------------------------------------------------

/// The paper's manually designed comparison controller: "sets the toggling
/// rate equal to the percentage error in temperature" across the sensor
/// range above the trigger, quantized to the actuator's 8 levels.
struct ManualProportional {
    cfg: DtmConfig,
    engaged: u64,
}

impl DtmPolicy for ManualProportional {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let error_fraction =
            ((hottest - self.cfg.trigger) / self.cfg.sensor_range).clamp(0.0, 1.0);
        let duty = quantize(1.0 - error_fraction, self.cfg.quantize_levels);
        if duty < 1.0 {
            self.engaged += 1;
        }
        DtmCommand::toggle(duty)
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Manual
    }
}

// ----------------------------------------------------------------------
// Control-theoretic policies
// ----------------------------------------------------------------------

/// One designed controller per thermal block; the actuator takes the most
/// restrictive (minimum) duty across blocks, so the hottest structure
/// governs.
struct CtPolicy {
    cfg: DtmConfig,
    controllers: Vec<PidController>,
    /// Output bias: P/PD controllers have no integral action to hold the
    /// operating point, so they modulate around full speed.
    bias: f64,
    kind: ControllerKind,
    engaged: u64,
    initialized: bool,
}

impl CtPolicy {
    fn new(cfg: DtmConfig, clock_hz: f64) -> CtPolicy {
        let kind = match cfg.policy {
            PolicyKind::P => ControllerKind::P,
            PolicyKind::Pd => ControllerKind::Pd,
            PolicyKind::Pi => ControllerKind::Pi,
            PolicyKind::Pid => ControllerKind::Pid,
            other => panic!("CtPolicy built for non-CT policy {other:?}"),
        };
        let plant = FopdtPlant {
            gain: cfg.plant_gain,
            time_constant: cfg.plant_tau,
            delay: cfg.loop_delay(clock_hz),
        };
        let gains = design_controller(&plant, kind);
        let period = cfg.sample_period(clock_hz);
        let has_integral = gains.ki > 0.0;
        // With integral action the controller output lives in [0, 1]
        // directly (the integral supplies the operating point). Without
        // it, the proportional/derivative terms modulate downward from
        // full speed: output range [-1, 0], duty = 1 + output.
        let (lo, hi, bias) = if has_integral { (0.0, 1.0, 0.0) } else { (-1.0, 0.0, 1.0) };
        let mut prototype = PidController::new(gains, period, lo, hi);
        if !cfg.anti_windup {
            prototype = prototype.without_anti_windup();
        }
        let controllers = vec![prototype; 7];
        CtPolicy { cfg, controllers, bias, kind, engaged: 0, initialized: false }
    }

    fn ensure_size(&mut self, n: usize) {
        if self.controllers.len() != n {
            let proto = self.controllers[0].clone();
            self.controllers = vec![proto; n];
            for c in &mut self.controllers {
                c.reset();
            }
        }
        self.initialized = true;
    }
}

impl DtmPolicy for CtPolicy {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        // Delegate so the observed and unobserved paths are literally the
        // same code — attaching telemetry cannot change the command.
        self.sample_observed(temps, &mut |_, _| {})
    }

    fn sample_observed(
        &mut self,
        temps: &[f64],
        observe: &mut dyn FnMut(usize, PidSample),
    ) -> DtmCommand {
        if !self.initialized {
            self.ensure_size(temps.len());
        }
        assert_eq!(temps.len(), self.controllers.len(), "one controller per sensed block");
        let mut duty: f64 = 1.0;
        for (block, (c, &t)) in self.controllers.iter_mut().zip(temps).enumerate() {
            let error = self.cfg.setpoint - t;
            let s = c.sample_detailed(error);
            observe(block, s);
            let u = (s.output + self.bias).clamp(0.0, 1.0);
            duty = duty.min(u);
        }
        let duty = quantize(duty, self.cfg.quantize_levels);
        if duty < 1.0 {
            self.engaged += 1;
        }
        DtmCommand::toggle(duty)
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        match self.kind {
            ControllerKind::P => PolicyKind::P,
            ControllerKind::Pd => PolicyKind::Pd,
            ControllerKind::Pi => PolicyKind::Pi,
            ControllerKind::Pid => PolicyKind::Pid,
        }
    }
}

// ----------------------------------------------------------------------
// Hierarchical: CT toggling primary, V/f backup
// ----------------------------------------------------------------------

/// The Section 2.1 hierarchy: a PID toggling controller handles normal
/// thermal stress; if temperature nevertheless gets "truly close to
/// emergency" (past the backup trigger), voltage/frequency scaling engages
/// as well, and — because scaling has invocation overhead — stays engaged
/// for the policy delay.
struct Hierarchical {
    cfg: DtmConfig,
    primary: CtPolicy,
    backup_until_sample: u64,
    sample_count: u64,
    engaged: u64,
}

impl Hierarchical {
    fn new(cfg: DtmConfig, clock_hz: f64) -> Hierarchical {
        let primary_cfg = DtmConfig { policy: PolicyKind::Pid, ..cfg };
        Hierarchical {
            cfg,
            primary: CtPolicy::new(primary_cfg, clock_hz),
            backup_until_sample: 0,
            sample_count: 0,
            engaged: 0,
        }
    }
}

impl DtmPolicy for Hierarchical {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        self.sample_observed(temps, &mut |_, _| {})
    }

    fn sample_observed(
        &mut self,
        temps: &[f64],
        observe: &mut dyn FnMut(usize, PidSample),
    ) -> DtmCommand {
        self.sample_count += 1;
        let mut cmd = self.primary.sample_observed(temps, observe);
        let truly_hot = temps.iter().any(|&t| t > self.cfg.backup_trigger);
        if truly_hot {
            let delay_samples = self.cfg.policy_delay / self.cfg.sample_interval.max(1);
            self.backup_until_sample = self.sample_count + delay_samples;
        }
        if truly_hot || self.sample_count <= self.backup_until_sample {
            cmd.vf = Some(self.cfg.vf_setting);
        }
        if cmd.is_restrictive() {
            self.engaged += 1;
        }
        cmd
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Hierarchical
    }
}

// ----------------------------------------------------------------------
// Adjustable-gain integral controller (Rao et al., arXiv:1507.06357)
// ----------------------------------------------------------------------

/// Initial integral gain, duty per kelvin of error per sample.
const ADAPTIVE_G0: f64 = 0.05;
/// Gain adaptation bounds.
const ADAPTIVE_G_MIN: f64 = 0.005;
const ADAPTIVE_G_MAX: f64 = 0.5;
/// Multiplicative shrink applied when the error changes sign (the loop is
/// oscillating: back off).
const ADAPTIVE_SHRINK: f64 = 0.5;
/// Multiplicative growth applied under persistent unsaturated error (the
/// loop is sluggish: speed up).
const ADAPTIVE_GROW: f64 = 1.05;
/// Error magnitude (K) below which the gain is left alone.
const ADAPTIVE_DEADBAND: f64 = 0.1;

/// Per-block state of the adjustable-gain integral law.
#[derive(Clone, Copy)]
struct AdaptiveBlock {
    /// Integral accumulator — directly the block's duty vote in [0, 1].
    u: f64,
    /// Current integral gain.
    g: f64,
    /// Previous error, for oscillation detection (0 = no history).
    prev_e: f64,
}

/// Rao et al.'s adjustable-gain integral controller: a pure integral law
/// `u += g·e` per block, with the gain adapted online — halved when the
/// error changes sign (oscillation), grown geometrically while a large
/// error persists without saturating the accumulator (sluggishness). The
/// integral accumulator doubles as the duty vote, clamped to [0, 1]
/// (which is also the anti-windup), and the hottest block's vote governs
/// through the usual minimum.
struct AdaptiveIntegral {
    cfg: DtmConfig,
    blocks: Vec<AdaptiveBlock>,
    engaged: u64,
    initialized: bool,
}

impl AdaptiveIntegral {
    fn new(cfg: DtmConfig) -> AdaptiveIntegral {
        let proto = AdaptiveBlock { u: 1.0, g: ADAPTIVE_G0, prev_e: 0.0 };
        AdaptiveIntegral { cfg, blocks: vec![proto; 7], engaged: 0, initialized: false }
    }

    fn ensure_size(&mut self, n: usize) {
        if self.blocks.len() != n {
            self.blocks = vec![AdaptiveBlock { u: 1.0, g: ADAPTIVE_G0, prev_e: 0.0 }; n];
        }
        self.initialized = true;
    }
}

impl DtmPolicy for AdaptiveIntegral {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        if !self.initialized {
            self.ensure_size(temps.len());
        }
        assert_eq!(temps.len(), self.blocks.len(), "one accumulator per sensed block");
        let mut duty: f64 = 1.0;
        for (b, &t) in self.blocks.iter_mut().zip(temps) {
            let e = self.cfg.setpoint - t;
            if e * b.prev_e < 0.0 {
                b.g = (b.g * ADAPTIVE_SHRINK).max(ADAPTIVE_G_MIN);
            } else if e.abs() > ADAPTIVE_DEADBAND && b.u > 0.0 && b.u < 1.0 {
                // Persistent error while the actuator still has headroom:
                // grow the gain (growing against a saturated accumulator
                // would only wind the gain up).
                b.g = (b.g * ADAPTIVE_GROW).min(ADAPTIVE_G_MAX);
            }
            b.u = (b.u + b.g * e).clamp(0.0, 1.0);
            b.prev_e = e;
            duty = duty.min(b.u);
        }
        let duty = quantize(duty, self.cfg.quantize_levels);
        if duty < 1.0 {
            self.engaged += 1;
        }
        DtmCommand::toggle(duty)
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::AdaptiveI
    }
}

// ----------------------------------------------------------------------
// Stability-aware gain schedule (Bhat et al., arXiv:2003.11081)
// ----------------------------------------------------------------------

/// Kelvin above the emergency threshold at which the power-temperature
/// loop is taken to run away (leakage feedback divergence).
const RUNAWAY_MARGIN: f64 = 2.0;
/// Floor on the stability-margin gain scale.
const MIN_MARGIN_SCALE: f64 = 0.2;
/// Band (K) below emergency inside which the hard duty clamp engages.
const HARD_CLAMP_BAND: f64 = 0.05;

/// Per-block PI state for the stability-aware schedule.
#[derive(Clone, Copy)]
struct ScheduledBlock {
    /// Integral state — the operating-point duty, in [0, 1].
    i: f64,
}

/// Bhat et al.'s stability-aware schedule: a PI law whose designed gains
/// are scaled by the margin to thermal runaway — full gains when safely
/// at the setpoint, backed off toward [`MIN_MARGIN_SCALE`] as the hottest
/// block approaches the runaway temperature (high loop gain near the
/// stability boundary is what drives power-temperature oscillation), plus
/// a hard zero-duty clamp within [`HARD_CLAMP_BAND`] of emergency.
struct StabilityAwarePi {
    cfg: DtmConfig,
    kp: f64,
    ki: f64,
    period: f64,
    blocks: Vec<ScheduledBlock>,
    engaged: u64,
    initialized: bool,
}

impl StabilityAwarePi {
    fn new(cfg: DtmConfig, clock_hz: f64) -> StabilityAwarePi {
        let plant = FopdtPlant {
            gain: cfg.plant_gain,
            time_constant: cfg.plant_tau,
            delay: cfg.loop_delay(clock_hz),
        };
        let gains = design_controller(&plant, ControllerKind::Pi);
        StabilityAwarePi {
            cfg,
            kp: gains.kp,
            ki: gains.ki,
            period: cfg.sample_period(clock_hz),
            blocks: vec![ScheduledBlock { i: 1.0 }; 7],
            engaged: 0,
            initialized: false,
        }
    }

    fn ensure_size(&mut self, n: usize) {
        if self.blocks.len() != n {
            self.blocks = vec![ScheduledBlock { i: 1.0 }; n];
        }
        self.initialized = true;
    }

    /// The gain scale for the current hottest temperature: 1 at (or
    /// below) the setpoint, falling linearly to [`MIN_MARGIN_SCALE`] at
    /// the runaway temperature.
    fn margin_scale(&self, hottest: f64) -> f64 {
        let runaway = self.cfg.emergency + RUNAWAY_MARGIN;
        ((runaway - hottest) / (runaway - self.cfg.setpoint)).clamp(MIN_MARGIN_SCALE, 1.0)
    }
}

impl DtmPolicy for StabilityAwarePi {
    fn sample(&mut self, temps: &[f64]) -> DtmCommand {
        if !self.initialized {
            self.ensure_size(temps.len());
        }
        assert_eq!(temps.len(), self.blocks.len(), "one controller per sensed block");
        let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let m = self.margin_scale(hottest);
        let mut duty: f64 = 1.0;
        for (b, &t) in self.blocks.iter_mut().zip(temps) {
            let e = self.cfg.setpoint - t;
            let u = (b.i + m * self.kp * e).clamp(0.0, 1.0);
            // Conditional integration (anti-windup): the integral state is
            // itself clamped to the actuator range.
            b.i = (b.i + m * self.ki * self.period * e).clamp(0.0, 1.0);
            duty = duty.min(u);
        }
        let mut duty = quantize(duty, self.cfg.quantize_levels);
        if hottest >= self.cfg.emergency - HARD_CLAMP_BAND {
            duty = 0.0;
        }
        if duty < 1.0 {
            self.engaged += 1;
        }
        DtmCommand::toggle(duty)
    }

    fn engaged_samples(&self) -> u64 {
        self.engaged
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::StabilityAware
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(policy: PolicyKind) -> DtmConfig {
        DtmConfig { policy, ..DtmConfig::default() }
    }

    fn cool() -> [f64; 7] {
        [100.0; 7]
    }

    fn hot_block(temp: f64) -> [f64; 7] {
        let mut t = cool();
        t[3] = temp;
        t
    }

    #[test]
    fn no_dtm_never_restricts() {
        let mut p = build_policy(&config(PolicyKind::None));
        assert_eq!(p.sample(&hot_block(150.0)), DtmCommand::full_speed());
        assert_eq!(p.engaged_samples(), 0);
    }

    #[test]
    fn toggle1_stops_fetch_above_trigger() {
        let mut p = build_policy(&config(PolicyKind::Toggle1));
        assert_eq!(p.sample(&cool()).fetch_duty, 1.0);
        let cmd = p.sample(&hot_block(109.5));
        assert_eq!(cmd.fetch_duty, 0.0);
        assert_eq!(p.kind(), PolicyKind::Toggle1);
    }

    #[test]
    fn toggle2_halves_fetch() {
        let mut p = build_policy(&config(PolicyKind::Toggle2));
        assert_eq!(p.sample(&hot_block(110.0)).fetch_duty, 0.5);
    }

    #[test]
    fn policy_delay_holds_the_response() {
        let cfg = DtmConfig {
            policy: PolicyKind::Toggle1,
            policy_delay: 5_000,
            sample_interval: 1000,
            ..DtmConfig::default()
        };
        let mut p = build_policy(&cfg);
        assert_eq!(p.sample(&hot_block(110.0)).fetch_duty, 0.0);
        // Temperature back below trigger, but the policy stays engaged for
        // 5 more samples.
        for _ in 0..5 {
            assert_eq!(p.sample(&cool()).fetch_duty, 0.0, "held by policy delay");
        }
        assert_eq!(p.sample(&cool()).fetch_duty, 1.0, "released after delay");
    }

    #[test]
    fn throttle_and_spec_control_set_their_actuators() {
        let mut th = build_policy(&config(PolicyKind::Throttle));
        let cmd = th.sample(&hot_block(110.0));
        assert_eq!(cmd.fetch_width_limit, Some(1));
        assert_eq!(cmd.fetch_duty, 1.0);

        let mut sc = build_policy(&config(PolicyKind::SpecControl));
        let cmd = sc.sample(&hot_block(110.0));
        assert_eq!(cmd.max_unresolved_branches, Some(1));
    }

    #[test]
    fn vf_scaling_reduces_power_cubed_ish() {
        let mut p = build_policy(&config(PolicyKind::VfScale));
        let cmd = p.sample(&hot_block(110.0));
        let vf = cmd.vf.expect("engaged");
        assert!(vf.power_scale() < 0.6, "f·V² scale {}", vf.power_scale());
    }

    #[test]
    fn manual_matches_percentage_error_mapping() {
        let mut p = build_policy(&config(PolicyKind::Manual));
        // Below trigger: full speed.
        assert_eq!(p.sample(&hot_block(108.9)).fetch_duty, 1.0);
        // Midpoint of the 109..111 range: 50% error → toggle2.
        assert_eq!(p.sample(&hot_block(110.0)).fetch_duty, 0.5);
        // At/above range top: full stop.
        assert_eq!(p.sample(&hot_block(111.0)).fetch_duty, 0.0);
        assert_eq!(p.sample(&hot_block(115.0)).fetch_duty, 0.0);
    }

    #[test]
    fn manual_quantizes_to_eight_levels() {
        let mut p = build_policy(&config(PolicyKind::Manual));
        let duty = p.sample(&hot_block(109.3)).fetch_duty;
        assert!((duty * 8.0 - (duty * 8.0).round()).abs() < 1e-9, "duty {duty} on the 8-level grid");
    }

    #[test]
    fn ct_policies_run_full_speed_when_cool() {
        for kind in [PolicyKind::P, PolicyKind::Pd, PolicyKind::Pi, PolicyKind::Pid] {
            let mut p = build_policy(&config(kind));
            for _ in 0..10 {
                assert_eq!(p.sample(&cool()).fetch_duty, 1.0, "{kind}");
            }
            assert_eq!(p.engaged_samples(), 0, "{kind}");
        }
    }

    #[test]
    fn ct_policies_throttle_when_past_setpoint() {
        for kind in [PolicyKind::P, PolicyKind::Pd, PolicyKind::Pi, PolicyKind::Pid] {
            let mut p = build_policy(&config(kind));
            p.sample(&cool());
            let mut last = 1.0;
            for _ in 0..20 {
                last = p.sample(&hot_block(112.5)).fetch_duty;
            }
            assert!(last < 0.8, "{kind}: sustained 1.7K overshoot should throttle, duty {last}");
        }
    }

    #[test]
    fn ct_response_scales_with_severity() {
        // The pure P policy makes the proportionality visible: duty is
        // 1 + Kp·e with no integral/derivative state. (The designed Kp is
        // aggressive — a few tenths of a kelvin span the full actuator
        // range — which is exactly the tight control the paper reports.)
        let mut p = build_policy(&config(PolicyKind::P));
        let mild = p.sample(&hot_block(110.81)).fetch_duty;
        let severe = p.sample(&hot_block(110.9)).fetch_duty;
        let extreme = p.sample(&hot_block(113.0)).fetch_duty;
        assert!(
            severe < mild,
            "stronger thermal stress should get a stronger response ({severe} vs {mild})"
        );
        assert_eq!(extreme, 0.0, "far past the setpoint the actuator saturates");
        assert!(mild > 0.0, "mild overshoot gets a mild response");
    }

    #[test]
    fn hottest_block_governs() {
        let mut all_hot = build_policy(&config(PolicyKind::Pid));
        let mut one_hot = build_policy(&config(PolicyKind::Pid));
        all_hot.sample(&[112.0; 7]);
        one_hot.sample(&hot_block(112.0));
        let a = all_hot.sample(&[112.0; 7]).fetch_duty;
        let b = one_hot.sample(&hot_block(112.0)).fetch_duty;
        assert!((a - b).abs() < 1e-9, "min across blocks equals the hottest block's command");
    }

    #[test]
    fn hierarchical_engages_backup_only_when_truly_hot() {
        let mut p = build_policy(&config(PolicyKind::Hierarchical));
        // Cool: nothing.
        let cmd = p.sample(&cool());
        assert_eq!(cmd.fetch_duty, 1.0);
        assert!(cmd.vf.is_none());
        // Past the setpoint but under the backup trigger: toggling only.
        let cmd = p.sample(&hot_block(110.9));
        assert!(cmd.fetch_duty < 1.0, "primary controller engaged");
        assert!(cmd.vf.is_none(), "backup stays out below its trigger");
        // Truly close to emergency: V/f backup engages too.
        let cmd = p.sample(&hot_block(110.98));
        assert!(cmd.vf.is_some(), "backup engages past {:.2}", 110.95);
    }

    #[test]
    fn hierarchical_backup_held_for_policy_delay() {
        let cfg = DtmConfig {
            policy: PolicyKind::Hierarchical,
            policy_delay: 3_000,
            sample_interval: 1000,
            ..DtmConfig::default()
        };
        let mut p = build_policy(&cfg);
        assert!(p.sample(&hot_block(111.2)).vf.is_some());
        for i in 0..3 {
            assert!(p.sample(&cool()).vf.is_some(), "held at sample {i}");
        }
        assert!(p.sample(&cool()).vf.is_none(), "released after the delay");
    }

    #[test]
    fn observed_and_unobserved_sampling_agree_bitwise() {
        let mut plain = build_policy(&config(PolicyKind::Pid));
        let mut observed = build_policy(&config(PolicyKind::Hierarchical));
        let mut plain_h = build_policy(&config(PolicyKind::Hierarchical));
        let mut observed_p = build_policy(&config(PolicyKind::Pid));
        let mut seen = 0usize;
        for t in [108.0, 110.9, 111.5, 112.0, 109.0, 110.85] {
            let temps = hot_block(t);
            let a = plain.sample(&temps);
            let b = observed_p.sample_observed(&temps, &mut |_, s| {
                seen += 1;
                assert!(s.output.is_finite());
            });
            assert_eq!(a.fetch_duty.to_bits(), b.fetch_duty.to_bits());
            let c = plain_h.sample(&temps);
            let d = observed.sample_observed(&temps, &mut |_, _| {});
            assert_eq!(c, d, "hierarchical observed path diverged at {t}");
        }
        assert_eq!(seen, 6 * 7, "one PidSample per block per sample");
    }

    #[test]
    fn ct_duty_is_quantized() {
        let mut p = build_policy(&config(PolicyKind::Pi));
        p.sample(&cool());
        for t in [110.9, 111.2, 111.8, 112.4] {
            let duty = p.sample(&hot_block(t)).fetch_duty;
            assert!((duty * 8.0 - (duty * 8.0).round()).abs() < 1e-9, "duty {duty}");
        }
    }

    #[test]
    fn adaptive_integral_throttles_when_hot_and_recovers_when_cool() {
        let mut p = build_policy(&config(PolicyKind::AdaptiveI));
        assert_eq!(p.kind(), PolicyKind::AdaptiveI);
        for _ in 0..5 {
            assert_eq!(p.sample(&cool()).fetch_duty, 1.0, "cool chip runs at full speed");
        }
        assert_eq!(p.engaged_samples(), 0);
        let mut last = 1.0;
        for _ in 0..40 {
            last = p.sample(&hot_block(112.5)).fetch_duty;
        }
        assert!(last < 0.8, "sustained overshoot integrates into throttling, duty {last}");
        assert!(p.engaged_samples() > 0);
        for _ in 0..400 {
            last = p.sample(&cool()).fetch_duty;
        }
        assert_eq!(last, 1.0, "sustained slack releases the throttle");
    }

    #[test]
    fn adaptive_gain_shrinks_on_oscillation() {
        // Alternate the error sign every sample: the gain must halve its
        // way down, so late oscillations move the duty *less* than early
        // ones instead of slamming rail to rail.
        let mut p = build_policy(&config(PolicyKind::AdaptiveI));
        let swing = |p: &mut Box<dyn DtmPolicy>| -> f64 {
            let a = p.sample(&hot_block(112.0)).fetch_duty;
            let b = p.sample(&hot_block(109.0)).fetch_duty;
            (a - b).abs()
        };
        // Let the loop settle into the oscillating regime first.
        let early = swing(&mut p).max(swing(&mut p));
        let mut late = 0.0;
        for _ in 0..20 {
            late = swing(&mut p);
        }
        assert!(
            late <= early,
            "adapted gain must not amplify oscillation: early {early} vs late {late}"
        );
    }

    #[test]
    fn adaptive_integral_duty_is_quantized() {
        let mut p = build_policy(&config(PolicyKind::AdaptiveI));
        for t in [111.0, 111.6, 112.2, 110.2] {
            let duty = p.sample(&hot_block(t)).fetch_duty;
            assert!((duty * 8.0 - (duty * 8.0).round()).abs() < 1e-9, "duty {duty}");
        }
    }

    #[test]
    fn stability_aware_regulates_and_hard_clamps_near_emergency() {
        let mut p = build_policy(&config(PolicyKind::StabilityAware));
        assert_eq!(p.kind(), PolicyKind::StabilityAware);
        for _ in 0..5 {
            assert_eq!(p.sample(&cool()).fetch_duty, 1.0, "cool chip runs at full speed");
        }
        let mut last = 1.0;
        for _ in 0..30 {
            last = p.sample(&hot_block(112.0)).fetch_duty;
        }
        assert!(last < 0.8, "sustained overshoot throttles, duty {last}");
        // Within the hard-clamp band of emergency: fetch stops outright,
        // whatever the PI state says.
        assert_eq!(p.sample(&hot_block(110.97)).fetch_duty, 0.0, "hard clamp");
        assert_eq!(p.sample(&hot_block(113.0)).fetch_duty, 0.0);
    }

    #[test]
    fn stability_margin_schedule_backs_gains_off_near_runaway() {
        // Two fresh controllers, one mildly and one severely hot: the
        // severe one sees a *smaller* gain scale (that is the schedule),
        // observable through the first-sample integral movement.
        let cfg = config(PolicyKind::StabilityAware);
        let mild_t = 111.2; // above setpoint, below the clamp band? no — above emergency
        let mut mild = StabilityAwarePi::new(cfg, 1.5e9);
        let mut severe = StabilityAwarePi::new(cfg, 1.5e9);
        assert!(severe.margin_scale(112.8) < mild.margin_scale(mild_t));
        assert_eq!(mild.margin_scale(110.0), 1.0, "at/below setpoint: full designed gains");
        assert_eq!(severe.margin_scale(120.0), MIN_MARGIN_SCALE, "floor past runaway");
        // And the scheduled integral actually moves more slowly when the
        // margin is thin: compare integral states after one equal-error
        // sample at different margins (error fixed by feeding one block).
        mild.sample(&hot_block(mild_t));
        severe.sample(&hot_block(112.8));
        let mild_i = mild.blocks[3].i;
        let severe_i = severe.blocks[3].i;
        // Same sign of motion (down), but the severe case moved by a
        // *smaller* multiple of its (larger) error.
        let mild_step = (1.0 - mild_i) / (mild_t - cfg.setpoint);
        let severe_step = (1.0 - severe_i) / (112.8 - cfg.setpoint);
        assert!(mild_step > 0.0 && severe_step > 0.0);
        assert!(severe_step < mild_step, "thin margin integrates more gently per kelvin");
    }

    #[test]
    fn new_policies_build_through_the_factory() {
        for kind in [PolicyKind::AdaptiveI, PolicyKind::StabilityAware] {
            let mut p = build_policy(&config(kind));
            assert_eq!(p.kind(), kind);
            assert_eq!(p.sample(&cool()), DtmCommand::toggle(1.0));
        }
    }
}
