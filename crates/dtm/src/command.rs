//! The actuator command a policy emits each sample.

use crate::config::VfSetting;

/// Actuator settings produced by one policy sample.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DtmCommand {
    /// Fetch duty cycle in `[0, 1]`.
    pub fetch_duty: f64,
    /// Fetch-width cap (throttling).
    pub fetch_width_limit: Option<usize>,
    /// Unresolved-branch cap (speculation control).
    pub max_unresolved_branches: Option<usize>,
    /// Voltage/frequency point, if scaled away from nominal.
    pub vf: Option<VfSetting>,
}

impl DtmCommand {
    /// Full speed: no restriction on any actuator.
    pub fn full_speed() -> DtmCommand {
        DtmCommand {
            fetch_duty: 1.0,
            fetch_width_limit: None,
            max_unresolved_branches: None,
            vf: None,
        }
    }

    /// A pure fetch-toggling command.
    pub fn toggle(duty: f64) -> DtmCommand {
        DtmCommand { fetch_duty: duty.clamp(0.0, 1.0), ..DtmCommand::full_speed() }
    }

    /// Whether this command restricts the machine at all.
    pub fn is_restrictive(&self) -> bool {
        self.fetch_duty < 1.0
            || self.fetch_width_limit.is_some()
            || self.max_unresolved_branches.is_some()
            || self.vf.is_some()
    }
}

impl Default for DtmCommand {
    fn default() -> DtmCommand {
        DtmCommand::full_speed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_speed_is_unrestrictive() {
        assert!(!DtmCommand::full_speed().is_restrictive());
    }

    #[test]
    fn toggle_clamps_and_restricts() {
        let c = DtmCommand::toggle(-0.5);
        assert_eq!(c.fetch_duty, 0.0);
        assert!(c.is_restrictive());
        assert!(!DtmCommand::toggle(1.5).is_restrictive());
    }
}
