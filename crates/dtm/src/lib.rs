//! # tdtm-dtm — dynamic thermal management policies
//!
//! The DTM layer of the paper: every sampling interval (1000 cycles) a
//! policy reads the per-block temperature sensors and sets the actuators —
//! primarily the fetch-toggling duty cycle, with fetch throttling,
//! speculation control, and voltage/frequency scaling available as the
//! non-preferred alternatives Brooks & Martonosi explored.
//!
//! Policies:
//!
//! * [`PolicyKind::Toggle1`] / [`PolicyKind::Toggle2`] — fixed-strength
//!   fetch toggling engaged at a trigger threshold (the non-CT baseline);
//! * [`PolicyKind::Manual`] — the paper's hand-built proportional "M"
//!   controller (toggling rate equals the percentage error over the
//!   sensor range);
//! * [`PolicyKind::P`] / [`Pd`](PolicyKind::Pd) / [`Pi`](PolicyKind::Pi) /
//!   [`Pid`](PolicyKind::Pid) — the control-theoretic policies, with gains
//!   designed in `tdtm-control` from the thermal plant model and
//!   anti-windup per the paper;
//! * [`PolicyKind::Throttle`], [`PolicyKind::SpecControl`],
//!   [`PolicyKind::VfScale`] — the auxiliary mechanisms;
//! * [`PolicyKind::AdaptiveI`] / [`PolicyKind::StabilityAware`] — the
//!   retrieved-literature multicore controllers (Rao et al.'s
//!   adjustable-gain integral law; Bhat et al.'s stability-aware gain
//!   schedule);
//! * [`PolicyKind::None`] — no DTM (the baseline for "% of non-DTM IPC").
//!
//! For multicore chips, [`supervisor::ChipSupervisor`] sits above the
//! per-core policies and redistributes the shared thermal budget by
//! capping hot cores' duty ceilings.
//!
//! # Examples
//!
//! ```
//! use tdtm_dtm::{build_policy, DtmConfig, PolicyKind};
//!
//! let mut config = DtmConfig::default();
//! config.policy = PolicyKind::Pid;
//! let mut policy = build_policy(&config);
//! // All blocks cool: run at full speed.
//! let cool = policy.sample(&[100.0; 7]);
//! assert_eq!(cool.fetch_duty, 1.0);
//! // A block well past the setpoint: throttle hard.
//! let hot = policy.sample(&[100.0, 100.0, 113.0, 100.0, 100.0, 100.0, 100.0]);
//! assert!(hot.fetch_duty < 0.5);
//! ```

pub mod command;
pub mod config;
pub mod policy;
pub mod sensor;
pub mod supervisor;

pub use command::DtmCommand;
pub use config::{DtmConfig, PolicyKind, TriggerMechanism, VfSetting};
pub use policy::{build_policy, build_policy_at, DtmPolicy};
pub use sensor::SensorModel;
pub use supervisor::{ChipSupervisor, SupervisorConfig};
