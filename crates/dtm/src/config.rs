//! DTM configuration: thresholds, setpoints, sampling, and mechanism
//! selection.
//!
//! Default values implement the reproduction's parameter set (DESIGN.md
//! §5): emergency at 111.0 C, non-CT trigger 2 K below it, PI/PID setpoint
//! 0.2 K below it, a 2 K sensor range, and 1000-cycle sampling.

/// Which DTM policy to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PolicyKind {
    /// No DTM: the baseline whose IPC defines "% of non-DTM IPC".
    None,
    /// Fetch stops entirely while triggered (Brooks & Martonosi's
    /// strongest toggling).
    Toggle1,
    /// Fetch every other cycle while triggered (cannot stop all
    /// emergencies).
    Toggle2,
    /// Fetch-width throttling while triggered.
    Throttle,
    /// Speculation control: cap unresolved branches while triggered.
    SpecControl,
    /// Voltage/frequency scaling while triggered.
    VfScale,
    /// The hand-built proportional controller "M".
    Manual,
    /// Control-theoretic proportional controller.
    P,
    /// Control-theoretic proportional-derivative controller.
    Pd,
    /// Control-theoretic proportional-integral controller.
    Pi,
    /// Control-theoretic PID controller (the paper's headline policy).
    #[default]
    Pid,
    /// The hierarchy the paper sketches in Section 2.1: PID-controlled
    /// toggling as the low-cost primary mechanism, with voltage/frequency
    /// scaling as the backup engaged only when temperature gets "truly
    /// close to emergency".
    Hierarchical,
    /// Adjustable-gain integral controller after Rao et al.
    /// (arXiv:1507.06357): a pure integral law whose gain adapts online —
    /// shrinking when the error changes sign (oscillation), growing under
    /// persistent large error (sluggishness).
    AdaptiveI,
    /// Stability-aware gain schedule after Bhat et al. (arXiv:2003.11081):
    /// a PI law whose gains are scaled down by the margin to thermal
    /// runaway, with a hard duty clamp close to the emergency threshold.
    StabilityAware,
}

impl PolicyKind {
    /// All policies, in reporting order.
    pub fn all() -> [PolicyKind; 14] {
        use PolicyKind::*;
        [
            None, Toggle1, Toggle2, Throttle, SpecControl, VfScale, Manual, P, Pd, Pi, Pid,
            Hierarchical, AdaptiveI, StabilityAware,
        ]
    }

    /// Whether this is one of the control-theoretic (CT-DTM) policies
    /// (feedback controllers regulating to the setpoint — the paper's
    /// P/PD/PI/PID family plus the retrieved-literature controllers).
    pub fn is_control_theoretic(self) -> bool {
        matches!(
            self,
            PolicyKind::P
                | PolicyKind::Pd
                | PolicyKind::Pi
                | PolicyKind::Pid
                | PolicyKind::AdaptiveI
                | PolicyKind::StabilityAware
        )
    }

    /// Parses a policy from its [`name`](Self::name) or its variant
    /// identifier (both case-insensitive — `pid`, `PID+vf`, and
    /// `hierarchical` all resolve), for CLI tools; `None` if the string
    /// names no policy.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::all().into_iter().find(|k| {
            k.name().eq_ignore_ascii_case(s) || format!("{k:?}").eq_ignore_ascii_case(s)
        })
    }

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        use PolicyKind::*;
        match self {
            None => "none",
            Toggle1 => "toggle1",
            Toggle2 => "toggle2",
            Throttle => "throttle",
            SpecControl => "spec-ctl",
            VfScale => "vf-scale",
            Manual => "M",
            P => "P",
            Pd => "PD",
            Pi => "PI",
            Pid => "PID",
            Hierarchical => "PID+vf",
            AdaptiveI => "adaptive-I",
            StabilityAware => "stability",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a thermal trigger reaches the DTM mechanism.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TriggerMechanism {
    /// Dedicated microarchitectural signaling: the command takes effect at
    /// the next cycle (the mechanism the paper assumes).
    #[default]
    Direct,
    /// OS interrupts: each engage/disengage costs a fixed delay
    /// (Brooks & Martonosi quote ~250 cycles).
    Interrupt {
        /// Cycles between the sample and the command taking effect.
        latency_cycles: u64,
    },
}

/// A voltage/frequency operating point relative to nominal.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct VfSetting {
    /// Frequency as a fraction of nominal.
    pub freq_scale: f64,
    /// Voltage as a fraction of nominal.
    pub vdd_scale: f64,
}

impl VfSetting {
    /// Dynamic-power scale factor `f·V²` relative to nominal.
    pub fn power_scale(&self) -> f64 {
        self.freq_scale * self.vdd_scale * self.vdd_scale
    }
}

/// Full DTM configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DtmConfig {
    /// Which policy runs.
    pub policy: PolicyKind,
    /// Thermal emergency threshold (C): temperatures must never exceed
    /// this.
    pub emergency: f64,
    /// Trigger threshold for the non-CT policies (C).
    pub trigger: f64,
    /// Setpoint for the CT policies (C).
    pub setpoint: f64,
    /// Sensor range (K) over which the Manual policy ramps 0-100%.
    pub sensor_range: f64,
    /// Controller/policy sampling interval in cycles.
    pub sample_interval: u64,
    /// Minimum cycles a triggered non-CT policy stays engaged (the
    /// "policy delay").
    pub policy_delay: u64,
    /// Actuator quantization levels (8 in the paper).
    pub quantize_levels: u32,
    /// Trigger mechanism (direct signaling vs. interrupts).
    pub mechanism: TriggerMechanism,
    /// Plant steady-state gain for controller design: kelvins of block
    /// temperature rise per unit of fetch duty reduction (≈ thermal R ×
    /// controllable power swing).
    pub plant_gain: f64,
    /// Plant time constant (s): the longest block RC, per the paper.
    pub plant_tau: f64,
    /// V/f point used by [`PolicyKind::VfScale`] when engaged.
    pub vf_setting: VfSetting,
    /// Pipeline stall when the clock re-synchronizes after a V/f change
    /// (cycles at nominal frequency).
    pub vf_resync_cycles: u64,
    /// Fetch-width cap used by [`PolicyKind::Throttle`] when engaged.
    pub throttle_width: usize,
    /// Unresolved-branch cap used by [`PolicyKind::SpecControl`].
    pub spec_control_branches: usize,
    /// Backup trigger for [`PolicyKind::Hierarchical`]: temperature at
    /// which the V/f backup engages on top of the toggling controller.
    pub backup_trigger: f64,
    /// Anti-windup in the CT controllers (Section 3.3). On by default;
    /// disable only for the windup ablation.
    pub anti_windup: bool,
}

impl Default for DtmConfig {
    fn default() -> DtmConfig {
        DtmConfig {
            policy: PolicyKind::Pid,
            emergency: 111.0,
            trigger: 109.0,
            setpoint: 110.8,
            sensor_range: 2.0,
            sample_interval: 1000,
            policy_delay: 10_000,
            quantize_levels: 8,
            mechanism: TriggerMechanism::Direct,
            plant_gain: 8.0,
            plant_tau: 8.4e-5,
            vf_setting: VfSetting { freq_scale: 0.75, vdd_scale: 0.85 },
            vf_resync_cycles: 15_000, // 10 µs at 1.5 GHz
            throttle_width: 1,
            spec_control_branches: 1,
            backup_trigger: 110.95,
            anti_windup: true,
        }
    }
}

impl DtmConfig {
    /// The sampling period in seconds at `clock_hz`.
    pub fn sample_period(&self, clock_hz: f64) -> f64 {
        self.sample_interval as f64 / clock_hz
    }

    /// The loop dead time: half the sampling period (the paper's model).
    pub fn loop_delay(&self, clock_hz: f64) -> f64 {
        self.sample_period(clock_hz) / 2.0
    }

    /// The configuration for the paper's lower-setpoint sensitivity run.
    pub fn with_low_setpoint(mut self) -> DtmConfig {
        self.setpoint = 110.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_satisfy_paper_constraints() {
        let c = DtmConfig::default();
        assert!(c.trigger < c.emergency);
        assert!((c.emergency - c.trigger - 2.0).abs() < 1e-12, "non-CT trigger 2K below");
        assert!((c.emergency - c.setpoint - 0.2).abs() < 1e-9, "CT setpoint 0.2K below");
        assert_eq!(c.sample_interval, 1000);
        let period = c.sample_period(1.5e9);
        assert!((period - 666.7e-9).abs() < 1e-9, "1000 cycles at 1.5 GHz ≈ 667 ns");
        assert!((c.loop_delay(1.5e9) - period / 2.0).abs() < 1e-15);
    }

    #[test]
    fn low_setpoint_variant() {
        let c = DtmConfig::default().with_low_setpoint();
        assert_eq!(c.setpoint, 110.0);
    }

    #[test]
    fn vf_power_scale_is_fv2() {
        let vf = VfSetting { freq_scale: 0.5, vdd_scale: 0.8 };
        assert!((vf.power_scale() - 0.32).abs() < 1e-12);
    }

    #[test]
    fn parse_round_trips_every_name() {
        for kind in PolicyKind::all() {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(PolicyKind::parse(&kind.name().to_uppercase()), Some(kind));
            assert_eq!(PolicyKind::parse(&format!("{kind:?}")), Some(kind));
        }
        assert_eq!(PolicyKind::parse("hierarchical"), Some(PolicyKind::Hierarchical));
        assert_eq!(PolicyKind::parse("bogus"), None);
    }

    #[test]
    fn policy_classification() {
        assert!(PolicyKind::Pid.is_control_theoretic());
        assert!(PolicyKind::P.is_control_theoretic());
        assert!(!PolicyKind::Toggle1.is_control_theoretic());
        assert!(!PolicyKind::Manual.is_control_theoretic(), "M is hand-built, not CT");
        assert!(!PolicyKind::Hierarchical.is_control_theoretic(), "hybrid, reported separately");
        assert!(PolicyKind::AdaptiveI.is_control_theoretic(), "Rao et al. integral law");
        assert!(PolicyKind::StabilityAware.is_control_theoretic(), "Bhat et al. gain schedule");
        assert_eq!(PolicyKind::all().len(), 14);
    }
}
