//! Temperature-sensor models.
//!
//! The paper assumes idealized sensors co-located with every block
//! (G_sensor = 1) and flags realistic sensor modeling as future work.
//! [`SensorModel`] implements the ideal sensor plus optional Gaussian
//! noise and quantization, used by the sensor-fidelity ablation.

/// Diffuses a user seed into a well-mixed, guaranteed-nonzero xorshift
/// state (splitmix64 finalizer). The previous `seed | 1` mapping gave
/// seeds `2k` and `2k+1` byte-identical noise streams, which silently
/// collapsed sensor-fidelity sweeps that vary the seed by one.
fn scramble_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        // xorshift state must be nonzero; any fixed constant works.
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

/// A per-block temperature sensor bank.
#[derive(Clone, Debug)]
pub struct SensorModel {
    noise_sigma: f64,
    quantization_step: f64,
    /// xorshift state for deterministic noise.
    state: u64,
    /// Which blocks actually have a sensor (`None` = all of them). The
    /// paper notes real chips have a limited sensor budget that "may not
    /// be co-located with the most likely hot spots".
    placement: Option<Vec<bool>>,
    /// Reading reported for unsensed blocks.
    fallback: f64,
}

impl SensorModel {
    /// The paper's idealized sensor: exact readings.
    pub fn ideal() -> SensorModel {
        SensorModel {
            noise_sigma: 0.0,
            quantization_step: 0.0,
            state: 0x9E37_79B9_7F4A_7C15,
            placement: None,
            fallback: f64::NEG_INFINITY,
        }
    }

    /// A realistic sensor with Gaussian noise of standard deviation
    /// `sigma` kelvin, quantized to `step`-kelvin increments.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` or `step` is negative.
    pub fn with_noise(sigma: f64, step: f64, seed: u64) -> SensorModel {
        assert!(sigma >= 0.0 && step >= 0.0, "noise parameters must be nonnegative");
        SensorModel {
            noise_sigma: sigma,
            quantization_step: step,
            state: scramble_seed(seed),
            placement: None,
            fallback: f64::NEG_INFINITY,
        }
    }

    /// Restricts the sensor budget: blocks with `false` in `placement`
    /// have no sensor and report `fallback` instead (use a very low value
    /// so DTM simply never sees them — the realistic failure mode).
    ///
    /// Returns `self` for chaining.
    pub fn with_placement(mut self, placement: Vec<bool>, fallback: f64) -> SensorModel {
        self.placement = Some(placement);
        self.fallback = fallback;
        self
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Standard normal via Irwin-Hall (sum of 12 uniforms minus 6).
    fn gaussian(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        }
        s - 6.0
    }

    /// Reads one block's temperature.
    pub fn read(&mut self, true_temp: f64) -> f64 {
        let mut t = true_temp;
        if self.noise_sigma > 0.0 {
            t += self.noise_sigma * self.gaussian();
        }
        if self.quantization_step > 0.0 {
            t = (t / self.quantization_step).round() * self.quantization_step;
        }
        t
    }

    /// Reads a bank of temperatures into `out`, honoring the sensor
    /// placement (unsensed blocks read as the fallback value).
    ///
    /// # Panics
    ///
    /// Panics if the slices (or a configured placement) differ in length.
    pub fn read_all(&mut self, temps: &[f64], out: &mut [f64]) {
        assert_eq!(temps.len(), out.len(), "slice lengths must match");
        if let Some(placement) = &self.placement {
            assert_eq!(placement.len(), temps.len(), "placement covers every block");
        }
        for i in 0..temps.len() {
            let sensed = match &self.placement {
                Some(p) => p[i],
                None => true,
            };
            out[i] = if sensed { self.read(temps[i]) } else { self.fallback };
        }
    }
}

impl Default for SensorModel {
    fn default() -> SensorModel {
        SensorModel::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_exact() {
        let mut s = SensorModel::ideal();
        assert_eq!(s.read(108.375), 108.375);
    }

    #[test]
    fn quantization_rounds_to_steps() {
        let mut s = SensorModel::with_noise(0.0, 0.5, 1);
        assert_eq!(s.read(108.30), 108.5);
        assert_eq!(s.read(108.24), 108.0);
    }

    #[test]
    fn noise_is_zero_mean_and_bounded_sigma() {
        let mut s = SensorModel::with_noise(0.5, 0.0, 42);
        let n = 20_000;
        let readings: Vec<f64> = (0..n).map(|_| s.read(100.0)).collect();
        let mean = readings.iter().sum::<f64>() / n as f64;
        let var = readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "sigma {}", var.sqrt());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SensorModel::with_noise(1.0, 0.0, 7);
        let mut b = SensorModel::with_noise(1.0, 0.0, 7);
        for _ in 0..100 {
            assert_eq!(a.read(105.0), b.read(105.0));
        }
    }

    /// Regression: `state: seed | 1` made seeds `2k` and `2k+1` aliases.
    /// Nearby seeds must yield distinct noise streams.
    #[test]
    fn nearby_seeds_produce_distinct_streams() {
        for base in [0u64, 2, 40, 1000, u64::MAX - 1] {
            let mut a = SensorModel::with_noise(1.0, 0.0, base);
            let mut b = SensorModel::with_noise(1.0, 0.0, base + 1);
            let ra: Vec<f64> = (0..16).map(|_| a.read(100.0)).collect();
            let rb: Vec<f64> = (0..16).map(|_| b.read(100.0)).collect();
            assert_ne!(ra, rb, "seeds {base} and {} alias", base + 1);
        }
    }

    #[test]
    fn read_all_maps_each_block() {
        let mut s = SensorModel::ideal();
        let temps = [100.0, 101.0, 102.0];
        let mut out = [0.0; 3];
        s.read_all(&temps, &mut out);
        assert_eq!(out, temps);
    }

    #[test]
    fn limited_placement_hides_unsensed_blocks() {
        let mut s = SensorModel::ideal().with_placement(vec![true, false, true], 0.0);
        let temps = [108.0, 115.0, 109.0];
        let mut out = [f64::NAN; 3];
        s.read_all(&temps, &mut out);
        assert_eq!(out, [108.0, 0.0, 109.0], "the 115 C hot spot is invisible");
    }

    #[test]
    #[should_panic(expected = "placement covers every block")]
    fn placement_length_checked() {
        let mut s = SensorModel::ideal().with_placement(vec![true], 0.0);
        let mut out = [0.0; 3];
        s.read_all(&[1.0, 2.0, 3.0], &mut out);
    }
}
