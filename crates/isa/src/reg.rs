//! Architectural register names.
//!
//! Newtypes keep integer and floating-point register files statically
//! distinct ([C-NEWTYPE]): a [`Reg`] can never be used where an [`FReg`] is
//! expected.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_IREGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FREGS: usize = 32;

/// An integer register `x0..x31`. `x0` reads as zero and ignores writes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

/// A floating-point register `f0..f31`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FReg(u8);

impl Reg {
    /// The hardwired-zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// The conventional link register (`x1`, written by `jal`).
    pub const RA: Reg = Reg(1);
    /// The conventional stack pointer (`x2`).
    pub const SP: Reg = Reg(2);

    /// Creates register `x{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!((index as usize) < NUM_IREGS, "register index {index} out of range");
        Reg(index)
    }

    /// The register index in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl FReg {
    /// Creates register `f{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> FReg {
        assert!((index as usize) < NUM_FREGS, "fp register index {index} out of range");
        FReg(index)
    }

    /// The register index in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_properties() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::ZERO.index(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg::new(17).to_string(), "x17");
        assert_eq!(FReg::new(3).to_string(), "f3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_freg_panics() {
        let _ = FReg::new(32);
    }
}
