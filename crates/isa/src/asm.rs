//! A two-pass assembler for TDISA assembly text.
//!
//! Syntax, by example:
//!
//! ```text
//! # comments run to end of line; ';' also starts a comment
//!         .data                  # switch to data emission
//! table:  .word 1, 2, 3          # 64-bit little-endian words
//! buf:    .zero 256              # 256 zero bytes
//! pi:     .double 3.14159        # 64-bit IEEE double
//!         .text                  # back to instructions
//! main:   la   x5, table         # pseudo: load address
//!         li   x6, 42            # pseudo: load immediate
//! loop:   lw   x7, 0(x5)
//!         addi x5, x5, 8
//!         addi x6, x6, -1
//!         bne  x6, x0, loop
//!         halt
//! ```
//!
//! Labels may be used as branch/jump targets (assembled pc-relative) or as
//! `la` addresses. Pseudo-instructions: `li`, `la`, `mv`, `j`, `call`,
//! `ret`, `bgt`, `ble`, `fmvi` (load an f64 constant through the integer
//! path: `fmvi f1, 2.5` emits a data-free `fcvt.d.w`-based sequence only for
//! whole numbers; use `.double` data for general constants).

use crate::inst::{Inst, Op};
use crate::program::{DataSegment, Program, DATA_BASE, TEXT_BASE};
use crate::reg::{FReg, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error, with the 1-based source line where it occurred.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// One parsed instruction-to-be, possibly awaiting label resolution.
struct Pending {
    line: usize,
    inst: Inst,
    /// Label whose resolved value patches `imm`.
    fixup: Option<(String, FixupKind)>,
}

enum FixupKind {
    /// `imm = label_addr - inst_addr` (branches, jumps).
    PcRelative,
    /// `imm = label_addr` (for `la`).
    Absolute,
}

/// Assembles TDISA source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics or registers, duplicate or undefined labels, and
/// out-of-range operands.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_named(source, "anonymous")
}

/// Assembles source text into a [`Program`] with the given name.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_named(source: &str, name: &str) -> Result<Program, AsmError> {
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut pendings: Vec<Pending> = Vec::new();
    let mut data: Vec<u8> = Vec::new();
    let mut section = Section::Text;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = find_label(rest) {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            validate_label(label, lineno)?;
            let value = match section {
                Section::Text => TEXT_BASE + 4 * pendings.len() as u64,
                Section::Data => DATA_BASE + data.len() as u64,
            };
            if labels.insert(label.to_string(), value).is_some() {
                return Err(err(lineno, format!("duplicate label `{label}`")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            handle_directive(directive, &mut section, &mut data, lineno)?;
            continue;
        }
        if section == Section::Data {
            return Err(err(lineno, "instructions are not allowed in the .data section"));
        }
        parse_statement(rest, lineno, &mut pendings)?;
    }

    // Second pass: resolve label fixups.
    let mut insts = Vec::with_capacity(pendings.len());
    for (i, p) in pendings.into_iter().enumerate() {
        let mut inst = p.inst;
        if let Some((label, kind)) = p.fixup {
            let &target = labels
                .get(&label)
                .ok_or_else(|| err(p.line, format!("undefined label `{label}`")))?;
            let here = TEXT_BASE + 4 * i as u64;
            inst.imm = match kind {
                FixupKind::PcRelative => (target as i64 - here as i64) as i32,
                FixupKind::Absolute => target as i32,
            };
        }
        insts.push(inst);
    }

    let mut program = Program::new(name);
    program.insts = insts;
    if !data.is_empty() {
        program.data.push(DataSegment { base: DATA_BASE, bytes: data });
    }
    Ok(program)
}

fn strip_comment(line: &str) -> &str {
    match line.find(['#', ';']) {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Finds the byte offset of a label-terminating ':' if the line starts with a
/// label (i.e., the colon appears before any whitespace-separated operand).
fn find_label(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    let head = &line[..colon];
    if head.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.') && !head.is_empty() {
        Some(colon)
    } else {
        None
    }
}

fn validate_label(label: &str, line: usize) -> Result<(), AsmError> {
    if label.is_empty() || label.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return Err(err(line, format!("invalid label `{label}`")));
    }
    Ok(())
}

fn handle_directive(
    directive: &str,
    section: &mut Section,
    data: &mut Vec<u8>,
    line: usize,
) -> Result<(), AsmError> {
    let (name, args) = match directive.find(char::is_whitespace) {
        Some(i) => (&directive[..i], directive[i..].trim()),
        None => (directive, ""),
    };
    match name {
        "text" => *section = Section::Text,
        "data" => *section = Section::Data,
        "word" => {
            if *section != Section::Data {
                return Err(err(line, ".word outside .data section"));
            }
            for part in args.split(',') {
                let v = parse_int(part.trim())
                    .ok_or_else(|| err(line, format!("bad .word operand `{part}`")))?;
                data.extend_from_slice(&v.to_le_bytes());
            }
        }
        "double" => {
            if *section != Section::Data {
                return Err(err(line, ".double outside .data section"));
            }
            for part in args.split(',') {
                let v: f64 = part
                    .trim()
                    .parse()
                    .map_err(|_| err(line, format!("bad .double operand `{part}`")))?;
                data.extend_from_slice(&v.to_le_bytes());
            }
        }
        "zero" | "space" => {
            if *section != Section::Data {
                return Err(err(line, ".zero outside .data section"));
            }
            let n = parse_int(args).ok_or_else(|| err(line, "bad .zero size"))?;
            if n < 0 {
                return Err(err(line, "negative .zero size"));
            }
            data.resize(data.len() + n as usize, 0);
        }
        other => return Err(err(line, format!("unknown directive `.{other}`"))),
    }
    Ok(())
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = s.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        s.parse().ok()
    }
}

fn parse_statement(text: &str, line: usize, out: &mut Vec<Pending>) -> Result<(), AsmError> {
    let (mnemonic, argstr) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let args: Vec<&str> = if argstr.is_empty() {
        Vec::new()
    } else {
        argstr.split(',').map(str::trim).collect()
    };
    let m = mnemonic.to_ascii_lowercase();
    expand(&m, &args, line, out)
}

fn ireg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let body = s
        .strip_prefix(['x', 'X'])
        .ok_or_else(|| err(line, format!("expected integer register, got `{s}`")))?;
    let n: u8 = body
        .parse()
        .map_err(|_| err(line, format!("bad register `{s}`")))?;
    if n >= 32 {
        return Err(err(line, format!("register `{s}` out of range")));
    }
    Ok(Reg::new(n))
}

fn freg(s: &str, line: usize) -> Result<FReg, AsmError> {
    let body = s
        .strip_prefix(['f', 'F'])
        .ok_or_else(|| err(line, format!("expected fp register, got `{s}`")))?;
    let n: u8 = body
        .parse()
        .map_err(|_| err(line, format!("bad fp register `{s}`")))?;
    if n >= 32 {
        return Err(err(line, format!("fp register `{s}` out of range")));
    }
    Ok(FReg::new(n))
}

fn imm32(s: &str, line: usize) -> Result<i32, AsmError> {
    let v = parse_int(s).ok_or_else(|| err(line, format!("bad immediate `{s}`")))?;
    i32::try_from(v).map_err(|_| err(line, format!("immediate `{s}` out of 32-bit range")))
}

/// Parses `imm(reg)` memory-operand syntax.
fn memop(s: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("expected `imm(reg)`, got `{s}`")))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{s}`")))?;
    let offs = s[..open].trim();
    let imm = if offs.is_empty() { 0 } else { imm32(offs, line)? };
    let reg = ireg(s[open + 1..close].trim(), line)?;
    Ok((imm, reg))
}

fn need(args: &[&str], n: usize, m: &str, line: usize) -> Result<(), AsmError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(line, format!("`{m}` expects {n} operands, got {}", args.len())))
    }
}

/// Whether an operand looks like a label rather than a number.
fn is_label_operand(s: &str) -> bool {
    parse_int(s).is_none()
}

#[allow(clippy::too_many_lines)]
fn expand(m: &str, args: &[&str], line: usize, out: &mut Vec<Pending>) -> Result<(), AsmError> {
    use Op::*;
    let mut push = |inst: Inst, fixup: Option<(String, FixupKind)>| {
        out.push(Pending { line, inst, fixup });
    };

    let rrr = |op: Op, args: &[&str]| -> Result<Inst, AsmError> {
        need(args, 3, m, line)?;
        Ok(Inst {
            op,
            rd: ireg(args[0], line)?,
            rs1: ireg(args[1], line)?,
            rs2: ireg(args[2], line)?,
            ..Inst::default()
        })
    };
    let rri = |op: Op, args: &[&str]| -> Result<Inst, AsmError> {
        need(args, 3, m, line)?;
        Ok(Inst {
            op,
            rd: ireg(args[0], line)?,
            rs1: ireg(args[1], line)?,
            imm: imm32(args[2], line)?,
            ..Inst::default()
        })
    };
    let fff = |op: Op, args: &[&str]| -> Result<Inst, AsmError> {
        need(args, 3, m, line)?;
        Ok(Inst {
            op,
            fd: freg(args[0], line)?,
            fs1: freg(args[1], line)?,
            fs2: freg(args[2], line)?,
            ..Inst::default()
        })
    };
    let ff = |op: Op, args: &[&str]| -> Result<Inst, AsmError> {
        need(args, 2, m, line)?;
        Ok(Inst {
            op,
            fd: freg(args[0], line)?,
            fs1: freg(args[1], line)?,
            ..Inst::default()
        })
    };

    match m {
        "add" => push(rrr(Add, args)?, None),
        "sub" => push(rrr(Sub, args)?, None),
        "mul" => push(rrr(Mul, args)?, None),
        "div" => push(rrr(Div, args)?, None),
        "rem" => push(rrr(Rem, args)?, None),
        "and" => push(rrr(And, args)?, None),
        "or" => push(rrr(Or, args)?, None),
        "xor" => push(rrr(Xor, args)?, None),
        "sll" => push(rrr(Sll, args)?, None),
        "srl" => push(rrr(Srl, args)?, None),
        "sra" => push(rrr(Sra, args)?, None),
        "slt" => push(rrr(Slt, args)?, None),
        "sltu" => push(rrr(Sltu, args)?, None),
        "addi" => push(rri(Addi, args)?, None),
        "andi" => push(rri(Andi, args)?, None),
        "ori" => push(rri(Ori, args)?, None),
        "xori" => push(rri(Xori, args)?, None),
        "slli" => push(rri(Slli, args)?, None),
        "srli" => push(rri(Srli, args)?, None),
        "srai" => push(rri(Srai, args)?, None),
        "slti" => push(rri(Slti, args)?, None),
        "lui" => {
            need(args, 2, m, line)?;
            push(
                Inst { op: Lui, rd: ireg(args[0], line)?, imm: imm32(args[1], line)?, ..Inst::default() },
                None,
            );
        }
        "lw" | "lb" => {
            need(args, 2, m, line)?;
            let (imm, rs1) = memop(args[1], line)?;
            let op = if m == "lw" { Lw } else { Lb };
            push(Inst { op, rd: ireg(args[0], line)?, rs1, imm, ..Inst::default() }, None);
        }
        "sw" | "sb" => {
            need(args, 2, m, line)?;
            let (imm, rs1) = memop(args[1], line)?;
            let op = if m == "sw" { Sw } else { Sb };
            push(Inst { op, rs2: ireg(args[0], line)?, rs1, imm, ..Inst::default() }, None);
        }
        "flw" => {
            need(args, 2, m, line)?;
            let (imm, rs1) = memop(args[1], line)?;
            push(Inst { op: Flw, fd: freg(args[0], line)?, rs1, imm, ..Inst::default() }, None);
        }
        "fsw" => {
            need(args, 2, m, line)?;
            let (imm, rs1) = memop(args[1], line)?;
            push(Inst { op: Fsw, fs2: freg(args[0], line)?, rs1, imm, ..Inst::default() }, None);
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" | "bgt" | "ble" => {
            need(args, 3, m, line)?;
            let (op, a, b) = match m {
                "beq" => (Beq, 0, 1),
                "bne" => (Bne, 0, 1),
                "blt" => (Blt, 0, 1),
                "bge" => (Bge, 0, 1),
                "bltu" => (Bltu, 0, 1),
                "bgeu" => (Bgeu, 0, 1),
                // bgt a,b == blt b,a ; ble a,b == bge b,a
                "bgt" => (Blt, 1, 0),
                _ => (Bge, 1, 0),
            };
            let inst = Inst { op, rs1: ireg(args[a], line)?, rs2: ireg(args[b], line)?, ..Inst::default() };
            if is_label_operand(args[2]) {
                push(inst, Some((args[2].to_string(), FixupKind::PcRelative)));
            } else {
                push(Inst { imm: imm32(args[2], line)?, ..inst }, None);
            }
        }
        "jal" => {
            need(args, 2, m, line)?;
            let inst = Inst { op: Jal, rd: ireg(args[0], line)?, ..Inst::default() };
            if is_label_operand(args[1]) {
                push(inst, Some((args[1].to_string(), FixupKind::PcRelative)));
            } else {
                push(Inst { imm: imm32(args[1], line)?, ..inst }, None);
            }
        }
        "jalr" => {
            need(args, 3, m, line)?;
            push(
                Inst {
                    op: Jalr,
                    rd: ireg(args[0], line)?,
                    rs1: ireg(args[1], line)?,
                    imm: imm32(args[2], line)?,
                    ..Inst::default()
                },
                None,
            );
        }
        "fadd" => push(fff(Fadd, args)?, None),
        "fsub" => push(fff(Fsub, args)?, None),
        "fmul" => push(fff(Fmul, args)?, None),
        "fdiv" => push(fff(Fdiv, args)?, None),
        "fmin" => push(fff(Fmin, args)?, None),
        "fmax" => push(fff(Fmax, args)?, None),
        "fsqrt" => push(ff(Fsqrt, args)?, None),
        "fabs" => push(ff(Fabs, args)?, None),
        "fneg" => push(ff(Fneg, args)?, None),
        "fmv" => push(ff(Fmv, args)?, None),
        "fcvt.d.w" | "fcvtdw" => {
            need(args, 2, m, line)?;
            push(
                Inst { op: Fcvtdw, fd: freg(args[0], line)?, rs1: ireg(args[1], line)?, ..Inst::default() },
                None,
            );
        }
        "fcvt.w.d" | "fcvtwd" => {
            need(args, 2, m, line)?;
            push(
                Inst { op: Fcvtwd, rd: ireg(args[0], line)?, fs1: freg(args[1], line)?, ..Inst::default() },
                None,
            );
        }
        "feq" | "flt" | "fle" => {
            need(args, 3, m, line)?;
            let op = match m {
                "feq" => Feq,
                "flt" => Flt,
                _ => Fle,
            };
            push(
                Inst {
                    op,
                    rd: ireg(args[0], line)?,
                    fs1: freg(args[1], line)?,
                    fs2: freg(args[2], line)?,
                    ..Inst::default()
                },
                None,
            );
        }
        "halt" => push(Inst::with_op(Halt), None),
        "nop" => push(Inst::with_op(Nop), None),
        "out" => {
            need(args, 1, m, line)?;
            push(Inst { op: Out, rs1: ireg(args[0], line)?, ..Inst::default() }, None);
        }
        // --- pseudo-instructions ---
        "li" => {
            need(args, 2, m, line)?;
            push(
                Inst { op: Addi, rd: ireg(args[0], line)?, rs1: Reg::ZERO, imm: imm32(args[1], line)?, ..Inst::default() },
                None,
            );
        }
        "la" => {
            need(args, 2, m, line)?;
            let inst = Inst { op: Addi, rd: ireg(args[0], line)?, rs1: Reg::ZERO, ..Inst::default() };
            push(inst, Some((args[1].to_string(), FixupKind::Absolute)));
        }
        "mv" => {
            need(args, 2, m, line)?;
            push(
                Inst { op: Addi, rd: ireg(args[0], line)?, rs1: ireg(args[1], line)?, imm: 0, ..Inst::default() },
                None,
            );
        }
        "j" => {
            need(args, 1, m, line)?;
            let inst = Inst { op: Jal, rd: Reg::ZERO, ..Inst::default() };
            if is_label_operand(args[0]) {
                push(inst, Some((args[0].to_string(), FixupKind::PcRelative)));
            } else {
                push(Inst { imm: imm32(args[0], line)?, ..inst }, None);
            }
        }
        "call" => {
            need(args, 1, m, line)?;
            let inst = Inst { op: Jal, rd: Reg::RA, ..Inst::default() };
            push(inst, Some((args[0].to_string(), FixupKind::PcRelative)));
        }
        "ret" => {
            need(args, 0, m, line)?;
            push(Inst { op: Jalr, rd: Reg::ZERO, rs1: Reg::RA, imm: 0, ..Inst::default() }, None);
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::OpClass;

    #[test]
    fn assembles_loop_with_backward_branch() {
        let p = assemble(
            "        li   x1, 3
             loop:   addi x2, x2, 1
                     addi x1, x1, -1
                     bne  x1, x0, loop
                     halt",
        )
        .unwrap();
        assert_eq!(p.insts.len(), 5);
        let b = &p.insts[3];
        assert_eq!(b.op, Op::Bne);
        assert_eq!(b.imm, -8, "branch back two instructions");
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble(
            "        beq x0, x0, end
                     addi x1, x1, 1
             end:    halt",
        )
        .unwrap();
        assert_eq!(p.insts[0].imm, 8);
    }

    #[test]
    fn data_labels_and_la() {
        let p = assemble(
            "        .data
             a:      .word 7, 8
             b:      .double 1.5
                     .text
                     la x1, b
                     halt",
        )
        .unwrap();
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.data[0].bytes.len(), 24);
        // `b` is 16 bytes into the data section.
        assert_eq!(p.insts[0].imm as u64, DATA_BASE + 16);
        let f = f64::from_le_bytes(p.data[0].bytes[16..24].try_into().unwrap());
        assert_eq!(f, 1.5);
    }

    #[test]
    fn memory_operand_syntax() {
        let p = assemble("lw x3, 16(x4)\nsw x3, -8(x4)\nhalt").unwrap();
        assert_eq!(p.insts[0].imm, 16);
        assert_eq!(p.insts[0].rs1, Reg::new(4));
        assert_eq!(p.insts[1].imm, -8);
        assert_eq!(p.insts[1].rs2, Reg::new(3));
    }

    #[test]
    fn pseudo_expansion() {
        let p = assemble("mv x1, x2\nj next\nnext: ret\nhalt").unwrap();
        assert_eq!(p.insts[0].op, Op::Addi);
        assert_eq!(p.insts[1].op, Op::Jal);
        assert!(p.insts[1].rd.is_zero());
        assert_eq!(p.insts[2].op, Op::Jalr);
    }

    #[test]
    fn swapped_comparisons() {
        let p = assemble("bgt x1, x2, t\nt: halt").unwrap();
        assert_eq!(p.insts[0].op, Op::Blt);
        assert_eq!(p.insts[0].rs1, Reg::new(2));
        assert_eq!(p.insts[0].rs2, Reg::new(1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus x1, x2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("lw x1, nope").unwrap_err();
        assert!(e.message.contains("imm(reg)"));

        let e = assemble("addi x99, x0, 1").unwrap_err();
        assert!(e.message.contains("x99"));
    }

    #[test]
    fn duplicate_and_missing_labels_rejected() {
        let e = assemble("a: nop\na: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = assemble("j nowhere").unwrap_err();
        assert!(e.message.contains("undefined"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\n\n  ; another\n nop # trailing\n halt").unwrap();
        assert_eq!(p.insts.len(), 2);
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("li x1, 0x10\nhalt").unwrap();
        assert_eq!(p.insts[0].imm, 16);
    }

    #[test]
    fn classes_of_assembled_insts() {
        let p = assemble("fadd f1, f2, f3\nfdiv f1, f1, f2\nhalt").unwrap();
        assert_eq!(p.insts[0].op.class(), OpClass::FpAdd);
        assert_eq!(p.insts[1].op.class(), OpClass::FpDiv);
    }
}
