//! Instruction definitions: opcodes, operand forms, and functional-unit
//! classes.

use crate::reg::{FReg, Reg};
use std::fmt;

/// Every TDISA opcode.
///
/// Operand conventions follow the usual three-address RISC style; the
/// concrete operand fields live in [`Inst`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
#[derive(Default)]
pub enum Op {
    // Integer register-register ALU.
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    // Integer register-immediate ALU.
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    /// Load upper immediate: `rd = imm << 16`.
    Lui,
    // Memory.
    /// Load 64-bit word: `rd = mem[rs1 + imm]`.
    Lw,
    /// Store 64-bit word: `mem[rs1 + imm] = rs2`.
    Sw,
    /// Load byte (zero-extended).
    Lb,
    /// Store byte (low 8 bits of `rs2`).
    Sb,
    /// Load 64-bit float: `fd = mem[rs1 + imm]`.
    Flw,
    /// Store 64-bit float: `mem[rs1 + imm] = fs2`.
    Fsw,
    // Control.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    /// Jump and link: `rd = pc + 4; pc += imm`.
    Jal,
    /// Jump and link register: `rd = pc + 4; pc = (rs1 + imm) & !3`.
    Jalr,
    // Floating point (all f64).
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fsqrt,
    Fmin,
    Fmax,
    /// `fd = |fs1|` if `fs2` is `f0`-style sign source unused; absolute value.
    Fabs,
    /// `fd = -fs1`.
    Fneg,
    /// Move integer bits of `rs1` into `fd` as a converted double.
    Fcvtdw,
    /// Truncate `fs1` to integer in `rd`.
    Fcvtwd,
    /// `rd = (fs1 == fs2)`.
    Feq,
    /// `rd = (fs1 < fs2)`.
    Flt,
    /// `rd = (fs1 <= fs2)`.
    Fle,
    /// `fd = fs1`.
    Fmv,
    // System.
    /// Stop execution.
    Halt,
    /// Append `rs1` to the program's output channel.
    Out,
    /// No operation.
    #[default]
    Nop,
}

/// Functional-unit class, used by the timing model to route instructions to
/// execution resources and assign latencies (paper Table 2's FU mix).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Simple integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// Floating-point add/compare/convert/move.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load (int or fp).
    Load,
    /// Memory store (int or fp).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (`jal`/`jalr`).
    Jump,
    /// `halt`, `out`, `nop`.
    System,
}

impl Op {
    /// The functional-unit class this opcode executes on.
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slli | Srli | Srai | Slti | Lui => OpClass::IntAlu,
            Mul => OpClass::IntMul,
            Div | Rem => OpClass::IntDiv,
            Lw | Lb | Flw => OpClass::Load,
            Sw | Sb | Fsw => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => OpClass::Branch,
            Jal | Jalr => OpClass::Jump,
            Fadd | Fsub | Fmin | Fmax | Fabs | Fneg | Fcvtdw | Fcvtwd | Feq | Flt | Fle | Fmv => {
                OpClass::FpAdd
            }
            Fmul => OpClass::FpMul,
            Fdiv | Fsqrt => OpClass::FpDiv,
            Halt | Out | Nop => OpClass::System,
        }
    }

    /// Whether this opcode reads or writes the floating-point register file
    /// for its *data* operands.
    pub fn is_fp(self) -> bool {
        matches!(
            self.class(),
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv
        ) || matches!(self, Op::Flw | Op::Fsw)
    }

    /// Whether this is a control-flow instruction (branch or jump).
    pub fn is_control(self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
    }

    /// The lowercase assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Slti => "slti",
            Lui => "lui",
            Lw => "lw",
            Sw => "sw",
            Lb => "lb",
            Sb => "sb",
            Flw => "flw",
            Fsw => "fsw",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Jal => "jal",
            Jalr => "jalr",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fsqrt => "fsqrt",
            Fmin => "fmin",
            Fmax => "fmax",
            Fabs => "fabs",
            Fneg => "fneg",
            Fcvtdw => "fcvt.d.w",
            Fcvtwd => "fcvt.w.d",
            Feq => "feq",
            Flt => "flt",
            Fle => "fle",
            Fmv => "fmv",
            Halt => "halt",
            Out => "out",
            Nop => "nop",
        }
    }

    /// All opcodes, in encoding order. Useful for exhaustive tests.
    pub fn all() -> &'static [Op] {
        use Op::*;
        &[
            Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Addi, Andi, Ori,
            Xori, Slli, Srli, Srai, Slti, Lui, Lw, Sw, Lb, Sb, Flw, Fsw, Beq, Bne, Blt, Bge,
            Bltu, Bgeu, Jal, Jalr, Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fmin, Fmax, Fabs, Fneg,
            Fcvtdw, Fcvtwd, Feq, Flt, Fle, Fmv, Halt, Out, Nop,
        ]
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A decoded TDISA instruction.
///
/// All operand fields are always present; opcodes ignore the ones they do not
/// use (they assemble/encode as zero). Immediates are sign-extended 21-bit
/// values except shifts (6-bit) and `lui` (16-bit, zero-extended before
/// shifting).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Inst {
    /// Opcode. Defaults to `nop` via `Default`.
    pub op: Op,
    /// Integer destination register.
    pub rd: Reg,
    /// First integer source register.
    pub rs1: Reg,
    /// Second integer source register.
    pub rs2: Reg,
    /// Floating-point destination register.
    pub fd: FReg,
    /// First floating-point source register.
    pub fs1: FReg,
    /// Second floating-point source register.
    pub fs2: FReg,
    /// Immediate operand (branch/jump offsets are in bytes, pc-relative).
    pub imm: i32,
}


impl Inst {
    /// A canonical `nop`.
    pub fn nop() -> Inst {
        Inst::default()
    }

    /// Builds an instruction with the given opcode and all operands zeroed.
    pub fn with_op(op: Op) -> Inst {
        Inst { op, ..Inst::default() }
    }

    /// Destination integer register, if this opcode writes one.
    pub fn int_dest(&self) -> Option<Reg> {
        use OpClass::*;
        let writes = match self.op.class() {
            IntAlu | IntMul | IntDiv => true,
            Load => !self.op.is_fp(),
            Jump => true,
            FpAdd => matches!(self.op, Op::Fcvtwd | Op::Feq | Op::Flt | Op::Fle),
            _ => false,
        };
        if writes && !self.rd.is_zero() {
            Some(self.rd)
        } else {
            None
        }
    }

    /// Destination floating-point register, if this opcode writes one.
    pub fn fp_dest(&self) -> Option<FReg> {
        use Op::*;
        match self.op {
            Flw | Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fmin | Fmax | Fabs | Fneg | Fcvtdw
            | Fmv => Some(self.fd),
            _ => None,
        }
    }

    /// Integer source registers this opcode actually reads.
    pub fn int_sources(&self) -> impl Iterator<Item = Reg> {
        use Op::*;
        let (a, b): (Option<Reg>, Option<Reg>) = match self.op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => {
                (Some(self.rs1), Some(self.rs2))
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => (Some(self.rs1), None),
            Lw | Lb | Flw => (Some(self.rs1), None),
            Sw | Sb => (Some(self.rs1), Some(self.rs2)),
            Fsw => (Some(self.rs1), None),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => (Some(self.rs1), Some(self.rs2)),
            Jalr => (Some(self.rs1), None),
            Fcvtdw => (Some(self.rs1), None),
            Out => (Some(self.rs1), None),
            _ => (None, None),
        };
        a.into_iter().chain(b).filter(|r| !r.is_zero())
    }

    /// Floating-point source registers this opcode actually reads.
    pub fn fp_sources(&self) -> impl Iterator<Item = FReg> {
        use Op::*;
        let (a, b): (Option<FReg>, Option<FReg>) = match self.op {
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Feq | Flt | Fle => {
                (Some(self.fs1), Some(self.fs2))
            }
            Fsqrt | Fabs | Fneg | Fcvtwd | Fmv => (Some(self.fs1), None),
            Fsw => (Some(self.fs2), None),
            _ => (None, None),
        };
        a.into_iter().chain(b)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use OpClass::*;
        let m = self.op.mnemonic();
        match self.op.class() {
            IntAlu | IntMul | IntDiv => match self.op {
                Op::Lui => write!(f, "{m} {}, {}", self.rd, self.imm),
                Op::Addi
                | Op::Andi
                | Op::Ori
                | Op::Xori
                | Op::Slli
                | Op::Srli
                | Op::Srai
                | Op::Slti => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm),
                _ => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2),
            },
            Load => {
                if self.op.is_fp() {
                    write!(f, "{m} {}, {}({})", self.fd, self.imm, self.rs1)
                } else {
                    write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1)
                }
            }
            Store => {
                if self.op.is_fp() {
                    write!(f, "{m} {}, {}({})", self.fs2, self.imm, self.rs1)
                } else {
                    write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1)
                }
            }
            Branch => write!(f, "{m} {}, {}, {:+}", self.rs1, self.rs2, self.imm),
            Jump => match self.op {
                Op::Jal => write!(f, "{m} {}, {:+}", self.rd, self.imm),
                _ => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm),
            },
            FpAdd | FpMul | FpDiv => match self.op {
                Op::Fcvtdw => write!(f, "{m} {}, {}", self.fd, self.rs1),
                Op::Fcvtwd => write!(f, "{m} {}, {}", self.rd, self.fs1),
                Op::Feq | Op::Flt | Op::Fle => {
                    write!(f, "{m} {}, {}, {}", self.rd, self.fs1, self.fs2)
                }
                Op::Fsqrt | Op::Fabs | Op::Fneg | Op::Fmv => {
                    write!(f, "{m} {}, {}", self.fd, self.fs1)
                }
                _ => write!(f, "{m} {}, {}, {}", self.fd, self.fs1, self.fs2),
            },
            System => match self.op {
                Op::Out => write!(f, "{m} {}", self.rs1),
                _ => f.write_str(m),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classes_are_consistent() {
        assert_eq!(Op::Add.class(), OpClass::IntAlu);
        assert_eq!(Op::Mul.class(), OpClass::IntMul);
        assert_eq!(Op::Rem.class(), OpClass::IntDiv);
        assert_eq!(Op::Flw.class(), OpClass::Load);
        assert_eq!(Op::Fsw.class(), OpClass::Store);
        assert_eq!(Op::Jalr.class(), OpClass::Jump);
        assert_eq!(Op::Fsqrt.class(), OpClass::FpDiv);
    }

    #[test]
    fn fp_predicate() {
        assert!(Op::Fadd.is_fp());
        assert!(Op::Flw.is_fp());
        assert!(!Op::Lw.is_fp());
        assert!(!Op::Beq.is_fp());
    }

    #[test]
    fn zero_register_never_a_dependence() {
        let i = Inst { op: Op::Add, ..Inst::default() }; // add x0, x0, x0
        assert_eq!(i.int_dest(), None);
        assert_eq!(i.int_sources().count(), 0);
    }

    #[test]
    fn store_reads_its_data_register() {
        let i = Inst {
            op: Op::Sw,
            rs1: Reg::new(3),
            rs2: Reg::new(4),
            imm: 8,
            ..Inst::default()
        };
        let srcs: Vec<Reg> = i.int_sources().collect();
        assert_eq!(srcs, vec![Reg::new(3), Reg::new(4)]);
        assert_eq!(i.int_dest(), None);
    }

    #[test]
    fn fp_compare_writes_integer_register() {
        let i = Inst { op: Op::Flt, rd: Reg::new(5), ..Inst::default() };
        assert_eq!(i.int_dest(), Some(Reg::new(5)));
        assert_eq!(i.fp_dest(), None);
        assert_eq!(i.fp_sources().count(), 2);
    }

    #[test]
    fn display_round_trips_through_mnemonics() {
        for &op in Op::all() {
            let inst = Inst::with_op(op);
            let text = inst.to_string();
            assert!(
                text.starts_with(op.mnemonic()),
                "display of {op:?} should start with its mnemonic: {text}"
            );
        }
    }

    #[test]
    fn all_ops_listed_once() {
        let all = Op::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "duplicate op in Op::all()");
            }
        }
    }
}
