//! Flat binary program images.
//!
//! A simple container format for assembled programs — the stand-in for the
//! object files a real toolchain would produce. Layout (all integers
//! little-endian):
//!
//! ```text
//! magic      "TDIS"            4 bytes
//! version    u16               currently 1
//! name_len   u16
//! name       UTF-8 bytes
//! inst_count u32
//! insts      encoded words     4 bytes each + 4-byte extension where needed
//! seg_count  u32
//! segments   { base u64, len u32, bytes }*
//! ```

use crate::encoding::{decode, encode, needs_extension};
use crate::program::{DataSegment, Program};
use std::fmt;

const MAGIC: &[u8; 4] = b"TDIS";
const VERSION: u16 = 1;

/// Errors produced when loading a program image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImageError {
    /// The image is shorter than its headers claim.
    Truncated,
    /// The magic number is wrong.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The program name is not valid UTF-8.
    BadName,
    /// An instruction word failed to decode.
    BadInst(usize),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated => f.write_str("image truncated"),
            ImageError::BadMagic => f.write_str("not a TDISA image (bad magic)"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::BadName => f.write_str("program name is not valid UTF-8"),
            ImageError::BadInst(i) => write!(f, "instruction {i} failed to decode"),
        }
    }
}

impl std::error::Error for ImageError {}

/// Serializes a program to its flat binary image.
pub fn save(program: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let name = program.name.as_bytes();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(program.insts.len() as u32).to_le_bytes());
    for inst in &program.insts {
        let e = encode(inst);
        out.extend_from_slice(&e.word.to_le_bytes());
        if let Some(ext) = e.ext {
            out.extend_from_slice(&ext.to_le_bytes());
        }
    }
    out.extend_from_slice(&(program.data.len() as u32).to_le_bytes());
    for seg in &program.data {
        out.extend_from_slice(&seg.base.to_le_bytes());
        out.extend_from_slice(&(seg.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&seg.bytes);
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.pos + n > self.buf.len() {
            return Err(ImageError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Loads a program from its flat binary image.
///
/// # Errors
///
/// Returns an [`ImageError`] for truncated, corrupted, or
/// unsupported-version images.
pub fn load(image: &[u8]) -> Result<Program, ImageError> {
    let mut r = Reader { buf: image, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ImageError::BadVersion(version));
    }
    let name_len = r.u16()? as usize;
    let name =
        String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| ImageError::BadName)?;
    let inst_count = r.u32()? as usize;
    let mut insts = Vec::with_capacity(inst_count.min(1 << 20));
    for i in 0..inst_count {
        let word = r.u32()?;
        let ext = if needs_extension(word) { Some(r.u32()?) } else { None };
        insts.push(decode(word, ext).map_err(|_| ImageError::BadInst(i))?);
    }
    let seg_count = r.u32()? as usize;
    let mut data = Vec::with_capacity(seg_count.min(1 << 10));
    for _ in 0..seg_count {
        let base = r.u64()?;
        let len = r.u32()? as usize;
        data.push(DataSegment { base, bytes: r.take(len)?.to_vec() });
    }
    let mut program = Program::new(name);
    program.insts = insts;
    program.data = data;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_named;

    fn sample() -> Program {
        assemble_named(
            "        .data
             tab:    .word 1, 2, 3
             pi:     .double 3.25
                     .text
                     la x1, tab
                     li x2, 100000    # wide immediate: needs extension word
             l:      lw x3, 0(x1)
                     addi x1, x1, 8
                     addi x2, x2, -1
                     bne x2, x0, l
                     halt",
            "sample",
        )
        .expect("assembles")
    }

    #[test]
    fn round_trip_preserves_everything() {
        let p = sample();
        let image = save(&p);
        let back = load(&image).expect("loads");
        assert_eq!(p, back);
    }

    #[test]
    fn magic_and_version_checked() {
        let p = sample();
        let mut image = save(&p);
        image[0] = b'X';
        assert_eq!(load(&image), Err(ImageError::BadMagic));

        let mut image = save(&p);
        image[4] = 99;
        assert!(matches!(load(&image), Err(ImageError::BadVersion(99))));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let p = sample();
        let image = save(&p);
        for cut in 1..image.len() {
            let r = load(&image[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_opcode_detected() {
        let p = sample();
        let mut image = save(&p);
        // Find the first instruction word (after magic+version+name+count)
        // and stomp its opcode field with an invalid value.
        let name_len = p.name.len();
        let inst_off = 4 + 2 + 2 + name_len + 4;
        image[inst_off + 3] = 0xFF; // top byte holds the opcode
        assert!(matches!(load(&image), Err(ImageError::BadInst(0))));
    }

    #[test]
    fn loaded_image_executes_identically() {
        let p = sample();
        let image = save(&p);
        let back = load(&image).expect("loads");
        let mut a = tdtm_frontend_check::run(&p);
        let mut b = tdtm_frontend_check::run(&back);
        assert_eq!(a.pop(), b.pop());
    }

    /// Minimal functional check without depending on tdtm-frontend (which
    /// would be a dependency cycle): interpret with a tiny evaluator that
    /// only handles the ops `sample()` uses... instead, just compare
    /// instruction streams, which is what execution consumes.
    mod tdtm_frontend_check {
        use crate::program::Program;

        pub fn run(p: &Program) -> Vec<u64> {
            p.insts.iter().map(|i| i.imm as u64 ^ (i.op as u64) << 32).collect()
        }
    }
}
