//! Assembled programs: a text segment of decoded instructions plus
//! initialized data segments.

use crate::inst::Inst;

/// Base virtual address of the text segment.
pub const TEXT_BASE: u64 = 0x0000_1000;
/// Base virtual address of the data segment.
pub const DATA_BASE: u64 = 0x0010_0000;
/// Base virtual address of the downward-growing stack.
pub const STACK_BASE: u64 = 0x7FFF_F000;

/// An initialized data region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataSegment {
    /// Base virtual address.
    pub base: u64,
    /// Raw bytes.
    pub bytes: Vec<u8>,
}

/// A complete TDISA program ready to load into the functional simulator.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Instructions; instruction `i` lives at `TEXT_BASE + 4*i`.
    pub insts: Vec<Inst>,
    /// Initialized data segments.
    pub data: Vec<DataSegment>,
    /// Program name (for reporting).
    pub name: String,
}

impl Program {
    /// Creates an empty program with a name.
    pub fn new(name: impl Into<String>) -> Program {
        Program { name: name.into(), ..Program::default() }
    }

    /// The virtual address of instruction index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn addr_of(&self, i: usize) -> u64 {
        assert!(i < self.insts.len(), "instruction index {i} out of range");
        TEXT_BASE + 4 * i as u64
    }

    /// The instruction at virtual address `addr`, if it falls inside the
    /// text segment.
    pub fn inst_at(&self, addr: u64) -> Option<&Inst> {
        if addr < TEXT_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        self.insts.get(((addr - TEXT_BASE) / 4) as usize)
    }

    /// Entry point address (the first instruction).
    pub fn entry(&self) -> u64 {
        TEXT_BASE
    }

    /// Total bytes of initialized data.
    pub fn data_bytes(&self) -> usize {
        self.data.iter().map(|d| d.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Op};

    #[test]
    fn addresses_are_word_spaced() {
        let mut p = Program::new("t");
        p.insts = vec![Inst::with_op(Op::Nop); 4];
        assert_eq!(p.addr_of(0), TEXT_BASE);
        assert_eq!(p.addr_of(3), TEXT_BASE + 12);
        assert_eq!(p.entry(), TEXT_BASE);
    }

    #[test]
    fn inst_at_checks_bounds_and_alignment() {
        let mut p = Program::new("t");
        p.insts = vec![Inst::with_op(Op::Halt)];
        assert!(p.inst_at(TEXT_BASE).is_some());
        assert!(p.inst_at(TEXT_BASE + 2).is_none());
        assert!(p.inst_at(TEXT_BASE + 4).is_none());
        assert!(p.inst_at(0).is_none());
    }

    #[test]
    fn data_byte_accounting() {
        let mut p = Program::new("t");
        p.data.push(DataSegment { base: DATA_BASE, bytes: vec![0; 16] });
        p.data.push(DataSegment { base: DATA_BASE + 64, bytes: vec![1; 8] });
        assert_eq!(p.data_bytes(), 24);
    }
}
