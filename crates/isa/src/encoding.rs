//! Binary instruction encoding.
//!
//! TDISA instructions occupy a fixed 32-bit word:
//!
//! ```text
//!  31      26 25   21 20   16 15   11 10                0
//! +----------+-------+-------+-------+-------------------+
//! |  opcode  |  rd   |  rs1  |  rs2  |     imm (11b)     |
//! +----------+-------+-------+-------+-------------------+
//! ```
//!
//! Immediates larger than 11 bits do not fit in the word; such instructions
//! encode `imm = IMM_EXT` (all ones) and carry the real immediate in a
//! trailing extension word, making them 8 bytes long on disk. The in-memory
//! [`Inst`] is always fully decoded; the timing model treats every
//! instruction as 4 bytes of fetch bandwidth, like the fixed-length Alpha ISA
//! the paper simulates (the extension word is a storage artifact only).

use crate::inst::{Inst, Op};
use crate::reg::{FReg, Reg};
use std::fmt;

/// Sentinel `imm` field meaning "immediate stored in extension word".
const IMM_EXT: u32 = 0x7FF;
/// Maximum immediate storable inline (signed 11-bit).
const IMM_INLINE_MAX: i32 = 1022; // 0x3FE; 0x3FF is the sentinel
const IMM_INLINE_MIN: i32 = -1024;

/// An encoded instruction: one mandatory word plus an optional immediate
/// extension word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Encoded {
    /// Primary instruction word.
    pub word: u32,
    /// Extension word holding a wide immediate, if any.
    pub ext: Option<u32>,
}

/// Error returned by [`decode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The opcode field does not name a TDISA instruction.
    BadOpcode(u8),
    /// The instruction requires an extension word that was not supplied.
    MissingExtension,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "invalid opcode field {op:#x}"),
            DecodeError::MissingExtension => f.write_str("missing immediate extension word"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn op_to_code(op: Op) -> u8 {
    Op::all().iter().position(|&o| o == op).expect("op in Op::all()") as u8
}

fn code_to_op(code: u8) -> Option<Op> {
    Op::all().get(code as usize).copied()
}

/// Encodes an instruction.
///
/// Register fields are taken from the integer or floating-point file
/// according to the opcode; both files share the 5-bit field space.
pub fn encode(inst: &Inst) -> Encoded {
    let (rd, rs1, rs2) = register_fields(inst);
    let mut word = (op_to_code(inst.op) as u32) << 26
        | (rd as u32) << 21
        | (rs1 as u32) << 16
        | (rs2 as u32) << 11;
    let ext = if (IMM_INLINE_MIN..=IMM_INLINE_MAX).contains(&inst.imm)
        && (inst.imm as u32) & IMM_EXT != IMM_EXT
    {
        word |= (inst.imm as u32) & IMM_EXT;
        None
    } else {
        word |= IMM_EXT;
        Some(inst.imm as u32)
    };
    Encoded { word, ext }
}

/// Decodes an instruction word (plus optional extension word).
///
/// # Errors
///
/// Returns [`DecodeError::BadOpcode`] for an unknown opcode field, and
/// [`DecodeError::MissingExtension`] when the word requires an extension
/// immediate but `ext` is `None`.
pub fn decode(word: u32, ext: Option<u32>) -> Result<Inst, DecodeError> {
    let code = (word >> 26) as u8;
    let op = code_to_op(code).ok_or(DecodeError::BadOpcode(code))?;
    let rd = ((word >> 21) & 0x1F) as u8;
    let rs1 = ((word >> 16) & 0x1F) as u8;
    let rs2 = ((word >> 11) & 0x1F) as u8;
    let imm_field = word & IMM_EXT;
    let imm = if imm_field == IMM_EXT {
        ext.ok_or(DecodeError::MissingExtension)? as i32
    } else {
        // Sign-extend the 11-bit field.
        ((imm_field as i32) << 21) >> 21
    };
    let mut inst = Inst { op, imm, ..Inst::default() };
    set_register_fields(&mut inst, rd, rs1, rs2);
    Ok(inst)
}

/// Whether an encoded word requires an extension word.
pub fn needs_extension(word: u32) -> bool {
    word & IMM_EXT == IMM_EXT
}

fn register_fields(inst: &Inst) -> (u8, u8, u8) {
    use Op::*;
    match inst.op {
        Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fmin | Fmax | Fabs | Fneg | Fmv => (
            inst.fd.index() as u8,
            inst.fs1.index() as u8,
            inst.fs2.index() as u8,
        ),
        Feq | Flt | Fle => (
            inst.rd.index() as u8,
            inst.fs1.index() as u8,
            inst.fs2.index() as u8,
        ),
        Fcvtdw => (inst.fd.index() as u8, inst.rs1.index() as u8, 0),
        Fcvtwd => (inst.rd.index() as u8, inst.fs1.index() as u8, 0),
        Flw => (inst.fd.index() as u8, inst.rs1.index() as u8, 0),
        Fsw => (0, inst.rs1.index() as u8, inst.fs2.index() as u8),
        _ => (
            inst.rd.index() as u8,
            inst.rs1.index() as u8,
            inst.rs2.index() as u8,
        ),
    }
}

fn set_register_fields(inst: &mut Inst, rd: u8, rs1: u8, rs2: u8) {
    use Op::*;
    match inst.op {
        Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fmin | Fmax | Fabs | Fneg | Fmv => {
            inst.fd = FReg::new(rd);
            inst.fs1 = FReg::new(rs1);
            inst.fs2 = FReg::new(rs2);
        }
        Feq | Flt | Fle => {
            inst.rd = Reg::new(rd);
            inst.fs1 = FReg::new(rs1);
            inst.fs2 = FReg::new(rs2);
        }
        Fcvtdw => {
            inst.fd = FReg::new(rd);
            inst.rs1 = Reg::new(rs1);
        }
        Fcvtwd => {
            inst.rd = Reg::new(rd);
            inst.fs1 = FReg::new(rs1);
        }
        Flw => {
            inst.fd = FReg::new(rd);
            inst.rs1 = Reg::new(rs1);
        }
        Fsw => {
            inst.rs1 = Reg::new(rs1);
            inst.fs2 = FReg::new(rs2);
        }
        _ => {
            inst.rd = Reg::new(rd);
            inst.rs1 = Reg::new(rs1);
            inst.rs2 = Reg::new(rs2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(inst: Inst) {
        let e = encode(&inst);
        let back = decode(e.word, e.ext).expect("decodes");
        assert_eq!(inst, back, "round trip failed for {inst}");
    }

    #[test]
    fn round_trip_simple_alu() {
        round_trip(Inst {
            op: Op::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
            ..Inst::default()
        });
    }

    #[test]
    fn round_trip_small_immediates_inline() {
        for imm in [-1024, -2, 0, 1, 511, 1022] {
            let inst = Inst { op: Op::Addi, rd: Reg::new(7), rs1: Reg::new(8), imm, ..Inst::default() };
            let e = encode(&inst);
            assert!(e.ext.is_none(), "imm {imm} should encode inline");
            round_trip(inst);
        }
    }

    #[test]
    fn round_trip_wide_immediates_use_extension() {
        for imm in [-1, 1023, 4096, -40000, i32::MAX, i32::MIN] {
            let inst = Inst { op: Op::Lw, rd: Reg::new(9), rs1: Reg::new(10), imm, ..Inst::default() };
            let e = encode(&inst);
            assert!(e.ext.is_some(), "imm {imm} should need extension");
            assert!(needs_extension(e.word));
            round_trip(inst);
        }
    }

    #[test]
    fn round_trip_fp_forms() {
        round_trip(Inst {
            op: Op::Fadd,
            fd: FReg::new(1),
            fs1: FReg::new(2),
            fs2: FReg::new(3),
            ..Inst::default()
        });
        round_trip(Inst {
            op: Op::Flt,
            rd: Reg::new(4),
            fs1: FReg::new(5),
            fs2: FReg::new(6),
            ..Inst::default()
        });
        round_trip(Inst {
            op: Op::Fsw,
            rs1: Reg::new(7),
            fs2: FReg::new(8),
            imm: 64,
            ..Inst::default()
        });
        round_trip(Inst { op: Op::Fcvtdw, fd: FReg::new(9), rs1: Reg::new(10), ..Inst::default() });
    }

    #[test]
    fn bad_opcode_rejected() {
        let word = 0xFFu32 << 26;
        assert!(matches!(decode(word, None), Err(DecodeError::BadOpcode(_))));
    }

    #[test]
    fn missing_extension_rejected() {
        let inst = Inst { op: Op::Jal, rd: Reg::new(1), imm: 100_000, ..Inst::default() };
        let e = encode(&inst);
        assert!(matches!(decode(e.word, None), Err(DecodeError::MissingExtension)));
    }

    #[test]
    fn every_opcode_round_trips() {
        for &op in Op::all() {
            round_trip(Inst::with_op(op));
        }
    }
}
