//! # tdtm-isa — the TDISA instruction set
//!
//! A small load/store RISC instruction set used as the stand-in for the Alpha
//! ISA that the paper's SimpleScalar/Wattch toolchain simulates. The paper's
//! evaluation only depends on the *dynamic behavior* of programs (instruction
//! mix, branch behavior, memory reference streams), so a compact RISC ISA with
//! an assembler is a faithful substrate: workloads are written in TDISA
//! assembly, executed by the functional simulator in `tdtm-frontend`, and
//! timed by the out-of-order core in `tdtm-uarch`.
//!
//! The ISA has:
//!
//! * 32 64-bit integer registers `x0..x31` (`x0` is hardwired to zero) and
//!   32 64-bit floating-point registers `f0..f31`;
//! * fixed 4-byte instruction words with a binary encoding
//!   ([`encoding::encode`]/[`encoding::decode`] round-trip exactly);
//! * byte-addressed memory with 1- and 8-byte integer accesses and 8-byte
//!   floating-point accesses;
//! * a small [`asm`] assembler with labels, a data segment, and comments.
//!
//! # Examples
//!
//! ```
//! use tdtm_isa::asm::assemble;
//!
//! let program = assemble(
//!     "        addi x1, x0, 10
//!      loop:   addi x2, x2, 3
//!              addi x1, x1, -1
//!              bne  x1, x0, loop
//!              halt",
//! )?;
//! assert_eq!(program.insts.len(), 5);
//! # Ok::<(), tdtm_isa::asm::AsmError>(())
//! ```

pub mod asm;
pub mod encoding;
pub mod image;
pub mod inst;
pub mod program;
pub mod reg;

pub use inst::{Inst, Op, OpClass};
pub use program::Program;
pub use reg::{FReg, Reg};
