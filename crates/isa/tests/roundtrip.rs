//! Property tests tying the three instruction representations together:
//! decoded struct ⇄ binary encoding ⇄ assembly text.

use proptest::prelude::*;
use tdtm_isa::asm::assemble;
use tdtm_isa::encoding::{decode, encode};
use tdtm_isa::image;
use tdtm_isa::{FReg, Inst, Op, Program, Reg};

fn arb_op() -> impl Strategy<Value = Op> {
    let all = Op::all();
    (0..all.len()).prop_map(move |i| all[i])
}

/// Whether an opcode's assembly syntax carries an immediate operand.
fn uses_imm(op: Op) -> bool {
    use Op::*;
    matches!(
        op,
        Addi | Andi
            | Ori
            | Xori
            | Slli
            | Srli
            | Srai
            | Slti
            | Lui
            | Lw
            | Sw
            | Lb
            | Sb
            | Flw
            | Fsw
            | Beq
            | Bne
            | Blt
            | Bge
            | Bltu
            | Bgeu
            | Jal
            | Jalr
    )
}

/// A canonical instruction: the fixed point of the disassemble/assemble
/// pair. Random operand fields are projected through the assembler once
/// (which zeroes the fields an opcode's syntax does not carry) so the
/// round-trip properties below test idempotence on the canonical form.
fn arb_canonical_inst() -> impl Strategy<Value = Inst> {
    (arb_op(), 0u8..32, 1u8..32, 1u8..32, -100_000i32..100_000).prop_map(
        |(op, a, b, c, imm)| {
            let raw = Inst {
                op,
                rd: Reg::new(a),
                rs1: Reg::new(b),
                rs2: Reg::new(c),
                fd: FReg::new(a),
                fs1: FReg::new(b),
                fs2: FReg::new(c),
                imm: if uses_imm(op) { imm } else { 0 },
            };
            let text = raw.to_string();
            let assembled = assemble(&text)
                .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
            assembled.insts[0]
        },
    )
}

proptest! {
    /// The disassembly of any instruction reassembles to itself.
    #[test]
    fn display_reassembles(inst in arb_canonical_inst()) {
        let text = inst.to_string();
        let program = assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        prop_assert_eq!(program.insts.len(), 1, "one line, one instruction: `{}`", text);
        prop_assert_eq!(program.insts[0], inst, "`{}`", text);
    }

    /// Canonical instructions survive the binary encoding exactly.
    #[test]
    fn encoding_round_trips_canonical(inst in arb_canonical_inst()) {
        let e = encode(&inst);
        prop_assert_eq!(decode(e.word, e.ext).expect("decodes"), inst);
    }

    /// Whole programs survive the binary image format.
    #[test]
    fn image_round_trips_programs(insts in prop::collection::vec(arb_canonical_inst(), 0..200),
                                  data in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut p = Program::new("prop");
        p.insts = insts;
        if !data.is_empty() {
            p.data.push(tdtm_isa::program::DataSegment {
                base: tdtm_isa::program::DATA_BASE,
                bytes: data,
            });
        }
        let img = image::save(&p);
        let back = image::load(&img).expect("loads");
        prop_assert_eq!(p, back);
    }

    /// Corrupting any single byte of an image never panics: it either
    /// still loads (the byte was slack, e.g. inside data) or errors
    /// cleanly.
    #[test]
    fn image_loader_is_total(byte_index in 0usize..64, new_value in any::<u8>()) {
        let p = assemble("li x1, 5\nl: addi x1, x1, -1\nbne x1, x0, l\nhalt").expect("assembles");
        let mut img = image::save(&p);
        if byte_index < img.len() {
            img[byte_index] = new_value;
        }
        let _ = image::load(&img); // must not panic
    }
}
