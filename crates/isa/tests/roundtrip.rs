//! Randomized tests tying the three instruction representations together:
//! decoded struct ⇄ binary encoding ⇄ assembly text. Cases are drawn from
//! the in-repo deterministic PRNG, so every failure reproduces exactly.

use tdtm_isa::asm::assemble;
use tdtm_isa::encoding::{decode, encode};
use tdtm_isa::image;
use tdtm_isa::{FReg, Inst, Op, Program, Reg};
use tdtm_prng::{cases, Rng};

/// Whether an opcode's assembly syntax carries an immediate operand.
fn uses_imm(op: Op) -> bool {
    use Op::*;
    matches!(
        op,
        Addi | Andi
            | Ori
            | Xori
            | Slli
            | Srli
            | Srai
            | Slti
            | Lui
            | Lw
            | Sw
            | Lb
            | Sb
            | Flw
            | Fsw
            | Beq
            | Bne
            | Blt
            | Bge
            | Bltu
            | Bgeu
            | Jal
            | Jalr
    )
}

/// A canonical instruction: the fixed point of the disassemble/assemble
/// pair. Random operand fields are projected through the assembler once
/// (which zeroes the fields an opcode's syntax does not carry) so the
/// round-trip properties below test idempotence on the canonical form.
fn arb_canonical_inst(rng: &mut Rng) -> Inst {
    let all = Op::all();
    let op = all[rng.index(all.len())];
    let a = rng.range_i64(0, 32) as u8;
    let b = rng.range_i64(1, 32) as u8;
    let c = rng.range_i64(1, 32) as u8;
    let imm = rng.range_i64(-100_000, 100_000) as i32;
    let raw = Inst {
        op,
        rd: Reg::new(a),
        rs1: Reg::new(b),
        rs2: Reg::new(c),
        fd: FReg::new(a),
        fs1: FReg::new(b),
        fs2: FReg::new(c),
        imm: if uses_imm(op) { imm } else { 0 },
    };
    let text = raw.to_string();
    let assembled = assemble(&text).unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
    assembled.insts[0]
}

/// The disassembly of any instruction reassembles to itself.
#[test]
fn display_reassembles() {
    cases(256, 0x15a_0001, |rng| {
        let inst = arb_canonical_inst(rng);
        let text = inst.to_string();
        let program =
            assemble(&text).unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        assert_eq!(program.insts.len(), 1, "one line, one instruction: `{text}`");
        assert_eq!(program.insts[0], inst, "`{text}`");
    });
}

/// Canonical instructions survive the binary encoding exactly.
#[test]
fn encoding_round_trips_canonical() {
    cases(256, 0x15a_0002, |rng| {
        let inst = arb_canonical_inst(rng);
        let e = encode(&inst);
        assert_eq!(decode(e.word, e.ext).expect("decodes"), inst);
    });
}

/// Whole programs survive the binary image format.
#[test]
fn image_round_trips_programs() {
    cases(32, 0x15a_0003, |rng| {
        let n_insts = rng.range_i64(0, 200);
        let n_data = rng.range_i64(0, 512);
        let mut p = Program::new("prop");
        p.insts = (0..n_insts).map(|_| arb_canonical_inst(rng)).collect();
        if n_data > 0 {
            p.data.push(tdtm_isa::program::DataSegment {
                base: tdtm_isa::program::DATA_BASE,
                bytes: (0..n_data).map(|_| rng.next_u64() as u8).collect(),
            });
        }
        let img = image::save(&p);
        let back = image::load(&img).expect("loads");
        assert_eq!(p, back);
    });
}

/// Corrupting any single byte of an image never panics: it either still
/// loads (the byte was slack, e.g. inside data) or errors cleanly.
#[test]
fn image_loader_is_total() {
    let p = assemble("li x1, 5\nl: addi x1, x1, -1\nbne x1, x0, l\nhalt").expect("assembles");
    let img = image::save(&p);
    for byte_index in 0..img.len().min(64) {
        for new_value in [0x00u8, 0x01, 0x7f, 0x80, 0xff] {
            let mut corrupt = img.clone();
            corrupt[byte_index] = new_value;
            let _ = image::load(&corrupt); // must not panic
        }
    }
}
