//! A minimal wall-clock microbenchmark harness (std-only).
//!
//! The registry mirror this repo builds against is offline, so the
//! Criterion dependency is out; the four `[[bench]]` targets use this
//! harness instead. It keeps the parts that matter for the paper's
//! "computationally efficient" claims — warmup, automatic iteration
//! calibration, best-of-N batches, ns/op — and skips the statistics
//! machinery.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], so bench code reads the same as
/// it did under Criterion.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall time per measured batch.
const BATCH_SECONDS: f64 = 0.02;
/// Number of measured batches; the minimum is reported.
const BATCHES: usize = 7;

/// A named group of microbenchmarks, printed as `name  ns/op  ops/s`.
pub struct Harness {
    rows: Vec<(String, f64)>,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness::new()
    }
}

impl Harness {
    /// Creates an empty harness.
    pub fn new() -> Harness {
        Harness { rows: Vec::new() }
    }

    /// Measures `f`, recording the minimum per-iteration time over
    /// `BATCHES` calibrated batches (the minimum is the standard
    /// low-noise estimator for microbenchmarks).
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate: grow the batch until it runs long enough to time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= BATCH_SECONDS || iters >= 1 << 30 {
                break;
            }
            // Aim straight for the target, with a growth cap.
            let scale = (BATCH_SECONDS / elapsed.max(1e-9)).min(100.0);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }
        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            best = best.min(start.elapsed().as_secs_f64() / iters as f64);
        }
        let ns = best * 1e9;
        println!("{name:<44} {ns:>12.2} ns/op {:>16.0} ops/s", 1.0 / best);
        self.rows.push((name.to_string(), ns));
    }

    /// Appends an externally measured row (e.g. a whole-run measurement
    /// normalized per cycle) so it shows up in [`Harness::to_json`]
    /// alongside the calibrated ones.
    pub fn push_row(&mut self, name: &str, ns_per_op: f64) {
        self.rows.push((name.to_string(), ns_per_op));
    }

    /// The recorded `(name, ns_per_op)` rows.
    pub fn results(&self) -> &[(String, f64)] {
        &self.rows
    }

    /// Renders the recorded rows as a JSON object mapping benchmark name
    /// to ns/op, for committing machine-readable baselines (e.g.
    /// `BENCH_telemetry.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, ns)) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("  \"{name}\": {ns:.2}{sep}\n"));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_a_row() {
        let mut h = Harness::new();
        let mut x = 0u64;
        h.bench("wrapping_add", || {
            x = x.wrapping_add(black_box(3));
            x
        });
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].1 > 0.0, "measured time must be positive");
        let json = h.to_json();
        assert!(json.starts_with("{\n  \"wrapping_add\": "));
        assert!(json.ends_with("}\n"));
    }
}
