//! Regenerates Table 2: the simulated processor configuration.

use tdtm_core::report::TextTable;
use tdtm_uarch::CoreConfig;

fn main() {
    let c = CoreConfig::alpha21264_like();
    println!("== Table 2: configuration of simulated processor microarchitecture ==\n");

    let mut t = TextTable::new(["Parameter", "Value"]);
    t.row(["Instruction window".to_string(), format!("{}-RUU, {}-LSQ", c.ruu_size, c.lsq_size)]);
    t.row(["Fetch width".to_string(), format!("{} instructions per cycle", c.fetch_width)]);
    t.row(["Issue width".to_string(), format!("{} instructions per cycle", c.issue_width)]);
    t.row([
        "Functional units".to_string(),
        format!(
            "{} IntALU, {} IntMult/Div, {} FPALU, {} FPMult/Div, {} mem ports",
            c.int_alu_count, c.int_mult_count, c.fp_alu_count, c.fp_mult_count, c.mem_ports
        ),
    ]);
    t.row([
        "Extra pipe stages".to_string(),
        format!("{} (decode + 3 rename/enqueue, per the paper)", c.frontend_depth),
    ]);
    t.row([
        "L1 D-cache".to_string(),
        format!(
            "{} KB, {}-way LRU, {} B blocks, {}-cycle latency",
            c.l1d.size / 1024,
            c.l1d.assoc,
            c.l1d.line,
            c.l1d.latency
        ),
    ]);
    t.row([
        "L1 I-cache".to_string(),
        format!(
            "{} KB, {}-way LRU, {} B blocks, {}-cycle latency",
            c.l1i.size / 1024,
            c.l1i.assoc,
            c.l1i.line,
            c.l1i.latency
        ),
    ]);
    t.row([
        "L2".to_string(),
        format!(
            "Unified, {} MB, {}-way LRU, {} B blocks, {}-cycle latency, WB",
            c.l2.size / (1024 * 1024),
            c.l2.assoc,
            c.l2.line,
            c.l2.latency
        ),
    ]);
    t.row(["Memory".to_string(), format!("{} cycles", c.mem_latency)]);
    t.row([
        "TLB".to_string(),
        format!(
            "{}-entry, fully assoc., {}-cycle miss penalty",
            c.tlb_entries, c.tlb_miss_penalty
        ),
    ]);
    t.row([
        "Branch predictor".to_string(),
        format!(
            "Hybrid: {} bimod + {}/{}-bit GAg, {} bimod-style chooser",
            c.bpred.bimod_entries, c.bpred.gag_entries, c.bpred.history_bits, c.bpred.chooser_entries
        ),
    ]);
    t.row([
        "Branch target buffer".to_string(),
        format!("{}-entry, {}-way", c.bpred.btb_sets * c.bpred.btb_assoc, c.bpred.btb_assoc),
    ]);
    t.row(["Return-address stack".to_string(), format!("{}-entry", c.bpred.ras_entries)]);
    t.row(["Clock".to_string(), format!("{:.1} GHz", c.clock_hz / 1e9)]);
    println!("{}", t.render());
}
