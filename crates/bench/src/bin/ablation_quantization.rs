//! Actuator-granularity ablation: the paper gives its controller "eight
//! discrete values distributed evenly across the range from 0% to 100%".
//! This sweep varies the quantization from bang-bang (1 level) to
//! near-continuous (64 levels) and measures what the granularity buys.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize, ExperimentScale};
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Ablation: fetch-toggling quantization levels (PID)", scale);

    let mut t = TextTable::new([
        "benchmark",
        "levels",
        "perf vs base",
        "emergency %",
        "gated cycles",
    ]);
    for bench in ["gcc", "apsi", "equake"] {
        let w = by_name(bench).expect("suite");
        let baseline = characterize(&w, scale);
        for levels in [1u32, 2, 4, 8, 16, 64] {
            let mut cfg = scale.config(PolicyKind::Pid);
            cfg.dtm.quantize_levels = levels;
            let mut sim = Simulator::for_workload(cfg, &w);
            let r = sim.run();
            t.row([
                bench.to_string(),
                levels.to_string(),
                format!("{:.1}%", r.percent_of(&baseline)),
                format!("{:.3}%", 100.0 * r.emergency_fraction()),
                r.gated_cycles.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("actuator resolution turns out not to be the bottleneck: because the controller");
    println!("re-samples every 1000 cycles — hundreds of times per thermal time constant —");
    println!("even bang-bang (1 level) time-averages into an effective duty cycle, and all");
    println!("granularities hold temperature without emergencies at similar cost. The");
    println!("paper's 8 levels are comfortably sufficient.");
}
