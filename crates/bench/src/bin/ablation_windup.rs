//! Full-system integral-windup ablation (Section 3.3): the same PI/PID
//! policies with the paper's anti-windup disabled, on workloads with a
//! long cool prefix before their hot region — the exact scenario where a
//! wound-up integral keeps the actuator at full speed into an emergency.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize, ExperimentScale};
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Ablation: anti-windup on/off (Section 3.3)", scale);

    let mut t = TextTable::new([
        "benchmark",
        "policy",
        "anti-windup",
        "perf vs base",
        "emergency %",
        "engaged",
    ]);
    // art has exactly the cool-then-hot phase structure that winds up an
    // unprotected integrator; gcc is the steady-hot control case.
    for bench in ["art", "gcc"] {
        let w = by_name(bench).expect("suite");
        let baseline = characterize(&w, scale);
        for policy in [PolicyKind::Pi, PolicyKind::Pid] {
            for aw in [true, false] {
                let mut cfg = scale.config(policy);
                cfg.dtm.anti_windup = aw;
                // Cold-start so the cool prefix really occurs.
                cfg.warm_start = false;
                let mut sim = Simulator::for_workload(cfg, &w);
                let r = sim.run();
                t.row([
                    bench.to_string(),
                    policy.to_string(),
                    if aw { "on".to_string() } else { "OFF".to_string() },
                    format!("{:.1}%", r.percent_of(&baseline)),
                    format!("{:.3}%", 100.0 * r.emergency_fraction()),
                    format!("{}/{}", r.engaged_samples, r.samples),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!("without the integrator freeze, the cool-phase error winds the integral to an");
    println!("arbitrarily large value; when the hot phase arrives the controller takes many");
    println!("samples to unwind and the block can run into emergency — the failure mode");
    println!("Section 3.3 describes and the reason the paper freezes the integrator.");
}
