//! Regenerates Table 6: average and maximum temperature of each
//! architectural structure for every benchmark, with no thermal
//! management.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize_suite, ExperimentScale};
use tdtm_core::report::TextTable;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Table 6: per-structure avg/max temperature (C), no DTM", scale);

    let reports = characterize_suite(scale);
    let block_names: Vec<String> = reports[0].blocks.iter().map(|b| b.name.clone()).collect();
    let mut header = vec!["benchmark".to_string()];
    header.extend(block_names);

    let mut t = TextTable::new(header);
    for r in &reports {
        let mut row = vec![r.name.clone()];
        for b in &r.blocks {
            row.push(format!("{:.1}/{:.1}", b.avg_temp, b.max_temp));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("cells are avg/max over the run; heatsink held at its 103 C operating point.");
}
