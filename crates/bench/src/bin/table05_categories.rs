//! Regenerates Table 5: the four categories of thermal behavior, from
//! measured characterization runs.

use tdtm_bench::banner;
use tdtm_core::experiments::{categorize, characterize_suite, ExperimentScale};
use tdtm_workloads::{suite, ThermalCategory};

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Table 5: categories of thermal behavior", scale);

    let reports = characterize_suite(scale);
    let declared: std::collections::HashMap<&str, ThermalCategory> =
        suite().iter().map(|w| (w.name, w.category)).collect();

    let mut buckets: Vec<(ThermalCategory, Vec<String>)> = vec![
        (ThermalCategory::Extreme, Vec::new()),
        (ThermalCategory::High, Vec::new()),
        (ThermalCategory::Medium, Vec::new()),
        (ThermalCategory::Low, Vec::new()),
    ];
    let mut mismatches = Vec::new();
    for r in &reports {
        let cat = categorize(r);
        buckets
            .iter_mut()
            .find(|(c, _)| *c == cat)
            .expect("all categories present")
            .1
            .push(r.name.clone());
        if declared[r.name.as_str()] != cat {
            mismatches.push(format!(
                "{} (declared {}, measured {})",
                r.name, declared[r.name.as_str()], cat
            ));
        }
    }
    for (cat, names) in &buckets {
        println!("{:8}: {}", cat.name(), names.join(", "));
    }
    println!();
    if mismatches.is_empty() {
        println!("measured categories match the suite's declared categories.");
    } else {
        println!("declared/measured mismatches at this scale: {}", mismatches.join("; "));
    }
}
