//! Sensor-fidelity ablation (the paper's stated future work): how noise,
//! quantization, and a limited sensor budget degrade DTM. "Developing a
//! model for temperature sensor behavior (as distinct from true physical
//! temperature) is an important area for future work."

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize, ExperimentScale};
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::{PolicyKind, SensorModel};
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Ablation: temperature-sensor fidelity (PID on apsi)", scale);

    let w = by_name("apsi").expect("suite");
    let baseline = characterize(&w, scale);

    let mut t = TextTable::new(["sensors", "perf vs base", "emergency %", "engaged"]);
    let cases: Vec<(&str, SensorModel)> = vec![
        ("ideal (paper)", SensorModel::ideal()),
        ("noise 0.1 K", SensorModel::with_noise(0.1, 0.0, 11)),
        ("noise 0.25 K", SensorModel::with_noise(0.25, 0.0, 11)),
        ("noise 0.5 K", SensorModel::with_noise(0.5, 0.0, 11)),
        ("quantized 0.25 K", SensorModel::with_noise(0.0, 0.25, 11)),
        ("noise 0.25 + quant 0.25", SensorModel::with_noise(0.25, 0.25, 11)),
        (
            // apsi's hot spot is the register file (index 2).
            "no regfile sensor",
            SensorModel::ideal().with_placement(
                vec![true, true, false, true, true, true, true],
                0.0,
            ),
        ),
    ];
    for (name, sensors) in cases {
        let cfg = scale.config(PolicyKind::Pid);
        let mut sim = Simulator::for_workload(cfg, &w);
        sim.set_sensors(sensors);
        let r = sim.run();
        t.row([
            name.to_string(),
            format!("{:.1}%", r.percent_of(&baseline)),
            format!("{:.3}%", 100.0 * r.emergency_fraction()),
            format!("{}/{}", r.engaged_samples, r.samples),
        ]);
    }
    println!("{}", t.render());
    println!("moderate noise mostly costs performance (the controller reacts to phantom");
    println!("overshoots); losing the hot structure's sensor is catastrophic — the controller");
    println!("cannot protect what it cannot see, which is why the paper assumes a sensor per");
    println!("block and flags placement as future work.");
}
