//! Exports machine-readable CSVs of the main experiments into `results/`:
//! `characterization.csv` (the Table 4-8 source data) and `dtm.csv` (the
//! Section 7 policy comparison), for external plotting.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize_suite, compare_policies_suite, ExperimentScale};
use tdtm_core::report::reports_to_csv;
use tdtm_dtm::PolicyKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    banner("CSV export", scale);
    std::fs::create_dir_all("results")?;

    let characterization = characterize_suite(scale);
    std::fs::write("results/characterization.csv", reports_to_csv(&characterization))?;
    println!("wrote results/characterization.csv ({} rows)", characterization.len());

    let policies = [
        PolicyKind::Toggle1,
        PolicyKind::Toggle2,
        PolicyKind::Manual,
        PolicyKind::P,
        PolicyKind::Pi,
        PolicyKind::Pid,
    ];
    let rows = compare_policies_suite(scale, &policies);
    let mut all = Vec::new();
    for row in rows {
        all.push(row.baseline);
        all.extend(row.runs);
    }
    std::fs::write("results/dtm.csv", reports_to_csv(&all))?;
    println!("wrote results/dtm.csv ({} rows)", all.len());
    Ok(())
}
