//! Regenerates Table 3: per-structure area, peak power, thermal R and C,
//! and the RC time constant — plus the chip-wide row for comparison.

use tdtm_core::report::{f, TextTable};
use tdtm_power::{PowerConfig, PowerModel};
use tdtm_thermal::block_model::table3_blocks;
use tdtm_thermal::chipwide::ChipWideParams;
use tdtm_uarch::activity::THERMAL_BLOCKS;
use tdtm_uarch::CoreConfig;

fn main() {
    println!("== Table 3: per-structure area and thermal-R / thermal-C estimates ==\n");
    let core = CoreConfig::alpha21264_like();
    let power = PowerModel::new(&PowerConfig::default(), &core);
    let blocks = table3_blocks();

    let mut t = TextTable::new(["structure", "area (m^2)", "peak power (W)", "R (K/W)", "C (J/K)", "RC (us)"]);
    for (params, hw) in blocks.iter().zip(THERMAL_BLOCKS) {
        t.row([
            params.name.clone(),
            format!("{:.1e}", params.area),
            f(power.peak(hw), 1),
            f(params.r, 2),
            format!("{:.1e}", params.c),
            f(params.time_constant() * 1e6, 0),
        ]);
    }
    let chip = ChipWideParams::paper_defaults();
    t.row([
        "chip (with heatsink)".to_string(),
        "3.1e-4".to_string(),
        f(power.chip_peak(), 1),
        f(chip.r_total(), 2),
        f(chip.c_sink, 0),
        format!("{:.1e}", chip.dominant_time_constant() * 1e6),
    ]);
    println!("{}", t.render());
    println!(
        "block time constants are tens of microseconds; the chip+heatsink constant is ~{:.0} s:",
        chip.dominant_time_constant()
    );
    println!("localized heating is orders of magnitude faster than chip-wide heating (Section 4.3).");
}
