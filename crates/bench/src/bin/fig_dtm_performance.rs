//! Regenerates the Section 7 headline results: performance (as % of the
//! non-DTM IPC) and emergency elimination for each DTM policy, and the
//! paper's summary claim — the control-theoretic policies cut the
//! performance loss of DTM by roughly 65% relative to toggle1 while never
//! entering thermal emergency.

use tdtm_bench::banner;
use tdtm_core::experiments::{compare_policies_grid, group_policy_comparisons, ExperimentScale};
use tdtm_core::report::{grid_summary, TextTable};
use tdtm_dtm::PolicyKind;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Section 7: DTM policy comparison", scale);

    let policies = [
        PolicyKind::Toggle1,
        PolicyKind::Toggle2,
        PolicyKind::Manual,
        PolicyKind::P,
        PolicyKind::Pi,
        PolicyKind::Pid,
    ];
    // The whole (18 benchmarks × 7 policies) grid shards across
    // TDTM_THREADS workers; the reports are thread-count independent.
    let results = compare_policies_grid(scale, &policies).run();
    let rows = group_policy_comparisons(&results);

    let mut header = vec!["benchmark".to_string(), "base emerg".to_string()];
    for p in policies {
        header.push(format!("{p} perf"));
        header.push(format!("{p} emerg"));
    }
    let mut t = TextTable::new(header);
    let mut sum_loss = vec![0.0f64; policies.len()];
    let mut any_emergency = vec![false; policies.len()];
    for row in &rows {
        let mut cells = vec![
            row.bench.clone(),
            format!("{:.2}%", 100.0 * row.baseline.emergency_fraction()),
        ];
        for (i, run) in row.runs.iter().enumerate() {
            let pct = run.percent_of(&row.baseline);
            sum_loss[i] += 100.0 - pct;
            any_emergency[i] |= run.emergency_cycles > 0;
            cells.push(format!("{pct:.1}%"));
            cells.push(format!("{:.2}%", 100.0 * run.emergency_fraction()));
        }
        t.row(cells);
    }
    println!("{}", t.render());

    println!("-- summary (mean performance loss across all 18 benchmarks) --\n");
    let mut s = TextTable::new(["policy", "mean perf loss", "eliminates emergencies"]);
    let mut toggle1_loss = f64::NAN;
    for (i, p) in policies.iter().enumerate() {
        let loss = sum_loss[i] / rows.len() as f64;
        if *p == PolicyKind::Toggle1 {
            toggle1_loss = loss;
        }
        s.row([
            p.name().to_string(),
            format!("{loss:.2}%"),
            if any_emergency[i] { "NO".to_string() } else { "yes".to_string() },
        ]);
    }
    println!("{}", s.render());

    for p in [PolicyKind::Pi, PolicyKind::Pid] {
        let i = policies.iter().position(|&x| x == p).expect("in list");
        let loss = sum_loss[i] / rows.len() as f64;
        let savings = 100.0 * (1.0 - loss / toggle1_loss);
        println!(
            "{p}: cuts DTM performance loss by {savings:.0}% vs toggle1 (paper reports ~65%), \
             with the trigger only 0.2 K below the emergency threshold"
        );
    }

    println!("\n-- engine observability --\n");
    println!("{}", grid_summary(&results));
}
