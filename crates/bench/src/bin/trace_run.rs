//! `trace_run` — dump an annotated in-run telemetry trace for any
//! workload×policy cell.
//!
//! Runs one simulation with full telemetry (event ring + metrics registry
//! + phase timers) and prints the run summary, the host-time phase
//! profile, the merged metrics, and the retained event trace as JSONL
//! (or CSV with `--csv`). This is the interactive complement to the
//! figure binaries: where they aggregate, this answers "what did the
//! controller do at cycle 41 000?".
//!
//! With `--cores N` (and optionally `--supervisor`) the same trace runs
//! on the lockstep multicore chip: every event carries its core id, the
//! chip-level supervisor-cap and park decisions land in a separate chip
//! ring, and the dump interleaves chip events ahead of the per-core
//! rings.
//!
//! ```text
//! cargo run -p tdtm-bench --release --bin trace_run -- gcc pid
//! cargo run -p tdtm-bench --release --bin trace_run -- art hierarchical --stride 100 --csv
//! cargo run -p tdtm-bench --release --bin trace_run -- gcc pid --cores 4 --supervisor
//! ```

use tdtm_core::experiments::ExperimentScale;
use tdtm_core::{MulticoreSim, Simulator};
use tdtm_dtm::{PolicyKind, SupervisorConfig};
use tdtm_telemetry::{EventTrace, RegistrySnapshot, TelemetryConfig};
use tdtm_workloads::{by_name, suite};

struct Args {
    workload: String,
    policy: PolicyKind,
    stride: u64,
    capacity: usize,
    csv: bool,
    insts: Option<u64>,
    cores: usize,
    supervisor: bool,
}

const USAGE: &str = "usage: trace_run <workload> <policy> [--stride N] [--capacity N] [--csv] [--insts N]
                 [--cores N] [--supervisor]

  <workload>   a suite benchmark name (see below)
  <policy>     a DTM policy name (see below)
  --stride N   record dense events (controller samples, sensor reads)
               every N-th DTM sample only (default 1: every sample)
  --capacity N event ring capacity; oldest events drop past it (default 65536)
  --csv        dump events as CSV instead of JSONL
  --insts N    committed-instruction budget (default: TDTM_INSTS or 1000000)
  --cores N    run on the N-core lockstep chip instead of the single-core
               simulator (default 1: single-core path)
  --supervisor attach the default chip-level supervisor (implies the chip
               path even at --cores 1)";

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut stride = 1u64;
    let mut capacity = 65_536usize;
    let mut csv = false;
    let mut insts = None;
    let mut cores = 1usize;
    let mut supervisor = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--stride" => {
                stride = value("--stride")?.parse().map_err(|e| format!("--stride: {e}"))?;
                if stride == 0 {
                    return Err("--stride must be nonzero".into());
                }
            }
            "--capacity" => {
                capacity = value("--capacity")?.parse().map_err(|e| format!("--capacity: {e}"))?;
                if capacity == 0 {
                    return Err("--capacity must be nonzero".into());
                }
            }
            "--csv" => csv = true,
            "--insts" => {
                insts = Some(value("--insts")?.parse().map_err(|e| format!("--insts: {e}"))?);
            }
            "--cores" => {
                cores = value("--cores")?.parse().map_err(|e| format!("--cores: {e}"))?;
                if cores == 0 {
                    return Err("--cores must be nonzero".into());
                }
            }
            "--supervisor" => supervisor = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let [workload, policy_name] = positional.as_slice() else {
        return Err("expected exactly <workload> and <policy>".into());
    };
    let policy = PolicyKind::parse(policy_name)
        .ok_or_else(|| format!("unknown policy `{policy_name}`"))?;
    Ok(Args { workload: workload.clone(), policy, stride, capacity, csv, insts, cores, supervisor })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}\n");
            eprintln!(
                "workloads: {}",
                suite().iter().map(|w| w.name).collect::<Vec<_>>().join(" ")
            );
            eprintln!(
                "policies:  {}",
                PolicyKind::all().map(PolicyKind::name).join(" ")
            );
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };
    let Some(workload) = by_name(&args.workload) else {
        eprintln!(
            "error: unknown workload `{}`; choose one of: {}",
            args.workload,
            suite().iter().map(|w| w.name).collect::<Vec<_>>().join(" ")
        );
        std::process::exit(2);
    };

    let mut scale = ExperimentScale::from_env();
    if let Some(n) = args.insts {
        scale.insts = n;
    }
    let mut cfg = scale.config(args.policy);
    cfg.chip.cores = args.cores;
    if args.supervisor {
        cfg.chip.supervisor = Some(SupervisorConfig::default());
    }
    let chip_path = cfg.chip.cores > 1 || cfg.chip.supervisor.is_some();
    eprintln!(
        "== trace_run: {} / {} ({} insts, event ring {} deep, stride {}{}) ==",
        workload.name,
        args.policy.name(),
        scale.insts,
        args.capacity,
        args.stride,
        if chip_path {
            format!(
                ", {} core(s){}",
                args.cores,
                if args.supervisor { " + supervisor" } else { "" }
            )
        } else {
            String::new()
        }
    );
    let tcfg = TelemetryConfig::full(args.capacity, args.stride);

    if chip_path {
        let mut sim = MulticoreSim::for_workload(cfg.clone(), &workload);
        sim.enable_telemetry(&tcfg);
        let report = sim.run();
        let telemetry = sim.take_telemetry().expect("telemetry was enabled");

        for (k, core) in report.cores.iter().enumerate() {
            eprintln!(
                "core {k}: {} cycles, {} committed (IPC {:.3}), emergency {:.2}%, stress {:.2}%",
                core.total_cycles,
                core.committed,
                core.ipc,
                100.0 * core.emergency_fraction(),
                100.0 * core.stress_fraction()
            );
            if let Some(hot) = core.hottest_block() {
                eprintln!("        hottest block: {} (max {:.2} C)", hot.name, hot.max_temp);
            }
        }
        let (hot_core, hot_block, hot_temp) = report.hottest();
        eprintln!(
            "chip: {} lockstep cycles, peak {:.2} C ({} on core {hot_core}), {} supervisor interventions",
            report.chip_cycles,
            hot_temp,
            report.cores[hot_core].blocks[hot_block].name,
            report.supervisor_interventions
        );

        for (k, core) in telemetry.cores.iter().enumerate() {
            if let Some(phases) = &core.phases {
                eprintln!("\ncore {k} host-time phase profile (not deterministic):");
                eprint!("{}", phases.render_table());
            }
        }
        if let Some(snap) = telemetry.merged_metrics() {
            print_metrics(&snap);
        }

        let mut traces: Vec<(String, &EventTrace)> = Vec::new();
        if let Some(chip_events) = &telemetry.chip_events {
            traces.push(("chip".into(), chip_events));
        }
        for (k, core) in telemetry.cores.iter().enumerate() {
            if let Some(events) = &core.events {
                traces.push((format!("core {k}"), events));
            }
        }
        dump_events(&traces, args.csv, args.capacity);

        // Instrumentation suppresses idle-gap skipping in the run above;
        // replay the cell uninstrumented with window logging to show what
        // the fast path fast-forwards (logging is off by default, so
        // plain runs are never perturbed by this feature).
        let mut replay = MulticoreSim::for_workload(cfg, &workload);
        replay.record_skip_windows();
        let replay_report = replay.run();
        dump_skip_windows(replay.skip_windows(), replay_report.chip_cycles);
    } else {
        let mut sim = Simulator::for_workload(cfg.clone(), &workload);
        sim.enable_telemetry(&tcfg);
        let report = sim.run();
        let telemetry = sim.take_telemetry().expect("telemetry was enabled");

        eprintln!(
            "run: {} cycles, {} committed (IPC {:.3}), avg power {:.1} W, avg chip temp {:.1} C",
            report.total_cycles, report.committed, report.ipc, report.avg_power, report.avg_chip_temp
        );
        eprintln!(
            "     emergency {:.2}%, stress {:.2}%, {} DTM samples, {} engaged",
            100.0 * report.emergency_fraction(),
            100.0 * report.stress_fraction(),
            report.samples,
            report.engaged_samples
        );
        if let Some(hot) = report.hottest_block() {
            eprintln!("     hottest block: {} (max {:.2} C, avg {:.2} C)", hot.name, hot.max_temp, hot.avg_temp);
        }

        if let Some(phases) = &telemetry.phases {
            eprintln!("\nhost-time phase profile (not deterministic):");
            eprint!("{}", phases.render_table());
        }
        if let Some(metrics) = &telemetry.metrics {
            print_metrics(&metrics.snapshot());
        }
        if let Some(events) = &telemetry.events {
            dump_events(&[("events".into(), events)], args.csv, args.capacity);
        }

        // Telemetry routes through the reference loop, which never
        // skips; replay the cell uninstrumented with window logging to
        // show what the fast path fast-forwards (logging is off by
        // default, so plain runs are never perturbed by this feature).
        let mut replay = Simulator::for_workload(cfg, &workload);
        replay.record_skip_windows();
        let replay_report = replay.run();
        dump_skip_windows(replay.skip_windows(), replay_report.total_cycles);
    }
}

/// Annotates the idle windows the uninstrumented fast path
/// fast-forwarded: start/end cycle and the reason (gated fetch, drained
/// pipeline, V/f resync, parked chip neighbors). Stderr like the other
/// annotations, so event dumps redirect cleanly.
fn dump_skip_windows(windows: &[tdtm_core::SkipWindow], total_cycles: u64) {
    let skipped: u64 = windows.iter().map(tdtm_core::SkipWindow::len).sum();
    eprintln!(
        "\nskipped idle windows (uninstrumented replay): {} windows, {} of {} cycles ({:.1}%)",
        windows.len(),
        skipped,
        total_cycles,
        100.0 * skipped as f64 / total_cycles.max(1) as f64
    );
    const SHOWN: usize = 32;
    for w in windows.iter().take(SHOWN) {
        eprintln!(
            "  [{:>10}, {:>10})  {:>6} cycles  {}",
            w.start,
            w.end,
            w.len(),
            match w.reason {
                tdtm_core::SkipReason::Gated => "gated",
                tdtm_core::SkipReason::Drained => "drained",
                tdtm_core::SkipReason::Resync => "resync",
                tdtm_core::SkipReason::Parked => "parked",
            }
        );
    }
    if windows.len() > SHOWN {
        eprintln!("  ... {} more windows", windows.len() - SHOWN);
    }
}

fn print_metrics(snap: &RegistrySnapshot) {
    eprintln!("\nmetrics:");
    for &(name, value) in &snap.counters {
        eprintln!("  {name:<18} {value}");
    }
    for (name, hist) in &snap.histograms {
        let q = |p: f64| hist.quantile(p).map_or_else(|| "-".into(), |v| format!("{v:.2}"));
        eprintln!(
            "  {name:<18} n={} p50={} p99={} under={} over={}",
            hist.count(),
            q(0.5),
            q(0.99),
            hist.underflow,
            hist.overflow
        );
    }
}

/// Dumps one or more event rings to stdout (annotations per ring stay on
/// stderr so the dump can be redirected to a file). CSV gets a single
/// header row even across several rings — every event row carries its
/// core id, so concatenation loses nothing.
fn dump_events(traces: &[(String, &EventTrace)], csv: bool, capacity: usize) {
    if csv && !traces.is_empty() {
        println!("{}", EventTrace::CSV_HEADER);
    }
    for (label, events) in traces {
        eprintln!(
            "\n{label}: {} events retained, {} dropped (oldest-first; ring capacity {})",
            events.recorded().min(capacity as u64),
            events.dropped(),
            capacity
        );
        if csv {
            for e in events.iter() {
                println!("{}", e.to_csv_row());
            }
        } else {
            print!("{}", events.to_jsonl());
        }
    }
}
