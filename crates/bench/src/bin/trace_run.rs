//! `trace_run` — dump an annotated in-run telemetry trace for any
//! workload×policy cell.
//!
//! Runs one simulation with full telemetry (event ring + metrics registry
//! + phase timers) and prints the run summary, the host-time phase
//! profile, the merged metrics, and the retained event trace as JSONL
//! (or CSV with `--csv`). This is the interactive complement to the
//! figure binaries: where they aggregate, this answers "what did the
//! controller do at cycle 41 000?".
//!
//! ```text
//! cargo run -p tdtm-bench --release --bin trace_run -- gcc pid
//! cargo run -p tdtm-bench --release --bin trace_run -- art hierarchical --stride 100 --csv
//! ```

use tdtm_core::experiments::ExperimentScale;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_telemetry::TelemetryConfig;
use tdtm_workloads::{by_name, suite};

struct Args {
    workload: String,
    policy: PolicyKind,
    stride: u64,
    capacity: usize,
    csv: bool,
    insts: Option<u64>,
}

const USAGE: &str = "usage: trace_run <workload> <policy> [--stride N] [--capacity N] [--csv] [--insts N]

  <workload>   a suite benchmark name (see below)
  <policy>     a DTM policy name (see below)
  --stride N   record dense events (controller samples, sensor reads)
               every N-th DTM sample only (default 1: every sample)
  --capacity N event ring capacity; oldest events drop past it (default 65536)
  --csv        dump events as CSV instead of JSONL
  --insts N    committed-instruction budget (default: TDTM_INSTS or 1000000)";

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut stride = 1u64;
    let mut capacity = 65_536usize;
    let mut csv = false;
    let mut insts = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--stride" => {
                stride = value("--stride")?.parse().map_err(|e| format!("--stride: {e}"))?;
                if stride == 0 {
                    return Err("--stride must be nonzero".into());
                }
            }
            "--capacity" => {
                capacity = value("--capacity")?.parse().map_err(|e| format!("--capacity: {e}"))?;
                if capacity == 0 {
                    return Err("--capacity must be nonzero".into());
                }
            }
            "--csv" => csv = true,
            "--insts" => {
                insts = Some(value("--insts")?.parse().map_err(|e| format!("--insts: {e}"))?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let [workload, policy_name] = positional.as_slice() else {
        return Err("expected exactly <workload> and <policy>".into());
    };
    let policy = PolicyKind::parse(policy_name)
        .ok_or_else(|| format!("unknown policy `{policy_name}`"))?;
    Ok(Args { workload: workload.clone(), policy, stride, capacity, csv, insts })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}\n");
            eprintln!(
                "workloads: {}",
                suite().iter().map(|w| w.name).collect::<Vec<_>>().join(" ")
            );
            eprintln!(
                "policies:  {}",
                PolicyKind::all().map(PolicyKind::name).join(" ")
            );
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };
    let Some(workload) = by_name(&args.workload) else {
        eprintln!(
            "error: unknown workload `{}`; choose one of: {}",
            args.workload,
            suite().iter().map(|w| w.name).collect::<Vec<_>>().join(" ")
        );
        std::process::exit(2);
    };

    let mut scale = ExperimentScale::from_env();
    if let Some(n) = args.insts {
        scale.insts = n;
    }
    let cfg = scale.config(args.policy);
    eprintln!(
        "== trace_run: {} / {} ({} insts, event ring {} deep, stride {}) ==",
        workload.name,
        args.policy.name(),
        scale.insts,
        args.capacity,
        args.stride
    );

    let mut sim = Simulator::for_workload(cfg, &workload);
    sim.enable_telemetry(&TelemetryConfig::full(args.capacity, args.stride));
    let report = sim.run();
    let telemetry = sim.take_telemetry().expect("telemetry was enabled");

    eprintln!(
        "run: {} cycles, {} committed (IPC {:.3}), avg power {:.1} W, avg chip temp {:.1} C",
        report.total_cycles, report.committed, report.ipc, report.avg_power, report.avg_chip_temp
    );
    eprintln!(
        "     emergency {:.2}%, stress {:.2}%, {} DTM samples, {} engaged",
        100.0 * report.emergency_fraction(),
        100.0 * report.stress_fraction(),
        report.samples,
        report.engaged_samples
    );
    if let Some(hot) = report.hottest_block() {
        eprintln!("     hottest block: {} (max {:.2} C, avg {:.2} C)", hot.name, hot.max_temp, hot.avg_temp);
    }

    if let Some(phases) = &telemetry.phases {
        eprintln!("\nhost-time phase profile (not deterministic):");
        eprint!("{}", phases.render_table());
    }
    if let Some(metrics) = &telemetry.metrics {
        let snap = metrics.snapshot();
        eprintln!("\nmetrics:");
        for &(name, value) in &snap.counters {
            eprintln!("  {name:<18} {value}");
        }
        for (name, hist) in &snap.histograms {
            let q = |p: f64| {
                hist.quantile(p).map_or_else(|| "-".into(), |v| format!("{v:.2}"))
            };
            eprintln!(
                "  {name:<18} n={} p50={} p99={} under={} over={}",
                hist.count(),
                q(0.5),
                q(0.99),
                hist.underflow,
                hist.overflow
            );
        }
    }

    if let Some(events) = &telemetry.events {
        eprintln!(
            "\nevents: {} retained, {} dropped (oldest-first; ring capacity {})",
            events.recorded().min(args.capacity as u64),
            events.dropped(),
            args.capacity
        );
        // The event dump goes to stdout so it can be redirected to a file
        // while the annotations above stay on the terminal.
        if args.csv {
            print!("{}", events.to_csv());
        } else {
            print!("{}", events.to_jsonl());
        }
    }
}
