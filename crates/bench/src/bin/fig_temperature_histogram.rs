//! Temporal hot-spot distribution (Section 4.2: hot spots "have a
//! temporal distribution due to changing program behavior and the time
//! constants implied by the thermal mass"): a text histogram of the
//! hottest-block temperature across the run for one benchmark from each
//! thermal category.

use tdtm_bench::banner;
use tdtm_core::experiments::ExperimentScale;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Section 4.2: temporal distribution of the hottest block (no DTM)", scale);

    let lo = 103.0f64;
    let hi = 114.0f64;
    let bins = 22usize;
    let width = (hi - lo) / bins as f64;

    for bench in ["apsi", "mesa", "gzip", "art", "twolf"] {
        let w = by_name(bench).expect("suite");
        let mut sim = Simulator::for_workload(scale.config(PolicyKind::None), &w);
        sim.record_trace(1_000);
        let _ = sim.run();
        let trace = sim.trace().expect("recorded");

        let mut hist = vec![0u32; bins];
        for temps in &trace.temperatures {
            let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let bin = (((hottest - lo) / width) as usize).min(bins - 1);
            hist[bin] += 1;
        }
        let peak = *hist.iter().max().unwrap_or(&1);

        println!("{bench} ({})", w.category);
        for (i, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let t0 = lo + i as f64 * width;
            let bar = "#".repeat((48 * count / peak.max(1)) as usize);
            let marker = if t0 >= 111.0 {
                " <- EMERGENCY"
            } else if t0 >= 110.0 {
                " <- stress"
            } else {
                ""
            };
            println!("  {:6.1}-{:5.1} C |{bar} {count}{marker}", t0, t0 + width);
        }
        println!();
    }
    println!("steady extremes (apsi) pile up at one hot operating point; bursty art is");
    println!("bimodal (hot bursts vs cool phases); the high category (mesa) sits wholly in");
    println!("the stress band without crossing it; cool programs never leave the bottom bins.");
}
