//! Conditional-clocking ablation: how Wattch's cc0-cc3 gating styles
//! change the power/thermal picture. The paper (like Wattch's realistic
//! configuration) assumes cc3: idle structures still burn ~10% of peak.

use tdtm_bench::banner;
use tdtm_core::experiments::ExperimentScale;
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_power::ClockGating;
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Ablation: conditional clocking style (no DTM)", scale);

    let mut t = TextTable::new([
        "benchmark",
        "gating",
        "avg power (W)",
        "peak cycle (W)",
        "hottest maxT (C)",
        "emergency %",
    ]);
    for bench in ["gcc", "crafty", "vpr"] {
        let w = by_name(bench).expect("suite");
        for (style, name) in [
            (ClockGating::Cc0, "cc0"),
            (ClockGating::Cc1, "cc1"),
            (ClockGating::Cc2, "cc2"),
            (ClockGating::Cc3, "cc3"),
        ] {
            let mut cfg = scale.config(PolicyKind::None);
            cfg.power.gating = style;
            let mut sim = Simulator::for_workload(cfg, &w);
            let r = sim.run();
            t.row([
                bench.to_string(),
                name.to_string(),
                format!("{:.1}", r.avg_power),
                format!("{:.1}", r.max_power),
                format!("{:.2}", r.hottest_block().expect("blocks tracked").max_temp),
                format!("{:.2}%", 100.0 * r.emergency_fraction()),
            ]);
        }
    }
    println!("{}", t.render());
    println!("cc0 melts everything (no gating); cc2 is the idealized floor; cc3 (the paper's");
    println!("assumption) sits between them — gating style shifts the absolute thermal");
    println!("operating point, which is why the DTM thresholds must be calibrated against it.");
}
