//! Regenerates the Section 7 setpoint-sensitivity experiment: PI and PID
//! at the 110.8 C setpoint (0.2 K below emergency) versus the lower
//! 110.0 C setpoint the paper also tests.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize, ExperimentScale};
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_workloads::suite;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Section 7: setpoint sensitivity (PI/PID at 110.8 C vs 110.0 C)", scale);

    let mut t = TextTable::new([
        "benchmark",
        "PI@110.8",
        "PI@110.0",
        "PID@110.8",
        "PID@110.0",
        "emergencies",
    ]);
    let mut sums = [0.0f64; 4];
    let mut n = 0usize;
    for w in suite() {
        let baseline = characterize(&w, scale);
        let mut cells = vec![w.name.to_string()];
        let mut any_emerg = false;
        for (i, (policy, low)) in [
            (PolicyKind::Pi, false),
            (PolicyKind::Pi, true),
            (PolicyKind::Pid, false),
            (PolicyKind::Pid, true),
        ]
        .into_iter()
        .enumerate()
        {
            let mut cfg = scale.config(policy);
            if low {
                cfg.dtm = cfg.dtm.with_low_setpoint();
            }
            let mut sim = Simulator::for_workload(cfg, &w);
            let r = sim.run();
            let pct = r.percent_of(&baseline);
            sums[i] += pct;
            any_emerg |= r.emergency_cycles > 0;
            cells.push(format!("{pct:.1}%"));
        }
        cells.push(if any_emerg { "SOME".into() } else { "none".to_string() });
        t.row(cells);
        n += 1;
    }
    println!("{}", t.render());
    println!(
        "means: PI@110.8 {:.1}%  PI@110.0 {:.1}%  PID@110.8 {:.1}%  PID@110.0 {:.1}%",
        sums[0] / n as f64,
        sums[1] / n as f64,
        sums[2] / n as f64,
        sums[3] / n as f64
    );
    println!("the lower setpoint trades performance for margin; the robust controllers keep");
    println!("emergencies at zero either way (Section 7's finding).");
}
