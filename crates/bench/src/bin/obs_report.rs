//! `obs_report` — render a run-comparison dashboard from grid streams.
//!
//! Consumes one or two JSONL cell streams (as written by
//! `ExperimentGrid::run_streaming` through a `JsonlSink`) and emits a
//! markdown dashboard — per-cell wall time, throughput, emergency counts,
//! the hottest-block distribution, and, with a baseline stream, A-vs-B
//! deltas per matched cell. `--csv` switches to a machine-readable table.
//!
//! ```text
//! cargo run -p tdtm-bench --release --bin obs_report -- run.jsonl
//! cargo run -p tdtm-bench --release --bin obs_report -- run.jsonl baseline.jsonl
//! cargo run -p tdtm-bench --release --bin obs_report -- --demo-grid /tmp/demo.jsonl
//! ```
//!
//! `--demo-grid PATH` first runs a small 2×2 grid (gcc, art × PID,
//! stability-aware) with streaming enabled, writing the stream to PATH,
//! then reports on it — a self-contained smoke of the whole
//! collector → sink → reporter pipeline.

use tdtm_core::experiments::ExperimentScale;
use tdtm_core::report::{obs_dashboard, obs_dashboard_csv};
use tdtm_core::ExperimentGrid;
use tdtm_dtm::PolicyKind;
use tdtm_telemetry::{CellRecord, JsonlSink, TelemetryConfig};
use tdtm_workloads::by_name;

struct Args {
    stream: Option<String>,
    baseline: Option<String>,
    csv: bool,
    demo_grid: Option<String>,
    demo_hot: bool,
    threads: usize,
}

const USAGE: &str = "usage: obs_report [<stream.jsonl>] [<baseline.jsonl>] [--csv] [--demo-grid PATH] [--threads N]

  <stream.jsonl>    primary cell stream (run A)
  <baseline.jsonl>  optional baseline stream (run B); adds an A-vs-B section
  --csv             emit a CSV table instead of the markdown dashboard
  --demo-grid PATH  run a quick 2x2 grid (gcc, art x pid, stability-aware)
                    with streaming into PATH, then report on that stream;
                    a positional stream is not needed in this mode
  --demo-hot        with --demo-grid: run the grid against a 107 C heatsink
                    (cell labels stay comparable to a nominal demo stream,
                    so the two make a natural A-vs-B pair)
  --threads N       worker threads for --demo-grid (default 1)";

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut csv = false;
    let mut demo_grid = None;
    let mut demo_hot = false;
    let mut threads = 1usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--csv" => csv = true,
            "--demo-grid" => demo_grid = Some(value("--demo-grid")?),
            "--demo-hot" => demo_hot = true,
            "--threads" => {
                threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be nonzero".into());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let (stream, baseline) = match positional.as_slice() {
        [] => (None, None),
        [a] => (Some(a.clone()), None),
        [a, b] => (Some(a.clone()), Some(b.clone())),
        _ => return Err("expected at most <stream.jsonl> and <baseline.jsonl>".into()),
    };
    if stream.is_none() && demo_grid.is_none() {
        return Err("expected a <stream.jsonl> (or --demo-grid PATH)".into());
    }
    if demo_hot && demo_grid.is_none() {
        return Err("--demo-hot only makes sense with --demo-grid".into());
    }
    Ok(Args { stream, baseline, csv, demo_grid, demo_hot, threads })
}

fn load_stream(path: &str) -> Vec<CellRecord> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match CellRecord::parse_jsonl(&text) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn run_demo_grid(path: &str, hot: bool, threads: usize) {
    let mut grid = ExperimentGrid::new(ExperimentScale::quick())
        .policies(&[PolicyKind::Pid, PolicyKind::StabilityAware]);
    for name in ["gcc", "art"] {
        grid = grid.workload(by_name(name).expect("suite workload"));
    }
    if hot {
        // Keep the variant named `base` so cell labels still match a
        // nominal demo stream in the A-vs-B section.
        grid = grid.variant("base", |cfg| cfg.heatsink_temp = 107.0);
    }
    eprintln!(
        "== obs_report --demo-grid: {} cells{}, {} thread(s), streaming to {path} ==",
        grid.len(),
        if hot { " (hot heatsink)" } else { "" },
        threads
    );
    let mut sink = match JsonlSink::create(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot create {path}: {e}");
            std::process::exit(2);
        }
    };
    let results = grid.run_streaming(threads, &TelemetryConfig::metrics_and_phases(), &mut sink);
    eprintln!(
        "   {} cells in {:.2}s ({:.1} cells/s)",
        results.runs.len(),
        results.wall_seconds,
        results.runs.len() as f64 / results.wall_seconds.max(1e-9)
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    if let Some(path) = &args.demo_grid {
        run_demo_grid(path, args.demo_hot, args.threads);
    }
    let primary = args
        .stream
        .clone()
        .or_else(|| args.demo_grid.clone())
        .expect("parse_args guarantees a stream");

    let a = load_stream(&primary);
    eprintln!("stream A: {} cells from {primary}", a.len());
    let b = args.baseline.as_deref().map(|p| {
        let records = load_stream(p);
        eprintln!("stream B: {} cells from {p}", records.len());
        records
    });

    if args.csv {
        print!("{}", obs_dashboard_csv(&a, b.as_deref()));
    } else {
        print!("{}", obs_dashboard(&a, b.as_deref()));
    }
}
