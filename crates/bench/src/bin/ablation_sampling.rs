//! Sampling-interval ablation. The paper samples every 1000 cycles and
//! notes "we could likely have used a longer sampling interval without
//! significantly affecting accuracy, since the thermal time constants are
//! on the order of tens to hundreds of microseconds"; it leaves
//! determining the best interval as future work. This sweep does it:
//! PID on the two hottest benchmarks across intervals from 250 to 32 K
//! cycles.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize, ExperimentScale};
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Ablation: DTM sampling interval (PID)", scale);

    let intervals = [250u64, 500, 1000, 2000, 4000, 8000, 16_000, 32_000];
    let mut t = TextTable::new([
        "benchmark",
        "interval (cyc)",
        "interval (us)",
        "perf vs base",
        "emergencies",
        "engaged samples",
    ]);
    for bench in ["gcc", "apsi"] {
        let w = by_name(bench).expect("suite");
        let baseline = characterize(&w, scale);
        for &interval in &intervals {
            let mut cfg = scale.config(PolicyKind::Pid);
            cfg.dtm.sample_interval = interval;
            // Policy delay is expressed in cycles; keep it consistent.
            cfg.dtm.policy_delay = cfg.dtm.policy_delay.max(interval);
            let mut sim = Simulator::for_workload(cfg, &w);
            let r = sim.run();
            t.row([
                bench.to_string(),
                interval.to_string(),
                format!("{:.2}", interval as f64 / 1.5e9 * 1e6),
                format!("{:.1}%", r.percent_of(&baseline)),
                format!("{:.3}%", 100.0 * r.emergency_fraction()),
                format!("{}/{}", r.engaged_samples, r.samples),
            ]);
        }
    }
    println!("{}", t.render());
    println!("the loop tolerates sampling out to a few thousand cycles (still well inside the");
    println!("84 us block time constant); very long intervals finally let overshoot through,");
    println!("confirming the paper's expectation and quantifying the margin.");
}
