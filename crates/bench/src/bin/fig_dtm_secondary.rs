//! The secondary DTM mechanisms (Section 2.1): fetch throttling,
//! speculation control, and voltage/frequency scaling — the techniques
//! Brooks & Martonosi found inferior to toggling — plus the hierarchical
//! toggling+V/f combination the paper sketches.

use tdtm_bench::banner;
use tdtm_core::experiments::{compare_policies, ExperimentScale};
use tdtm_core::report::TextTable;
use tdtm_dtm::PolicyKind;
use tdtm_workloads::suite;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Section 2.1: secondary DTM mechanisms", scale);

    let policies = [
        PolicyKind::Toggle1,
        PolicyKind::Throttle,
        PolicyKind::SpecControl,
        PolicyKind::VfScale,
        PolicyKind::Hierarchical,
        PolicyKind::Pid,
    ];

    let mut header = vec!["benchmark".to_string()];
    for p in policies {
        header.push(format!("{p} perf"));
        header.push(format!("{p} emerg"));
    }
    let mut t = TextTable::new(header);
    let mut sum_loss = vec![0.0f64; policies.len()];
    let mut fail = vec![0u32; policies.len()];
    let mut n = 0usize;
    for w in suite() {
        // The hot half of the suite is where mechanisms differ.
        if !matches!(
            w.category,
            tdtm_workloads::ThermalCategory::Extreme | tdtm_workloads::ThermalCategory::High
        ) {
            continue;
        }
        let cmp = compare_policies(&w, scale, &policies);
        let mut cells = vec![w.name.to_string()];
        for (i, run) in cmp.runs.iter().enumerate() {
            let pct = run.percent_of(&cmp.baseline);
            sum_loss[i] += 100.0 - pct;
            if run.emergency_cycles > 0 {
                fail[i] += 1;
            }
            cells.push(format!("{pct:.1}%"));
            cells.push(format!("{:.2}%", 100.0 * run.emergency_fraction()));
        }
        t.row(cells);
        n += 1;
    }
    println!("{}", t.render());

    let mut s = TextTable::new(["mechanism", "mean perf loss", "benchmarks with emergencies"]);
    for (i, p) in policies.iter().enumerate() {
        s.row([
            p.name().to_string(),
            format!("{:.2}%", sum_loss[i] / n as f64),
            fail[i].to_string(),
        ]);
    }
    println!("{}", s.render());
    println!("throttling and speculation control cannot reliably protect every hot spot (the");
    println!("paper's reason for rejecting them: they do not reduce accesses to all structures);");
    println!("V/f scaling protects but pays resynchronization and policy-delay overhead. The");
    println!("hierarchy keeps PID toggling's cost while holding V/f in reserve.");
}
