//! Regenerates Tables 9 and 10: how well boxcar power averages (the prior
//! work's temperature proxy) track the RC thermal model — missed
//! emergencies and false triggers, for per-structure proxies (Table 9)
//! and the chip-wide proxy with a 47 W trigger (Table 10), at 10 K- and
//! 500 K-cycle windows.

use tdtm_bench::banner;
use tdtm_core::experiments::{proxy_comparison_suite, ExperimentScale};
use tdtm_core::report::{grid_summary, TextTable};

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Tables 9 and 10: boxcar power proxies vs the RC thermal model", scale);

    let windows = [10_000usize, 500_000];
    let mut per_structure = TextTable::new([
        "benchmark",
        "window",
        "true emerg %",
        "missed %",
        "false trig %",
    ]);
    let mut chip_wide = TextTable::new([
        "benchmark",
        "window",
        "true emerg %",
        "missed %",
        "false trig %",
    ]);

    // The paper's 47 W chip-wide trigger sat just below its hottest
    // programs' average power. Our power model is calibrated to a higher
    // absolute scale (25-77 W averages), so the analogous operating point
    // is ~70 W; 47 W at our scale would simply be "always triggered".
    let chip_threshold_w = 70.0;
    // One engine cell per benchmark, sharded across TDTM_THREADS workers;
    // each cell's extra payload is its proxy scores.
    let results = proxy_comparison_suite(scale, &windows, &windows, chip_threshold_w);
    for run in &results.runs {
        let true_pct = 100.0 * run.report.emergency_fraction();
        for p in &run.extra {
            // Aggregate blocks for the per-structure proxy; the chip-wide
            // proxy has a single entry.
            let mut agg = tdtm_thermal::comparison::AgreementCounts::new();
            for (_, c) in &p.per_block {
                agg.merge(c);
            }
            let row = [
                run.bench.clone(),
                p.label.split_whitespace().last().unwrap_or("?").to_string(),
                format!("{true_pct:.2}%"),
                format!("{:.2}%", 100.0 * agg.miss_cycle_rate()),
                format!("{:.2}%", 100.0 * agg.false_trigger_rate()),
            ];
            if p.label.starts_with("structure") {
                per_structure.row(row);
            } else {
                chip_wide.row(row);
            }
        }
    }

    println!("-- Table 9: per-structure boxcar power proxy --\n");
    println!("{}", per_structure.render());
    println!("-- Table 10: chip-wide boxcar power proxy ({chip_threshold_w} W trigger; the analogue of the paper's 47 W at our power scale) --\n");
    println!("{}", chip_wide.render());
    println!("missed %: cycles the RC model says are emergencies that the proxy fails to flag,");
    println!("as a fraction of all (block-)cycles; false trig %: proxy triggers with no emergency.");

    println!("\n-- engine observability --\n");
    println!("{}", grid_summary(&results));
}
