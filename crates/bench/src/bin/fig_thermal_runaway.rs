//! Thermal-runaway extension study: temperature-dependent leakage closes
//! a positive feedback loop through the thermal-RC model. This binary
//! sweeps the leakage intensity, reports the analytic runaway boundary
//! per block, and shows that PID DTM holds the chip stable well past the
//! point where the uncontrolled chip diverges.

use tdtm_bench::banner;
use tdtm_core::experiments::ExperimentScale;
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_power::{LeakageModel, PowerConfig, PowerModel};
use tdtm_thermal::block_model::table3_blocks;
use tdtm_uarch::activity::THERMAL_BLOCKS;
use tdtm_uarch::CoreConfig;
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Extension: temperature-dependent leakage and thermal runaway", scale);

    let power = PowerModel::new(&PowerConfig::default(), &CoreConfig::alpha21264_like());
    let blocks = table3_blocks();

    println!("-- analytic runaway boundary per block (loop gain dP_leak/dT x R = 1) --\n");
    let mut t = TextTable::new(["block", "peak dyn (W)", "R (K/W)", "runaway T (C), f0=0.25", "f0=0.40"]);
    for (params, hw) in blocks.iter().zip(THERMAL_BLOCKS) {
        let fmt = |f0: f64| {
            let m = LeakageModel { base_fraction: f0, reference_temp: 85.0, doubling_interval: 10.0 };
            match m.runaway_temperature(power.peak(hw), params.r) {
                Some(tr) => format!("{tr:.1}"),
                None => "never".to_string(),
            }
        };
        t.row([
            params.name.clone(),
            format!("{:.1}", power.peak(hw)),
            format!("{:.2}", params.r),
            fmt(0.25),
            fmt(0.40),
        ]);
    }
    println!("{}", t.render());

    println!("-- simulated: gcc under increasing leakage, with and without PID --\n");
    let mut s = TextTable::new([
        "leakage f0",
        "no-DTM max T (C)",
        "no-DTM emerg %",
        "PID max T (C)",
        "PID emerg %",
    ]);
    let w = by_name("gcc").expect("suite");
    for f0 in [0.0, 0.05, 0.10, 0.15, 0.25] {
        let model = if f0 == 0.0 {
            None
        } else {
            Some(LeakageModel { base_fraction: f0, reference_temp: 85.0, doubling_interval: 10.0 })
        };
        let mut row = vec![format!("{f0:.2}")];
        for policy in [PolicyKind::None, PolicyKind::Pid] {
            let mut cfg = scale.config(policy);
            cfg.leakage = model;
            let mut sim = Simulator::for_workload(cfg, &w);
            let r = sim.run();
            let max_t = r.hottest_block().expect("blocks tracked").max_temp;
            row.push(if max_t > 200.0 { "RUNAWAY".to_string() } else { format!("{max_t:.2}") });
            row.push(format!("{:.2}%", 100.0 * r.emergency_fraction()));
        }
        s.row(row);
    }
    println!("{}", s.render());
    println!("small leakage is just extra plant gain — the PID loop absorbs it and still");
    println!("pins the hottest block at the setpoint (feedback's robustness to unmodeled");
    println!("dynamics, as the paper argues). But past the analytic runaway boundary the");
    println!("loop gain of leakage-through-R exceeds one below even the *idle* operating");
    println!("point: the chip diverges under any policy. DTM can keep a chip from crossing");
    println!("into runaway; only the package (R, heatsink temperature) sets where that");
    println!("boundary lies.");
}
