//! Dumps the synthetic benchmark suite: per-workload static statistics
//! and, with `--source <name>`, the full generated assembly of one
//! program. Useful for inspecting what the SPEC2000 stand-ins actually
//! execute.

use tdtm_core::report::TextTable;
use tdtm_isa::OpClass;
use tdtm_workloads::{by_name, suite};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--source" {
        match by_name(&args[2]) {
            Some(w) => {
                println!("# {} ({} category, {} warmup instructions)", w.name, w.category, w.warmup_insts);
                for (i, inst) in w.program().insts.iter().enumerate() {
                    println!("{:6}:  {}", i * 4 + 0x1000, inst);
                }
            }
            None => {
                eprintln!("unknown workload `{}`", args[2]);
                std::process::exit(1);
            }
        }
        return;
    }

    println!("== the 18 synthetic SPEC CPU2000 stand-ins ==\n");
    let mut t = TextTable::new([
        "benchmark",
        "category",
        "static insts",
        "data bytes",
        "warmup insts",
        "int%",
        "fp%",
        "mem%",
        "ctrl%",
    ]);
    for w in suite() {
        let insts = &w.program().insts;
        let n = insts.len() as f64;
        let frac = |pred: &dyn Fn(OpClass) -> bool| -> String {
            let c = insts.iter().filter(|i| pred(i.op.class())).count();
            format!("{:.0}%", 100.0 * c as f64 / n)
        };
        t.row([
            w.name.to_string(),
            w.category.to_string(),
            insts.len().to_string(),
            w.program().data_bytes().to_string(),
            w.warmup_insts.to_string(),
            frac(&|c| matches!(c, OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv)),
            frac(&|c| matches!(c, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)),
            frac(&|c| matches!(c, OpClass::Load | OpClass::Store)),
            frac(&|c| matches!(c, OpClass::Branch | OpClass::Jump)),
        ]);
    }
    println!("{}", t.render());
    println!("(static mix; dynamic behavior is in Table 4. Use --source <name> for assembly.)");
}
