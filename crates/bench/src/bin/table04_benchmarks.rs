//! Regenerates Table 4: average IPC, power, and temperature
//! characteristics per benchmark, plus the percentage of cycles spent in
//! thermal emergency (above 111 C) and in thermal stress (above 110 C),
//! with no thermal management.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize_suite, ExperimentScale};
use tdtm_core::report::{f, pct, TextTable};

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Table 4: benchmark characteristics (no DTM)", scale);

    let mut t = TextTable::new([
        "benchmark",
        "Avg. IPC",
        "Avg. pwr (W)",
        "Avg. temp (C)",
        "Above 111C",
        "Above 110C",
    ]);
    for r in characterize_suite(scale) {
        t.row([
            r.name.clone(),
            f(r.ipc, 2),
            f(r.avg_power, 1),
            f(r.avg_chip_temp, 1),
            pct(r.emergency_fraction()),
            pct(r.stress_fraction()),
        ]);
    }
    println!("{}", t.render());
    println!("Avg. temp uses the paper's convention: 27 C ambient + 0.34 K/W chip-wide R x avg power.");
    println!("Emergency/stress columns use per-structure RC temperatures with the heatsink at its");
    println!("operating point (103 C).");
}
