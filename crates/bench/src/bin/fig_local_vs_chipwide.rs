//! The Section 6 demonstration: localized heating is much faster than
//! chip-wide heating. Runs the bursty `art` stand-in with trace recording
//! while integrating a chip-wide (TEMPEST-style) model from the same
//! power series, then prints both trajectories and the emergency counts
//! the chip-wide view misses.

use tdtm_bench::banner;
use tdtm_core::engine::ExperimentGrid;
use tdtm_core::experiments::ExperimentScale;
use tdtm_core::report::{grid_summary, TextTable};
use tdtm_thermal::chipwide::{ChipWideModel, ChipWideParams};
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Section 6: localized vs chip-wide heating (art)", scale);

    let w = by_name("art").expect("art in suite");
    // A single-cell grid: `art` without DTM, stretched to at least 1.5M
    // instructions so the burst structure shows, with trace recording
    // attached through the engine's custom-driver hook.
    let grid = ExperimentGrid::new(scale)
        .workload(w)
        .variant("long", |cfg| cfg.max_insts = cfg.max_insts.max(1_500_000));
    let cfg = grid.cells()[0].config();
    let emergency = cfg.dtm.emergency;
    let cycle_time = cfg.cycle_time();
    let stride = 25_000u64;
    let results = grid.run_with(|cell| {
        let mut sim = cell.simulator();
        sim.record_trace(stride);
        let report = sim.run();
        let trace = sim.trace().expect("recorded").clone();
        (report, trace)
    });
    let run = &results.runs[0];
    let report = &run.report;
    let trace = &run.extra;

    // Integrate the chip-wide model against the recorded power series.
    let mut chip = ChipWideModel::new(ChipWideParams::paper_defaults(), 27.0);
    chip.set_temperatures(103.0, 95.0);
    let mut chip_series = Vec::with_capacity(trace.len());
    for &p in &trace.power {
        chip.step(p, stride as f64 * cycle_time);
        chip_series.push(chip.die_temperature());
    }

    // Print the trajectory of the hottest block vs the chip-wide die.
    let hot_idx = report
        .blocks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.max_temp.total_cmp(&b.1.max_temp))
        .map(|(i, _)| i)
        .expect("blocks");
    let hot_name = &report.blocks[hot_idx].name;
    let mut series = TextTable::new(["time (us)", "power (W)", &format!("{hot_name} (C)"), "chip die (C)"]);
    let step = (trace.len() / 24).max(1);
    for k in (0..trace.len()).step_by(step) {
        series.row([
            format!("{:.0}", trace.cycles[k] as f64 * cycle_time * 1e6),
            format!("{:.1}", trace.power[k]),
            format!("{:.2}", trace.temperatures[k][hot_idx]),
            format!("{:.3}", chip_series[k]),
        ]);
    }
    println!("{}", series.render());

    let mut t = TextTable::new(["structure", "avg T (C)", "max T (C)", "emergency cycles"]);
    for b in &report.blocks {
        t.row([
            b.name.clone(),
            format!("{:.2}", b.avg_temp),
            format!("{:.2}", b.max_temp),
            b.emergency_cycles.to_string(),
        ]);
    }
    let chip_max = chip_series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    t.row([
        "chip-wide model".to_string(),
        format!("{:.3}", chip_series.last().copied().unwrap_or(103.0)),
        format!("{:.3}", chip_max),
        (chip_series.iter().filter(|&&c| c > emergency).count()).to_string(),
    ]);
    println!("{}", t.render());

    println!(
        "the localized model sees {} emergency cycles ({:.1}% of time); the chip-wide die",
        report.emergency_cycles,
        100.0 * report.emergency_fraction()
    );
    println!(
        "moved only {:+.3} K across the whole run — every localized emergency is invisible",
        chip_max - 103.0
    );
    println!("at chip granularity (block tau ~84 us vs chip tau ~1 minute).");

    println!("\n-- engine observability --\n");
    println!("{}", grid_summary(&results));
}
