//! Validates the Section 4.3 model reduction (Figure 3B → 3C): builds
//! the full lumped network — per-block nodes, tangential inter-block
//! resistances, and a dynamic heatsink — and compares its transient
//! against the simplified per-block model the simulator uses.

use tdtm_core::report::TextTable;
use tdtm_thermal::block_model::{table3_blocks, BlockModel};
use tdtm_thermal::network::RcNetwork;
use tdtm_thermal::SiliconProperties;

fn main() {
    println!("== Figure 3: full lumped model vs simplified per-block model ==\n");
    let si = SiliconProperties::effective();
    let blocks = table3_blocks();
    let heatsink_temp = 103.0;

    // Full model: blocks connected normally to a large-but-finite
    // heatsink node, and tangentially to each other in a chain.
    let mut net = RcNetwork::new(27.0);
    let sink = net.add_node(350.0, heatsink_temp);
    net.connect_to_ambient(sink, 0.34);
    // Hold the heatsink near its operating point with a compensating
    // power injection (it would otherwise need minutes of simulation).
    net.set_power(sink, (heatsink_temp - 27.0) / 0.34);
    let nodes: Vec<_> = blocks
        .iter()
        .map(|b| {
            let n = net.add_node(b.c, heatsink_temp);
            net.connect(n, sink, b.r);
            n
        })
        .collect();
    for i in 1..nodes.len() {
        let r_tan = si.r_tangential_for_block(blocks[i].area).0;
        net.connect(nodes[i - 1], nodes[i], r_tan);
    }

    // Simplified model.
    let dt = 1e-7;
    let mut simple = BlockModel::new(blocks.clone(), heatsink_temp, dt);

    // A step of power: the int unit and regfile run hot, others idle-ish.
    let powers = [1.0, 2.0, 3.8, 1.0, 2.0, 7.2, 0.8];
    for (n, p) in nodes.iter().zip(powers) {
        net.set_power(*n, p);
    }

    let mut t = TextTable::new(["time (us)", "block", "full model (C)", "simplified (C)", "error (K)"]);
    let mut max_err = 0.0f64;
    let horizon = 400e-6;
    let steps = (horizon / dt) as usize;
    for k in 1..=steps {
        net.step(dt);
        simple.step(&powers);
        if k % (steps / 4) == 0 {
            for (i, b) in blocks.iter().enumerate() {
                let full = net.temperature(nodes[i]);
                let red = simple.temperatures()[i];
                max_err = max_err.max((full - red).abs());
                if i == 2 || i == 5 {
                    t.row([
                        format!("{:.0}", k as f64 * dt * 1e6),
                        b.name.clone(),
                        format!("{full:.3}"),
                        format!("{red:.3}"),
                        format!("{:+.3}", red - full),
                    ]);
                }
            }
        }
    }
    println!("{}", t.render());

    println!("max |error| across all blocks and sampled times: {max_err:.3} K");
    let r_tan = si.r_tangential_for_block(blocks[0].area).0;
    let r_nor = blocks[0].r;
    println!(
        "tangential R ({r_tan:.0} K/W) is {}x the normal R ({r_nor:.2} K/W): ignoring it (and the",
        (r_tan / r_nor) as u64
    );
    println!("heatsink's minute-scale dynamics) costs well under a kelvin over DTM horizons,");
    println!("which is the paper's justification for the simplified model of Figure 3C.");
}
