//! Regenerates Tables 7 and 8: percentage of cycles each structure spends
//! above the stress threshold (110 C, Table 7) and above the emergency
//! threshold (111 C, Table 8), with no thermal management.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize_suite, ExperimentScale};
use tdtm_core::report::TextTable;
use tdtm_core::RunReport;

fn print_table(title: &str, reports: &[RunReport], emergency: bool) {
    println!("-- {title} --\n");
    let block_names: Vec<String> = reports[0].blocks.iter().map(|b| b.name.clone()).collect();
    let mut header = vec!["benchmark".to_string()];
    header.extend(block_names);
    let mut t = TextTable::new(header);
    for r in reports {
        let mut row = vec![r.name.clone()];
        for b in &r.blocks {
            let cycles = if emergency { b.emergency_cycles } else { b.stress_cycles };
            row.push(format!("{:.2}%", 100.0 * cycles as f64 / r.cycles.max(1) as f64));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Tables 7 and 8: per-structure thermal stress breakdown (no DTM)", scale);
    let reports = characterize_suite(scale);
    print_table("Table 7: % of cycles above 110 C (thermal stress)", &reports, false);
    print_table("Table 8: % of cycles above 111 C (thermal emergency)", &reports, true);
}
