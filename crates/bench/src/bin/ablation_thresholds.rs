//! Threshold-sensitivity sweep via open-loop replay: record each
//! benchmark's power trace once, then replay it through the thermal model
//! against a range of emergency thresholds. Shows how the paper's
//! benchmark-category structure (Table 5) depends on where the 111 C line
//! sits — and demonstrates the ~1000x cheaper replay path.

use tdtm_bench::banner;
use tdtm_core::experiments::ExperimentScale;
use tdtm_core::replay::threshold_sweep;
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::PolicyKind;
use tdtm_workloads::suite;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Ablation: emergency-threshold sensitivity (open-loop replay)", scale);

    let thresholds = [109.0, 110.0, 111.0, 112.0, 113.0];
    let mut header = vec!["benchmark".to_string(), "max T (C)".to_string()];
    for th in thresholds {
        header.push(format!(">{th:.0}C"));
    }
    let mut t = TextTable::new(header);

    let record_start = std::time::Instant::now();
    let mut traces = Vec::new();
    for w in suite() {
        let cfg = scale.config(PolicyKind::None);
        let mut sim = Simulator::for_workload(cfg, &w);
        sim.record_power_trace(256);
        let _ = sim.run();
        traces.push((w.name, sim.power_trace().expect("recorded").clone()));
    }
    let record_time = record_start.elapsed();

    let cfg = scale.config(PolicyKind::None);
    let replay_start = std::time::Instant::now();
    for (name, trace) in &traces {
        let sweep = threshold_sweep(trace, &cfg.blocks, cfg.heatsink_temp, &thresholds, true);
        let mut row = vec![name.to_string(), format!("{:.2}", sweep[0].1.max_temp)];
        for (_, outcome) in &sweep {
            row.push(format!("{:.1}%", 100.0 * outcome.hot_fraction()));
        }
        t.row(row);
    }
    let replay_time = replay_start.elapsed();

    println!("{}", t.render());
    println!(
        "recording: {:.1} s of cycle-level simulation; the whole {}-threshold sweep replayed in {:.3} s",
        record_time.as_secs_f64(),
        thresholds.len(),
        replay_time.as_secs_f64()
    );
    println!("the category structure is robust for thresholds within ~1 K of the chosen");
    println!("111 C; pushing past 112.5 C leaves only the most extreme benchmarks visible,");
    println!("and below 110 C even the medium category lives in permanent 'emergency'.");
}
