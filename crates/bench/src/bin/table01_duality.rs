//! Regenerates Table 1 (the thermal-electrical duality) and the Section
//! 4.1 worked package example (Figure 2): steady-state die temperature and
//! heating/cooling time constants for a 25 W die behind a 2 K/W package.

use tdtm_core::report::TextTable;
use tdtm_thermal::duality::{HeatFlow, ThermalCapacitance, ThermalResistance};
use tdtm_thermal::network::RcNetwork;

fn main() {
    println!("== Table 1: equivalence between thermal and electrical quantities ==\n");
    let mut t = TextTable::new(["Thermal quantity", "unit", "Electrical quantity", "unit"]);
    t.row(["Heat flow, power P", "W", "Current flow I", "A"]);
    t.row(["Temperature difference dT", "K", "Voltage V", "V"]);
    t.row(["Thermal resistance Rth", "K/W", "Electrical resistance R", "Ohm"]);
    t.row(["Thermal mass, capacitance Cth", "J/K", "Electrical capacitance C", "F"]);
    t.row(["Thermal RC constant", "s", "Electrical RC constant", "s"]);
    println!("{}", t.render());

    println!("== Section 4.1 worked example (Figure 2) ==\n");
    let r_die_case = ThermalResistance(1.0);
    let r_heatsink = ThermalResistance(1.0);
    let c_heatsink = ThermalCapacitance(60.0);
    let power = HeatFlow(25.0);
    let ambient = 27.0;

    let dt = power * r_die_case.series(r_heatsink);
    println!(
        "steady state: {} W x ({} + {}) + {} C ambient = {:.1} C",
        power.0, r_die_case, r_heatsink, ambient, dt.0 + ambient
    );
    let tau = r_heatsink * c_heatsink;
    println!("package time constant: {} x {} = {} (about a minute)", r_heatsink, c_heatsink, tau);

    // Confirm with the dynamic network model.
    let mut net = RcNetwork::new(ambient);
    let die = net.add_node(0.5, ambient);
    let sink = net.add_node(c_heatsink.0, ambient);
    net.connect(die, sink, r_die_case.0);
    net.connect_to_ambient(sink, r_heatsink.0);
    net.set_power(die, power.0);
    let mut reach_time = None;
    let dt_step = 0.01;
    let target = dt.0 + ambient - 0.5;
    let mut elapsed = 0.0;
    while elapsed < 1200.0 {
        net.step(dt_step);
        elapsed += dt_step;
        if reach_time.is_none() && net.temperature(die) >= target {
            reach_time = Some(elapsed);
        }
    }
    println!(
        "dynamic model: die settles at {:.1} C; within 0.5 C of steady state after {:.0} s",
        net.temperature(die),
        reach_time.unwrap_or(f64::NAN)
    );
}
