//! Trigger-mechanism ablation (Section 2.1): direct microarchitectural
//! signaling (the paper's assumption) versus OS interrupts with a
//! ~250-cycle delay per event, across a range of interrupt costs.

use tdtm_bench::banner;
use tdtm_core::experiments::{characterize, ExperimentScale};
use tdtm_core::report::TextTable;
use tdtm_core::Simulator;
use tdtm_dtm::{PolicyKind, TriggerMechanism};
use tdtm_workloads::by_name;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Ablation: trigger mechanism (direct signaling vs interrupts)", scale);

    let mut t = TextTable::new([
        "benchmark",
        "policy",
        "mechanism",
        "perf vs base",
        "emergency %",
    ]);
    for bench in ["gcc", "bzip2"] {
        let w = by_name(bench).expect("suite");
        let baseline = characterize(&w, scale);
        for policy in [PolicyKind::Toggle1, PolicyKind::Pid] {
            for (mech, label) in [
                (TriggerMechanism::Direct, "direct".to_string()),
                (TriggerMechanism::Interrupt { latency_cycles: 250 }, "interrupt 250".to_string()),
                (TriggerMechanism::Interrupt { latency_cycles: 2500 }, "interrupt 2500".to_string()),
                (
                    TriggerMechanism::Interrupt { latency_cycles: 25_000 },
                    "interrupt 25000".to_string(),
                ),
            ] {
                let mut cfg = scale.config(policy);
                cfg.dtm.mechanism = mech;
                let mut sim = Simulator::for_workload(cfg, &w);
                let r = sim.run();
                t.row([
                    bench.to_string(),
                    policy.to_string(),
                    label,
                    format!("{:.1}%", r.percent_of(&baseline)),
                    format!("{:.3}%", 100.0 * r.emergency_fraction()),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!("a 250-cycle interrupt delay is a sixth of a degree of drift at these time");
    println!("constants — essentially free — but millisecond-class delays let the thermal");
    println!("state move before the actuator hears about it, eroding the safety margin; the");
    println!("paper's direct-signaling assumption is the right design.");
}
