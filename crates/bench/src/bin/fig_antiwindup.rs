//! The Section 3.3 integral-windup demonstration: a PI controller with
//! and without anti-windup, driven through a long low-power (cool) phase
//! followed by a hot phase. Without the paper's integrator freeze, the
//! wound-up integral keeps the actuator saturated long after the error
//! changes sign, and the plant overshoots; with it, the response is
//! immediate.

use tdtm_control::design::{design_controller, ControllerKind, FopdtPlant};
use tdtm_control::pid::PidController;
use tdtm_core::report::TextTable;

fn main() {
    println!("== Section 3.3: actuator saturation and integral windup ==\n");
    let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
    let gains = design_controller(&plant, ControllerKind::Pi);
    let dt = 667e-9; // one 1000-cycle sampling interval at 1.5 GHz

    // The actuator range is [0,1] fetch duty; setpoint error is in kelvin.
    let mut protected = PidController::new(gains, dt, 0.0, 1.0);
    let mut unprotected = PidController::new(gains, dt, 0.0, 1.0).without_anti_windup();

    // Phase 1: the application dissipates little power — the target
    // temperature is unreachable and a positive error persists (the
    // paper's windup scenario). Phase 2: power arrives and temperature
    // overshoots the setpoint by 1 K.
    let cool_error = 5.0; // 5 K below setpoint, uncloseable
    let hot_error = -1.0;

    // Each `sample_detailed` call reports the controller's internals —
    // the P/I decomposition, the pre-clamp integral, and the saturation
    // flag — so the table reads them straight off the `PidSample` instead
    // of poking controller state between calls.
    let mut t = TextTable::new([
        "sample",
        "error (K)",
        "protected duty",
        "protected Ki*int",
        "sat?",
        "unprotected duty",
        "unprotected Ki*int",
        "sat?",
    ]);
    let phase1 = 3000usize;
    let phase2 = 40usize;
    for k in 0..(phase1 + phase2) {
        let e = if k < phase1 { cool_error } else { hot_error };
        let sp = protected.sample_detailed(e);
        let su = unprotected.sample_detailed(e);
        let interesting = k < 2
            || (k + 5 >= phase1 && k < phase1 + 10)
            || (k >= phase1 && (k - phase1).is_multiple_of(10));
        if interesting {
            t.row([
                k.to_string(),
                format!("{e:+.1}"),
                format!("{:.3}", sp.output),
                format!("{:.3}", sp.i_term),
                if sp.saturated { "*".into() } else { String::new() },
                format!("{:.3}", su.output),
                format!("{:.3}", su.i_term),
                if su.saturated { "*".into() } else { String::new() },
            ]);
        }
    }
    println!("{}", t.render());
    let samples_stuck = {
        let mut c = PidController::new(gains, dt, 0.0, 1.0).without_anti_windup();
        for _ in 0..phase1 {
            c.sample(cool_error);
        }
        let mut n = 0;
        while c.sample_detailed(hot_error).saturated && n < 1_000_000 {
            n += 1;
        }
        n
    };
    println!(
        "without anti-windup the actuator stays saturated for {samples_stuck} samples \
         ({} ms!) after the overshoot begins;",
        samples_stuck as f64 * dt * 1e3
    );
    println!("with the paper's integrator freeze it responds at the very next sample.");
}
