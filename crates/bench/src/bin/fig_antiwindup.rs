//! The Section 3.3 integral-windup demonstration: a PI controller with
//! and without anti-windup, driven through a long low-power (cool) phase
//! followed by a hot phase. Without the paper's integrator freeze, the
//! wound-up integral keeps the actuator saturated long after the error
//! changes sign, and the plant overshoots; with it, the response is
//! immediate.

use tdtm_control::design::{design_controller, ControllerKind, FopdtPlant};
use tdtm_control::pid::PidController;
use tdtm_core::report::TextTable;

fn main() {
    println!("== Section 3.3: actuator saturation and integral windup ==\n");
    let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
    let gains = design_controller(&plant, ControllerKind::Pi);
    let dt = 667e-9; // one 1000-cycle sampling interval at 1.5 GHz

    // The actuator range is [0,1] fetch duty; setpoint error is in kelvin.
    let mut protected = PidController::new(gains, dt, 0.0, 1.0);
    let mut unprotected = PidController::new(gains, dt, 0.0, 1.0).without_anti_windup();

    // Phase 1: the application dissipates little power — the target
    // temperature is unreachable and a positive error persists (the
    // paper's windup scenario). Phase 2: power arrives and temperature
    // overshoots the setpoint by 1 K.
    let cool_error = 5.0; // 5 K below setpoint, uncloseable
    let hot_error = -1.0;

    let mut t = TextTable::new([
        "sample",
        "error (K)",
        "protected duty",
        "protected integral",
        "unprotected duty",
        "unprotected integral",
    ]);
    let phase1 = 3000usize;
    let phase2 = 40usize;
    for k in 0..(phase1 + phase2) {
        let e = if k < phase1 { cool_error } else { hot_error };
        let up = protected.sample(e);
        let uu = unprotected.sample(e);
        let interesting = k < 2
            || (k + 5 >= phase1 && k < phase1 + 10)
            || (k >= phase1 && (k - phase1).is_multiple_of(10));
        if interesting {
            t.row([
                k.to_string(),
                format!("{e:+.1}"),
                format!("{up:.3}"),
                format!("{:.3e}", protected.integral()),
                format!("{uu:.3}"),
                format!("{:.3e}", unprotected.integral()),
            ]);
        }
    }
    println!("{}", t.render());
    let samples_stuck = {
        let mut c = PidController::new(gains, dt, 0.0, 1.0).without_anti_windup();
        for _ in 0..phase1 {
            c.sample(cool_error);
        }
        let mut n = 0;
        while c.sample(hot_error) >= 1.0 && n < 1_000_000 {
            n += 1;
        }
        n
    };
    println!(
        "without anti-windup the actuator stays saturated for {samples_stuck} samples \
         ({} ms!) after the overshoot begins;",
        samples_stuck as f64 * dt * 1e3
    );
    println!("with the paper's integrator freeze it responds at the very next sample.");
}
