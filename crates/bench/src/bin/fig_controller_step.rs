//! Closed-loop step responses of the designed P/PD/PI/PID controllers
//! against the paper's thermal plant model (Section 3 behavior), printed
//! as time series plus the summary metrics (overshoot, settling time)
//! that guide how close the setpoint can sit to the emergency threshold.

use tdtm_control::design::{design_controller, ControllerKind, FopdtPlant};
use tdtm_control::response::{simulate_step, ResponseMetrics};
use tdtm_core::report::TextTable;

fn main() {
    println!("== Section 3: designed controller step responses ==\n");
    // The paper's plant: thermal-R-scale gain, the longest block time
    // constant, and half the 667 ns sampling period of loop delay.
    let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
    println!(
        "plant: K = {} K per unit duty, tau = {} us, L = {} ns\n",
        plant.gain,
        plant.time_constant * 1e6,
        plant.delay * 1e9
    );

    let kinds = [ControllerKind::P, ControllerKind::Pd, ControllerKind::Pi, ControllerKind::Pid];
    let mut summary = TextTable::new([
        "controller",
        "Kp",
        "Ki (1/s)",
        "Kd (s)",
        "overshoot",
        "settling (us)",
        "final value",
    ]);
    let mut curves = Vec::new();
    for kind in kinds {
        let gains = design_controller(&plant, kind);
        let r = simulate_step(&plant, &gains, 1.0, 6.0 * plant.time_constant);
        let m = ResponseMetrics::from_response(&r);
        summary.row([
            format!("{kind:?}"),
            format!("{:.3}", gains.kp),
            format!("{:.3e}", gains.ki),
            format!("{:.3e}", gains.kd),
            format!("{:.1}%", 100.0 * m.overshoot_fraction),
            if m.settled { format!("{:.1}", m.settling_time * 1e6) } else { "never".into() },
            format!("{:.3}", m.final_value),
        ]);
        curves.push((kind, r));
    }
    println!("{}", summary.render());

    println!("-- normalized step responses (20 samples over 6 tau) --\n");
    let mut series = TextTable::new(["t (us)", "P", "PD", "PI", "PID"]);
    let len = curves[0].1.output.len();
    for k in 0..20 {
        let idx = (k * (len - 1)) / 19;
        let t_us = idx as f64 * curves[0].1.dt * 1e6;
        let mut row = vec![format!("{t_us:.1}")];
        for (_, r) in &curves {
            let i = idx.min(r.output.len() - 1);
            row.push(format!("{:.3}", r.output[i]));
        }
        series.row(row);
    }
    println!("{}", series.render());

    // The simulated response carries the controller's internal terms at
    // every step (`Response::samples`), so the P/I/D decomposition is
    // read directly off the recorded `PidSample`s rather than re-derived
    // from gains and output curves.
    println!("-- PID actuation decomposed into P/I/D terms (from recorded samples) --\n");
    let pid = &curves.last().expect("PID simulated").1;
    let mut terms = TextTable::new(["t (us)", "error", "P term", "I term", "D term", "u"]);
    for k in 0..12 {
        let idx = (k * (pid.samples.len() - 1)) / 11;
        let s = &pid.samples[idx];
        terms.row([
            format!("{:.1}", idx as f64 * pid.dt * 1e6),
            format!("{:+.3}", s.error),
            format!("{:+.3}", s.p_term),
            format!("{:+.3}", s.i_term),
            format!("{:+.3}", s.d_term),
            format!("{:+.3}", s.output),
        ]);
    }
    println!("{}", terms.render());
    println!("early on the P (and D) terms dominate; as the error closes they hand off to");
    println!("the integral, which alone holds the final actuation — the reason PI/PID have");
    println!("no steady-state offset.\n");
    println!("P and PD settle with a steady-state offset; PI and PID reach the setpoint exactly");
    println!("(the integral action), which is why they can run 0.2 K below the emergency limit.");
}
