//! Thermal-integration ablation: the paper integrates Eq. 5 (forward
//! Euler) every cycle. This harness quantifies (a) the exact-exponential
//! step this reproduction uses instead, and (b) how far the update can be
//! batched (one step per N cycles using the mean power over the batch)
//! before temperature error matters — the cost knob for faster
//! simulation.

use tdtm_core::engine::{shard_map, thread_count};
use tdtm_core::report::TextTable;
use tdtm_thermal::block_model::{table3_blocks, BlockModel};

/// A deterministic bursty power trace generator (hot/cool phases plus a
/// pseudo-random flutter), mimicking per-block power from a real run.
fn power_at(cycle: u64) -> [f64; 7] {
    let phase_hot = (cycle / 150_000).is_multiple_of(2);
    let flutter = ((cycle.wrapping_mul(2654435761)) >> 24) as f64 / 255.0; // 0..1
    let base = if phase_hot { 1.0 } else { 0.25 };
    [
        2.0 * base + flutter,
        9.0 * base,
        3.5 * base + 0.5 * flutter,
        3.0 * base,
        5.0 * base,
        7.0 * base + flutter,
        1.0,
    ]
}

fn main() {
    println!("== Ablation: thermal integration fidelity vs cost ==\n");
    let dt = 1.0 / 1.5e9;
    let cycles = 1_500_000u64;

    // Reference: exact step every cycle.
    let mut reference = BlockModel::new(table3_blocks(), 103.0, dt);
    let mut euler = BlockModel::new(table3_blocks(), 103.0, dt);
    let mut euler_err = 0.0f64;
    for c in 0..cycles {
        let p = power_at(c);
        reference.step(&p);
        euler.step_euler(&p);
        for i in 0..7 {
            euler_err = euler_err.max((reference.temperatures()[i] - euler.temperatures()[i]).abs());
        }
    }
    println!(
        "paper's Eq. 5 (per-cycle forward Euler) vs exact step: max divergence {euler_err:.2e} K over {} cycles\n",
        cycles
    );

    // Each batch size is an independent cell (its reference model is
    // recomputed inside the cell, so cells share nothing); shard them
    // across the engine's workers. shard_map returns rows in batch order
    // regardless of thread count.
    let batches = [1u64, 4, 16, 64, 256, 1024, 4096, 16_384];
    let threads = thread_count();
    let rows = shard_map(&batches, threads, |_, &batch| {
        let start = std::time::Instant::now();
        let mut reference = BlockModel::new(table3_blocks(), 103.0, dt);
        let mut batched = BlockModel::new(table3_blocks(), 103.0, dt * batch as f64);
        let mut acc = [0.0f64; 7];
        let mut max_err = 0.0f64;
        let mut steps = 0u64;
        for c in 0..cycles {
            let p = power_at(c);
            reference.step(&p);
            for i in 0..7 {
                acc[i] += p[i];
            }
            if (c + 1) % batch == 0 {
                let mean = acc.map(|a| a / batch as f64);
                batched.step(&mean);
                acc = [0.0; 7];
                steps += 1;
                for i in 0..7 {
                    max_err = max_err
                        .max((reference.temperatures()[i] - batched.temperatures()[i]).abs());
                }
            }
        }
        (batch, max_err, steps, start.elapsed().as_secs_f64())
    });

    let mut t =
        TextTable::new(["batch (cycles)", "max error vs per-cycle (K)", "steps taken", "wall (s)"]);
    for (batch, max_err, steps, wall) in rows {
        t.row([
            batch.to_string(),
            format!("{max_err:.2e}"),
            steps.to_string(),
            format!("{wall:.3}"),
        ]);
    }
    println!("({} cells on {threads} thread(s))\n", batches.len());
    println!("{}", t.render());
    println!("batching the exact update with mean power stays within millikelvins out to");
    println!("thousands of cycles (the thermal dynamics are the 84 us block constants, not");
    println!("the 667 ps cycle), so a simulator may trade a 1000x cheaper thermal model for");
    println!("negligible error — while the per-cycle model is already only a few ns/step.");
}
