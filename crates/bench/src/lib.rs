//! # tdtm-bench — benchmark harness and table/figure regeneration
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §3 for the
//! index), plus std-only microbenchmarks ([`microbench`]) backing the
//! "computationally efficient" claims:
//!
//! ```text
//! cargo run -p tdtm-bench --release --bin table04_benchmarks
//! TDTM_INSTS=4000000 cargo run -p tdtm-bench --release --bin fig_dtm_performance
//! cargo bench -p tdtm-bench
//! ```
//!
//! Every binary reads the `TDTM_INSTS` environment variable to scale the
//! per-benchmark instruction budget (default 1,000,000).

pub mod microbench;

use tdtm_core::experiments::ExperimentScale;

/// Prints the standard header used by all regeneration binaries.
pub fn banner(title: &str, scale: ExperimentScale) {
    println!("== {title} ==");
    println!(
        "(per-benchmark budget: {} committed instructions after {}-cycle warmup; set TDTM_INSTS to rescale)",
        scale.insts, scale.warmup_cycles
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_prints() {
        banner("smoke", ExperimentScale::quick());
    }
}
