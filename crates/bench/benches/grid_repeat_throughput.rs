//! Warm-repeat fleet throughput: cells per second of the paper's 18 × 5
//! result grid when the content-addressed result cache can replay prior
//! work — the quantity the cross-run memoization optimizes and the one
//! `BENCH_grid.json` pins alongside the cold rows from
//! `grid_throughput`.
//!
//! Three rows, normalized to ns per grid cell (grid wall time over cell
//! count; lower is better, matching the checker's ratio convention):
//!
//! - `grid18x5_repeat_cold_ns_per_cell`: first contact — a fresh cache,
//!   every cell simulates and publishes. This is the cached engine's
//!   cold overhead row (fingerprinting + publication on top of the
//!   plain batched dispatch).
//! - `grid18x5_repeat_warm_mem_ns_per_cell`: the same grid re-run
//!   against the now-populated in-memory tier — every cell replays.
//! - `grid18x5_repeat_warm_disk_ns_per_cell`: a fresh cache per
//!   repetition over a populated `TDTM_CACHE_DIR`-style directory —
//!   models a new process warming from disk (parse + promote, no
//!   simulation).
//!
//! The bench self-gates the headline claim: the warm in-memory repeat
//! must be at least [`WARM_SPEEDUP_FLOOR`]× the cold rate, or the run
//! exits nonzero. `scripts/tier1.sh` runs this with `--quick --check`.
//!
//! Flags (after `--`):
//!
//! - `--json <path>`: write the measured rows as JSON (the committed
//!   baseline at the repo root is `BENCH_grid.json`).
//! - `--check <path>`: compare against a committed baseline and exit
//!   nonzero if any shared row regressed more than 3×.
//! - `--quick`: single cold repetition (the tier-1 smoke); warm rows
//!   stay best-of-3 — replays are cheap and the first can eat a page
//!   fault.

use tdtm_bench::microbench::{black_box, Harness};
use tdtm_core::engine::ExperimentGrid;
use tdtm_core::experiments::ExperimentScale;
use tdtm_core::{ResultCache, SimConfig};
use tdtm_dtm::PolicyKind;

/// Regression tolerance for `--check`: current ns/op may be at most this
/// many times the committed baseline.
const CHECK_TOLERANCE: f64 = 3.0;

/// Worker threads for the grid runs — fixed so the row is comparable
/// across environments regardless of `TDTM_THREADS` or machine shape.
const THREADS: usize = 4;

/// The headline acceptance claim this bench gates: warm in-memory
/// repeats must deliver at least this many times the cold cells/s.
const WARM_SPEEDUP_FLOOR: f64 = 5.0;

/// The paper's result grid at quick scale, on a hot heatsink so every
/// policy actually actuates: 18 benchmarks × 5 policies = 90 cells.
fn grid() -> ExperimentGrid {
    fn hot(cfg: &mut SimConfig) {
        cfg.heatsink_temp = 107.0;
    }
    ExperimentGrid::new(ExperimentScale::quick()).suite().policies(&[
        PolicyKind::None,
        PolicyKind::Toggle1,
        PolicyKind::Pid,
        PolicyKind::VfScale,
        PolicyKind::Hierarchical,
    ])
    .variant("hot", hot)
}

fn report_row(h: &mut Harness, name: &str, best_seconds: f64, cells: usize) -> f64 {
    let ns = best_seconds * 1e9 / cells as f64;
    println!(
        "{name:<44} {ns:>14.0} ns/cell {:>10.2} cells/s  ({cells} cells, {THREADS} threads)",
        cells as f64 / best_seconds,
    );
    h.push_row(name, ns);
    ns
}

/// One cold pass into `cache`, timed. Asserts the pass actually
/// simulated (all misses) so a leaked warm cache can't fake the row.
fn cold_pass(grid: &ExperimentGrid, cache: &ResultCache) -> f64 {
    let results = grid.run_threads_cached(THREADS, true, cache);
    let stats = results.cache_stats.expect("cached run reports stats");
    assert_eq!(stats.cache_hits, 0, "cold pass must not hit");
    black_box(&results.runs);
    results.wall_seconds
}

/// One warm pass against `cache`, timed. Asserts every cell replayed.
fn warm_pass(grid: &ExperimentGrid, cache: &ResultCache) -> f64 {
    let results = grid.run_threads_cached(THREADS, true, cache);
    let stats = results.cache_stats.expect("cached run reports stats");
    assert_eq!(stats.cache_misses, 0, "warm pass must not simulate");
    black_box(&results.runs);
    results.wall_seconds
}

/// Minimal parser for the flat `{"name": ns, ...}` objects
/// [`Harness::to_json`] emits.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim().trim_matches('"');
        if let Ok(ns) = value.trim().parse::<f64>() {
            rows.push((name.to_string(), ns));
        }
    }
    rows
}

fn check_against(baseline_path: &str, h: &Harness) -> bool {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = parse_baseline(&text);
    let mut ok = true;
    for (name, ns) in h.results() {
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == name) else {
            continue;
        };
        let ratio = ns / base;
        let verdict = if ratio <= CHECK_TOLERANCE { "ok" } else { "REGRESSED" };
        println!("check {name:<40} {ns:>14.0} vs {base:>14.0} ns/cell  ({ratio:>5.2}x)  {verdict}");
        if ratio > CHECK_TOLERANCE {
            ok = false;
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cold_reps = if quick { 1 } else { 3 };
    let cells = grid().len();
    let mut h = Harness::new();

    // Cold: a fresh cache per repetition, so every pass pays the full
    // simulation plus fingerprint/publish overhead.
    let grid = grid();
    let mut cold_best = f64::INFINITY;
    let mut last_cache = None;
    for _ in 0..cold_reps {
        let cache = ResultCache::in_memory();
        cold_best = cold_best.min(cold_pass(&grid, &cache));
        last_cache = Some(cache);
    }
    let cold_ns = report_row(&mut h, "grid18x5_repeat_cold_ns_per_cell", cold_best, cells);

    // Warm memory: repeats against the last cold pass's populated
    // in-memory tier. Best-of-3 even under --quick — replays are cheap.
    let mem_cache = last_cache.expect("at least one cold rep");
    let mut warm_mem_best = f64::INFINITY;
    for _ in 0..3 {
        warm_mem_best = warm_mem_best.min(warm_pass(&grid, &mem_cache));
    }
    let warm_mem_ns =
        report_row(&mut h, "grid18x5_repeat_warm_mem_ns_per_cell", warm_mem_best, cells);

    // Warm disk: populate a cache directory once, then time fresh
    // caches over it (new-process shape: memory empty, disk warm).
    let dir = std::env::temp_dir()
        .join(format!("tdtm-grid-repeat-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    cold_pass(&grid, &ResultCache::with_disk(&dir));
    let mut warm_disk_best = f64::INFINITY;
    for _ in 0..3 {
        let cache = ResultCache::with_disk(&dir);
        assert!(cache.has_disk_tier(), "bench needs a writable temp dir");
        warm_disk_best = warm_disk_best.min(warm_pass(&grid, &cache));
    }
    let _ = std::fs::remove_dir_all(&dir);
    report_row(&mut h, "grid18x5_repeat_warm_disk_ns_per_cell", warm_disk_best, cells);

    // The acceptance gate: warm in-memory repeats at least
    // WARM_SPEEDUP_FLOOR× the cold rate.
    let speedup = cold_ns / warm_mem_ns;
    println!("warm-mem speedup over cold: {speedup:.1}x (floor {WARM_SPEEDUP_FLOOR}x)");
    if speedup < WARM_SPEEDUP_FLOOR {
        eprintln!("warm-repeat speedup {speedup:.1}x below the {WARM_SPEEDUP_FLOOR}x floor");
        std::process::exit(1);
    }

    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, h.to_json()).expect("write json baseline");
        eprintln!("wrote {path}");
    }
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a path");
        if !check_against(path, &h) {
            eprintln!("bench regression check FAILED (>{CHECK_TOLERANCE}x vs {path})");
            std::process::exit(1);
        }
        eprintln!("bench regression check passed (tolerance {CHECK_TOLERANCE}x)");
    }
}
